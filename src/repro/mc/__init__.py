"""Memory-controller data structures shared by the compression designs.

- :mod:`repro.mc.cte` -- Compression Translation Entry layouts: TMCC's 8 B
  page-level CTE (Figure 13) and Compresso's 64 B block-level metadata.
- :mod:`repro.mc.ctecache` -- the dedicated CTE cache (64 KB for TMCC with
  32 KB reach per block, 128 KB for Compresso with 4 KB reach).
- :mod:`repro.mc.freelist` -- ML1 free list (4 KB chunks) and ML2 free
  lists (sub-chunks carved fragmentation-free out of super-chunks).
- :mod:`repro.mc.recency` -- the Recency List that ranks ML1 pages by
  sampled access recency (Section IV-B).
- :mod:`repro.mc.migration` -- the 32 KB migration buffer between memory
  levels (Section VI).
"""

from repro.mc.cte import PageCTE, CompressoCTE, CTE_SIZE_PAGE, CTE_SIZE_BLOCKLEVEL
from repro.mc.ctecache import CTECache
from repro.mc.freelist import ML1FreeList, ML2FreeLists, SubChunk, superchunk_geometry
from repro.mc.recency import RecencyList
from repro.mc.migration import MigrationBuffer

__all__ = [
    "PageCTE",
    "CompressoCTE",
    "CTE_SIZE_PAGE",
    "CTE_SIZE_BLOCKLEVEL",
    "CTECache",
    "ML1FreeList",
    "ML2FreeLists",
    "SubChunk",
    "superchunk_geometry",
    "RecencyList",
    "MigrationBuffer",
]
