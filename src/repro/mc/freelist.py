"""Hardware free lists for ML1 and ML2 (Figure 3).

ML1 tracks free 4 KB chunks in a doubly linked list whose pointers live in
the free chunks themselves ("for free").  ML2 keeps one free list per
sub-chunk size class; equally-sized sub-chunks are carved
fragmentation-free by dividing a *super-chunk* of M interlinked 4 KB
chunks into N sub-chunks, with M, N chosen to minimize the leftover
``(4KB * M) mod subchunk_size``.

Allocation always pops from the top of a list and super-chunks that regain
a free sub-chunk are pushed back on top, so super-chunks near the bottom
drain naturally and can be dismantled back into ML1 chunks -- the paper's
graceful grow/shrink behaviour (Section IV-A/B).
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.errors import ModelInvariantError
from repro.common.units import PAGE_SIZE


class ML1FreeList:
    """Free 4 KB chunks, LIFO (freed chunks are reused first)."""

    def __init__(self) -> None:
        self._chunks: List[int] = []  # flat stack, top at the end

    def push(self, chunk: int) -> None:
        self._chunks.append(chunk)

    def push_many(self, chunks) -> None:
        self._chunks.extend(chunks)

    def pop(self) -> Optional[int]:
        return self._chunks.pop() if self._chunks else None

    def pop_many(self, count: int) -> Optional[List[int]]:
        """Pop exactly ``count`` chunks, or ``None`` (and no change)."""
        if len(self._chunks) < count:
            return None
        return [self._chunks.pop() for _ in range(count)]

    @property
    def count(self) -> int:
        return len(self._chunks)


def superchunk_geometry(subchunk_size: int, max_chunks: int = 8) -> Tuple[int, int]:
    """Choose (M chunks, N sub-chunks) minimizing carve waste.

    Picks the smallest M in [1, max_chunks] whose waste
    ``(M * 4KB) mod subchunk_size`` is minimal; N = usable sub-chunks.
    """
    if not 0 < subchunk_size <= PAGE_SIZE:
        raise ValueError(f"subchunk_size must be in (0, {PAGE_SIZE}]")
    best: Optional[Tuple[int, int, int]] = None  # (waste, M, N)
    for m in range(1, max_chunks + 1):
        total = m * PAGE_SIZE
        n = total // subchunk_size
        waste = total - n * subchunk_size
        if best is None or waste < best[0]:
            best = (waste, m, n)
        if waste == 0:
            break
    _, m, n = best
    return m, n


@dataclass
class SuperChunk:
    """M interlinked chunks carved into N equal sub-chunks."""

    subchunk_size: int
    chunk_ids: List[int]
    free_slots: List[int] = field(default_factory=list)
    total_slots: int = 0
    #: First backing chunk at carve time; survives dismantling so error
    #: messages can still name the super-chunk's address.
    origin_chunk: Optional[int] = None

    @classmethod
    def carve(cls, subchunk_size: int, chunk_ids: List[int], slots: int) -> "SuperChunk":
        return cls(
            subchunk_size=subchunk_size,
            chunk_ids=list(chunk_ids),
            free_slots=list(range(slots - 1, -1, -1)),  # allocate slot 0 first
            total_slots=slots,
            origin_chunk=chunk_ids[0] if chunk_ids else None,
        )

    @property
    def fully_free(self) -> bool:
        return len(self.free_slots) == self.total_slots

    @property
    def has_free(self) -> bool:
        return bool(self.free_slots)


@dataclass(frozen=True)
class SubChunk:
    """A handle to one allocated sub-chunk."""

    superchunk: SuperChunk
    slot: int

    @property
    def size(self) -> int:
        return self.superchunk.subchunk_size


class ML2FreeLists:
    """One free list per sub-chunk size class.

    Size classes default to 256 B steps (the zsmalloc-like "practically
    ideal matching sub-physical page" of Section IV-A).  ``alloc`` grows a
    class from the ML1 free list when it runs dry; ``free`` dismantles
    fully-free super-chunks back into ML1 chunks.
    """

    def __init__(self, size_classes: Optional[List[int]] = None) -> None:
        self.size_classes = sorted(size_classes or
                                   [256 * i for i in range(1, 17)])
        if any(s <= 0 or s > PAGE_SIZE for s in self.size_classes):
            raise ValueError("size classes must be in (0, 4096]")
        self._lists: Dict[int, List[SuperChunk]] = {
            size: [] for size in self.size_classes
        }

    def class_for(self, compressed_size: int) -> int:
        """Smallest size class that fits ``compressed_size`` bytes."""
        classes = self.size_classes
        idx = bisect_left(classes, compressed_size)
        if idx == len(classes):
            raise ValueError(
                f"compressed size {compressed_size} exceeds the largest class"
            )
        return classes[idx]

    def alloc(self, compressed_size: int, ml1: ML1FreeList) -> Optional[SubChunk]:
        """Allocate a sub-chunk, growing from ML1 if needed.

        Returns ``None`` when the class is empty and ML1 cannot donate the
        chunks for a new super-chunk (the controller must evict first).
        """
        size = self.class_for(compressed_size)
        stack = self._lists[size]
        while stack and not stack[-1].has_free:
            stack.pop()  # fully-allocated super-chunks leave the list
        if not stack:
            m, n = superchunk_geometry(size)
            chunks = ml1.pop_many(m)
            if chunks is None:
                return None
            stack.append(SuperChunk.carve(size, chunks, n))
        superchunk = stack[-1]
        slot = superchunk.free_slots.pop()
        if not superchunk.has_free:
            stack.pop()
        return SubChunk(superchunk, slot)

    def free(self, subchunk: SubChunk, ml1: ML1FreeList) -> None:
        """Release a sub-chunk; dismantles empty super-chunks into ML1."""
        superchunk = subchunk.superchunk
        size = superchunk.subchunk_size
        origin = superchunk.origin_chunk
        where = f"size class {size} B, chunk {origin}"
        if origin is not None:
            address = origin * PAGE_SIZE + subchunk.slot * size
            where += f", address {address:#x}"
        if superchunk.total_slots == 0:
            raise ModelInvariantError(
                f"free of sub-chunk slot {subchunk.slot} ({where}) whose "
                f"super-chunk was already dismantled into ML1"
            )
        if subchunk.slot in superchunk.free_slots:
            raise ModelInvariantError(
                f"double free of sub-chunk slot {subchunk.slot} ({where})"
            )
        had_free = superchunk.has_free
        superchunk.free_slots.append(subchunk.slot)
        stack = self._lists[superchunk.subchunk_size]
        if superchunk.fully_free:
            if superchunk in stack:
                stack.remove(superchunk)
            ml1.push_many(superchunk.chunk_ids)
            superchunk.chunk_ids = []
            superchunk.free_slots = []
            superchunk.total_slots = 0
        elif not had_free:
            # 0 free -> 1 free: back on top of its list (Section IV-B).
            stack.append(superchunk)

    def free_subchunks(self, size: int) -> int:
        """Free sub-chunks currently available in one class."""
        return sum(len(sc.free_slots) for sc in self._lists[self.class_for(size)])
