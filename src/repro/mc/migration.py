"""The migration buffer between ML1 and ML2 (Section VI).

The MC buffers page transfers through eight 4 KB entries (32 KB total).
ML2 reads respond to the LLC as soon as the needed block decompresses;
the rest of the page drains to ML1 in the background through this buffer.
When all entries are busy, further ML2 accesses stall until one frees.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List

from repro.common.stats import Counter, Histogram


@dataclass(frozen=True, slots=True)
class MigrationGrant:
    """One granted buffer entry, with its stage costs broken out.

    Access-pipeline stages consume ``stall_ns`` as the foreground cost;
    ``start_ns``/``release_ns`` bound the background transfer for
    timeline consumers.
    """

    stall_ns: float
    start_ns: float
    release_ns: float

    @property
    def duration_ns(self) -> float:
        return self.release_ns - self.start_ns


class MigrationBuffer:
    """Occupancy model: entries busy until their transfer completes."""

    def __init__(self, entries: int = 8) -> None:
        if entries <= 0:
            raise ValueError("migration buffer needs at least one entry")
        self.entries = entries
        self._release_times: List[float] = []  # min-heap of busy-until times
        self.stalls = Counter("migration_stalls")
        self.stall_ns = Histogram("migration_stall_ns")

    def _drain(self, now_ns: float) -> None:
        while self._release_times and self._release_times[0] <= now_ns:
            heapq.heappop(self._release_times)

    def reserve(self, now_ns: float, duration_ns: float) -> MigrationGrant:
        """Reserve an entry for ``duration_ns``; returns the grant.

        If the buffer is full, the caller waits until the earliest entry
        frees; that wait is the grant's ``stall_ns`` (also recorded as
        stall time), and the transfer starts at the freeing instant.
        """
        if duration_ns < 0:
            raise ValueError("duration must be non-negative")
        self._drain(now_ns)
        stall = 0.0
        start = now_ns
        if len(self._release_times) >= self.entries:
            earliest = self._release_times[0]
            stall = max(0.0, earliest - now_ns)
            start = earliest
            heapq.heappop(self._release_times)
            self.stalls.increment()
            self.stall_ns.record(stall)
        heapq.heappush(self._release_times, start + duration_ns)
        return MigrationGrant(stall, start, start + duration_ns)

    def acquire(self, now_ns: float, duration_ns: float) -> float:
        """:meth:`reserve`, reduced to the stall -- for callers that do
        not break out stage costs."""
        return self.reserve(now_ns, duration_ns).stall_ns

    def occupancy(self, now_ns: float) -> int:
        self._drain(now_ns)
        return len(self._release_times)
