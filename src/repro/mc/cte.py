"""Compression Translation Entry (CTE) layouts.

TMCC migrates at page granularity, so one CTE is 8 B like a PTE
(Figure 13): the page's DRAM address, an isIncompressible bit, a location
bit (ML1 vs ML2), the compressed size class, and the 32-bit vector marking
which *pairs* of adjacent blocks use the compressed-PTB encoding
(Section V-A4).

Compresso translates at block granularity: each 4 KB physical page needs a
64 B metadata block recording where every 64 B block landed after
repacking.  That 8x size difference is the whole translation-reach story
of Sections III/IV.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.common.bits import extract_bits, insert_bits
from repro.common.units import BLOCKS_PER_PAGE

#: Bytes per TMCC (page-level) CTE.
CTE_SIZE_PAGE = 8
#: Bytes per Compresso (block-level) CTE.
CTE_SIZE_BLOCKLEVEL = 64


@dataclass
class PageCTE:
    """TMCC's 8 B page-level CTE (Figure 13)."""

    #: DRAM frame (or sub-chunk base >> 12-equivalent handle) of the page.
    dram_page: int = 0
    #: Byte offset within the frame for ML2 sub-chunk placement.
    dram_offset: int = 0
    in_ml2: bool = False
    is_incompressible: bool = False
    #: Compressed size in bytes (meaningful only in ML2).
    compressed_size: int = 0
    #: Bit i set => blocks (2i, 2i+1) of the page use compressed-PTB encoding.
    ptb_pair_vector: int = 0

    MAX_DRAM_PAGE_BITS = 28  # 1 TB per MC / 4 KB

    def pack(self) -> int:
        """Serialize to the 64-bit hardware layout (for fidelity tests).

        Bits [0..27]: DRAM page; [28]: in_ml2; [29]: isIncompressible;
        [32..63]: a union -- the 32-bit compressed-PTB pair vector for ML1
        pages (only ML1 blocks can hold compressed PTBs) or the compressed
        byte size for ML2 pages (needed to locate/free the sub-chunk).
        """
        value = 0
        value = insert_bits(value, 0, self.MAX_DRAM_PAGE_BITS, self.dram_page)
        value = insert_bits(value, 28, 1, int(self.in_ml2))
        value = insert_bits(value, 29, 1, int(self.is_incompressible))
        if self.in_ml2:
            value = insert_bits(value, 32, 32, self.compressed_size)
        else:
            value = insert_bits(value, 32, 32, self.ptb_pair_vector)
        return value

    @classmethod
    def unpack(cls, value: int) -> "PageCTE":
        in_ml2 = bool(extract_bits(value, 28, 1))
        union = extract_bits(value, 32, 32)
        return cls(
            dram_page=extract_bits(value, 0, cls.MAX_DRAM_PAGE_BITS),
            in_ml2=in_ml2,
            is_incompressible=bool(extract_bits(value, 29, 1)),
            compressed_size=union if in_ml2 else 0,
            ptb_pair_vector=0 if in_ml2 else union,
        )

    # -- compressed-PTB pair vector helpers (Section V-A4) --------------

    def block_is_ptb_compressed(self, block_index: int) -> bool:
        if not 0 <= block_index < BLOCKS_PER_PAGE:
            raise ValueError(f"block index {block_index} out of page")
        return bool((self.ptb_pair_vector >> (block_index // 2)) & 1)

    def set_block_pair_compressed(self, block_index: int, compressed: bool) -> None:
        """Set the encoding of the *pair* containing ``block_index``.

        Hardware enacts the same encoding change for both blocks of a pair
        when either one changes, which is why one bit suffices for two.
        """
        if not 0 <= block_index < BLOCKS_PER_PAGE:
            raise ValueError(f"block index {block_index} out of page")
        bit = 1 << (block_index // 2)
        if compressed:
            self.ptb_pair_vector |= bit
        else:
            self.ptb_pair_vector &= ~bit


@dataclass
class CompressoCTE:
    """Compresso's 64 B per-page metadata block.

    Tracks, for each of the 64 blocks of a 4 KB physical page, the
    compressed size class and the block's location: which 512 B chunk it
    lives in and the byte offset inside it.  We keep the fields as plain
    lists -- the simulator cares about the *reach* (one page per 64 B of
    metadata), not the exact bit packing.
    """

    #: Chunk ids allocated to this page (up to 8 x 512 B).
    chunks: List[int] = field(default_factory=list)
    #: Per-block compressed size in bytes.
    block_sizes: List[int] = field(default_factory=lambda: [64] * BLOCKS_PER_PAGE)
    is_incompressible: bool = False

    def compressed_page_bytes(self) -> int:
        return sum(self.block_sizes)

    def chunks_needed(self, chunk_size: int = 512) -> int:
        """Chunks required to hold the page at current block sizes."""
        return -(-self.compressed_page_bytes() // chunk_size)

    def block_location(self, block_index: int, chunk_size: int = 512) -> Optional[tuple]:
        """(chunk id, offset) of a block under sequential repacking."""
        if not 0 <= block_index < BLOCKS_PER_PAGE:
            raise ValueError(f"block index {block_index} out of page")
        if not self.chunks:
            return None
        # Prefix sum without the list-slice copy; this runs once per
        # Compresso LLC miss.
        offset = 0
        sizes = self.block_sizes
        for i in range(block_index):
            offset += sizes[i]
        chunk_index = offset // chunk_size
        if chunk_index >= len(self.chunks):
            return None
        return self.chunks[chunk_index], offset % chunk_size
