"""The dedicated CTE cache inside the memory controller.

CTEs live in DRAM as a linear table; the MC caches 64 B *CTE blocks*.
Translation reach per block is what separates the designs (Table III):

- TMCC: 8 B page-level CTEs, so one 64 B block translates 8 pages
  (32 KB reach); the paper gives TMCC a 64 KB cache.
- Compresso: one 64 B CTE per page (4 KB reach); the paper gives it a
  128 KB cache -- and it still misses more.

The cache is indexed by CTE-block number = ppn // pages_per_block.

Storage is columnar (:class:`repro.common.lru.IntLRU`);
``ReferenceCTECache`` keeps the ``OrderedDict`` original as the
readable spec and differential-test oracle.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.common.lru import IntLRU
from repro.common.stats import RatioStat
from repro.common.units import BLOCK_SIZE, KIB


class CTECache:
    """LRU cache of CTE blocks keyed by physical page number."""

    def __init__(self, size_bytes: int = 64 * KIB, cte_size: int = 8,
                 name: str = "cte_cache") -> None:
        if cte_size <= 0 or BLOCK_SIZE % cte_size:
            raise ValueError(f"cte_size must divide {BLOCK_SIZE}, got {cte_size}")
        if size_bytes < BLOCK_SIZE:
            raise ValueError("cache smaller than one CTE block")
        self.size_bytes = size_bytes
        self.cte_size = cte_size
        #: Pages covered by one cached 64 B block.
        self.pages_per_block = BLOCK_SIZE // cte_size
        self.capacity_blocks = size_bytes // BLOCK_SIZE
        self._lru = IntLRU()  # CTE block id -> True
        self.stats = RatioStat(name)

    @property
    def reach_pages(self) -> int:
        """Total pages whose CTEs fit in the cache at once."""
        return self.capacity_blocks * self.pages_per_block

    def _block_of(self, ppn: int) -> int:
        return ppn // self.pages_per_block

    def lookup(self, ppn: int) -> bool:
        """Probe for the CTE of page ``ppn``; records hit/miss."""
        block = ppn // self.pages_per_block
        hit = block in self._lru
        self.stats.record(hit)
        if hit:
            self._lru.move_to_end(block)
        return hit

    def contains(self, ppn: int) -> bool:
        """Probe without recording a stat."""
        return ppn // self.pages_per_block in self._lru

    def fill(self, ppn: int) -> "int | None":
        """Cache the CTE block covering ``ppn`` (MC always caches fetched
        CTEs -- Section VII explains why this matters for TLB hits).

        Returns the evicted CTE block id, or ``None`` when nothing left
        the cache (so victim-spill schemes need no set difference).
        """
        lru = self._lru
        block = ppn // self.pages_per_block
        if block in lru:
            lru.move_to_end(block)
            return None
        victim = None
        if len(lru) >= self.capacity_blocks:
            victim = lru.pop_lru()
        lru.insert_mru(block)
        return victim

    def invalidate_page(self, ppn: int) -> None:
        self._lru.discard(ppn // self.pages_per_block)

    def flush(self) -> None:
        self._lru.clear()

    @property
    def occupancy_blocks(self) -> int:
        return len(self._lru)


class ReferenceCTECache:
    """The original ``OrderedDict`` CTE cache (spec + oracle)."""

    def __init__(self, size_bytes: int = 64 * KIB, cte_size: int = 8,
                 name: str = "cte_cache") -> None:
        if cte_size <= 0 or BLOCK_SIZE % cte_size:
            raise ValueError(f"cte_size must divide {BLOCK_SIZE}, got {cte_size}")
        if size_bytes < BLOCK_SIZE:
            raise ValueError("cache smaller than one CTE block")
        self.size_bytes = size_bytes
        self.cte_size = cte_size
        self.pages_per_block = BLOCK_SIZE // cte_size
        self.capacity_blocks = size_bytes // BLOCK_SIZE
        self._lru: "OrderedDict[int, bool]" = OrderedDict()
        self.stats = RatioStat(name)

    @property
    def reach_pages(self) -> int:
        return self.capacity_blocks * self.pages_per_block

    def _block_of(self, ppn: int) -> int:
        return ppn // self.pages_per_block

    def lookup(self, ppn: int) -> bool:
        block = self._block_of(ppn)
        hit = block in self._lru
        self.stats.record(hit)
        if hit:
            self._lru.move_to_end(block)
        return hit

    def contains(self, ppn: int) -> bool:
        return self._block_of(ppn) in self._lru

    def fill(self, ppn: int) -> "int | None":
        lru = self._lru
        block = ppn // self.pages_per_block
        if block in lru:
            lru.move_to_end(block)
            return None
        victim = None
        if len(lru) >= self.capacity_blocks:
            victim, _ = lru.popitem(last=False)
        lru[block] = True
        return victim

    def invalidate_page(self, ppn: int) -> None:
        self._lru.pop(self._block_of(ppn), None)

    def flush(self) -> None:
        self._lru.clear()

    @property
    def occupancy_blocks(self) -> int:
        return len(self._lru)
