"""The Recency List: sampled LRU over ML1 pages (Section IV-B).

A doubly linked list whose elements name ML1 pages by PPN; head is
hottest, tail is coldest.  To keep update bandwidth negligible, only ~1%
of ML1 accesses (randomly sampled) move a page to the hot end.  Eviction
victims come from the cold end.  Incompressible pages are *removed* so
they are not repeatedly retried; a writeback to such a page re-adds it
with the same 1% probability (compressibility may have changed).
"""

from __future__ import annotations

from typing import Optional

from repro.common.lru import IntLRU
from repro.common.registry import Registry
from repro.common.rng import DeterministicRNG

#: Recency-policy implementations, discoverable by name.  The paper's
#: design is the 1%-sampled LRU; alternatives (e.g. full LRU for
#: sensitivity studies) register here without simulator edits.
RECENCY_REGISTRY: Registry = Registry("recency policy")

register_recency_policy = RECENCY_REGISTRY.register


@register_recency_policy
class RecencyList:
    """Sampled-LRU list of ML1 pages."""

    name = "sampled_lru"

    #: Bytes per element: two list pointers + PPN, rounded to hardware
    #: convenience (the paper charges 0.4% of DRAM for the list).
    ELEMENT_BYTES = 16

    def __init__(self, rng: Optional[DeterministicRNG] = None,
                 sample_probability: float = 0.01) -> None:
        if not 0.0 <= sample_probability <= 1.0:
            raise ValueError("sample_probability must be in [0, 1]")
        self._list = IntLRU()  # columnar list, tail (cold) .. head (hot)
        self._rng = rng or DeterministicRNG(0xACCE55)
        self.sample_probability = sample_probability

    def __len__(self) -> int:
        return len(self._list)

    def __contains__(self, ppn: int) -> bool:
        return ppn in self._list

    def push_hot(self, ppn: int) -> None:
        """Insert (or move) a page at the hot end."""
        if ppn in self._list:
            self._list.move_to_end(ppn)
        else:
            self._list.insert_mru(ppn)

    def on_access(self, ppn: int) -> bool:
        """Maybe refresh recency for an ML1 access; True if sampled."""
        if ppn not in self._list:
            return False
        if self._rng.chance(self.sample_probability):
            self._list.move_to_end(ppn)
            return True
        return False

    def evict_coldest(self) -> Optional[int]:
        """Pop the coldest page, or ``None`` when the list is empty."""
        return self._list.pop_lru()

    def remove(self, ppn: int) -> None:
        """Drop a page (e.g. it proved incompressible, or migrated out)."""
        self._list.discard(ppn)

    def maybe_readd_after_writeback(self, ppn: int) -> bool:
        """1%-probability re-add of an incompressible page on writeback."""
        if ppn in self._list:
            return False
        if self._rng.chance(self.sample_probability):
            self._list.insert_mru(ppn)
            return True
        return False

    def overhead_bytes(self) -> int:
        """Memory the list's pointers consume (unlike free lists, these
        cannot hide inside free space)."""
        return len(self._list) * self.ELEMENT_BYTES
