"""DRAM substrate: DDR4-3200 timing, banks with row buffers, an
FR-FCFS-with-row-cap scheduler approximation, XOR-based bank mapping, and
the channel/controller interleaving policies of Section VIII.
"""

from repro.dram.timing import DDR4Timing
from repro.dram.interleave import (
    InterleavePolicy,
    SUBPAGE_EVERYWHERE,
    TMCC_COMPATIBLE,
    PAGE_EVERYWHERE,
)
from repro.dram.system import DRAMConfig, DRAMSystem, ReadResult

__all__ = [
    "DDR4Timing",
    "InterleavePolicy",
    "SUBPAGE_EVERYWHERE",
    "TMCC_COMPATIBLE",
    "PAGE_EVERYWHERE",
    "DRAMConfig",
    "DRAMSystem",
    "ReadResult",
]
