"""DDR4-3200 timing parameters (Table III).

tCL = tRCD = tRP = 13.75 ns; one 64 B burst moves at the 25.6 GB/s channel
rate (2.5 ns of data-bus occupancy); the NoC between the memory controller
and the LLC tile adds 18 ns each way combined (Table III's "MC to Cache NoC
latency"), which is why Figure 18's uncompressed L3 miss costs ~53 ns.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DDR4Timing:
    """Latency components in nanoseconds."""

    tcl_ns: float = 13.75
    trcd_ns: float = 13.75
    trp_ns: float = 13.75
    burst_ns: float = 2.5          # 64 B / 25.6 GB/s
    noc_ns: float = 18.0           # MC <-> LLC network-on-chip
    channel_gbps: float = 25.6

    @property
    def row_hit_ns(self) -> float:
        """Open-row access: CAS latency + burst."""
        return self.tcl_ns + self.burst_ns

    @property
    def row_closed_ns(self) -> float:
        """Closed bank: activate + CAS + burst."""
        return self.trcd_ns + self.tcl_ns + self.burst_ns

    @property
    def row_conflict_ns(self) -> float:
        """Wrong row open: precharge + activate + CAS + burst."""
        return self.trp_ns + self.trcd_ns + self.tcl_ns + self.burst_ns
