"""The DRAM system: banks, row buffers, queues, and scheduling effects.

This is a latency-accounting model rather than a cycle-accurate DRAM
simulator: each request is timestamped by the caller, banks keep open-row
state, each channel keeps a *decaying backlog* of unserved data-bus work
for bandwidth contention, and the FR-FCFS row-access cap of Table III is
modeled by forcing a precharge after ``row_cap`` consecutive same-row
hits.

The backlog model (rather than a ``busy_until`` horizon) keeps queueing
robust to request reordering: multi-core simulation delivers requests in
simulation order, not global time order, and a lagging core must not be
charged for bus work that other cores scheduled in its future.  Backlog
drains at wall-clock rate and each request queues behind whatever backlog
remains at its own timestamp.

Writes are posted: they consume bus time and disturb row buffers but a
read never waits for the full write. ``rank_targeted_writes`` models
TMCC's policy of putting only the written rank into write mode (Section
VI): with it on, writes to one rank inflate the shared-bus horizon less.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.stats import Counter, Histogram, RatioStat, StatGroup
from repro.dram.interleave import InterleavePolicy, SUBPAGE_EVERYWHERE
from repro.dram.timing import DDR4Timing


@dataclass(frozen=True)
class DRAMConfig:
    """Organization per Table III: one MC, one channel, 8 ranks."""

    num_mcs: int = 1
    channels_per_mc: int = 1
    ranks_per_channel: int = 8
    banks_per_rank: int = 4
    row_size: int = 8192
    timing: DDR4Timing = field(default_factory=DDR4Timing)
    interleave: InterleavePolicy = SUBPAGE_EVERYWHERE
    row_cap: int = 4
    rank_targeted_writes: bool = True
    #: Write bus occupancy multiplier when the whole channel enters write
    #: mode instead of one rank (used when rank_targeted_writes is False).
    channel_write_penalty: float = 2.0


@dataclass(slots=True)
class _Bank:
    open_row: int = -1
    consecutive_hits: int = 0
    #: Decaying backlog of this bank's access circuitry (same model as
    #: the channel bus): overlapping requests to one bank serialize even
    #: when the data bus is free; parallelism comes from the other banks.
    last_ns: float = 0.0
    backlog_ns: float = 0.0

    def occupy(self, now_ns: float, service_ns: float) -> float:
        """Charge ``service_ns`` of bank time; returns the wait."""
        if now_ns > self.last_ns:
            self.backlog_ns = max(0.0, self.backlog_ns - (now_ns - self.last_ns))
            self.last_ns = now_ns
        wait = self.backlog_ns
        self.backlog_ns += service_ns
        return wait


@dataclass(frozen=True, slots=True)
class ReadResult:
    """Latency breakdown of one 64 B read.

    The breakdown fields let access-pipeline stages tag where a read's
    time went (queueing vs bank access) instead of only its total.
    """

    latency_ns: float
    queue_ns: float
    bank_ns: float
    row_hit: bool
    mc: int
    channel: int


@dataclass(frozen=True, slots=True)
class StreamResult:
    """Bus-occupancy record of one multi-block sequential transfer."""

    occupancy_ns: float
    queue_ns: float
    num_blocks: int
    channel: int
    is_write: bool


class DRAMSystem:
    """All MCs/channels/banks behind one interface."""

    def __init__(self, config: Optional[DRAMConfig] = None) -> None:
        # ``None`` default (not ``DRAMConfig()``): a default argument is
        # evaluated once at import time and would be shared -- including
        # its mutable timing/interleave sub-objects -- by every
        # default-constructed system.
        config = config if config is not None else DRAMConfig()
        self.config = config
        total_channels = config.num_mcs * config.channels_per_mc
        self._banks: List[Dict[Tuple[int, int], _Bank]] = [
            {} for _ in range(total_channels)
        ]
        #: Per channel: (last observed time, unserved bus work in ns).
        self._backlog: List[List[float]] = [
            [0.0, 0.0] for _ in range(total_channels)
        ]
        self.stats = StatGroup("dram")
        #: With one MC and one channel the interleave route is the
        #: identity, so the fast read skips address decomposition.
        self._single_channel = total_channels == 1
        #: Bound per-channel busy counters and read stats, filled lazily so
        #: stat keys only exist once the matching request type happened.
        self._busy_counters: Dict[int, Counter] = {}
        self._read_stats: Optional[Tuple[Counter, RatioStat, Histogram]] = None
        #: Timing constants the fast read re-derives per call otherwise;
        #: snapshotted lazily (first fast read) so late config tweaks
        #: before the first access still take effect.
        self._read_consts: Optional[tuple] = None

    def _bank_at(self, channel_index: int, bank_key: Tuple[int, int]) -> _Bank:
        """Get-or-create without ``setdefault`` (which would allocate a
        throwaway :class:`_Bank` on every call)."""
        banks = self._banks[channel_index]
        bank = banks.get(bank_key)
        if bank is None:
            bank = banks[bank_key] = _Bank()
        return bank

    def _busy_counter(self, channel_index: int) -> Counter:
        counter = self._busy_counters.get(channel_index)
        if counter is None:
            counter = self._busy_counters[channel_index] = self.stats.counter(
                f"channel{channel_index}_busy_ns"
            )
        return counter

    def _enqueue(self, channel_index: int, now_ns: float,
                 service_ns: float) -> float:
        """Charge ``service_ns`` of bus work; returns the queue delay."""
        state = self._backlog[channel_index]
        if now_ns > state[0]:
            state[1] = max(0.0, state[1] - (now_ns - state[0]))
            state[0] = now_ns
        queue_ns = state[1]
        state[1] += service_ns
        return queue_ns

    # ------------------------------------------------------------------
    # Address decomposition
    # ------------------------------------------------------------------

    def _route(self, address: int) -> Tuple[int, int, int]:
        mc, channel, local = self.config.interleave.route(
            address, self.config.num_mcs, self.config.channels_per_mc
        )
        return mc, mc * self.config.channels_per_mc + channel, local

    def _bank_and_row(self, local_address: int) -> Tuple[Tuple[int, int], int]:
        """XOR-based (Skylake-like) rank/bank hash + row index."""
        config = self.config
        row = local_address // config.row_size
        rank_bits = (local_address >> 13) ^ (local_address >> 17)
        bank_bits = (local_address >> 15) ^ (local_address >> 19)
        rank = rank_bits % config.ranks_per_channel
        bank = bank_bits % config.banks_per_rank
        return (rank, bank), row

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------

    def read(self, address: int, now_ns: float) -> ReadResult:
        """Serve a 64 B read issued at ``now_ns``; returns its latency."""
        config = self.config
        timing = config.timing
        mc, channel_index, local = self._route(address)
        bank_key, row = self._bank_and_row(local)
        bank = self._bank_at(channel_index, bank_key)

        # Row-buffer outcome, including the FR-FCFS row-access cap.
        if bank.open_row == row and bank.consecutive_hits < config.row_cap:
            bank_ns = timing.row_hit_ns
            bank.consecutive_hits += 1
            row_hit = True
        elif bank.open_row == -1:
            bank_ns = timing.row_closed_ns
            bank.consecutive_hits = 1
            row_hit = False
        else:
            bank_ns = timing.row_conflict_ns
            bank.consecutive_hits = 1
            row_hit = False
        bank.open_row = row

        queue_ns = self._enqueue(channel_index, now_ns, timing.burst_ns)
        bank_wait = bank.occupy(now_ns, bank_ns)
        latency = queue_ns + bank_wait + bank_ns + timing.noc_ns

        self._record_read(channel_index, latency, row_hit,
                          int(timing.burst_ns * 1000))
        return ReadResult(latency, queue_ns, bank_ns, row_hit, mc, channel_index)

    def _record_read(self, channel_index: int, latency: float, row_hit: bool,
                     busy_m: int) -> None:
        stats = self._read_stats
        if stats is None:
            stats = self._read_stats = (
                self.stats.counter("reads"),
                self.stats.ratio("row_buffer"),
                self.stats.histogram("read_latency_ns"),
            )
        reads, row_buffer, latency_hist = stats
        reads.value += 1
        row_buffer.total += 1
        if row_hit:
            row_buffer.hits += 1
        latency_hist.samples.append(latency)
        self._busy_counter(channel_index).value += busy_m

    def read_ns(self, address: int, now_ns: float) -> float:
        """Zero-observer fast read: identical bank/queue/stat updates to
        :meth:`read`, but returns only the total latency and allocates no
        :class:`ReadResult`.  Must stay metric-identical to :meth:`read`
        (see ``docs/performance.md``)."""
        consts = self._read_consts
        if consts is None:
            config = self.config
            timing = config.timing
            consts = self._read_consts = (
                timing.row_hit_ns, timing.row_closed_ns,
                timing.row_conflict_ns, timing.burst_ns, timing.noc_ns,
                config.row_size, config.row_cap,
                config.ranks_per_channel, config.banks_per_rank,
                int(timing.burst_ns * 1000),
            )
        (row_hit_ns, row_closed_ns, row_conflict_ns, burst_ns, noc_ns,
         row_size, row_cap, ranks, banks_per_rank, busy_inc) = consts
        if self._single_channel:
            channel_index = 0
            local = address
        else:
            _, channel_index, local = self._route(address)
        row = local // row_size
        bank_key = (
            ((local >> 13) ^ (local >> 17)) % ranks,
            ((local >> 15) ^ (local >> 19)) % banks_per_rank,
        )
        banks = self._banks[channel_index]
        bank = banks.get(bank_key)
        if bank is None:
            bank = banks[bank_key] = _Bank()

        if bank.open_row == row and bank.consecutive_hits < row_cap:
            bank_ns = row_hit_ns
            bank.consecutive_hits += 1
            row_hit = True
        elif bank.open_row == -1:
            bank_ns = row_closed_ns
            bank.consecutive_hits = 1
            row_hit = False
        else:
            bank_ns = row_conflict_ns
            bank.consecutive_hits = 1
            row_hit = False
        bank.open_row = row

        state = self._backlog[channel_index]
        if now_ns > state[0]:
            drained = state[1] - (now_ns - state[0])
            state[1] = drained if drained > 0.0 else 0.0
            state[0] = now_ns
        queue_ns = state[1]
        state[1] = queue_ns + burst_ns

        if now_ns > bank.last_ns:
            drained = bank.backlog_ns - (now_ns - bank.last_ns)
            bank.backlog_ns = drained if drained > 0.0 else 0.0
            bank.last_ns = now_ns
        bank_wait = bank.backlog_ns
        bank.backlog_ns = bank_wait + bank_ns

        latency = queue_ns + bank_wait + bank_ns + noc_ns

        # _record_read, inlined (one call per LLC miss adds up).
        stats = self._read_stats
        if stats is None:
            stats = self._read_stats = (
                self.stats.counter("reads"),
                self.stats.ratio("row_buffer"),
                self.stats.histogram("read_latency_ns"),
            )
        reads, row_buffer, latency_hist = stats
        reads.value += 1
        row_buffer.total += 1
        if row_hit:
            row_buffer.hits += 1
        latency_hist.samples.append(latency)
        counter = self._busy_counters.get(channel_index)
        if counter is None:
            counter = self._busy_counter(channel_index)
        counter.value += busy_inc
        return latency

    def write(self, address: int, now_ns: float) -> None:
        """Post a 64 B write; consumes bus time but returns immediately."""
        config = self.config
        timing = config.timing
        _, channel_index, local = self._route(address)
        bank_key, row = self._bank_and_row(local)
        bank = self._bank_at(channel_index, bank_key)
        if bank.open_row != row:
            bank.consecutive_hits = 0
        bank.open_row = row

        occupancy = timing.burst_ns
        if not config.rank_targeted_writes:
            occupancy *= config.channel_write_penalty
        self._enqueue(channel_index, now_ns, occupancy)

        self.stats.counter("writes").increment()
        self._busy_counter(channel_index).value += int(occupancy * 1000)

    # ------------------------------------------------------------------
    # Streaming transfers (page migrations, compressed-page reads)
    # ------------------------------------------------------------------

    def stream(self, address: int, num_blocks: int, now_ns: float,
               is_write: bool = False) -> StreamResult:
        """Account bus occupancy for a multi-block sequential transfer.

        Page migrations and compressed-page reads move dozens of blocks;
        their *latency* is modeled by the caller (decompressor pipeline,
        migration buffer), so here we only charge the data-bus time --
        respecting the paper's cap of at most 10 queue slots for
        page-granularity transfers by spreading them behind demand reads.
        The returned :class:`StreamResult` carries the occupancy so
        pipeline stages can tag background bus work.
        """
        if num_blocks <= 0:
            return StreamResult(0.0, 0.0, 0, -1, is_write)
        _, channel_index, _ = self._route(address)
        occupancy = self.config.timing.burst_ns * num_blocks
        queue_ns = self._enqueue(channel_index, now_ns, occupancy)
        counter = "stream_writes" if is_write else "stream_reads"
        self.stats.counter(counter).increment(num_blocks)
        self._busy_counter(channel_index).value += int(occupancy * 1000)
        return StreamResult(occupancy, queue_ns, num_blocks, channel_index,
                            is_write)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def bandwidth_utilization(self, elapsed_ns: float) -> float:
        """Fraction of total channel data-bus time spent busy."""
        if elapsed_ns <= 0:
            return 0.0
        total_channels = self.config.num_mcs * self.config.channels_per_mc
        busy = sum(
            self.stats.counter(f"channel{c}_busy_ns").value / 1000
            for c in range(total_channels)
        )
        return min(1.0, busy / (elapsed_ns * total_channels))

    @property
    def row_hit_rate(self) -> float:
        return self.stats.ratio("row_buffer").hit_rate
