"""Memory-controller / channel interleaving policies (Section VIII).

TMCC lives in the memory controller and compresses at page granularity, so
addresses may only interleave *across MCs* at >= 4 KB granularity.  The
paper evaluates three policies on a 2-MC x 2-channel system:

- ``SUBPAGE_EVERYWHERE`` (baseline): MCs interleaved at 512 B, channels
  within each MC at 256 B.  Incompatible with TMCC; the reference point.
- ``TMCC_COMPATIBLE``: MCs at 4 KB, channels within each MC at 256 B.
  The paper's recommended policy (~1% average delta, up to +10% from row
  locality).
- ``PAGE_EVERYWHERE``: both MCs and channels at 4 KB (no sub-page
  interleaving at all); loses channel-level parallelism for streaming
  workloads (-5..-11% on sp, D, hpcg).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.units import is_power_of_two


@dataclass(frozen=True)
class InterleavePolicy:
    """Splits a physical address into (mc, channel, local address)."""

    name: str
    mc_granularity: int
    channel_granularity: int

    def __post_init__(self) -> None:
        for granularity in (self.mc_granularity, self.channel_granularity):
            if not is_power_of_two(granularity) or granularity < 64:
                raise ValueError(
                    f"granularity must be a power of two >= 64, got {granularity}"
                )

    def route(self, address: int, num_mcs: int, channels_per_mc: int):
        """Return ``(mc index, channel index, channel-local address)``.

        The MC bits are taken first (at ``mc_granularity``), then channel
        bits (at ``channel_granularity``) from the remaining address, the
        way chained interleaving decoders work.
        """
        mc = (address // self.mc_granularity) % num_mcs
        # Remove the MC bits so each MC sees a dense local address space.
        above = address // (self.mc_granularity * num_mcs)
        below = address % self.mc_granularity
        mc_local = above * self.mc_granularity + below
        channel = (mc_local // self.channel_granularity) % channels_per_mc
        above_ch = mc_local // (self.channel_granularity * channels_per_mc)
        below_ch = mc_local % self.channel_granularity
        local = above_ch * self.channel_granularity + below_ch
        return mc, channel, local


SUBPAGE_EVERYWHERE = InterleavePolicy("subpage-everywhere", 512, 256)
TMCC_COMPATIBLE = InterleavePolicy("tmcc-compatible", 4096, 256)
PAGE_EVERYWHERE = InterleavePolicy("page-everywhere", 4096, 4096)
