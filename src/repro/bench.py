"""The pinned performance-benchmark suite behind ``repro bench``.

The suite replays the Figure 18 configuration matrix -- every paper
graph/SPEC/PARSEC workload under the uncompressed baseline, Compresso,
and TMCC at Compresso's measured DRAM budget (iso-capacity) -- with
pinned access count and seed, and reports *host* throughput in
simulated accesses per second per configuration.

Two artifacts live in ``benchmarks/perf/``:

- ``BENCH_<date>.json`` -- one measurement document per recorded run;
  the dated series is the performance trajectory of the simulator
  itself (see ``docs/performance.md``).
- ``baseline.json`` -- the committed reference the CI ``bench`` job
  compares against; :func:`compare_to_baseline` flags any
  configuration (or the suite aggregate) that regressed by more than
  the allowed fraction.

Throughput is a host property: absolute accesses/sec depends on the
machine, so regression gates are only meaningful against a baseline
recorded on comparable hardware.  The committed baseline holds the
numbers from the slowest reference host; treat cross-host comparisons
as trajectories, not gates.
"""

from __future__ import annotations

import glob
import json
import os
import platform
import time
from datetime import date
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.common.errors import ConfigError
from repro.common.numpy_compat import numpy_or_none
from repro.core.compmodel import PageCompressionModel
from repro.core.config import SystemConfig
from repro.sim.experiments import run_workload
from repro.workloads.suite import workload_by_name

#: The pinned Figure 18 workload set (benchmarks/conftest.py's default).
BENCH_WORKLOADS = ("pageRank", "shortestPath", "bfs", "kcore", "mcf",
                   "omnetpp", "canneal")
#: Controller sequence per workload.  Order matters: TMCC runs at the
#: DRAM budget Compresso measured, so Compresso must precede it.
BENCH_CONTROLLERS = ("uncompressed", "compresso", "tmcc")
#: Pinned replay length and seed (the fig18 benchmark's defaults).
BENCH_ACCESSES = 60_000
BENCH_SEED = 1

#: Document format tag, bumped on breaking schema changes.
BENCH_SCHEMA = "repro-bench/1"

#: Suite aggregate of the seed tree (instrumented loop only, reference
#: host; see docs/performance.md).  Denominator of the ``--history``
#: speedup column: every dated document is "Nx over where we started".
SEED_SUITE_RATE = 25_156.0


def default_output_name(today: Optional[date] = None) -> str:
    """``BENCH_<ISO date>.json`` -- the dated trajectory file name."""
    return f"BENCH_{(today or date.today()).isoformat()}.json"


def host_metadata() -> Dict[str, object]:
    """Identify the measuring host inside the benchmark document.

    Throughput is a host property, so every document records the CPU
    model (from ``/proc/cpuinfo`` where available), the Python version,
    and whether numpy was live for the run -- enough to judge whether
    two documents are comparable before reading their rates.
    """
    cpu = platform.processor() or platform.machine()
    try:
        with open("/proc/cpuinfo") as handle:
            for line in handle:
                if line.lower().startswith("model name"):
                    cpu = line.split(":", 1)[1].strip()
                    break
    except OSError:  # non-Linux hosts: keep the platform fallback
        pass
    return {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "system": platform.system(),
        "cpu": cpu,
        "numpy": numpy_or_none() is not None,
    }


def run_suite(
    accesses: int = BENCH_ACCESSES,
    workloads: Sequence[str] = BENCH_WORKLOADS,
    fast_path: str = "auto",
    seed: int = BENCH_SEED,
    system: Optional[SystemConfig] = None,
    progress: Optional[Callable[[Dict[str, object]], None]] = None,
) -> Dict[str, object]:
    """Run the pinned suite; returns the benchmark document.

    Each workload shares one :class:`PageCompressionModel` across its
    three controllers (page-content sampling is the dominant setup cost
    and is identical between them), exactly as the fig18 benchmark
    does.  ``progress`` receives each per-configuration record as it
    completes.
    """
    unknown = [name for name in workloads if name not in BENCH_WORKLOADS]
    if unknown:
        raise ConfigError(f"unknown bench workload(s) {unknown}; "
                          f"choose from {list(BENCH_WORKLOADS)}")
    system = system or SystemConfig()
    records: List[Dict[str, object]] = []
    suite_start = time.perf_counter()
    for name in workloads:
        workload = workload_by_name(name, max_accesses=accesses)
        model = PageCompressionModel(
            workload.content,
            sample_pages=system.compression_samples,
            deflate_config=system.deflate,
            timing=system.deflate_timing,
            ibm=system.ibm_timing,
            seed=seed,
        )
        budget = None
        for controller in BENCH_CONTROLLERS:
            start = time.perf_counter()
            result = run_workload(workload, controller, system,
                                  dram_budget_bytes=budget, seed=seed,
                                  model=model, fast_path=fast_path)
            elapsed = time.perf_counter() - start
            if controller == "compresso":
                budget = result.dram_used_bytes
            replayed = len(workload.trace)
            record = {
                "workload": name,
                "controller": controller,
                "accesses": replayed,
                "elapsed_s": round(elapsed, 4),
                "accesses_per_s": round(replayed / elapsed, 1),
            }
            records.append(record)
            if progress is not None:
                progress(record)
    suite_elapsed = time.perf_counter() - suite_start
    total = sum(record["accesses"] for record in records)
    return {
        "schema": BENCH_SCHEMA,
        "date": date.today().isoformat(),
        "accesses": accesses,
        "seed": seed,
        "fast_path": fast_path,
        "host": host_metadata(),
        "suite_accesses": total,
        "suite_elapsed_s": round(suite_elapsed, 2),
        "suite_accesses_per_s": round(total / suite_elapsed, 1),
        "configs": records,
    }


def write_document(document: Dict[str, object], path: str) -> None:
    """Write a benchmark document as stable, diff-friendly JSON."""
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_document(path: str) -> Dict[str, object]:
    """Load and validate a benchmark document.

    Everything :func:`compare_to_baseline` touches is checked here --
    the schema tag, the ``configs`` list, and each record's
    workload/controller/``accesses_per_s`` fields -- so a malformed
    baseline surfaces as a one-line :class:`ConfigError` (CLI exit 2),
    never as a ``KeyError`` traceback from deep inside the gate.
    """
    try:
        with open(path) as handle:
            document = json.load(handle)
    except OSError as error:
        raise ConfigError(f"cannot read benchmark document: {error}")
    except ValueError as error:
        raise ConfigError(f"{path} is not valid JSON: {error}")
    if not isinstance(document, dict) or "configs" not in document:
        raise ConfigError(f"{path} is not a repro-bench document "
                          f"(missing 'configs')")
    schema = document.get("schema")
    if schema != BENCH_SCHEMA:
        raise ConfigError(
            f"{path} has schema {schema!r}; this build reads "
            f"{BENCH_SCHEMA!r}" if schema is not None else
            f"{path} is not a repro-bench document (missing 'schema'; "
            f"expected {BENCH_SCHEMA!r})")
    configs = document["configs"]
    if not isinstance(configs, list):
        raise ConfigError(f"{path}: 'configs' must be a list, "
                          f"got {type(configs).__name__}")
    for position, record in enumerate(configs):
        if not isinstance(record, dict):
            raise ConfigError(f"{path}: configs[{position}] must be an "
                              f"object, got {type(record).__name__}")
        for key in ("workload", "controller"):
            if not isinstance(record.get(key), str):
                raise ConfigError(f"{path}: configs[{position}] needs a "
                                  f"string {key!r} field")
        rate = record.get("accesses_per_s")
        if not isinstance(rate, (int, float)) or isinstance(rate, bool):
            raise ConfigError(f"{path}: configs[{position}] "
                              f"({record['workload']}/"
                              f"{record['controller']}) needs a numeric "
                              f"'accesses_per_s' field")
    return document


def compare_to_baseline(
    current: Dict[str, object],
    baseline: Dict[str, object],
    max_regression: float = 0.20,
) -> List[str]:
    """Regression messages for configs slower than baseline allows.

    A configuration regresses when its accesses/sec falls below
    ``baseline * (1 - max_regression)``; the suite aggregate is held to
    the same bar.  Configurations present on only one side are skipped
    (the matrix may legitimately grow), and an empty return means the
    gate passes.
    """
    if not 0.0 <= max_regression < 1.0:
        raise ConfigError(f"max_regression must be in [0, 1), "
                          f"got {max_regression}")
    baseline_rates = {
        (record["workload"], record["controller"]): record["accesses_per_s"]
        for record in baseline.get("configs", [])
    }
    floor = 1.0 - max_regression
    messages = []
    for record in current.get("configs", []):
        key = (record["workload"], record["controller"])
        reference = baseline_rates.get(key)
        if reference is None or reference <= 0:
            continue
        rate = record["accesses_per_s"]
        if rate < reference * floor:
            messages.append(
                f"{key[0]}/{key[1]}: {rate:,.0f} acc/s is "
                f"{1 - rate / reference:.0%} below baseline "
                f"{reference:,.0f} acc/s"
            )
    suite_ref = baseline.get("suite_accesses_per_s")
    suite_now = current.get("suite_accesses_per_s")
    if suite_ref and suite_now and suite_now < suite_ref * floor:
        messages.append(
            f"suite: {suite_now:,.0f} acc/s is "
            f"{1 - suite_now / suite_ref:.0%} below baseline "
            f"{suite_ref:,.0f} acc/s"
        )
    return messages


def controller_rates(document: Dict[str, object]) -> Dict[str, float]:
    """Aggregate accesses/sec per controller across a document's configs.

    Rates do not average: per controller, total replayed accesses over
    total elapsed time, so long workloads weigh in proportionally.
    """
    accesses: Dict[str, int] = {}
    elapsed: Dict[str, float] = {}
    for record in document.get("configs", []):
        controller = record["controller"]
        accesses[controller] = (accesses.get(controller, 0)
                                + record.get("accesses", 0))
        elapsed[controller] = (elapsed.get(controller, 0.0)
                               + record.get("elapsed_s", 0.0))
    return {controller: accesses[controller] / elapsed[controller]
            for controller in accesses if elapsed[controller] > 0}


def history_documents(directory: str) -> List[Tuple[str, Dict[str, object]]]:
    """The dated ``BENCH_*.json`` series under ``directory``, oldest
    first (the ISO-dated file names sort chronologically)."""
    paths = sorted(glob.glob(os.path.join(directory, "BENCH_*.json")))
    if not paths:
        raise ConfigError(f"no BENCH_*.json documents under {directory}")
    return [(path, load_document(path)) for path in paths]


def render_history(directory: str) -> str:
    """The performance-trajectory table behind ``repro bench --history``.

    One row per committed dated document: aggregate accesses/sec per
    controller, the suite aggregate, and the speedup over the seed
    tree's instrumented loop (:data:`SEED_SUITE_RATE`).
    """
    documents = history_documents(directory)
    controllers = list(BENCH_CONTROLLERS)
    for _, document in documents:  # matrices may grow; keep them visible
        for name in controller_rates(document):
            if name not in controllers:
                controllers.append(name)
    header = ["document"] + controllers + ["suite", "vs seed"]
    rows = [header]
    for path, document in documents:
        rates = controller_rates(document)
        suite = document.get("suite_accesses_per_s")
        row = [os.path.basename(path)]
        row += [f"{rates[name]:,.0f}" if name in rates else "-"
                for name in controllers]
        if isinstance(suite, (int, float)) and suite > 0:
            row += [f"{suite:,.0f}", f"{suite / SEED_SUITE_RATE:.2f}x"]
        else:
            row += ["-", "-"]
        rows.append(row)
    widths = [max(len(row[i]) for row in rows) for i in range(len(header))]
    lines = []
    for number, row in enumerate(rows):
        lines.append("  ".join(
            cell.ljust(widths[i]) if i == 0 else cell.rjust(widths[i])
            for i, cell in enumerate(row)).rstrip())
        if number == 0:
            lines.append("  ".join("-" * width for width in widths))
    lines.append(f"(speedups vs the seed tree's instrumented loop, "
                 f"{SEED_SUITE_RATE:,.0f} acc/s on the reference host)")
    return "\n".join(lines)
