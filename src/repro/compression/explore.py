"""Design-space exploration for the memory-specialized Deflate.

Section V-B's methodology as a public API: sweep the HDL's tunable
parameters (LZ CAM size, reduced-tree size, depth threshold, dynamic
Huffman skip, 1.1 Pass sampling) over a page corpus, measuring compression
ratio with the real codec, latency with the pipeline model, and silicon
cost with the area model.  ``pareto_frontier`` then reports the
non-dominated design points -- the paper's chosen configuration (1 KB CAM,
16 leaves, skip on) sits on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, List, Optional, Sequence

from repro.common.stats import geomean
from repro.common.units import KIB, PAGE_SIZE
from repro.compression.deflate import (
    AsicAreaModel,
    DeflateCodec,
    DeflateConfig,
    DeflateTimingModel,
)


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated hardware configuration."""

    cam_size: int
    tree_size: int
    depth_threshold: int
    dynamic_huffman_skip: bool
    frequency_sample_fraction: float
    ratio: float
    half_page_latency_ns: float
    compress_latency_ns: float
    area_mm2: float
    power_mw: float

    def dominates(self, other: "DesignPoint") -> bool:
        """Better-or-equal on ratio, latency, and area; better on one."""
        at_least = (
            self.ratio >= other.ratio
            and self.half_page_latency_ns <= other.half_page_latency_ns
            and self.area_mm2 <= other.area_mm2
        )
        strictly = (
            self.ratio > other.ratio
            or self.half_page_latency_ns < other.half_page_latency_ns
            or self.area_mm2 < other.area_mm2
        )
        return at_least and strictly


@dataclass
class DesignSpaceExplorer:
    """Evaluates Deflate configurations over one corpus."""

    pages: Sequence[bytes]
    timing: DeflateTimingModel = field(default_factory=DeflateTimingModel)
    area: AsicAreaModel = field(default_factory=AsicAreaModel)

    def __post_init__(self) -> None:
        if not self.pages:
            raise ValueError("the corpus must contain at least one page")

    def evaluate(self, config: DeflateConfig) -> DesignPoint:
        """Measure one configuration with the real codec."""
        codec = DeflateCodec(config)
        compressed = [codec.compress(p) for p in self.pages]
        ratios = [c.ratio for c in compressed]
        half = [self.timing.decompress_latency_ns(c, PAGE_SIZE // 2)
                for c in compressed]
        comp = [self.timing.compress_latency_ns(c) for c in compressed]
        cam = config.lz.window_size
        tree = config.huffman.tree_size
        return DesignPoint(
            cam_size=cam,
            tree_size=tree,
            depth_threshold=config.huffman.depth_threshold,
            dynamic_huffman_skip=config.dynamic_huffman_skip,
            frequency_sample_fraction=config.huffman.frequency_sample_fraction,
            ratio=geomean(ratios),
            half_page_latency_ns=sum(half) / len(half),
            compress_latency_ns=sum(comp) / len(comp),
            area_mm2=self.area.total_area_mm2(cam_size=cam, tree_size=tree),
            power_mw=self.area.total_power_mw(cam_size=cam, tree_size=tree),
        )

    def sweep(
        self,
        cam_sizes: Iterable[int] = (256, 512, 1 * KIB, 2 * KIB, 4 * KIB),
        tree_sizes: Iterable[int] = (8, 16, 32),
        depth_threshold: int = 8,
        skip_options: Iterable[bool] = (True,),
        base: Optional[DeflateConfig] = None,
    ) -> List[DesignPoint]:
        """Full-factorial sweep over the requested axes."""
        base = base or DeflateConfig()
        points = []
        for cam in cam_sizes:
            for tree in tree_sizes:
                if tree > (1 << depth_threshold):
                    continue
                for skip in skip_options:
                    config = replace(
                        base,
                        lz=replace(base.lz, window_size=cam),
                        huffman=replace(base.huffman, tree_size=tree,
                                        depth_threshold=depth_threshold),
                        dynamic_huffman_skip=skip,
                    )
                    points.append(self.evaluate(config))
        return points


def pareto_frontier(points: Sequence[DesignPoint]) -> List[DesignPoint]:
    """Non-dominated design points (ratio up, latency/area down)."""
    frontier = []
    for candidate in points:
        if not any(other.dominates(candidate) for other in points
                   if other is not candidate):
            frontier.append(candidate)
    return frontier


def paper_design_point(points: Sequence[DesignPoint]) -> Optional[DesignPoint]:
    """The paper's chosen configuration, if it was swept."""
    for point in points:
        if (point.cam_size == 1 * KIB and point.tree_size == 16
                and point.dynamic_huffman_skip):
            return point
    return None
