"""LZ77 stage of the memory-specialized Deflate.

The paper's ASIC front-end is a sliding-window matcher ("1KB CAM") with a
greedy match-selection policy (Section V-B4) and -- unlike RFC 1951 -- a
space-efficient 256-symbol output alphabet, "like how LZ is used today when
it is standalone".  We therefore encode LZ output in an LZ4-style byte
format:

    [token byte][literals...][offset lo][offset hi][len ext...] ...

- token high nibble: literal-run length (15 = extended by 255-run bytes),
- token low nibble: match length - MIN_MATCH (15 = extended),
- offset: 16-bit little-endian distance (1 .. window size),
- a block may end with a literal-only sequence (no offset follows when the
  output is already complete).

Every output symbol is a plain byte, so the Huffman stage downstream can
frequency-count and code them directly.

The matcher is a hash-chain over 4-byte prefixes restricted to the
configured window -- functionally what a hardware CAM of that size finds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.common.units import KIB

#: Shortest match worth encoding: a match costs >= 2 offset bytes, so
#: 4 input bytes is the break-even point (same choice LZ4 makes).
MIN_MATCH = 4

#: Longest match encodable without pathological extension chains.
MAX_MATCH = 4096


@dataclass(frozen=True)
class LZConfig:
    """Tunable parameters mirroring the HDL's knobs.

    ``window_size`` is the CAM size the paper sweeps (256 B - 32 KB;
    1 KB is the chosen design point).  ``max_chain`` bounds match-search
    effort; hardware compares against the whole CAM each cycle, so a large
    default keeps parity with the ASIC's match quality.
    """

    window_size: int = 1 * KIB
    max_chain: int = 64

    def __post_init__(self) -> None:
        if self.window_size <= 0 or self.window_size > 64 * KIB:
            raise ValueError(
                f"window_size must be in (0, 64 KiB], got {self.window_size}"
            )
        if self.max_chain <= 0:
            raise ValueError(f"max_chain must be positive, got {self.max_chain}")


@dataclass(frozen=True)
class LZToken:
    """One LZ sequence: a run of literals optionally followed by a match."""

    literals: bytes
    match_length: int = 0  # 0 means "no match" (only legal for the last token)
    match_offset: int = 0

    def __post_init__(self) -> None:
        if self.match_length and not (MIN_MATCH <= self.match_length <= MAX_MATCH):
            raise ValueError(f"match length {self.match_length} out of range")
        if self.match_length and self.match_offset <= 0:
            raise ValueError("matches require a positive offset")


@dataclass
class LZStats:
    """Aggregate statistics of one compression, for the timing model."""

    input_bytes: int = 0
    output_bytes: int = 0
    literal_bytes: int = 0
    match_count: int = 0
    matched_bytes: int = 0
    token_count: int = 0
    match_lengths: List[int] = field(default_factory=list)


class LZCompressor:
    """Sliding-window LZ with greedy match selection."""

    def __init__(self, config: LZConfig = LZConfig()) -> None:
        self.config = config

    # ------------------------------------------------------------------
    # Tokenization (the matcher proper)
    # ------------------------------------------------------------------

    def tokenize(self, data: bytes) -> List[LZToken]:
        """Split ``data`` into LZ sequences using greedy matching."""
        window = self.config.window_size
        max_chain = self.config.max_chain
        tokens: List[LZToken] = []
        head: Dict[int, int] = {}  # 4-byte prefix hash -> most recent position
        prev: Dict[int, int] = {}  # position -> previous position w/ same hash
        literal_start = 0
        position = 0
        length = len(data)
        while position < length:
            best_length = 0
            best_offset = 0
            if position + MIN_MATCH <= length:
                key = data[position : position + MIN_MATCH]
                candidate = head.get(hash(key), -1)
                chain = 0
                while candidate >= 0 and chain < max_chain:
                    offset = position - candidate
                    if offset > window:
                        break
                    match_length = self._match_length(data, candidate, position)
                    if match_length > best_length:
                        best_length = match_length
                        best_offset = offset
                        if match_length >= MAX_MATCH:
                            break
                    candidate = prev.get(candidate, -1)
                    chain += 1
            if best_length >= MIN_MATCH:
                tokens.append(
                    LZToken(
                        literals=data[literal_start:position],
                        match_length=best_length,
                        match_offset=best_offset,
                    )
                )
                end = min(position + best_length, length - MIN_MATCH + 1)
                step = position
                while step < end:
                    self._insert(data, step, head, prev)
                    step += 1
                position += best_length
                literal_start = position
            else:
                self._insert(data, position, head, prev)
                position += 1
        if literal_start < length or not tokens:
            tokens.append(LZToken(literals=data[literal_start:]))
        return tokens

    @staticmethod
    def _match_length(data: bytes, candidate: int, position: int) -> int:
        limit = min(len(data) - position, MAX_MATCH)
        length = 0
        while length < limit and data[candidate + length] == data[position + length]:
            length += 1
        return length

    def _insert(
        self, data: bytes, position: int, head: Dict[int, int], prev: Dict[int, int]
    ) -> None:
        if position + MIN_MATCH > len(data):
            return
        key = hash(data[position : position + MIN_MATCH])
        if key in head:
            prev[position] = head[key]
        head[key] = position

    # ------------------------------------------------------------------
    # Byte-stream serialization (the 256-symbol alphabet)
    # ------------------------------------------------------------------

    def compress(self, data: bytes) -> bytes:
        """Compress ``data`` to the LZ4-style byte stream."""
        return self.serialize(self.tokenize(data))

    def serialize(self, tokens: List[LZToken]) -> bytes:
        out = bytearray()
        for token in tokens:
            literal_length = len(token.literals)
            match_code = (token.match_length - MIN_MATCH) if token.match_length else 0
            token_byte = (min(literal_length, 15) << 4) | min(match_code, 15)
            out.append(token_byte)
            remaining = literal_length - 15
            while remaining >= 0:
                out.append(min(remaining, 255))
                remaining -= 255
            out += token.literals
            if token.match_length:
                out.append(token.match_offset & 0xFF)
                out.append((token.match_offset >> 8) & 0xFF)
                remaining = match_code - 15
                while remaining >= 0:
                    out.append(min(remaining, 255))
                    remaining -= 255
        return bytes(out)

    def decompress(self, stream: bytes, original_size: int) -> bytes:
        """Inverse of :meth:`compress`."""

        def take(count: int) -> bytes:
            nonlocal position
            if position + count > len(stream):
                raise ValueError("LZ stream truncated")
            chunk = stream[position : position + count]
            position += count
            return chunk

        out = bytearray()
        position = 0
        while len(out) < original_size:
            token_byte = take(1)[0]
            literal_length = token_byte >> 4
            match_code = token_byte & 0x0F
            if literal_length == 15:
                while True:
                    extra = take(1)[0]
                    literal_length += extra
                    if extra != 255:
                        break
            out += take(literal_length)
            if len(out) >= original_size:
                break
            offset_bytes = take(2)
            offset = offset_bytes[0] | (offset_bytes[1] << 8)
            match_length = match_code + MIN_MATCH
            if match_code == 15:
                while True:
                    extra = take(1)[0]
                    match_length += extra
                    if extra != 255:
                        break
            if offset <= 0 or offset > len(out):
                raise ValueError(f"invalid LZ offset {offset} at output {len(out)}")
            start = len(out) - offset
            for i in range(match_length):  # byte-wise: matches may overlap
                out.append(out[start + i])
        if len(out) != original_size:
            raise ValueError(
                f"LZ decompression produced {len(out)} bytes, expected {original_size}"
            )
        return bytes(out)

    # ------------------------------------------------------------------
    # Statistics for the pipeline timing model
    # ------------------------------------------------------------------

    def stats(self, data: bytes) -> LZStats:
        """Compress and report the counts the cycle model consumes."""
        tokens = self.tokenize(data)
        stream = self.serialize(tokens)
        stats = LZStats(input_bytes=len(data), output_bytes=len(stream))
        for token in tokens:
            stats.token_count += 1
            stats.literal_bytes += len(token.literals)
            if token.match_length:
                stats.match_count += 1
                stats.matched_bytes += token.match_length
                stats.match_lengths.append(token.match_length)
        return stats
