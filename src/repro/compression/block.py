"""Block-level (64 B) compression algorithms.

The paper's Compresso baseline compresses each cache-line-sized memory block
with the smallest output among BDI, BPC, C-Pack, and Zero-Block (Section
V-B5 / Figure 15).  Each algorithm here is a faithful functional
implementation: ``compress`` produces a bitstream whose length is what the
hardware would store, and ``decompress`` restores the exact original bytes.

All algorithms operate on blocks of exactly :data:`~repro.common.units.BLOCK_SIZE`
bytes; the selector handles arbitrary block sequences (pages).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.common.bits import BitReader, BitWriter
from repro.common.units import BLOCK_SIZE


@dataclass(frozen=True)
class CompressedBlock:
    """The result of compressing one 64 B block.

    ``size_bits`` is the hardware storage cost (header + payload); ``payload``
    carries everything needed to reconstruct the block, and ``algorithm``
    names the encoder that produced it so the selector can dispatch
    decompression.
    """

    algorithm: str
    size_bits: int
    payload: bytes

    @property
    def size_bytes(self) -> int:
        """Storage cost rounded up to whole bytes."""
        return (self.size_bits + 7) // 8


class BlockCompressor:
    """Interface shared by all 64 B block compressors."""

    #: Short name used in compressed-block headers and reports.
    name = "abstract"

    def compress(self, block: bytes) -> Optional[CompressedBlock]:
        """Compress ``block``; return ``None`` when this encoder cannot win.

        Returning ``None`` (rather than an expansion) mirrors hardware,
        where each engine raises a "no fit" signal and the selector falls
        back to storing the block raw.
        """
        raise NotImplementedError

    def decompress(self, compressed: CompressedBlock) -> bytes:
        """Restore the original 64 bytes."""
        raise NotImplementedError

    @staticmethod
    def _check_block(block: bytes) -> None:
        if len(block) != BLOCK_SIZE:
            raise ValueError(
                f"block compressors take {BLOCK_SIZE} B blocks, got {len(block)} B"
            )


class ZeroBlockCompressor(BlockCompressor):
    """Detects all-zero blocks; they compress to a 1-bit flag."""

    name = "zero"

    def compress(self, block: bytes) -> Optional[CompressedBlock]:
        self._check_block(block)
        if any(block):
            return None
        return CompressedBlock(self.name, size_bits=1, payload=b"")

    def decompress(self, compressed: CompressedBlock) -> bytes:
        return bytes(BLOCK_SIZE)


class BDICompressor(BlockCompressor):
    """Base-Delta-Immediate compression (Pekhimenko et al., PACT'12).

    Tries each (base size, delta size) pair from the original paper; the
    block is viewed as an array of ``base_size``-byte values, each encoded
    as a signed delta from the first value (the base) or from an implicit
    zero base (the "immediate" part, which captures small values mixed with
    pointers).  The smallest successful layout wins.
    """

    name = "bdi"

    #: (base_bytes, delta_bytes) candidate layouts, per the BDI paper.
    LAYOUTS: Sequence[Tuple[int, int]] = (
        (8, 1), (8, 2), (8, 4),
        (4, 1), (4, 2),
        (2, 1),
    )

    def compress(self, block: bytes) -> Optional[CompressedBlock]:
        self._check_block(block)
        best: Optional[CompressedBlock] = None
        for layout_index, (base_size, delta_size) in enumerate(self.LAYOUTS):
            encoded = self._try_layout(block, layout_index, base_size, delta_size)
            if encoded is not None and (best is None or encoded.size_bits < best.size_bits):
                best = encoded
        return best

    def _try_layout(
        self, block: bytes, layout_index: int, base_size: int, delta_size: int
    ) -> Optional[CompressedBlock]:
        values = [
            int.from_bytes(block[i : i + base_size], "little")
            for i in range(0, BLOCK_SIZE, base_size)
        ]
        base = values[0]
        half = 1 << (delta_size * 8 - 1)
        full = 1 << (delta_size * 8)
        deltas: List[int] = []
        base_mask_bits = 0  # bit per value: 1 = delta from base, 0 = from zero
        for value in values:
            from_base = value - base
            from_zero = value
            if -half <= from_base < half:
                base_mask_bits = (base_mask_bits << 1) | 1
                deltas.append(from_base & (full - 1))
            elif -half <= from_zero < half:
                base_mask_bits = (base_mask_bits << 1) | 0
                deltas.append(from_zero & (full - 1))
            else:
                return None
        writer = BitWriter()
        writer.write(layout_index, 3)
        writer.write(base, base_size * 8)
        writer.write(base_mask_bits, len(values))
        for delta in deltas:
            writer.write(delta, delta_size * 8)
        size_bits = writer.bit_length
        if size_bits >= BLOCK_SIZE * 8:
            return None
        return CompressedBlock(self.name, size_bits, writer.getvalue())

    def decompress(self, compressed: CompressedBlock) -> bytes:
        reader = BitReader(compressed.payload)
        layout_index = reader.read(3)
        base_size, delta_size = self.LAYOUTS[layout_index]
        count = BLOCK_SIZE // base_size
        base = reader.read(base_size * 8)
        base_mask = reader.read(count)
        half = 1 << (delta_size * 8 - 1)
        full = 1 << (delta_size * 8)
        out = bytearray()
        for i in range(count):
            raw = reader.read(delta_size * 8)
            delta = raw - full if raw >= half else raw
            uses_base = (base_mask >> (count - 1 - i)) & 1
            value = (base + delta) if uses_base else delta
            out += (value & ((1 << (base_size * 8)) - 1)).to_bytes(base_size, "little")
        return bytes(out)


class CPackCompressor(BlockCompressor):
    """C-Pack (Chen et al., TVLSI'10): dictionary + pattern coding.

    Processes the block as sixteen 32-bit words against a 16-entry FIFO
    dictionary.  Patterns (code, payload) follow the original paper:

    ==========  =========================================  ============
    pattern     meaning                                    encoded bits
    ==========  =========================================  ============
    ``00``      all-zero word                              2
    ``01``      full dictionary match                      2 + 4
    ``10``      uncompressed word                          2 + 32
    ``1100``    match on upper 3 bytes, low byte literal   4 + 4 + 8
    ``1101``    zero-extended byte (000X)                  4 + 8
    ``1110``    match on upper 2 bytes, 2 low literal      4 + 4 + 16
    ==========  =========================================  ============
    """

    name = "cpack"
    WORD_SIZE = 4
    DICT_ENTRIES = 16

    def compress(self, block: bytes) -> Optional[CompressedBlock]:
        self._check_block(block)
        writer = BitWriter()
        dictionary: List[int] = []
        for offset in range(0, BLOCK_SIZE, self.WORD_SIZE):
            word = int.from_bytes(block[offset : offset + self.WORD_SIZE], "big")
            self._encode_word(writer, dictionary, word)
        size_bits = writer.bit_length
        if size_bits >= BLOCK_SIZE * 8:
            return None
        return CompressedBlock(self.name, size_bits, writer.getvalue())

    def _encode_word(self, writer: BitWriter, dictionary: List[int], word: int) -> None:
        if word == 0:
            writer.write(0b00, 2)
            return
        if word in dictionary:
            writer.write(0b01, 2)
            writer.write(dictionary.index(word), 4)
            return
        if word <= 0xFF:
            writer.write(0b1101, 4)
            writer.write(word, 8)
            self._push(dictionary, word)
            return
        for index, entry in enumerate(dictionary):
            if (entry >> 8) == (word >> 8):
                writer.write(0b1100, 4)
                writer.write(index, 4)
                writer.write(word & 0xFF, 8)
                self._push(dictionary, word)
                return
        for index, entry in enumerate(dictionary):
            if (entry >> 16) == (word >> 16):
                writer.write(0b1110, 4)
                writer.write(index, 4)
                writer.write(word & 0xFFFF, 16)
                self._push(dictionary, word)
                return
        writer.write(0b10, 2)
        writer.write(word, 32)
        self._push(dictionary, word)

    def _push(self, dictionary: List[int], word: int) -> None:
        dictionary.append(word)
        if len(dictionary) > self.DICT_ENTRIES:
            dictionary.pop(0)

    def decompress(self, compressed: CompressedBlock) -> bytes:
        reader = BitReader(compressed.payload)
        dictionary: List[int] = []
        words: List[int] = []
        while len(words) < BLOCK_SIZE // self.WORD_SIZE:
            words.append(self._decode_word(reader, dictionary))
        out = bytearray()
        for word in words:
            out += word.to_bytes(self.WORD_SIZE, "big")
        return bytes(out)

    def _decode_word(self, reader: BitReader, dictionary: List[int]) -> int:
        prefix = reader.read(2)
        if prefix == 0b00:
            return 0
        if prefix == 0b01:
            return dictionary[reader.read(4)]
        if prefix == 0b10:
            word = reader.read(32)
            self._push(dictionary, word)
            return word
        # prefix 0b11: read two more bits to pick the subpattern.
        sub = reader.read(2)
        if sub == 0b00:  # 1100: upper-3-byte match
            entry = dictionary[reader.read(4)]
            word = (entry & ~0xFF) | reader.read(8)
        elif sub == 0b01:  # 1101: zero-extended byte
            word = reader.read(8)
        elif sub == 0b10:  # 1110: upper-2-byte match
            entry = dictionary[reader.read(4)]
            word = (entry & ~0xFFFF) | reader.read(16)
        else:
            raise ValueError(f"invalid C-Pack pattern 11{sub:02b}")
        self._push(dictionary, word)
        return word


class BPCCompressor(BlockCompressor):
    """Bit-Plane Compression (Kim et al., ISCA'16), simplified.

    The block is treated as 16 32-bit words.  BPC delta-transforms
    consecutive words, transposes the 15 deltas into 33 bit-planes (32 data
    planes plus the sign plane), then run-length/pattern-codes each plane.
    This implementation keeps the delta + bit-plane transform and encodes
    each plane with the original paper's zero/ones/single-one patterns; the
    richer DBX patterns are approximated, which costs a little ratio but
    preserves ordering against BDI/C-Pack.
    """

    name = "bpc"
    WORD_SIZE = 4
    WORDS = BLOCK_SIZE // WORD_SIZE  # 16
    PLANES = WORD_SIZE * 8 + 1  # 32 data planes + sign plane
    DELTA_COUNT = WORDS - 1  # 15 deltas

    def compress(self, block: bytes) -> Optional[CompressedBlock]:
        self._check_block(block)
        words = [
            int.from_bytes(block[i : i + self.WORD_SIZE], "big")
            for i in range(0, BLOCK_SIZE, self.WORD_SIZE)
        ]
        planes = self._to_planes(words)
        writer = BitWriter()
        writer.write(words[0], 32)  # base word stored raw
        for plane in planes:
            self._encode_plane(writer, plane)
        size_bits = writer.bit_length
        if size_bits >= BLOCK_SIZE * 8:
            return None
        return CompressedBlock(self.name, size_bits, writer.getvalue())

    def _to_planes(self, words: List[int]) -> List[int]:
        """Delta-transform then transpose into bit-planes.

        Deltas are 33-bit signed values stored sign+magnitude-free as
        two's complement in 33 bits; plane ``p`` collects bit ``p`` of each
        of the 15 deltas (delta 0 in the MSB of the plane).
        """
        deltas = [
            (words[i + 1] - words[i]) & ((1 << 33) - 1) for i in range(self.DELTA_COUNT)
        ]
        planes = []
        for plane_index in range(33):
            plane = 0
            for delta in deltas:
                plane = (plane << 1) | ((delta >> plane_index) & 1)
            planes.append(plane)
        return planes

    def _from_planes(self, base: int, planes: List[int]) -> List[int]:
        deltas = [0] * self.DELTA_COUNT
        for plane_index, plane in enumerate(planes):
            for i in range(self.DELTA_COUNT):
                bit = (plane >> (self.DELTA_COUNT - 1 - i)) & 1
                deltas[i] |= bit << plane_index
        words = [base]
        for delta in deltas:
            if delta >= 1 << 32:
                delta -= 1 << 33
            words.append((words[-1] + delta) & 0xFFFF_FFFF)
        return words

    def _encode_plane(self, writer: BitWriter, plane: int) -> None:
        all_ones = (1 << self.DELTA_COUNT) - 1
        if plane == 0:
            writer.write(0b00, 2)
        elif plane == all_ones:
            writer.write(0b01, 2)
        elif bin(plane).count("1") == 1:
            writer.write(0b10, 2)
            writer.write(plane.bit_length() - 1, 4)
        else:
            writer.write(0b11, 2)
            writer.write(plane, self.DELTA_COUNT)

    def _decode_plane(self, reader: BitReader) -> int:
        pattern = reader.read(2)
        if pattern == 0b00:
            return 0
        if pattern == 0b01:
            return (1 << self.DELTA_COUNT) - 1
        if pattern == 0b10:
            return 1 << reader.read(4)
        return reader.read(self.DELTA_COUNT)

    def decompress(self, compressed: CompressedBlock) -> bytes:
        reader = BitReader(compressed.payload)
        base = reader.read(32)
        planes = [self._decode_plane(reader) for _ in range(33)]
        words = self._from_planes(base, planes)
        out = bytearray()
        for word in words:
            out += word.to_bytes(self.WORD_SIZE, "big")
        return bytes(out)


class SelectiveBlockCompressor:
    """Picks the smallest output among all block algorithms per block.

    This is the paper's "block-level compression: smallest of BDI, BPC,
    CPACK, and Zero Block" (Figure 15) and the compressor we give the
    Compresso baseline.  A 3-bit header selects the algorithm (or raw).
    """

    HEADER_BITS = 3

    def __init__(self) -> None:
        self._compressors: List[BlockCompressor] = [
            ZeroBlockCompressor(),
            BDICompressor(),
            BPCCompressor(),
            CPackCompressor(),
        ]
        self._by_name = {c.name: c for c in self._compressors}

    def compress(self, block: bytes) -> CompressedBlock:
        """Compress one block; falls back to raw storage when nothing fits."""
        best: Optional[CompressedBlock] = None
        for compressor in self._compressors:
            candidate = compressor.compress(block)
            if candidate is not None and (best is None or candidate.size_bits < best.size_bits):
                best = candidate
        if best is None:
            return CompressedBlock(
                "raw", self.HEADER_BITS + BLOCK_SIZE * 8, bytes(block)
            )
        return CompressedBlock(
            best.algorithm, best.size_bits + self.HEADER_BITS, best.payload
        )

    def decompress(self, compressed: CompressedBlock) -> bytes:
        if compressed.algorithm == "raw":
            return compressed.payload
        inner = CompressedBlock(
            compressed.algorithm,
            compressed.size_bits - self.HEADER_BITS,
            compressed.payload,
        )
        return self._by_name[compressed.algorithm].decompress(inner)

    def compress_page(self, page: bytes) -> List[CompressedBlock]:
        """Compress a page block by block (Compresso's unit of work)."""
        if len(page) % BLOCK_SIZE:
            raise ValueError(f"page size {len(page)} is not a multiple of {BLOCK_SIZE}")
        return [
            self.compress(page[i : i + BLOCK_SIZE])
            for i in range(0, len(page), BLOCK_SIZE)
        ]

    def compressed_page_size(self, page: bytes) -> int:
        """Total compressed bytes of a page under block-level compression."""
        return sum(block.size_bytes for block in self.compress_page(page))

    def page_ratio(self, page: bytes) -> float:
        """Compression ratio (original / compressed) for one page."""
        return len(page) / max(1, self.compressed_page_size(page))
