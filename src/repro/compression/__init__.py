"""Compression substrate.

Two families of compressors back the paper's two memory levels:

- :mod:`repro.compression.block` -- 64 B block-level algorithms (BDI, BPC,
  C-Pack, zero-block) and the best-of selector that Compresso uses and that
  Figure 15 reports as "block-level compression".
- :mod:`repro.compression.lz`, :mod:`repro.compression.huffman`, and
  :mod:`repro.compression.deflate` -- the memory-specialized ASIC Deflate
  (TMCC's ML2 compressor), its IBM general-purpose reference model, the
  pipeline cycle model behind Table II, and the area/power model behind
  Table I.
"""

from repro.compression.block import (
    BDICompressor,
    BPCCompressor,
    BlockCompressor,
    CPackCompressor,
    CompressedBlock,
    SelectiveBlockCompressor,
    ZeroBlockCompressor,
)
from repro.compression.lz import LZCompressor, LZConfig, LZToken
from repro.compression.huffman import (
    FullHuffmanCodec,
    ReducedHuffmanCodec,
    ReducedTreeConfig,
)
from repro.compression.deflate import (
    DeflateCodec,
    DeflateConfig,
    DeflateTimingModel,
    IBMDeflateModel,
    AsicAreaModel,
)
from repro.compression.explore import (
    DesignPoint,
    DesignSpaceExplorer,
    paper_design_point,
    pareto_frontier,
)

__all__ = [
    "BDICompressor",
    "BPCCompressor",
    "BlockCompressor",
    "CPackCompressor",
    "CompressedBlock",
    "SelectiveBlockCompressor",
    "ZeroBlockCompressor",
    "LZCompressor",
    "LZConfig",
    "LZToken",
    "FullHuffmanCodec",
    "ReducedHuffmanCodec",
    "ReducedTreeConfig",
    "DeflateCodec",
    "DeflateConfig",
    "DeflateTimingModel",
    "IBMDeflateModel",
    "AsicAreaModel",
    "DesignPoint",
    "DesignSpaceExplorer",
    "paper_design_point",
    "pareto_frontier",
]
