"""Huffman stage of the memory-specialized Deflate.

Section V-B1 of the paper replaces RFC 1951's canonical trees with a
*reduced* tree: 15 hottest byte values plus one escape code; bytes outside
the tree are emitted as ``escape code + raw 8 bits``; and the tree itself is
stored **uncompressed** so the decompressor can load it in 16 cycles instead
of the >500 ns canonical-tree reconstruction of IBM's design.

:class:`ReducedHuffmanCodec` implements exactly that.  :class:`FullHuffmanCodec`
implements a conventional 256-symbol canonical Huffman coder with the
128-byte length table RFC 1951-style designs pay for -- it exists so the
ablation benches can show why the reduced tree wins on 4 KB pages.
"""

from __future__ import annotations

import heapq
from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.common.bits import BitReader, BitWriter

#: Sentinel symbol value for the escape code (real bytes are 0-255).
ESCAPE = 256


@dataclass(frozen=True)
class ReducedTreeConfig:
    """Knobs of the reduced tree, mirroring the HDL parameters.

    ``tree_size`` counts total leaves including the escape (the paper's
    design point is 16: 15 characters + escape).  ``depth_threshold`` is the
    maximum code length; Build Reduced Tree discards the less-frequent
    sibling of any pair that would exceed it.

    ``frequency_sample_fraction`` enables IBM's "1.1 Pass" approximate
    frequency counting (Section V-B3): the hottest characters are selected
    by analyzing only a leading fraction of the input instead of all of
    it, letting Huffman start earlier at the cost of compression ratio.
    The released HDL keeps it as a tunable but disables it by default
    because a 4 KB page's prefix represents the page poorly; 1.0 means
    exact counting.
    """

    tree_size: int = 16
    depth_threshold: int = 8
    frequency_sample_fraction: float = 1.0

    def __post_init__(self) -> None:
        if not 2 <= self.tree_size <= 256:
            raise ValueError(f"tree_size must be in [2, 256], got {self.tree_size}")
        if self.depth_threshold < 1 or self.depth_threshold > 15:
            raise ValueError(
                f"depth_threshold must be in [1, 15], got {self.depth_threshold}"
            )
        if self.tree_size > (1 << self.depth_threshold):
            raise ValueError(
                f"{self.tree_size} leaves cannot fit in depth {self.depth_threshold}"
            )
        if not 0.0 < self.frequency_sample_fraction <= 1.0:
            raise ValueError(
                "frequency_sample_fraction must be in (0, 1], got "
                f"{self.frequency_sample_fraction}"
            )


def _huffman_code_lengths(frequencies: Dict[int, int]) -> Dict[int, int]:
    """Standard Huffman construction; returns symbol -> code length.

    Ties break on symbol value so results are deterministic.
    """
    if not frequencies:
        return {}
    if len(frequencies) == 1:
        return {next(iter(frequencies)): 1}
    heap: List[Tuple[int, int, List[int]]] = [
        (freq, symbol, [symbol]) for symbol, freq in frequencies.items()
    ]
    heapq.heapify(heap)
    lengths = {symbol: 0 for symbol in frequencies}
    while len(heap) > 1:
        freq_a, tie_a, symbols_a = heapq.heappop(heap)
        freq_b, tie_b, symbols_b = heapq.heappop(heap)
        for symbol in symbols_a + symbols_b:
            lengths[symbol] += 1
        heapq.heappush(
            heap, (freq_a + freq_b, min(tie_a, tie_b), symbols_a + symbols_b)
        )
    return lengths


def _canonical_codes(lengths: Dict[int, int]) -> Dict[int, Tuple[int, int]]:
    """Assign canonical codes: symbol -> (code value, length).

    Symbols are ordered by (length, symbol); the escape sentinel sorts last
    among equal lengths because its value is 256.
    """
    ordered = sorted(lengths.items(), key=lambda item: (item[1], item[0]))
    codes: Dict[int, Tuple[int, int]] = {}
    code = 0
    previous_length = 0
    for symbol, length in ordered:
        code <<= length - previous_length
        codes[symbol] = (code, length)
        code += 1
        previous_length = length
    return codes


class ReducedHuffmanCodec:
    """The paper's 16-leaf Huffman with escape coding and a plain-text tree.

    Blob layout (bit-exact, MSB-first):

    ======  ==========================================================
    bits    field
    ======  ==========================================================
    16      number of source bytes encoded
    8       number of real (non-escape) leaves, ``N`` (0 .. tree_size-1)
    4       escape code length (0 when input is empty)
    N x 12  per leaf: 8-bit symbol + 4-bit code length
    ...     payload codes
    ======  ==========================================================
    """

    def __init__(self, config: ReducedTreeConfig = ReducedTreeConfig()) -> None:
        self.config = config

    # ------------------------------------------------------------------
    # Tree construction
    # ------------------------------------------------------------------

    def build_lengths(self, data: bytes) -> Dict[int, int]:
        """Select the hottest characters and return code lengths.

        Implements Build Reduced Tree: the ``tree_size - 1`` most frequent
        bytes get leaves, everything else is charged to the escape leaf.
        When the resulting tree exceeds ``depth_threshold``, the
        least-frequent non-escape leaf is discarded (its bytes go through
        the escape path) and the tree is rebuilt -- the software equivalent
        of "discard the less-frequent sibling and promote the other", and
        like the hardware it never discards the escape code.
        """
        if not data:
            return {}
        counts = Counter(data)
        # 1.1 Pass: select the hottest characters from a leading sample
        # only (code lengths still come from true counts so the encode
        # remains optimal *given* the possibly-poor leaf selection).
        sample_length = max(1, int(len(data) * self.config.frequency_sample_fraction))
        selection_counts = (
            counts if sample_length >= len(data) else Counter(data[:sample_length])
        )
        hottest = [
            symbol
            for symbol, _ in sorted(
                selection_counts.items(), key=lambda item: (-item[1], item[0])
            )[: self.config.tree_size - 1]
        ]
        while True:
            in_tree = set(hottest)
            escaped = sum(count for symbol, count in counts.items() if symbol not in in_tree)
            frequencies: Dict[int, int] = {symbol: counts[symbol] for symbol in hottest}
            frequencies[ESCAPE] = max(1, escaped)
            lengths = _huffman_code_lengths(frequencies)
            if max(lengths.values()) <= self.config.depth_threshold:
                return lengths
            victim = min(
                (symbol for symbol in hottest),
                key=lambda symbol: (counts[symbol], -symbol),
            )
            hottest.remove(victim)

    # ------------------------------------------------------------------
    # Encode / decode
    # ------------------------------------------------------------------

    def encode(self, data: bytes) -> bytes:
        if len(data) >= 1 << 16:
            raise ValueError("reduced Huffman encodes at most 64 KiB - 1 per blob")
        writer = BitWriter()
        writer.write(len(data), 16)
        lengths = self.build_lengths(data)
        if not lengths:
            writer.write(0, 8)
            writer.write(0, 4)
            return writer.getvalue()
        codes = _canonical_codes(lengths)
        real_leaves = sorted(s for s in lengths if s != ESCAPE)
        writer.write(len(real_leaves), 8)
        writer.write(lengths[ESCAPE], 4)
        for symbol in real_leaves:
            writer.write(symbol, 8)
            writer.write(lengths[symbol], 4)
        escape_code, escape_length = codes[ESCAPE]
        for byte in data:
            if byte in codes:
                code, length = codes[byte]
                writer.write(code, length)
            else:
                writer.write(escape_code, escape_length)
                writer.write(byte, 8)
        return writer.getvalue()

    def decode(self, blob: bytes) -> bytes:
        reader = BitReader(blob)
        count = reader.read(16)
        leaf_count = reader.read(8)
        escape_length = reader.read(4)
        if count == 0:
            return b""
        lengths: Dict[int, int] = {}
        for _ in range(leaf_count):
            symbol = reader.read(8)
            lengths[symbol] = reader.read(4)
        if escape_length:
            lengths[ESCAPE] = escape_length
        codes = _canonical_codes(lengths)
        by_code: Dict[Tuple[int, int], int] = {
            (length, code): symbol for symbol, (code, length) in codes.items()
        }
        max_length = max(length for _, length in codes.values())
        out = bytearray()
        while len(out) < count:
            value = 0
            length = 0
            while True:
                value = (value << 1) | reader.read(1)
                length += 1
                symbol = by_code.get((length, value))
                if symbol is not None:
                    break
                if length > max_length:
                    raise ValueError("corrupt reduced-Huffman stream")
            if symbol == ESCAPE:
                out.append(reader.read(8))
            else:
                out.append(symbol)
        return bytes(out)

    def encoded_size_bits(self, data: bytes) -> int:
        """Size of :meth:`encode` output in bits (without byte padding)."""
        if not data:
            return 28
        lengths = self.build_lengths(data)
        codes = _canonical_codes(lengths)
        escape_length = lengths[ESCAPE]
        header = 16 + 12 + 12 * (len(lengths) - 1)
        payload = 0
        for byte in data:
            if byte in codes:
                payload += codes[byte][1]
            else:
                payload += escape_length + 8
        return header + payload


class FullHuffmanCodec:
    """Conventional canonical Huffman over the full 256-symbol alphabet.

    Stores the RFC 1951-style cost: a 4-bit code length for all 256
    symbols (128 bytes of tree) ahead of the payload.  Used by ablations to
    quantify the reduced tree's latency/size advantage on 4 KB inputs.
    """

    MAX_DEPTH = 15

    def encode(self, data: bytes) -> bytes:
        if len(data) >= 1 << 16:
            raise ValueError("full Huffman encodes at most 64 KiB - 1 per blob")
        writer = BitWriter()
        writer.write(len(data), 16)
        if not data:
            return writer.getvalue()
        lengths = self._limited_lengths(Counter(data))
        for symbol in range(256):
            writer.write(lengths.get(symbol, 0), 4)
        codes = _canonical_codes(lengths)
        for byte in data:
            code, length = codes[byte]
            writer.write(code, length)
        return writer.getvalue()

    def _limited_lengths(self, counts: Counter) -> Dict[int, int]:
        frequencies = dict(counts)
        while True:
            lengths = _huffman_code_lengths(frequencies)
            if max(lengths.values()) <= self.MAX_DEPTH:
                return lengths
            # Flatten the distribution until the tree fits (heuristic
            # stand-in for package-merge; identical output length class).
            frequencies = {
                symbol: (freq + 1) // 2 for symbol, freq in frequencies.items()
            }

    def decode(self, blob: bytes) -> bytes:
        reader = BitReader(blob)
        count = reader.read(16)
        if count == 0:
            return b""
        lengths = {}
        for symbol in range(256):
            length = reader.read(4)
            if length:
                lengths[symbol] = length
        codes = _canonical_codes(lengths)
        by_code = {(length, code): symbol for symbol, (code, length) in codes.items()}
        max_length = max(length for _, length in codes.values())
        out = bytearray()
        while len(out) < count:
            value = 0
            length = 0
            while True:
                value = (value << 1) | reader.read(1)
                length += 1
                symbol = by_code.get((length, value))
                if symbol is not None:
                    break
                if length > max_length:
                    raise ValueError("corrupt full-Huffman stream")
            out.append(symbol)
        return bytes(out)

    def tree_bits(self) -> int:
        """Bits spent on the serialized tree (constant for this codec)."""
        return 256 * 4
