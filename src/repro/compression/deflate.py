"""Memory-specialized ASIC Deflate (Section V-B).

Three cooperating pieces:

- :class:`DeflateCodec` -- the functional compressor/decompressor:
  LZ (1 KB CAM) followed by the reduced 16-code Huffman, with the paper's
  *dynamic Huffman skip* (store the LZ stream raw whenever Huffman would
  expand it).  Round-trips bit-exactly, which is the property the paper's
  RTL functional verification checks on 50M pages.
- :class:`DeflateTimingModel` -- a per-page cycle model of the pipeline in
  Figure 14 (LZ stages, Frequency Count, Select 15, Accumulate/Replay,
  Build/Write/Read Reduced Tree, Huffman encode/decode, LZ decode).  Rates
  come from the paper's stated per-cycle widths; stall factors are
  calibrated so a typical 3.4x-compressible page reproduces Table II.
- :class:`IBMDeflateModel` -- the analytic model of IBM's general-purpose
  ASIC (setup time T0 + streaming rate) that the paper compares against,
  and :class:`AsicAreaModel` -- Table I's area/power, with the CAM-size
  scaling measured in Section V-B2.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.units import KIB, PAGE_SIZE
from repro.compression.huffman import ReducedHuffmanCodec, ReducedTreeConfig
from repro.compression.lz import LZCompressor, LZConfig, LZStats


@dataclass(frozen=True)
class DeflateConfig:
    """End-to-end configuration of the memory-specialized Deflate."""

    lz: LZConfig = field(default_factory=LZConfig)
    huffman: ReducedTreeConfig = field(default_factory=ReducedTreeConfig)
    #: Dynamic Huffman skip (Section V-B1): store the LZ stream unencoded
    #: when the reduced Huffman would expand it.  On by default; the paper
    #: measures +5% geomean ratio from it.
    dynamic_huffman_skip: bool = True


#: Compressed-page storage modes (the 2-bit header a real design would keep
#: in the CTE; we spend a byte for clarity).
MODE_RAW = 0
MODE_LZ_ONLY = 1
MODE_LZ_HUFFMAN = 2


@dataclass(frozen=True)
class CompressedPage:
    """One compressed 4 KB page plus the stats the timing model needs."""

    mode: int
    original_size: int
    payload: bytes
    lz_stats: LZStats

    @property
    def size_bytes(self) -> int:
        """Storage cost: 3-byte header (mode + 16-bit size) + payload."""
        return 3 + len(self.payload)

    @property
    def ratio(self) -> float:
        return self.original_size / self.size_bytes


class DeflateCodec:
    """Functional LZ + reduced-Huffman page compressor."""

    def __init__(self, config: DeflateConfig = DeflateConfig()) -> None:
        self.config = config
        self._lz = LZCompressor(config.lz)
        self._huffman = ReducedHuffmanCodec(config.huffman)

    def compress(self, page: bytes) -> CompressedPage:
        if not page:
            raise ValueError("cannot compress an empty page")
        if len(page) >= 1 << 16:
            raise ValueError("deflate pages are at most 64 KiB - 1")
        tokens = self._lz.tokenize(page)
        lz_stream = self._lz.serialize(tokens)
        lz_stats = self._stats_from(page, lz_stream, tokens)
        huffman_blob = self._huffman.encode(lz_stream)
        use_huffman = not (
            self.config.dynamic_huffman_skip and len(huffman_blob) >= len(lz_stream)
        )
        if use_huffman and len(huffman_blob) < len(page):
            return CompressedPage(MODE_LZ_HUFFMAN, len(page), huffman_blob, lz_stats)
        if len(lz_stream) < len(page):
            return CompressedPage(MODE_LZ_ONLY, len(page), lz_stream, lz_stats)
        return CompressedPage(MODE_RAW, len(page), bytes(page), lz_stats)

    def decompress(self, compressed: CompressedPage) -> bytes:
        if compressed.mode == MODE_RAW:
            return compressed.payload
        if compressed.mode == MODE_LZ_ONLY:
            return self._lz.decompress(compressed.payload, compressed.original_size)
        if compressed.mode == MODE_LZ_HUFFMAN:
            lz_stream = self._huffman.decode(compressed.payload)
            return self._lz.decompress(lz_stream, compressed.original_size)
        raise ValueError(f"unknown compressed-page mode {compressed.mode}")

    def compressed_size(self, page: bytes) -> int:
        """Storage cost in bytes of compressing ``page``."""
        return self.compress(page).size_bytes

    def ratio(self, page: bytes) -> float:
        """Compression ratio (original / compressed) of one page."""
        return self.compress(page).ratio

    @staticmethod
    def _stats_from(page: bytes, lz_stream: bytes, tokens) -> LZStats:
        stats = LZStats(input_bytes=len(page), output_bytes=len(lz_stream))
        for token in tokens:
            stats.token_count += 1
            stats.literal_bytes += len(token.literals)
            if token.match_length:
                stats.match_count += 1
                stats.matched_bytes += token.match_length
                stats.match_lengths.append(token.match_length)
        return stats


@dataclass(frozen=True)
class DeflateTimingModel:
    """Cycle model of the Figure 14 pipeline.

    Width parameters quote the paper directly (8 chars/cycle into LZ,
    <=32 bits/cycle out of Huffman Encode, 16-cycle tree read/write,
    up-to-32-cycle tree build, 8 B/cycle LZ Decompress).  The two stall
    factors absorb pipeline hazards the paper describes qualitatively; the
    defaults are calibrated so a typical 3.4x page lands on Table II.
    """

    clock_ghz: float = 2.5
    lz_chars_per_cycle: int = 8
    lz_compress_stall: float = 1.16
    replay_bytes_per_cycle: int = 8
    build_tree_cycles: int = 32
    write_tree_cycles: int = 16
    read_tree_cycles: int = 16
    huffman_encode_bits_per_cycle: float = 16.0
    huffman_decode_codes_per_cycle: int = 8
    huffman_decode_bits_per_cycle: int = 32
    lz_decode_bytes_per_cycle: int = 8
    lz_decode_stall: float = 1.30
    pipeline_fill_cycles: int = 12

    # ------------------------------------------------------------------
    # Per-page latencies
    # ------------------------------------------------------------------

    def _cycles_to_ns(self, cycles: float) -> float:
        return cycles / self.clock_ghz

    def compress_cycles(self, page: CompressedPage) -> float:
        """Cycles from first input byte to last output bit of one page."""
        stats = page.lz_stats
        lz_phase = (
            math.ceil(stats.input_bytes / self.lz_chars_per_cycle)
            * self.lz_compress_stall
        )
        if page.mode == MODE_RAW:
            return lz_phase + self.pipeline_fill_cycles
        replay = math.ceil(stats.output_bytes / self.replay_bytes_per_cycle)
        if page.mode == MODE_LZ_ONLY:
            # Huffman skipped: LZ output replays straight to the output port.
            return lz_phase + replay + self.pipeline_fill_cycles
        payload_bits = len(page.payload) * 8
        huffman_phase = (
            replay
            + self.build_tree_cycles
            + self.write_tree_cycles
            + payload_bits / self.huffman_encode_bits_per_cycle
        )
        return lz_phase + huffman_phase + self.pipeline_fill_cycles

    def compress_latency_ns(self, page: CompressedPage) -> float:
        return self._cycles_to_ns(self.compress_cycles(page))

    def decompress_cycles(self, page: CompressedPage, bytes_needed: Optional[int] = None) -> float:
        """Cycles until ``bytes_needed`` of plaintext are available.

        ``bytes_needed`` defaults to the full page; Table II's "half-page
        latency" (the average cost of reaching the block an L3 miss wants)
        is this model at ``original_size / 2``.
        """
        if bytes_needed is None:
            bytes_needed = page.original_size
        bytes_needed = min(bytes_needed, page.original_size)
        fraction = bytes_needed / page.original_size
        if page.mode == MODE_RAW:
            return self.pipeline_fill_cycles + math.ceil(
                bytes_needed / self.lz_decode_bytes_per_cycle
            )
        stats = page.lz_stats
        lz_decode = (
            math.ceil(bytes_needed / self.lz_decode_bytes_per_cycle)
            * self.lz_decode_stall
        )
        if page.mode == MODE_LZ_ONLY:
            return self.pipeline_fill_cycles + lz_decode
        # Huffman decode runs pipelined ahead of LZ Decompress; the slower
        # of the two governs progress toward the needed byte.
        codes = stats.output_bytes * fraction
        bits = len(page.payload) * 8 * fraction
        huffman_decode = max(
            codes / self.huffman_decode_codes_per_cycle,
            bits / self.huffman_decode_bits_per_cycle,
        )
        return (
            self.read_tree_cycles
            + self.pipeline_fill_cycles
            + max(lz_decode, huffman_decode)
        )

    def decompress_latency_ns(
        self, page: CompressedPage, bytes_needed: Optional[int] = None
    ) -> float:
        return self._cycles_to_ns(self.decompress_cycles(page, bytes_needed))

    # ------------------------------------------------------------------
    # Throughput (pages pipelined back to back, Section V-B3)
    # ------------------------------------------------------------------

    def compress_throughput_gbps(self, page: CompressedPage) -> float:
        """Steady-state GB/s with LZ and Huffman on independent pages.

        The bottleneck stage is whichever phase is longer, because LZ works
        on page N+1 while the Huffman modules drain page N.
        """
        stats = page.lz_stats
        lz_phase = (
            math.ceil(stats.input_bytes / self.lz_chars_per_cycle)
            * self.lz_compress_stall
        )
        if page.mode == MODE_LZ_HUFFMAN:
            replay = math.ceil(stats.output_bytes / self.replay_bytes_per_cycle)
            huffman_phase = (
                replay
                + self.build_tree_cycles
                + self.write_tree_cycles
                + len(page.payload) * 8 / self.huffman_encode_bits_per_cycle
            )
        else:
            huffman_phase = math.ceil(stats.output_bytes / self.replay_bytes_per_cycle)
        bottleneck = max(lz_phase, huffman_phase)
        return stats.input_bytes / self._cycles_to_ns(bottleneck)

    def decompress_throughput_gbps(self, page: CompressedPage) -> float:
        cycles = self.decompress_cycles(page) - self.read_tree_cycles
        return page.original_size / self._cycles_to_ns(max(1.0, cycles))


@dataclass(frozen=True)
class IBMDeflateModel:
    """Analytic model of IBM's Power9/z15 ASIC Deflate ([11], Table II).

    Per-request time is ``T0 + size / stream_rate``; T0 (650-780 ns) is the
    canonical-Huffman-tree setup the paper identifies as the killer for
    4 KB pages.  Parameters reproduce Table II's IBM rows exactly.
    """

    decompress_setup_ns: float = 655.0
    decompress_stream_gbps: float = 9.2
    compress_setup_ns: float = 650.0
    compress_stream_gbps: float = 10.2

    def decompress_latency_ns(self, size_bytes: int = PAGE_SIZE,
                              bytes_needed: Optional[int] = None) -> float:
        needed = size_bytes if bytes_needed is None else min(bytes_needed, size_bytes)
        return self.decompress_setup_ns + needed / self.decompress_stream_gbps

    def compress_latency_ns(self, size_bytes: int = PAGE_SIZE) -> float:
        return self.compress_setup_ns + size_bytes / self.compress_stream_gbps

    def decompress_throughput_gbps(self, size_bytes: int = PAGE_SIZE) -> float:
        return size_bytes / self.decompress_latency_ns(size_bytes)

    def compress_throughput_gbps(self, size_bytes: int = PAGE_SIZE) -> float:
        return size_bytes / self.compress_latency_ns(size_bytes)


@dataclass(frozen=True)
class AsicAreaModel:
    """Area/power model anchored to Table I (7 nm ASAP, 0.7 V, 2.5 GHz).

    LZ area is CAM-dominated and scales linearly with CAM size (the paper
    measures 0.24 mm^2 at 4 KB vs 0.060 mm^2 at 1 KB for the compressor).
    Huffman area scales with tree size relative to the 16-leaf design point.
    """

    lz_compressor_mm2_per_kib: float = 0.060
    lz_decompressor_mm2_per_kib: float = 0.022
    huffman_compressor_mm2: float = 0.034
    huffman_decompressor_mm2: float = 0.014
    lz_compressor_mw_per_kib: float = 160.0
    lz_decompressor_mw_per_kib: float = 100.0
    huffman_compressor_mw: float = 160.0
    huffman_decompressor_mw: float = 27.0

    def module_areas_mm2(self, cam_size: int = KIB, tree_size: int = 16) -> Dict[str, float]:
        cam_kib = cam_size / KIB
        tree_scale = tree_size / 16
        return {
            "lz_decompressor": self.lz_decompressor_mm2_per_kib * cam_kib,
            "lz_compressor": self.lz_compressor_mm2_per_kib * cam_kib,
            "huffman_decompressor": self.huffman_decompressor_mm2 * tree_scale,
            "huffman_compressor": self.huffman_compressor_mm2 * tree_scale,
        }

    def module_powers_mw(self, cam_size: int = KIB, tree_size: int = 16) -> Dict[str, float]:
        cam_kib = cam_size / KIB
        tree_scale = tree_size / 16
        return {
            "lz_decompressor": self.lz_decompressor_mw_per_kib * cam_kib,
            "lz_compressor": self.lz_compressor_mw_per_kib * cam_kib,
            "huffman_decompressor": self.huffman_decompressor_mw * tree_scale,
            "huffman_compressor": self.huffman_compressor_mw * tree_scale,
        }

    def total_area_mm2(self, cam_size: int = KIB, tree_size: int = 16) -> float:
        return sum(self.module_areas_mm2(cam_size, tree_size).values())

    def total_power_mw(self, cam_size: int = KIB, tree_size: int = 16) -> float:
        return sum(self.module_powers_mw(cam_size, tree_size).values())


def corpus_ratio(codec: DeflateCodec, pages: List[bytes]) -> float:
    """Whole-corpus compression ratio (total original / total compressed).

    This mirrors how the paper computes per-dump compression ratios after
    discarding all-zero pages (the caller is responsible for the discard).
    """
    original = sum(len(p) for p in pages)
    compressed = sum(codec.compressed_size(p) for p in pages)
    return original / max(1, compressed)
