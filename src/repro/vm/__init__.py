"""Virtual-memory substrate: x86-64-style paging structures.

- :mod:`repro.vm.pte` -- PTE bit layout (24 status bits + 40-bit PPN).
- :mod:`repro.vm.pagetable` -- 4-level radix page table, the populator that
  fills it the way an OS would, and the Figure 6 PTB statistics.
- :mod:`repro.vm.ptbcodec` -- the hardware compressed-PTB encoding of
  Figure 7, including embedded-CTE slots (Section V-A5).
- :mod:`repro.vm.tlb` -- TLB and page-walk caches.
- :mod:`repro.vm.walker` -- the page walker that turns a TLB miss into the
  sequence of PTB fetches the memory hierarchy must serve.
"""

from repro.vm.pte import (
    PTE_PRESENT,
    PTE_WRITABLE,
    PTE_ACCESSED,
    PTE_DIRTY,
    PTE_NX,
    make_pte,
    pte_ppn,
    pte_status,
    pte_present,
)
from repro.vm.pagetable import (
    PageTable,
    PageTablePopulator,
    FrameAllocator,
    PTBStatusStats,
    ptb_status_stats,
)
from repro.vm.ptbcodec import PTBCodec, CompressedPTB
from repro.vm.tlb import TLB, PageWalkCache
from repro.vm.walker import PageWalker, WalkResult

__all__ = [
    "PTE_PRESENT",
    "PTE_WRITABLE",
    "PTE_ACCESSED",
    "PTE_DIRTY",
    "PTE_NX",
    "make_pte",
    "pte_ppn",
    "pte_status",
    "pte_present",
    "PageTable",
    "PageTablePopulator",
    "FrameAllocator",
    "PTBStatusStats",
    "ptb_status_stats",
    "PTBCodec",
    "CompressedPTB",
    "TLB",
    "PageWalkCache",
    "PageWalker",
    "WalkResult",
]
