"""2D (nested) page walks for virtual machines (Figure 12b).

Under virtualization a guest virtual address takes a two-dimensional walk:
each guest page-table access is itself a *guest-physical* address that the
host page table must translate, so a cold 4-level guest walk costs up to
``5 x 4 + 4 = 24`` memory accesses (four host walks for the guest PTBs,
one for the final data, plus the guest PTBs themselves).

TMCC's observation: every one of those host walks uses ordinary host PTBs,
so embedded CTEs accelerate each of them exactly like a native walk -- the
controller's :meth:`note_ptb_fetch` is called for every host PTB here too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.common.stats import Counter
from repro.common.units import PAGE_SIZE
from repro.vm.pagetable import PageTable
from repro.vm.tlb import PageWalkCache
from repro.vm.walker import PageWalker

#: Tags distinguishing who issued each PTB fetch of a 2D walk.
HOST_FETCH = "host"
GUEST_FETCH = "guest"


@dataclass(frozen=True)
class NestedWalkResult:
    """Outcome of one 2D walk.

    ``fetches`` lists every memory access in order: ``(kind, level,
    host-physical address)`` where kind is ``"host"`` for host PTB fetches
    (TMCC harvests CTEs from these) and ``"guest"`` for guest PTB fetches
    (which live in host frames and also carry host CTE translations).
    ``host_ppn`` is the final translation of the guest virtual page.
    """

    fetches: Tuple[Tuple[str, int, int], ...]
    guest_ppn: int
    host_ppn: int


class NestedPageWalker:
    """Walks a guest :class:`PageTable` through a host :class:`PageTable`.

    The host side reuses :class:`PageWalker` (including its page-walk
    cache); a small "nested TLB" of guest-physical -> host-physical
    translations models the gPA caches real MMUs keep, bounding the
    explosion of host walks for hot guest table pages.
    """

    def __init__(self, guest_table: PageTable, host_table: PageTable,
                 host_pwc: Optional[PageWalkCache] = None) -> None:
        self.guest_table = guest_table
        self.host_table = host_table
        self.host_walker = PageWalker(host_table, host_pwc)
        self.walks = Counter("nested_walks")
        self.total_fetches = Counter("nested_fetches")

    def _host_translate(self, gpa: int,
                        fetches: List[Tuple[str, int, int]]) -> int:
        """Translate a guest-physical address via a host walk."""
        result = self.host_walker.walk(gpa >> 12)
        for level, address in result.fetches:
            fetches.append((HOST_FETCH, level, address))
        return result.ppn * PAGE_SIZE + (gpa & (PAGE_SIZE - 1))

    def walk(self, guest_vpn: int) -> NestedWalkResult:
        """Perform the full 2D walk for one guest virtual page."""
        self.walks.increment()
        fetches: List[Tuple[str, int, int]] = []
        guest_path = self.guest_table.walk_path(guest_vpn)
        for level, guest_ptb_gpa, _pte in guest_path:
            host_address = self._host_translate(guest_ptb_gpa, fetches)
            fetches.append((GUEST_FETCH, level, host_address))
        guest_ppn = self.guest_table.translate(guest_vpn)
        if guest_ppn is None:
            raise KeyError(f"guest vpn {guest_vpn:#x} not mapped")
        data_host_address = self._host_translate(guest_ppn * PAGE_SIZE, fetches)
        self.total_fetches.increment(len(fetches))
        return NestedWalkResult(
            fetches=tuple(fetches),
            guest_ppn=guest_ppn,
            host_ppn=data_host_address // PAGE_SIZE,
        )

    @property
    def host_ptb_fetch_count(self) -> int:
        return self.host_walker.ptb_fetches.value
