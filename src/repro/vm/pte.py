"""Page-table entry bit layout.

Per the paper (Section V-A1) and the Intel SDM figure it cites, each 8 B PTE
carries a 40-bit physical page number (bits 12..51) plus 24 status bits: the
low 12 (present, writable, user, PWT, PCD, accessed, dirty, PAT, global,
3 ignored) and the high 12 (11 ignored/software + NX).  The compressed-PTB
observation (Figure 6) is that adjacent PTEs almost always share all 24.
"""

from __future__ import annotations

from repro.common.bits import insert_bits, mask

# Low status bits (bit positions in the PTE).
PTE_PRESENT = 1 << 0
PTE_WRITABLE = 1 << 1
PTE_USER = 1 << 2
PTE_PWT = 1 << 3
PTE_PCD = 1 << 4
PTE_ACCESSED = 1 << 5
PTE_DIRTY = 1 << 6
PTE_PAT = 1 << 7
PTE_GLOBAL = 1 << 8

#: NX lives in bit 63; in our 24-bit "status" view it is the top bit.
PTE_NX = 1 << 63

#: Bit positions of the PPN field.
PPN_LOW = 12
PPN_BITS = 40

#: Common status for ordinary present+writable+accessed data pages.
STATUS_DEFAULT_DATA = PTE_PRESENT | PTE_WRITABLE | PTE_USER | PTE_ACCESSED
#: Common status for read-only text pages.
STATUS_READONLY = PTE_PRESENT | PTE_USER | PTE_ACCESSED


def make_pte(ppn: int, status_low: int = STATUS_DEFAULT_DATA, status_high: int = 0) -> int:
    """Assemble a PTE from a PPN and the 12 low / 12 high status bits."""
    if ppn >> PPN_BITS:
        raise ValueError(f"PPN {ppn:#x} does not fit in {PPN_BITS} bits")
    if status_low >> 12:
        raise ValueError(f"low status {status_low:#x} does not fit in 12 bits")
    if status_high >> 12:
        raise ValueError(f"high status {status_high:#x} does not fit in 12 bits")
    return status_low | (ppn << PPN_LOW) | (status_high << 52)


#: Precomputed field mask: ``mask(PPN_BITS)`` — the PPN extraction below is
#: on the simulator's per-walk hot path, so it avoids the generic helpers.
_PPN_MASK = (1 << PPN_BITS) - 1
_STATUS_MASK = (1 << 12) - 1


def pte_ppn(pte: int) -> int:
    """Physical page number stored in ``pte``."""
    return (pte >> PPN_LOW) & _PPN_MASK


def pte_with_ppn(pte: int, ppn: int) -> int:
    """Return ``pte`` with its PPN replaced (status bits preserved)."""
    return insert_bits(pte, PPN_LOW, PPN_BITS, ppn)


def pte_status(pte: int) -> int:
    """The 24 status bits as one value: high 12 << 12 | low 12."""
    return (((pte >> 52) & _STATUS_MASK) << 12) | (pte & _STATUS_MASK)


def pte_present(pte: int) -> bool:
    return bool(pte & PTE_PRESENT)


def pte_set_flags(pte: int, flags: int) -> int:
    """OR low-12 status flags into the PTE (e.g. mark accessed/dirty)."""
    if flags >> 12:
        raise ValueError("pte_set_flags only touches the low 12 status bits")
    return pte | flags


def status_to_fields(status: int) -> tuple:
    """Split a 24-bit status value back into (low 12, high 12)."""
    return status & mask(12), (status >> 12) & mask(12)
