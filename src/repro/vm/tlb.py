"""TLB and page-walk caches.

The simulated system follows Table III: a single-level TLB enlarged to 2048
entries (matching the total reach of AMD Zen 3's two-level TLB, which keeps
simulated TLB hit rates honest against real machines) plus a 1 KB per-core
page-walk cache modeled after [23].

Both stores are columnar: an :class:`repro.common.lru.IntLRU` (flat
parallel key/prev/next columns, O(1) exact LRU) replaces the
``OrderedDict`` per structure.  ``ReferenceTLB`` keeps the original
``OrderedDict`` implementation as the readable spec and the oracle for
the differential property tests.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict

from repro.common.lru import IntLRU
from repro.common.stats import RatioStat


class TLB:
    """Fully-associative LRU TLB.

    Keys are translation tags: the vpn for 4 KB pages, or the 2 MiB-aligned
    vpn for huge pages (the caller picks, mirroring a unified TLB whose
    entries carry a page-size bit).
    """

    def __init__(self, entries: int = 2048, name: str = "tlb") -> None:
        if entries <= 0:
            raise ValueError("TLB needs at least one entry")
        self.entries = entries
        self._lru = IntLRU()  # tag -> ppn
        self.stats = RatioStat(name)

    def lookup(self, tag: int) -> bool:
        """Probe the TLB; records the hit/miss and updates recency."""
        hit = tag in self._lru
        self.stats.record(hit)
        if hit:
            self._lru.move_to_end(tag)
        return hit

    def contains(self, tag: int) -> bool:
        """Probe without recording a stat or touching recency."""
        return tag in self._lru

    def fill(self, tag: int, ppn: int = 0) -> None:
        """Install a translation, evicting the LRU entry if full."""
        lru = self._lru
        if tag in lru:
            lru.move_to_end(tag)
            lru._val[lru._slot[tag]] = ppn
            return
        if len(lru) >= self.entries:
            lru.pop_lru()
        lru.insert_mru(tag, ppn)

    def invalidate(self, tag: int) -> None:
        self._lru.discard(tag)

    def flush(self) -> None:
        self._lru.clear()

    @property
    def occupancy(self) -> int:
        return len(self._lru)


class ReferenceTLB:
    """The original ``OrderedDict`` TLB (spec + differential oracle)."""

    def __init__(self, entries: int = 2048, name: str = "tlb") -> None:
        if entries <= 0:
            raise ValueError("TLB needs at least one entry")
        self.entries = entries
        self._lru: "OrderedDict[int, int]" = OrderedDict()
        self.stats = RatioStat(name)

    def lookup(self, tag: int) -> bool:
        hit = tag in self._lru
        self.stats.record(hit)
        if hit:
            self._lru.move_to_end(tag)
        return hit

    def contains(self, tag: int) -> bool:
        return tag in self._lru

    def fill(self, tag: int, ppn: int = 0) -> None:
        if tag in self._lru:
            self._lru.move_to_end(tag)
            self._lru[tag] = ppn
            return
        if len(self._lru) >= self.entries:
            self._lru.popitem(last=False)
        self._lru[tag] = ppn

    def invalidate(self, tag: int) -> None:
        self._lru.pop(tag, None)

    def flush(self) -> None:
        self._lru.clear()

    @property
    def occupancy(self) -> int:
        return len(self._lru)


class PageWalkCache:
    """Per-core cache of upper-level page-table entries.

    One LRU per non-leaf level; a hit at level *L* lets the walker skip
    fetching the PTBs at levels 4..L and start at level *L - 1*.  Sizes
    default to a 1 KB budget split like [23] (each entry is ~8 B).
    """

    def __init__(self, l4_entries: int = 32, l3_entries: int = 32,
                 l2_entries: int = 64) -> None:
        self._caches: Dict[int, IntLRU] = {
            4: IntLRU(),
            3: IntLRU(),
            2: IntLRU(),
        }
        self._capacity = {4: l4_entries, 3: l3_entries, 2: l2_entries}
        self.stats = RatioStat("pwc")

    @staticmethod
    def _tag(vpn: int, level: int) -> int:
        """Address bits that index the page table down to ``level``."""
        return vpn >> (9 * (level - 1))

    # ``first_fetch_level`` and ``fill`` run once per TLB miss; the level
    # loop and ``_tag`` calls are unrolled (levels 2/3/4 shift by 9/18/27).

    def first_fetch_level(self, vpn: int) -> int:
        """Deepest level whose pointer is cached; walk starts below it.

        Returns the level of the first PTB the walker must *fetch from
        memory*: 1 when the L2 entry is cached (only the leaf PTB is
        fetched), up to 4 for a cold walk.
        """
        stats = self.stats
        stats.total += 1
        caches = self._caches
        cache = caches[2]
        tag = vpn >> 9
        if tag in cache._slot:
            cache.move_to_end(tag)
            stats.hits += 1
            return 1
        cache = caches[3]
        tag = vpn >> 18
        if tag in cache._slot:
            cache.move_to_end(tag)
            stats.hits += 1
            return 2
        cache = caches[4]
        tag = vpn >> 27
        if tag in cache._slot:
            cache.move_to_end(tag)
            stats.hits += 1
            return 3
        return 4

    def fill(self, vpn: int) -> None:
        """Install the walk's upper-level pointers after it completes."""
        caches = self._caches
        capacity = self._capacity
        for level, tag in ((4, vpn >> 27), (3, vpn >> 18), (2, vpn >> 9)):
            cache = caches[level]
            if tag in cache._slot:
                cache.move_to_end(tag)
                continue
            if len(cache._slot) >= capacity[level]:
                cache.pop_lru()
            cache.insert_mru(tag)

    def flush(self) -> None:
        for cache in self._caches.values():
            cache.clear()
