"""Hardware compressed-PTB encoding (Figure 7, Sections V-A2/A5).

A 64 B page-table block holds eight PTEs.  When all eight share identical
status bits, and the leading PPN bits above the machine's reachable frame
space are identical, the PTB compresses: status bits stored once, PPNs
truncated, and the freed space holds *embedded CTEs* -- truncated
physical-to-DRAM translations for the eight pages the PTEs point to.

Capacity math follows Section V-A5 exactly.  Each truncated CTE needs
``log2(dram_bytes / 4KB)`` bits; the OS may be booted with up to 4x the
DRAM as physical address space, so truncated PPNs need two more bits than
CTEs.  With 1 TB per memory controller that yields 8 embeddable CTEs,
7 at 4 TB, and 6 at 16 TB -- the numbers the paper quotes.

Decompression is "~1 cycle; only wiring to concatenate plaintext": the
functional inverse here simply reassembles the eight PTEs; embedded CTEs
are invisible to software (L2 always hands L1 a decompressed copy).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.common.units import BLOCK_SIZE, GIB, PTES_PER_PTB, TIB
from repro.vm.pte import pte_ppn, pte_status, status_to_fields
from repro.vm.pte import make_pte

#: Bits in one PTB.
PTB_BITS = BLOCK_SIZE * 8  # 512
#: Status bits stored once per compressed PTB.
STATUS_BITS = 24


@dataclass
class CompressedPTB:
    """A PTB in the hardware-compressed encoding.

    ``cte_slots[i]`` is the embedded (truncated) CTE for the page that
    PTE ``i`` points to, or ``None`` when the slot is empty/not available.
    Hardware writes these lazily (Section V-A3); a fresh compression leaves
    them empty.
    """

    status: int
    ppn_high: int  # the identical leading PPN bits, stored once
    truncated_ppns: List[int]
    cte_slots: List[Optional[int]] = field(default_factory=lambda: [None] * PTES_PER_PTB)
    cte_capacity: int = PTES_PER_PTB
    #: Lazy first-occurrence index over ``truncated_ppns`` (which are
    #: immutable after construction); rebuilt never, compared never.
    _slot_index: Optional[dict] = field(default=None, repr=False, compare=False)

    def cte_slot_index(self, ppn: int, ppn_bits: int) -> Optional[int]:
        """The slot holding ``ppn``'s embedded CTE, or ``None``.

        First-occurrence semantics: with duplicate truncated PPNs the
        lowest slot wins, and a match at or beyond ``cte_capacity`` has
        no usable slot (later duplicates sit even further out).
        """
        index = self._slot_index
        if index is None:
            index = self._slot_index = {}
            for position in range(len(self.truncated_ppns) - 1, -1, -1):
                index[self.truncated_ppns[position]] = position
        slot = index.get(ppn & ((1 << ppn_bits) - 1))
        if slot is None or slot >= self.cte_capacity:
            return None
        return slot

    def embedded_cte_for_ppn(self, ppn: int, ppn_bits: int) -> Optional[int]:
        """Look up the embedded CTE for a full PPN, if this PTB has one."""
        slot = self.cte_slot_index(ppn, ppn_bits)
        return self.cte_slots[slot] if slot is not None else None

    def set_cte_for_ppn(self, ppn: int, ppn_bits: int, cte: Optional[int]) -> bool:
        """Install/update the embedded CTE for ``ppn``; False if no slot."""
        slot = self.cte_slot_index(ppn, ppn_bits)
        if slot is None:
            return False
        self.cte_slots[slot] = cte
        return True


class PTBCodec:
    """Compress/decompress PTBs for a given machine size.

    ``dram_bytes`` is the DRAM reachable by one memory controller;
    ``expansion_factor`` is how many OS physical pages exist per DRAM page
    (the paper assumes the OS boots with up to 4x physical memory).
    """

    def __init__(self, dram_bytes: int = 1 * TIB, expansion_factor: int = 4) -> None:
        if dram_bytes < GIB:
            raise ValueError("dram_bytes must be at least 1 GiB")
        if expansion_factor < 1:
            raise ValueError("expansion_factor must be >= 1")
        self.dram_bytes = dram_bytes
        self.expansion_factor = expansion_factor
        #: Bits of one truncated CTE: identifies a 4 KB range of DRAM.
        self.cte_bits = (dram_bytes // 4096 - 1).bit_length()
        #: Bits of one truncated PPN: OS frame space is expansion_factor x DRAM.
        self.ppn_bits = (dram_bytes * expansion_factor // 4096 - 1).bit_length()

    @property
    def embeddable_ctes(self) -> int:
        """How many CTEs fit beside the truncated PTEs (Section V-A5)."""
        free_bits = PTB_BITS - STATUS_BITS - PTES_PER_PTB * self.ppn_bits
        return max(0, min(PTES_PER_PTB, free_bits // self.cte_bits))

    def compressible(self, ptes: List[int]) -> bool:
        """A PTB compresses when status bits and leading PPN bits agree."""
        if len(ptes) != PTES_PER_PTB:
            raise ValueError(f"a PTB holds {PTES_PER_PTB} PTEs, got {len(ptes)}")
        statuses = {pte_status(p) for p in ptes}
        if len(statuses) != 1:
            return False
        highs = {pte_ppn(p) >> self.ppn_bits for p in ptes}
        return len(highs) == 1

    def compress(self, ptes: List[int]) -> Optional[CompressedPTB]:
        """Compress; ``None`` when the PTB does not qualify.

        Single pass: status/PPN fields are extracted once per PTE and
        reused for both the compressibility check and the encoding.
        """
        if len(ptes) != PTES_PER_PTB:
            raise ValueError(f"a PTB holds {PTES_PER_PTB} PTEs, got {len(ptes)}")
        ppn_bits = self.ppn_bits
        low_mask = (1 << ppn_bits) - 1
        status = pte_status(ptes[0])
        ppn0 = pte_ppn(ptes[0])
        high = ppn0 >> ppn_bits
        truncated = [ppn0 & low_mask]
        for p in ptes[1:]:
            if pte_status(p) != status:
                return None
            ppn = pte_ppn(p)
            if ppn >> ppn_bits != high:
                return None
            truncated.append(ppn & low_mask)
        return CompressedPTB(
            status=status,
            ppn_high=high,
            truncated_ppns=truncated,
            cte_slots=[None] * PTES_PER_PTB,
            cte_capacity=self.embeddable_ctes,
        )

    def decompress(self, compressed: CompressedPTB) -> List[int]:
        """Reassemble the eight software-visible PTEs (CTEs dropped)."""
        low, high = status_to_fields(compressed.status)
        ptes = []
        for truncated in compressed.truncated_ppns:
            ppn = (compressed.ppn_high << self.ppn_bits) | truncated
            ptes.append(make_pte(ppn, low, high))
        return ptes

    def merge_software_update(
        self, compressed: CompressedPTB, new_ptes: List[int]
    ) -> Optional[CompressedPTB]:
        """Apply an OS write to a compressed PTB, preserving embedded CTEs.

        Models L2's dirty-eviction path (Section V-A4): when the OS
        modifies a PTB (e.g. remaps a page), hardware re-checks
        compressibility and carries over embedded CTEs for PPNs that did
        not change.  Returns ``None`` when the new content no longer
        compresses (the PTB reverts to the uncompressed encoding).
        """
        fresh = self.compress(new_ptes)
        if fresh is None:
            return None
        for index, (old_trunc, new_trunc) in enumerate(
            zip(compressed.truncated_ppns, fresh.truncated_ppns)
        ):
            if old_trunc == new_trunc and compressed.ppn_high == fresh.ppn_high:
                fresh.cte_slots[index] = compressed.cte_slots[index]
        return fresh
