"""Page walker: turns a TLB miss into the PTB fetches a walk performs.

The walker consults the page-walk cache to skip upper levels, then emits
the (level, PTB physical address) pairs it must read from the memory
hierarchy.  The simulator replays those reads through the caches and the
memory controller -- the path where TMCC's embedded CTEs earn their keep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.common.stats import Counter
from repro.vm.pagetable import PageTable
from repro.vm.pte import pte_ppn
from repro.vm.tlb import PageWalkCache


@dataclass(frozen=True, slots=True)
class WalkResult:
    """Outcome of one page walk.

    ``fetches`` lists the PTB reads issued to the memory hierarchy, root
    first.  ``pte`` is the leaf (or huge-leaf) translation found, and
    ``ppn`` the translated frame.  ``huge`` marks a 2 MiB mapping.
    """

    fetches: Tuple[Tuple[int, int], ...]
    pte: int
    ppn: int
    huge: bool


class PageWalker:
    """Walks a concrete :class:`PageTable` through a :class:`PageWalkCache`."""

    def __init__(self, table: PageTable, pwc: Optional[PageWalkCache] = None) -> None:
        self.table = table
        self.pwc = pwc or PageWalkCache()
        self.walks = Counter("walks")
        self.ptb_fetches = Counter("ptb_fetches")

    def walk(self, vpn: int) -> WalkResult:
        """Perform a full walk for ``vpn``; raises ``KeyError`` if unmapped."""
        self.walks.increment()
        path = self.table.walk_path(vpn)  # [(level, ptb_addr, pte), ...]
        start_level = self.pwc.first_fetch_level(vpn)
        fetches: List[Tuple[int, int]] = [
            (level, address) for level, address, _ in path if level <= start_level
        ]
        self.ptb_fetches.increment(len(fetches))
        self.pwc.fill(vpn)
        final_level, _, pte = path[-1]
        huge = final_level == 2
        return WalkResult(
            fetches=tuple(fetches),
            pte=pte,
            ppn=pte_ppn(pte),
            huge=huge,
        )
