"""Four-level radix page table and its OS-like populator.

The table is concrete: every table page holds 512 real PTE integers, so the
compressed-PTB codec and the Figure 6 statistics operate on actual bit
patterns, and the page walker produces the actual physical addresses of the
page-table blocks (PTBs) it touches -- those addresses then flow through the
cache hierarchy like any other memory access, which is exactly the property
TMCC exploits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.common.rng import DeterministicRNG
from repro.common.units import BLOCK_SIZE, PAGE_SIZE, PTES_PER_PTB
from repro.vm.pte import (
    PTE_DIRTY,
    PTE_GLOBAL,
    STATUS_DEFAULT_DATA,
    make_pte,
    pte_ppn,
    pte_present,
)

#: Levels are numbered like hardware manuals: 4 = root (PML4), 1 = leaf.
LEVELS = (4, 3, 2, 1)
ENTRIES_PER_TABLE = 512
PTBS_PER_TABLE = ENTRIES_PER_TABLE // PTES_PER_PTB


def vpn_index(vpn: int, level: int) -> int:
    """The 9-bit table index used at ``level`` for virtual page ``vpn``."""
    return (vpn >> (9 * (level - 1))) & (ENTRIES_PER_TABLE - 1)


class FrameAllocator:
    """Hands out physical frame numbers with OS-like near-contiguity.

    Real allocators serve most faults from per-zone free lists, producing
    long runs of contiguous frames with occasional jumps.  ``jump_chance``
    controls fragmentation; the default yields the mostly-contiguous
    mappings that make PTB PPN truncation (Figure 7) profitable.
    """

    def __init__(
        self,
        total_frames: int,
        rng: Optional[DeterministicRNG] = None,
        jump_chance: float = 0.02,
    ) -> None:
        if total_frames <= 0:
            raise ValueError("total_frames must be positive")
        self.total_frames = total_frames
        self._rng = rng or DeterministicRNG(0)
        self.jump_chance = jump_chance
        self._next = 0
        self._allocated: set = set()

    @property
    def allocated_count(self) -> int:
        return len(self._allocated)

    def alloc(self) -> int:
        """Allocate one frame; raises :class:`MemoryError` when full."""
        if len(self._allocated) >= self.total_frames:
            raise MemoryError("physical memory exhausted")
        if self._rng.chance(self.jump_chance):
            self._next = self._rng.randint(0, self.total_frames - 1)
        for _ in range(self.total_frames):
            candidate = self._next % self.total_frames
            self._next = candidate + 1
            if candidate not in self._allocated:
                self._allocated.add(candidate)
                return candidate
        raise MemoryError("physical memory exhausted")

    def free(self, ppn: int) -> None:
        self._allocated.discard(ppn)

    def alloc_aligned_run(self, count: int) -> int:
        """Allocate ``count`` contiguous frames aligned to ``count``.

        Used for 2 MiB huge pages (count = 512).  Returns the base frame.
        """
        for base in range(0, self.total_frames - count + 1, count):
            run = range(base, base + count)
            if all(f not in self._allocated for f in run):
                self._allocated.update(run)
                return base
        raise MemoryError("no aligned contiguous run available")


@dataclass
class TablePage:
    """One 4 KB page of the page table (512 PTEs)."""

    level: int
    ppn: int
    entries: List[int]

    @classmethod
    def empty(cls, level: int, ppn: int) -> "TablePage":
        return cls(level=level, ppn=ppn, entries=[0] * ENTRIES_PER_TABLE)

    def ptb_address(self, entry_index: int) -> int:
        """Physical byte address of the PTB holding ``entry_index``."""
        return self.ppn * PAGE_SIZE + (entry_index // PTES_PER_PTB) * BLOCK_SIZE

    def ptb_entries(self, ptb_index: int) -> List[int]:
        """The eight PTEs of PTB number ``ptb_index`` within this page."""
        start = ptb_index * PTES_PER_PTB
        return self.entries[start : start + PTES_PER_PTB]


class PageTable:
    """A concrete 4-level page table for one address space."""

    def __init__(self, allocator: FrameAllocator) -> None:
        self._allocator = allocator
        self.root = TablePage.empty(4, allocator.alloc())
        #: table pages by (level, ppn); includes the root.
        self._pages: Dict[int, TablePage] = {self.root.ppn: self.root}
        #: child table page for a non-leaf entry: (parent ppn, index) -> page
        self._children: Dict[Tuple[int, int], TablePage] = {}
        #: reverse map: PTB physical block address -> (table page, ptb index)
        self._ptb_index: Dict[int, Tuple[TablePage, int]] = {}
        self._register_ptbs(self.root)
        #: vpns mapped as 2 MiB huge pages (keyed by the L2-aligned vpn).
        self.huge_mappings: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _register_ptbs(self, page: TablePage) -> None:
        for ptb in range(PTBS_PER_TABLE):
            self._ptb_index[page.ptb_address(ptb * PTES_PER_PTB)] = (page, ptb)

    def _child(self, parent: TablePage, index: int, create: bool) -> Optional[TablePage]:
        key = (parent.ppn, index)
        child = self._children.get(key)
        if child is None and create:
            child = TablePage.empty(parent.level - 1, self._allocator.alloc())
            self._children[key] = child
            self._pages[child.ppn] = child
            self._register_ptbs(child)
            parent.entries[index] = make_pte(child.ppn)
        return child

    def map_page(self, vpn: int, ppn: int, status_low: int = STATUS_DEFAULT_DATA,
                 status_high: int = 0) -> None:
        """Install a 4 KB translation vpn -> ppn."""
        page = self.root
        for level in (4, 3, 2):
            page = self._child(page, vpn_index(vpn, level), create=True)
        page.entries[vpn_index(vpn, 1)] = make_pte(ppn, status_low, status_high)

    def map_huge_page(self, vpn: int, ppn: int,
                      status_low: int = STATUS_DEFAULT_DATA) -> None:
        """Install a 2 MiB translation at an aligned vpn (low 9 bits zero)."""
        if vpn & 0x1FF or ppn & 0x1FF:
            raise ValueError("huge mappings must be 2 MiB aligned")
        page = self.root
        for level in (4, 3):
            page = self._child(page, vpn_index(vpn, level), create=True)
        page.entries[vpn_index(vpn, 2)] = make_pte(ppn, status_low | PTE_GLOBAL)
        self.huge_mappings[vpn] = ppn

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def lookup(self, vpn: int) -> Optional[int]:
        """Return the leaf PTE for ``vpn`` (4 KB pages), or ``None``."""
        page = self.root
        for level in (4, 3, 2):
            index = vpn_index(vpn, level)
            if level == 2 and (vpn & ~0x1FF) in self.huge_mappings:
                return page.entries[index]
            child = self._children.get((page.ppn, index))
            if child is None:
                return None
            page = child
        pte = page.entries[vpn_index(vpn, 1)]
        return pte if pte_present(pte) else None

    def translate(self, vpn: int) -> Optional[int]:
        """vpn -> ppn, honoring huge mappings."""
        huge_base = vpn & ~0x1FF
        if huge_base in self.huge_mappings:
            return self.huge_mappings[huge_base] + (vpn & 0x1FF)
        pte = self.lookup(vpn)
        return pte_ppn(pte) if pte is not None else None

    def walk_path(self, vpn: int) -> List[Tuple[int, int, int]]:
        """The PTB accesses a full walk performs.

        Returns ``[(level, ptb physical address, pte), ...]`` from the root
        down; a huge mapping ends the path at level 2.  Raises ``KeyError``
        for unmapped addresses.
        """
        path: List[Tuple[int, int, int]] = []
        page = self.root
        for level in (4, 3, 2, 1):
            index = vpn_index(vpn, level)
            ptb_address = page.ptb_address(index)
            pte = page.entries[index]
            path.append((level, ptb_address, pte))
            if level == 2 and (vpn & ~0x1FF) in self.huge_mappings:
                return path
            if level > 1:
                child = self._children.get((page.ppn, index))
                if child is None:
                    raise KeyError(f"vpn {vpn:#x} not mapped at level {level}")
                page = child
        if not pte_present(path[-1][2]):
            raise KeyError(f"vpn {vpn:#x} not present")
        return path

    # ------------------------------------------------------------------
    # Introspection (PTB-level, used by TMCC and by Figure 6)
    # ------------------------------------------------------------------

    def ptb_at(self, ptb_address: int) -> Optional[List[int]]:
        """The eight PTEs stored at physical block ``ptb_address``."""
        entry = self._ptb_index.get(ptb_address)
        if entry is None:
            return None
        page, ptb = entry
        return page.ptb_entries(ptb)

    def is_ptb_address(self, block_address: int) -> bool:
        return block_address in self._ptb_index

    def table_pages(self, level: Optional[int] = None) -> Iterator[TablePage]:
        for page in self._pages.values():
            if level is None or page.level == level:
                yield page

    def set_entry(self, page: TablePage, index: int, pte: int) -> None:
        page.entries[index] = pte

    @property
    def table_page_count(self) -> int:
        return len(self._pages)


@dataclass(frozen=True)
class PTBStatusStats:
    """Figure 6 data: fraction of PTBs whose PTEs share all status bits."""

    l1_total: int
    l1_uniform: int
    l2_total: int
    l2_uniform: int

    @property
    def l1_fraction(self) -> float:
        return self.l1_uniform / self.l1_total if self.l1_total else 0.0

    @property
    def l2_fraction(self) -> float:
        return self.l2_uniform / self.l2_total if self.l2_total else 0.0


def ptb_status_stats(table: PageTable) -> PTBStatusStats:
    """Measure Figure 6 on a populated table.

    Only PTBs with at least one present PTE count (empty PTBs never reach
    the walker).  A PTB is "uniform" when all its *present* PTEs share
    identical status bits -- hardware only embeds CTEs for present
    entries, so absent slots at region boundaries do not break
    compressibility.
    """
    from repro.vm.pte import pte_status

    counts = {1: [0, 0], 2: [0, 0]}  # level -> [total, uniform]
    for level in (1, 2):
        for page in table.table_pages(level):
            for ptb in range(PTBS_PER_TABLE):
                entries = page.ptb_entries(ptb)
                present = [e for e in entries if pte_present(e)]
                if not present:
                    continue
                counts[level][0] += 1
                if len({pte_status(e) for e in present}) == 1:
                    counts[level][1] += 1
    return PTBStatusStats(
        l1_total=counts[1][0],
        l1_uniform=counts[1][1],
        l2_total=counts[2][0],
        l2_uniform=counts[2][1],
    )


class PageTablePopulator:
    """Fills a page table the way a long-running OS would.

    Pages are mapped in virtually contiguous regions backed by
    mostly-contiguous frames.  ``status_noise`` injects the rare PTEs whose
    status bits differ from their PTB neighbours (a dirty bit here, a
    write-protected COW page there); Figure 6 measures 0.06% / 0.7% of
    L1 / L2 PTBs broken this way, so the defaults target those rates.
    """

    def __init__(
        self,
        table: PageTable,
        allocator: FrameAllocator,
        rng: Optional[DeterministicRNG] = None,
        l1_status_noise: float = 0.0006,
        l2_status_noise: float = 0.007,
    ) -> None:
        self.table = table
        self.allocator = allocator
        self.rng = rng or DeterministicRNG(1)
        self.l1_status_noise = l1_status_noise
        self.l2_status_noise = l2_status_noise
        self._mapped: Dict[int, int] = {}

    @property
    def mapped_pages(self) -> Dict[int, int]:
        """vpn -> ppn for every 4 KB page mapped through this populator."""
        return self._mapped

    def populate_region(self, vbase_vpn: int, num_pages: int,
                        status_low: int = STATUS_DEFAULT_DATA) -> List[int]:
        """Map ``num_pages`` consecutive virtual pages; returns their PPNs.

        Equivalent to ``map_page`` per vpn, but consecutive vpns share a
        leaf table page for runs of 512, so the three-level descent is
        only repeated when the run crosses a leaf boundary.  Allocator
        calls (and therefore RNG draws) happen in the same order.
        """
        make_pte(0, status_low)  # validate the status bits once
        table = self.table
        mapped = self._mapped
        alloc = self.allocator.alloc
        ppns: List[int] = []
        append = ppns.append
        leaf_entries: Optional[List[int]] = None
        leaf_base = -1
        for vpn in range(vbase_vpn, vbase_vpn + num_pages):
            ppn = alloc()
            base = vpn >> 9
            if base != leaf_base:
                page = table.root
                for level in (4, 3, 2):
                    page = table._child(page, vpn_index(vpn, level),
                                        create=True)
                leaf_entries = page.entries
                leaf_base = base
            pte = status_low | (ppn << 12)
            if pte >> 52:  # PPN overflow; make_pte raises the exact error
                make_pte(ppn, status_low)
            leaf_entries[vpn & 0x1FF] = pte
            mapped[vpn] = ppn
            append(ppn)
        return ppns

    def populate_huge_region(self, vbase_vpn: int, num_huge_pages: int) -> None:
        """Map ``num_huge_pages`` 2 MiB pages starting at an aligned vpn."""
        vpn = vbase_vpn & ~0x1FF
        for i in range(num_huge_pages):
            base_ppn = self.allocator.alloc_aligned_run(512)
            self.table.map_huge_page(vpn + i * 512, base_ppn)

    def finalize_noise(self) -> None:
        """Break status-bit uniformity in the configured PTB fractions.

        Call once after all regions are populated; this is what makes the
        Figure 6 statistics land at ~99.94% (L1) / ~99.3% (L2) instead of
        a sterile 100%.
        """
        self._inject_noise(level=1, probability=self.l1_status_noise)
        self._inject_noise(level=2, probability=self.l2_status_noise)

    def _inject_noise(self, level: int, probability: float) -> None:
        for page in self.table.table_pages(level):
            for ptb in range(PTBS_PER_TABLE):
                start = ptb * PTES_PER_PTB
                entries = page.ptb_entries(ptb)
                if not any(pte_present(e) for e in entries):
                    continue
                if self.rng.chance(probability):
                    for index in range(start, start + PTES_PER_PTB):
                        if pte_present(page.entries[index]):
                            page.entries[index] |= PTE_DIRTY
                            break
