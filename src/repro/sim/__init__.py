"""Trace-driven memory-subsystem simulator.

- :mod:`repro.sim.context` -- :class:`SimContext`: shared construction
  context (seeded RNG streams, clock, event bus, metrics registry,
  component tree) every engine builds itself from.
- :mod:`repro.sim.instrument` -- the structured instrumentation layer:
  :class:`EventBus`, :class:`MetricsRegistry`, :class:`Probe`.
- :mod:`repro.sim.simulator` -- the engine: replays a workload trace
  through TLB, page walker, cache hierarchy, compression controller, and
  DRAM, accounting latency per access.
- :mod:`repro.sim.multicore` -- the 4-core variant (Table III).
- :mod:`repro.sim.results` -- the result record every figure reads from.
- :mod:`repro.sim.experiments` -- orchestration for the paper's headline
  comparisons (iso-capacity performance, iso-performance capacity,
  Figure 20 splits, huge pages, interleaving).

Controllers are discovered through :data:`repro.core.CONTROLLER_REGISTRY`
(see :func:`repro.core.available_controllers`), not a hardcoded table.
"""

from repro.sim.context import SimClock, SimContext
from repro.sim.instrument import (
    Event,
    EventBus,
    MetricsRegistry,
    Probe,
    nest_metrics,
)
from repro.sim.simulator import Simulator
from repro.sim.multicore import MultiCoreSimulator
from repro.sim.results import SimResult
from repro.sim.experiments import (
    run_workload,
    iso_capacity_comparison,
    iso_performance_capacity,
    osinspired_split,
)

__all__ = [
    "SimClock",
    "SimContext",
    "Event",
    "EventBus",
    "MetricsRegistry",
    "Probe",
    "nest_metrics",
    "Simulator",
    "MultiCoreSimulator",
    "SimResult",
    "run_workload",
    "iso_capacity_comparison",
    "iso_performance_capacity",
    "osinspired_split",
]
