"""Trace-driven memory-subsystem simulator.

- :mod:`repro.sim.simulator` -- the engine: replays a workload trace
  through TLB, page walker, cache hierarchy, compression controller, and
  DRAM, accounting latency per access.
- :mod:`repro.sim.results` -- the result record every figure reads from.
- :mod:`repro.sim.experiments` -- orchestration for the paper's headline
  comparisons (iso-capacity performance, iso-performance capacity,
  Figure 20 splits, huge pages, interleaving).
"""

from repro.sim.simulator import Simulator, CONTROLLERS
from repro.sim.results import SimResult
from repro.sim.experiments import (
    run_workload,
    iso_capacity_comparison,
    iso_performance_capacity,
    osinspired_split,
)

__all__ = [
    "Simulator",
    "CONTROLLERS",
    "SimResult",
    "run_workload",
    "iso_capacity_comparison",
    "iso_performance_capacity",
    "osinspired_split",
]
