"""Causal span tracing: promote simulator work into linked span trees.

Aggregate metrics say *how much* translation latency a run paid; spans
say *where each nanosecond went* on individual accesses.  Every sampled
trace access becomes one **trace**: a root ``access`` span whose
children are the page walk, each LLC-miss service (with the miss's
evaluated :class:`~repro.core.pipeline.ServiceTimeline` promoted into
per-stage child spans, preserving the parallel structure of TMCC's
speculative verify), and instant markers for migrations and injected
faults.  Spans carry ``trace_id`` / ``span_id`` / ``parent_id`` linkage,
so consumers can rebuild the causal tree without relying on timestamps.

Three design constraints, in order:

1. **Zero cost when off.**  The simulator's hooks are ``is None``
   checks; nothing here touches RNG streams or modeled time, so runs
   with tracing on emit bit-identical metrics to runs with it off.
2. **Deterministic sampling.**  ``sample_every=N`` records every Nth
   access by counter -- a pure function of the trace, not of randomness
   or wall clock.
3. **Bounded memory.**  Retained spans are capped (``buffer_spans``)
   with head/tail retention at whole-trace granularity: the first half
   of the budget keeps the earliest sampled traces (warm-up behaviour,
   first-touch misses), the rest is a ring of the latest (steady
   state).  Mid-run traces beyond the budget are dropped and counted.

Exports: Chrome/Perfetto ``trace.json`` (loadable by
https://ui.perfetto.dev and ``chrome://tracing``) and a one-span-per-line
JSONL; ``repro trace convert`` translates between them.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Deque, Dict, IO, Iterable, List, Mapping, Optional, Union

from repro.common.errors import ConfigError
from repro.core.pipeline import ServiceTimeline
from repro.sim.instrument import Event, EventBus

#: Span categories (the Perfetto ``cat`` field).
CATEGORY_ACCESS = "access"
CATEGORY_WALK = "walk"
CATEGORY_MISS = "miss"
CATEGORY_STAGE = "stage"
CATEGORY_MIGRATION = "migration"
CATEGORY_FAULT = "fault"

#: Event kinds the tracer bridges from the bus into instant spans.
_INSTANT_KINDS = {
    "controller.migration": CATEGORY_MIGRATION,
    "faults.injected": CATEGORY_FAULT,
}


@dataclass
class Span:
    """One node of a causal trace tree.

    ``duration_ns == 0.0`` with category ``migration``/``fault`` marks
    an instant event.  ``args`` carries span-specific attributes (access
    path, ppn, critical/wasted flags, ...).
    """

    trace_id: int
    span_id: int
    parent_id: Optional[int]
    name: str
    category: str
    start_ns: float
    duration_ns: float
    args: Dict[str, object] = field(default_factory=dict)

    @property
    def end_ns(self) -> float:
        return self.start_ns + self.duration_ns

    def as_dict(self) -> Dict[str, object]:
        record: Dict[str, object] = {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "category": self.category,
            "start_ns": self.start_ns,
            "duration_ns": self.duration_ns,
        }
        if self.args:
            record["args"] = dict(sorted(self.args.items()))
        return record

    @classmethod
    def from_dict(cls, record: Mapping[str, object]) -> "Span":
        try:
            return cls(
                trace_id=int(record["trace_id"]),
                span_id=int(record["span_id"]),
                parent_id=(None if record.get("parent_id") is None
                           else int(record["parent_id"])),
                name=str(record["name"]),
                category=str(record.get("category", "")),
                start_ns=float(record["start_ns"]),
                duration_ns=float(record["duration_ns"]),
                args=dict(record.get("args", {}) or {}),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise ConfigError(f"not a span record: {error}") from error


class SpanTracer:
    """Collects span trees for sampled accesses into a bounded buffer."""

    def __init__(self, sample_every: int = 1,
                 buffer_spans: int = 4096) -> None:
        if sample_every < 1:
            raise ConfigError(
                f"trace sample interval must be >= 1, got {sample_every}")
        if buffer_spans < 2:
            raise ConfigError(
                f"trace buffer must hold >= 2 spans, got {buffer_spans}")
        self.sample_every = sample_every
        self.buffer_spans = buffer_spans
        #: True while the current access is being recorded.
        self.active = False
        self._access_counter = 0
        self._next_trace_id = 0
        self._next_span_id = 0
        #: The in-flight trace's spans and open-span stack.
        self._current: List[Span] = []
        self._stack: List[Span] = []
        # Head/tail retention: whole traces, split ~half/half by spans.
        self._head: List[List[Span]] = []
        self._head_spans = 0
        self._tail: Deque[List[Span]] = deque()
        self._tail_spans = 0
        self.traces_recorded = 0
        self.traces_dropped = 0

    # ------------------------------------------------------------------
    # Root lifecycle (one trace per sampled access)
    # ------------------------------------------------------------------

    def begin_access(self, start_ns: float, **args: object) -> None:
        """Open the root span; decides (deterministically) to sample."""
        self._access_counter += 1
        if (self._access_counter - 1) % self.sample_every != 0:
            self.active = False
            return
        self.active = True
        self._current = []
        self._stack = []
        self._next_trace_id += 1
        root = self._make_span("access", CATEGORY_ACCESS, start_ns, args)
        self._current.append(root)
        self._stack.append(root)

    def end_access(self, end_ns: float) -> None:
        """Close the root span and commit the trace to the buffer."""
        if not self.active:
            return
        while self._stack:  # root plus anything a failure left open
            span = self._stack.pop()
            span.duration_ns = max(0.0, end_ns - span.start_ns)
        self._commit(self._current)
        self._current = []
        self.active = False

    # ------------------------------------------------------------------
    # Span construction
    # ------------------------------------------------------------------

    def begin(self, name: str, category: str, start_ns: float,
              **args: object) -> Optional[Span]:
        """Open a nested span; returns None when the access is unsampled."""
        if not self.active:
            return None
        span = self._make_span(name, category, start_ns, args)
        self._current.append(span)
        self._stack.append(span)
        return span

    def end(self, span: Optional[Span], end_ns: float) -> None:
        if span is None:
            return
        span.duration_ns = max(0.0, end_ns - span.start_ns)
        if self._stack and self._stack[-1] is span:
            self._stack.pop()

    def instant(self, name: str, category: str, time_ns: float,
                **args: object) -> None:
        """A zero-duration marker attached to the open span."""
        if not self.active:
            return
        self._current.append(
            self._make_span(name, category, time_ns, args, duration_ns=0.0))

    def add_timeline(self, name: str, timeline: ServiceTimeline,
                     **args: object) -> None:
        """Promote an evaluated service timeline into a span subtree.

        The timeline becomes one ``category="miss"`` span under the
        current open span, with one ``category="stage"`` child per
        :class:`~repro.core.pipeline.StageSpan`.  Stage spans keep their
        absolute placement, so parallel branches (TMCC's speculative
        ``parallel(cte_fetch, data_fetch)``) share a start time and a
        parent -- the structure survives into the export.
        """
        if not self.active:
            return
        root = self._make_span(name, CATEGORY_MISS, timeline.start_ns, args,
                               duration_ns=timeline.total_ns)
        self._current.append(root)
        for stage in timeline.spans:
            self._current.append(Span(
                trace_id=root.trace_id,
                span_id=self._take_span_id(),
                parent_id=root.span_id,
                name=stage.name,
                category=CATEGORY_STAGE,
                start_ns=stage.start_ns,
                duration_ns=stage.latency_ns,
                args={"critical": stage.critical, "wasted": stage.wasted,
                      "slack_ns": stage.slack_ns},
            ))

    def _make_span(self, name: str, category: str, start_ns: float,
                   args: Mapping[str, object],
                   duration_ns: float = 0.0) -> Span:
        return Span(
            trace_id=self._next_trace_id,
            span_id=self._take_span_id(),
            parent_id=self._stack[-1].span_id if self._stack else None,
            name=name,
            category=category,
            start_ns=start_ns,
            duration_ns=duration_ns,
            args=dict(args),
        )

    def _take_span_id(self) -> int:
        self._next_span_id += 1
        return self._next_span_id

    # ------------------------------------------------------------------
    # Head/tail retention
    # ------------------------------------------------------------------

    def _commit(self, trace: List[Span]) -> None:
        self.traces_recorded += 1
        head_budget = self.buffer_spans // 2
        if self._head_spans + len(trace) <= head_budget:
            self._head.append(trace)
            self._head_spans += len(trace)
            return
        tail_budget = max(1, self.buffer_spans - self._head_spans)
        self._tail.append(trace)
        self._tail_spans += len(trace)
        while len(self._tail) > 1 and self._tail_spans > tail_budget:
            dropped = self._tail.popleft()
            self._tail_spans -= len(dropped)
            self.traces_dropped += 1

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def traces(self) -> List[List[Span]]:
        return list(self._head) + list(self._tail)

    def spans(self) -> List[Span]:
        out: List[Span] = []
        for trace in self._head:
            out.extend(trace)
        for trace in self._tail:
            out.extend(trace)
        return out

    def summary(self) -> Dict[str, int]:
        return {
            "accesses_seen": self._access_counter,
            "traces_recorded": self.traces_recorded,
            "traces_retained": len(self._head) + len(self._tail),
            "traces_dropped": self.traces_dropped,
            "spans_retained": self._head_spans + self._tail_spans,
            "sample_every": self.sample_every,
            "buffer_spans": self.buffer_spans,
        }

    # ------------------------------------------------------------------
    # Bus bridge (migration / fault instants)
    # ------------------------------------------------------------------

    def attach_bus(self, bus: EventBus) -> None:
        """Subscribe to the event kinds promoted into instant spans."""
        self._bus = bus
        for kind in _INSTANT_KINDS:
            bus.subscribe(kind, self._on_bus_event)

    def detach_bus(self) -> None:
        bus = getattr(self, "_bus", None)
        if bus is not None:
            bus.unsubscribe(self._on_bus_event)
            self._bus = None

    def _on_bus_event(self, event: Event) -> None:
        if not self.active:
            return
        category = _INSTANT_KINDS.get(event.kind, CATEGORY_FAULT)
        self.instant(event.kind, category, event.time_ns, **dict(event.payload))

    def __getstate__(self) -> Dict[str, object]:
        # The bus reference rides on the context; handlers are detached
        # around checkpoints, so the tracer pickles without it.
        state = dict(self.__dict__)
        state.pop("_bus", None)
        return state


# ----------------------------------------------------------------------
# Export / import
# ----------------------------------------------------------------------


def write_spans_jsonl(spans: Iterable[Span], handle: IO[str]) -> int:
    """One span per line; returns the number written."""
    count = 0
    for span in spans:
        handle.write(json.dumps(span.as_dict(), sort_keys=True) + "\n")
        count += 1
    return count


def read_spans_jsonl(handle: IO[str]) -> List[Span]:
    spans = []
    for line in handle:
        line = line.strip()
        if line:
            spans.append(Span.from_dict(json.loads(line)))
    return spans


def perfetto_document(spans: Iterable[Span],
                      metadata: Optional[Mapping[str, object]] = None) -> Dict:
    """The Chrome/Perfetto trace-JSON document for a span set.

    Duration spans become ``ph="X"`` complete events, instants become
    ``ph="i"``; timestamps are microseconds (the format's unit), and the
    causal ids ride in ``args`` so the tree survives the round trip.
    """
    events = []
    for span in spans:
        args: Dict[str, object] = {
            "trace_id": span.trace_id,
            "span_id": span.span_id,
            "parent_id": span.parent_id,
        }
        args.update(span.args)
        # Sweep-telemetry spans carry the pool slot that ran them; give
        # each slot its own Perfetto thread row.  Simulation spans never
        # set worker_slot, so their documents are unchanged.
        slot = span.args.get("worker_slot")
        event: Dict[str, object] = {
            "name": span.name,
            "cat": span.category or "sim",
            "ts": span.start_ns / 1000.0,
            "pid": 1,
            "tid": slot + 1 if isinstance(slot, int) and slot >= 0 else 1,
            "args": args,
        }
        if span.duration_ns > 0.0 or span.category in (
                CATEGORY_ACCESS, CATEGORY_WALK, CATEGORY_MISS, CATEGORY_STAGE):
            event["ph"] = "X"
            event["dur"] = span.duration_ns / 1000.0
        else:
            event["ph"] = "i"
            event["s"] = "t"
        events.append(event)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "metadata": dict(metadata or {}),
    }


def write_perfetto(spans: Iterable[Span], handle: IO[str],
                   metadata: Optional[Mapping[str, object]] = None) -> None:
    json.dump(perfetto_document(spans, metadata), handle, sort_keys=True)


def spans_from_perfetto(document: Mapping[str, object]) -> List[Span]:
    """Rebuild spans from a Perfetto document we exported."""
    events = document.get("traceEvents")
    if not isinstance(events, list):
        raise ConfigError("not a Perfetto trace: missing traceEvents list")
    spans = []
    for event in events:
        args = dict(event.get("args", {}) or {})
        try:
            trace_id = int(args.pop("trace_id"))
            span_id = int(args.pop("span_id"))
            parent_id = args.pop("parent_id", None)
        except KeyError as error:
            raise ConfigError(
                f"Perfetto event lacks span linkage args: {error}") from error
        spans.append(Span(
            trace_id=trace_id,
            span_id=span_id,
            parent_id=None if parent_id is None else int(parent_id),
            name=str(event.get("name", "")),
            category=str(event.get("cat", "")),
            start_ns=float(event.get("ts", 0.0)) * 1000.0,
            duration_ns=float(event.get("dur", 0.0)) * 1000.0,
            args=args,
        ))
    return spans


def load_spans(path: Union[str, Path]) -> List[Span]:
    """Read spans from either export format (by content, not extension)."""
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as error:
        raise ConfigError(f"cannot read trace {str(path)!r}: {error}") from error
    if not text.strip():
        return []
    # Both formats start with "{": a Perfetto document is one JSON value,
    # span JSONL is one value *per line* -- so sniff by whole-text parse.
    try:
        document = json.loads(text)
    except json.JSONDecodeError:
        document = None
    if isinstance(document, Mapping):
        if "traceEvents" in document:
            return spans_from_perfetto(document)
        return [Span.from_dict(document)]  # a one-line JSONL file
    spans = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            spans.append(Span.from_dict(json.loads(line)))
        except json.JSONDecodeError as error:
            raise ConfigError(
                f"{str(path)!r} is not span JSONL: {error}") from error
    return spans


def write_trace_file(spans: Iterable[Span], path: Union[str, Path],
                     metadata: Optional[Mapping[str, object]] = None) -> None:
    """Write spans in the format the destination's extension names.

    ``.jsonl`` gets the line-oriented span format; anything else gets the
    Perfetto document.
    """
    path = Path(path)
    try:
        with open(path, "w") as handle:
            if path.suffix == ".jsonl":
                write_spans_jsonl(spans, handle)
            else:
                write_perfetto(spans, handle, metadata)
    except OSError as error:
        raise ConfigError(
            f"cannot write trace to {str(path)!r}: {error}") from error


def convert_trace(src: Union[str, Path], dst: Union[str, Path]) -> int:
    """``repro trace convert``: JSONL <-> Perfetto by extension.

    Returns the number of spans converted.
    """
    spans = load_spans(src)
    write_trace_file(spans, dst, metadata={"converted_from": str(src)})
    return len(spans)


# ----------------------------------------------------------------------
# --trace-events writer (bus events, not spans)
# ----------------------------------------------------------------------


class TraceEventWriter:
    """Context-managed JSONL sink for raw ``EventBus`` events.

    Owns the output file: opening happens in the constructor (so a bad
    path fails before the expensive trace build), the handler subscribes
    with :meth:`attach`, and :meth:`close` -- idempotent, invoked by the
    simulator's teardown path or the ``with`` block, whichever comes
    first -- detaches the handler, flushes, and closes.  Early exits
    (watchdog truncation, fault-path failures) therefore never leave a
    truncated, unflushed event file behind.
    """

    FLUSH_EVERY = 256

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = str(path)
        try:
            self._handle: Optional[IO[str]] = open(path, "w")
        except OSError as error:
            raise ConfigError(
                f"cannot write trace events to {self.path!r}: {error}"
            ) from error
        self._bus: Optional[EventBus] = None
        self.events_written = 0

    def attach(self, bus: EventBus) -> "TraceEventWriter":
        self._bus = bus
        bus.subscribe_all(self._on_event)
        return self

    def _on_event(self, event: Event) -> None:
        handle = self._handle
        if handle is None:
            return
        handle.write(json.dumps(event.as_dict(), sort_keys=True) + "\n")
        self.events_written += 1
        if self.events_written % self.FLUSH_EVERY == 0:
            handle.flush()

    @property
    def closed(self) -> bool:
        return self._handle is None

    def close(self) -> None:
        if self._bus is not None:
            self._bus.unsubscribe(self._on_event)
            self._bus = None
        if self._handle is not None:
            try:
                self._handle.flush()
            finally:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "TraceEventWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
