"""The zero-observer fast replay loop (``docs/performance.md``).

:func:`run_fast` replays a workload trace with state transitions
identical to ``Simulator.run`` + ``Simulator._one_access`` -- same stat
mutations, same RNG draw sequence, same DRAM bank/queue evolution, same
float accumulation order -- but with every observer hook removed and the
per-access object graph (``AccessResult``, ``MissResult``,
``ServiceTimeline``, ``ReadResult``) elided:

* the trace is preprocessed column-wise (vpn / TLB tag / block index
  arrays via numpy when available);
* TLB lookup/fill and the cache hierarchy run through inlined or
  allocation-free twins (``CacheHierarchy.access_fast``,
  ``MemoryController.serve_l3_miss_fast``);
* every invariant attribute lookup is hoisted out of the loop into a
  bound local, and cache-level latencies are precomputed per hit level.

Eligibility is gated by ``Simulator.fast_path_eligible`` (no tracer,
timeseries recorder, profiler, fault injector, supervisor, bus
subscriber, resilience, or virtualization).  The ``--emit-json``
byte-equality golden (fast on vs off, all controllers) pins the
contract: if the two loops ever diverge observably, that is a bug in
this module.
"""

from __future__ import annotations

try:  # numpy ships with the toolchain; fall back to pure python anyway
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

from repro.core.base import MemoryController, PATH_CTE_HIT


def _columns(trace, huge_pages: bool):
    """Split the trace into (vpns, tags, block_indices, writes) columns."""
    if _np is not None:
        try:
            vaddrs = _np.fromiter((record[0] for record in trace),
                                  dtype=_np.int64, count=len(trace))
        except OverflowError:  # addresses beyond int64: rare, stay portable
            vaddrs = None
        if vaddrs is not None:
            vpns = (vaddrs >> 12).tolist()
            tags = (vaddrs >> 21).tolist() if huge_pages else vpns
            blocks = ((vaddrs & 0xFFF) >> 6).tolist()
            writes = [record[1] for record in trace]
            return vpns, tags, blocks, writes
    vpns = [record[0] >> 12 for record in trace]
    tags = [vpn >> 9 for vpn in vpns] if huge_pages else vpns
    blocks = [(record[0] & 0xFFF) >> 6 for record in trace]
    writes = [record[1] for record in trace]
    return vpns, tags, blocks, writes


def run_fast(sim, state) -> None:
    """Run ``sim``'s trace replay loop from ``state`` to completion.

    Mutates the same simulator state the slow loop would (clock, run
    progress, sim counters, every component) and returns nothing; the
    caller builds the result exactly as for a slow run.
    """
    trace = sim.workload.trace
    n = len(trace)
    config = sim.system
    compute_ns = config.cycles_to_ns(sim.workload.compute_cycles_per_access)
    mlp = config.mlp_stall_factor

    # Per-hit-level stall latencies: same integer cycle counts as the
    # slow path feeds cycles_to_ns, so the floats are bit-identical.
    cache_config = sim.hierarchy.config
    l1_cycles = cache_config.l1_latency
    l2_cycles = l1_cycles + cache_config.l2_latency
    l3_cycles = l2_cycles + cache_config.l3_latency
    lat = (config.cycles_to_ns(l1_cycles), config.cycles_to_ns(l2_cycles),
           config.cycles_to_ns(l3_cycles), config.cycles_to_ns(l3_cycles))

    huge_pages = sim.huge_pages
    vpns, tags, blocks, writes = _columns(trace, huge_pages)

    # Hoisted hot references (the slow loop re-resolves these per access).
    tlb = sim.tlb
    tlb_lru = tlb._lru
    tlb_move = tlb_lru.move_to_end
    tlb_entries = tlb.entries
    tlb_stats = tlb.stats
    controller = sim.controller
    serve_fast = controller.serve_l3_miss_fast
    serve_writeback = controller.serve_writeback
    hierarchy = sim.hierarchy
    access_fast = hierarchy.access_fast
    access_miss = hierarchy.access_fast_miss
    # The L1 probe of the demand-access path is inlined below; these are
    # its ingredients (CacheHierarchy.access_fast, first half).
    prefetch_on = hierarchy.config.enable_prefetch
    nl_outstanding = hierarchy._next_line._outstanding
    l1_sets = hierarchy.l1._sets
    l1_mask = hierarchy.l1.num_sets - 1
    l1_stats = hierarchy.l1.stats
    lat_l1 = lat[0]
    walker = sim.walker
    walks_counter = walker.walks
    ptb_fetches_counter = walker.ptb_fetches
    pwc_first = walker.pwc.first_fetch_level
    pwc_fill = walker.pwc.fill
    walk_path = sim.table.walk_path
    table_ptb_at = sim.table.ptb_at
    # vpn -> ((level, ptb address) pairs, huge) | None for unmapped vpns.
    # The page table is static while a run is in flight, so the walk path
    # (PageWalker.walk minus its dynamic PWC interaction) memoizes; the
    # PWC start level, its LRU/stat updates, and the walker counters are
    # still replayed per walk.
    walk_cache: dict = {}
    note_ptb = controller.note_ptb_fetch
    # Base-class note_ptb_fetch is a no-op and table.ptb_at is side-effect
    # free, so both calls are skipped for controllers that don't harvest
    # embedded CTEs (everything but TMCC).
    do_note = (type(controller).note_ptb_fetch
               is not MemoryController.note_ptb_fetch)
    translate = sim._translate_vpn
    vpn_to_ppn_get = sim._vpn_to_ppn.get
    reset_stats = sim._reset_stats
    clock = sim.clock
    writebacks: list = []

    now = clock.now_ns
    index = state.index
    warmup_end = state.warmup_end
    measured = state.measured
    tlb_misses = sim._tlb_misses
    l3_data_misses = sim._l3_data_misses
    fig5_cte_misses = sim._fig5_cte_misses
    fig5_after_tlb = sim._fig5_after_tlb

    try:
        while index < n:
            if index == warmup_end:
                reset_stats()
                tlb_misses = 0
                l3_data_misses = 0
                fig5_cte_misses = 0
                fig5_after_tlb = 0
                state.measure_start_ns = now
            now += compute_ns

            vpn = vpns[index]
            tag = tags[index]
            stall = 0.0

            # -- TLB lookup (TLB.lookup + TLB.fill, inlined) ------------
            tlb_stats.total += 1
            if tag in tlb_lru:
                tlb_stats.hits += 1
                tlb_move(tag)
                tlb_missed = False
            else:
                tlb_missed = True
                tlb_misses += 1
                # -- page walk (Simulator._page_walk + PageWalker.walk,
                # inlined with the static walk path memoized) -----------
                walks_counter.value += 1
                if vpn in walk_cache:
                    cached = walk_cache[vpn]
                else:
                    try:
                        path = walk_path(vpn)
                    except KeyError:
                        cached = walk_cache[vpn] = None
                    else:
                        cached = walk_cache[vpn] = (
                            tuple((lvl, addr) for lvl, addr, _ in path),
                            path[-1][0] == 2,
                        )
                if cached is not None:
                    path_pairs, walk_huge = cached
                    start_level = pwc_first(vpn)
                    fetches = [pair for pair in path_pairs
                               if pair[0] <= start_level]
                    ptb_fetches_counter.value += len(fetches)
                    pwc_fill(vpn)
                    for level, ptb_address in fetches:
                        del writebacks[:]
                        hit_level = access_fast(ptb_address >> 6, False,
                                                True, writebacks)
                        stall += lat[hit_level]
                        if hit_level == 3:
                            latency, path = serve_fast(
                                ptb_address >> 12, (ptb_address >> 6) & 63,
                                now + stall, False)
                            stall += latency
                            if path != PATH_CTE_HIT:
                                fig5_cte_misses += 1
                                fig5_after_tlb += 1
                        if writebacks:
                            drain_at = now + stall
                            for block in writebacks:
                                serve_writeback(block >> 6, block & 63,
                                                drain_at)
                        if do_note:
                            note_ptb(level, ptb_address,
                                     table_ptb_at(ptb_address),
                                     walk_huge and level == 2)
                if tag in tlb_lru:
                    tlb_move(tag)
                    tlb_lru[tag] = 0
                else:
                    if len(tlb_lru) >= tlb_entries:
                        tlb_lru.popitem(last=False)
                    tlb_lru[tag] = 0

            # -- data access (Simulator._one_access tail, inlined; the
            # L1-hit case is CacheHierarchy.access_fast unrolled) --------
            ppn = translate(vpn) if huge_pages else vpn_to_ppn_get(vpn)
            if ppn is not None:
                block_index = blocks[index]
                is_write = writes[index]
                block = ppn * 64 + block_index
                if prefetch_on and block in nl_outstanding:
                    nl_outstanding[block] = True
                l1_entries = l1_sets[block & l1_mask]
                line = l1_entries.get(block)
                l1_stats.total += 1
                if line is not None:
                    l1_stats.hits += 1
                    l1_entries.move_to_end(block)
                    if is_write:
                        line.dirty = True
                    stall += lat_l1
                else:
                    del writebacks[:]
                    hit_level = access_miss(block, is_write, False,
                                            writebacks)
                    stall += lat[hit_level]
                    if hit_level == 3:
                        l3_data_misses += 1
                        latency, path = serve_fast(ppn, block_index,
                                                   now + stall, is_write)
                        stall += latency
                        if path != PATH_CTE_HIT:
                            fig5_cte_misses += 1
                            if tlb_missed:
                                fig5_after_tlb += 1
                    if writebacks:
                        drain_at = now + stall
                        for block in writebacks:
                            serve_writeback(block >> 6, block & 63, drain_at)

            now += stall * mlp
            if index >= warmup_end:
                measured += 1
            index += 1
    finally:
        # Flush loop-local state back onto the simulator, also on error.
        clock.now_ns = now
        state.index = index
        state.measured = measured
        sim._tlb_misses = tlb_misses
        sim._l3_data_misses = l3_data_misses
        sim._fig5_cte_misses = fig5_cte_misses
        sim._fig5_after_tlb = fig5_after_tlb
