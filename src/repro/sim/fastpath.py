"""The zero-observer fast replay loop (``docs/performance.md``).

:func:`run_fast` replays a workload trace with state transitions
identical to ``Simulator.run`` + ``Simulator._one_access`` -- same stat
mutations, same RNG draw sequence, same DRAM bank/queue evolution, same
float accumulation order -- but with every observer hook removed and the
per-access object graph (``AccessResult``, ``MissResult``,
``ServiceTimeline``, ``ReadResult``) elided:

* the trace is preprocessed column-wise (vpn / TLB tag / block index
  arrays via numpy when available);
* TLB lookup/fill and the cache hierarchy run through inlined or
  allocation-free twins (``CacheHierarchy.access_fast``,
  ``MemoryController.serve_l3_miss_fast``);
* every invariant attribute lookup is hoisted out of the loop into a
  bound local, and cache-level latencies are precomputed per hit level.

Eligibility is gated by ``Simulator.fast_path_eligible`` (no tracer,
timeseries recorder, profiler, fault injector, supervisor, bus
subscriber, resilience, or virtualization).  The ``--emit-json``
byte-equality golden (fast on vs off, all controllers) pins the
contract: if the two loops ever diverge observably, that is a bug in
this module.
"""

from __future__ import annotations

from functools import reduce as _reduce
from itertools import compress as _compress
from operator import add as _add

from repro.core.base import MemoryController, PATH_CTE_HIT
from repro.sim.columns import trace_columns

#: Largest pre-classified chunk the batched front end will take at once.
_MAX_CHUNK = 512


def run_fast(sim, state) -> None:
    """Run ``sim``'s trace replay loop from ``state`` to completion.

    Mutates the same simulator state the slow loop would (clock, run
    progress, sim counters, every component) and returns nothing; the
    caller builds the result exactly as for a slow run.
    """
    trace = sim.workload.trace
    n = len(trace)
    config = sim.system
    compute_ns = config.cycles_to_ns(sim.workload.compute_cycles_per_access)
    mlp = config.mlp_stall_factor

    # Per-hit-level stall latencies: same integer cycle counts as the
    # slow path feeds cycles_to_ns, so the floats are bit-identical.
    cache_config = sim.hierarchy.config
    l1_cycles = cache_config.l1_latency
    l2_cycles = l1_cycles + cache_config.l2_latency
    l3_cycles = l2_cycles + cache_config.l3_latency
    lat = (config.cycles_to_ns(l1_cycles), config.cycles_to_ns(l2_cycles),
           config.cycles_to_ns(l3_cycles), config.cycles_to_ns(l3_cycles))

    huge_pages = sim.huge_pages
    vpns, tags, blocks, writes = trace_columns(trace, huge_pages)

    # Global-block column: ppn * 64 + block_index, or -1 for unmapped
    # vpns.  Translation is static while a run is in flight (same
    # invariant the walk-path memo below relies on), so the whole column
    # is precomputed once.
    if huge_pages:
        memo = {v: sim._translate_vpn(v) for v in set(vpns)}
    else:
        memo = sim._vpn_to_ppn
    memo_get = memo.get
    gblocks = [-1 if (p := memo_get(v)) is None else p * 64 + b
               for v, b in zip(vpns, blocks)]

    # Hoisted hot references (the slow loop re-resolves these per access).
    tlb = sim.tlb
    tlb_lru = tlb._lru
    tlb_slots = tlb_lru._slot
    tlb_move = tlb_lru.move_to_end
    tlb_insert = tlb_lru.insert_mru
    tlb_pop = tlb_lru.pop_lru
    tlb_entries = tlb.entries
    tlb_stats = tlb.stats
    controller = sim.controller
    serve_fast = controller.serve_l3_miss_fast
    serve_writeback = controller.serve_writeback
    hierarchy = sim.hierarchy
    access_fast = hierarchy.access_fast
    access_miss = hierarchy.access_fast_miss
    # The L1 probe of the demand-access path is inlined below; these are
    # its ingredients (CacheHierarchy.access_fast, first half).
    prefetch_on = hierarchy.config.enable_prefetch
    nl_outstanding = hierarchy._next_line._outstanding
    l1 = hierarchy.l1
    l1_index = l1._index
    l1_index_get = l1_index.get
    l1_orders = l1._orders
    l1_dirty = l1._dirty
    l1_mask = l1.num_sets - 1
    l1_stats = l1.stats
    lat_l1 = lat[0]
    walker = sim.walker
    walks_counter = walker.walks
    ptb_fetches_counter = walker.ptb_fetches
    pwc_first = walker.pwc.first_fetch_level
    pwc_fill = walker.pwc.fill
    walk_path = sim.table.walk_path
    table_ptb_at = sim.table.ptb_at
    # vpn -> ((level, ptb address) pairs, huge) | None for unmapped vpns.
    # The page table is static while a run is in flight, so the walk path
    # (PageWalker.walk minus its dynamic PWC interaction) memoizes; the
    # PWC start level, its LRU/stat updates, and the walker counters are
    # still replayed per walk.
    walk_cache: dict = {}
    note_ptb = controller.note_ptb_fetch
    # Base-class note_ptb_fetch is a no-op and table.ptb_at is side-effect
    # free, so both calls are skipped for controllers that don't harvest
    # embedded CTEs (everything but TMCC).
    do_note = (type(controller).note_ptb_fetch
               is not MemoryController.note_ptb_fetch)
    reset_stats = sim._reset_stats
    clock = sim.clock
    writebacks: list = []

    # Batched front end ingredients: membership predicates (all C-level),
    # the alternating (compute, stall * mlp) float increments of an
    # L1-hit access, and the adaptive chunk width.
    tlb_has = tlb_slots.__contains__
    l1_has = l1_index.__contains__
    nl_has = nl_outstanding.__contains__
    from_keys = dict.fromkeys
    batch_pairs = (compute_ns, lat_l1 * mlp) * _MAX_CHUNK
    chunk = 64   # outer (TLB-hit) pre-classification width
    lchunk = 8   # inner (L1-hit) window width

    now = clock.now_ns
    index = state.index
    warmup_end = state.warmup_end
    measured = state.measured
    tlb_misses = sim._tlb_misses
    l3_data_misses = sim._l3_data_misses
    fig5_cte_misses = sim._fig5_cte_misses
    fig5_after_tlb = sim._fig5_after_tlb

    try:
        while index < n:
            if index == warmup_end:
                reset_stats()
                tlb_misses = 0
                l3_data_misses = 0
                fig5_cte_misses = 0
                fig5_after_tlb = 0
                state.measure_start_ns = now

            # -- batched front end ---------------------------------------
            # Two-level chunk pre-classification.  Outer: the TLB-hit
            # prefix of the next chunk (nothing ever invalidates TLB
            # entries mid-run, and hits never change TLB membership, so
            # the prefix stays valid however the accesses below unfold);
            # its lookups/fills collapse to bulk stat sums plus one
            # recency move per distinct tag (last occurrence wins).
            # Inner: within the TLB-hit run, all-(mapped ∧ L1 hit)
            # windows batch the same way; L1 *membership* only changes on
            # a miss, so each window is valid up to its first predicted
            # miss and the residue access runs through a per-access twin
            # of the data tail, after which the window re-classifies.
            # Chunks never straddle the warmup boundary.  Final state is
            # identical to the scalar loop's: recency moves collapse to
            # each key's last occurrence, stats are bulk sums, and the
            # clock advances by the same alternating float adds in the
            # same order.
            end = index + chunk
            if index < warmup_end < end:
                end = warmup_end
            if end > n:
                end = n
            span = end - index
            if span >= 2:
                seg_tags = tags[index:end]
                tflags = list(map(tlb_has, seg_tags))
                try:
                    tp = tflags.index(False)
                except ValueError:
                    tp = span
                # Streak-adaptive outer width.
                chunk = 2 * tp + 2
                if chunk > _MAX_CHUNK:
                    chunk = _MAX_CHUNK
                elif chunk < 16:
                    chunk = 16
                if tp:
                    tlb_stats.total += tp
                    tlb_stats.hits += tp
                    for t in reversed(from_keys(
                            reversed(seg_tags[:tp] if tp != span
                                     else seg_tags))):
                        tlb_move(t)
                    stop = index + tp
                    while index < stop:
                        wend = index + lchunk
                        if wend > stop:
                            wend = stop
                        seg_blocks = gblocks[index:wend]
                        lflags = list(map(l1_has, seg_blocks))
                        try:
                            q = lflags.index(False)
                        except ValueError:
                            q = wend - index
                        lchunk = 2 * q + 2
                        if lchunk > 64:
                            lchunk = 64
                        elif lchunk < 4:
                            lchunk = 4
                        if q:
                            if q != len(seg_blocks):
                                seg_blocks = seg_blocks[:q]
                            l1_stats.total += q
                            l1_stats.hits += q
                            for b in reversed(from_keys(
                                    reversed(seg_blocks))):
                                slot = l1_index[b]
                                order = l1_orders[b & l1_mask]
                                if order[-1] != slot:
                                    order.remove(slot)
                                    order.append(slot)
                            if prefetch_on and nl_outstanding:
                                for b in filter(nl_has, seg_blocks):
                                    nl_outstanding[b] = True
                            for b in _compress(seg_blocks,
                                               writes[index:index + q]):
                                l1_dirty[l1_index[b]] = 1
                            now = _reduce(_add, batch_pairs[:2 * q], now)
                            if index >= warmup_end:
                                measured += q
                            index += q
                        if index < stop:
                            # Residue inside a TLB-hit run: an unmapped
                            # vpn or (far more often) an L1 miss.  Twin
                            # of the data tail below, with the TLB work
                            # already done and tlb_missed == False.
                            now += compute_ns
                            stall = 0.0
                            block = gblocks[index]
                            if block >= 0:
                                is_write = writes[index]
                                if prefetch_on and block in nl_outstanding:
                                    nl_outstanding[block] = True
                                slot = l1_index_get(block)
                                l1_stats.total += 1
                                if slot is not None:
                                    l1_stats.hits += 1
                                    order = l1_orders[block & l1_mask]
                                    if order[-1] != slot:
                                        order.remove(slot)
                                        order.append(slot)
                                    if is_write:
                                        l1_dirty[slot] = 1
                                    stall += lat_l1
                                else:
                                    del writebacks[:]
                                    hit_level = access_miss(
                                        block, is_write, False, writebacks)
                                    stall += lat[hit_level]
                                    if hit_level == 3:
                                        l3_data_misses += 1
                                        latency, path = serve_fast(
                                            block >> 6, block & 63,
                                            now + stall, is_write)
                                        stall += latency
                                        if path != PATH_CTE_HIT:
                                            fig5_cte_misses += 1
                                    if writebacks:
                                        drain_at = now + stall
                                        for block in writebacks:
                                            serve_writeback(
                                                block >> 6, block & 63,
                                                drain_at)
                            now += stall * mlp
                            if index >= warmup_end:
                                measured += 1
                            index += 1
                    if tp == span:
                        continue
                    # else: the access at ``index`` is a known TLB miss;
                    # fall through to the full per-access twin.

            now += compute_ns

            vpn = vpns[index]
            tag = tags[index]
            stall = 0.0

            # -- TLB lookup (TLB.lookup + TLB.fill, inlined) ------------
            tlb_stats.total += 1
            if tag in tlb_slots:
                tlb_stats.hits += 1
                tlb_move(tag)
                tlb_missed = False
            else:
                tlb_missed = True
                tlb_misses += 1
                # -- page walk (Simulator._page_walk + PageWalker.walk,
                # inlined with the static walk path memoized) -----------
                walks_counter.value += 1
                if vpn in walk_cache:
                    cached = walk_cache[vpn]
                else:
                    try:
                        path = walk_path(vpn)
                    except KeyError:
                        cached = walk_cache[vpn] = None
                    else:
                        cached = walk_cache[vpn] = (
                            tuple((lvl, addr) for lvl, addr, _ in path),
                            path[-1][0] == 2,
                        )
                if cached is not None:
                    path_pairs, walk_huge = cached
                    start_level = pwc_first(vpn)
                    fetches = [pair for pair in path_pairs
                               if pair[0] <= start_level]
                    ptb_fetches_counter.value += len(fetches)
                    pwc_fill(vpn)
                    for level, ptb_address in fetches:
                        del writebacks[:]
                        hit_level = access_fast(ptb_address >> 6, False,
                                                True, writebacks)
                        stall += lat[hit_level]
                        if hit_level == 3:
                            latency, path = serve_fast(
                                ptb_address >> 12, (ptb_address >> 6) & 63,
                                now + stall, False)
                            stall += latency
                            if path != PATH_CTE_HIT:
                                fig5_cte_misses += 1
                                fig5_after_tlb += 1
                        if writebacks:
                            drain_at = now + stall
                            for block in writebacks:
                                serve_writeback(block >> 6, block & 63,
                                                drain_at)
                        if do_note:
                            note_ptb(level, ptb_address,
                                     table_ptb_at(ptb_address),
                                     walk_huge and level == 2)
                if tag in tlb_slots:
                    tlb_move(tag)
                else:
                    if len(tlb_slots) >= tlb_entries:
                        tlb_pop()
                    tlb_insert(tag, 0)

            # -- data access (Simulator._one_access tail, inlined; the
            # L1-hit case is CacheHierarchy.access_fast unrolled) --------
            block = gblocks[index]
            if block >= 0:
                is_write = writes[index]
                if prefetch_on and block in nl_outstanding:
                    nl_outstanding[block] = True
                slot = l1_index_get(block)
                l1_stats.total += 1
                if slot is not None:
                    l1_stats.hits += 1
                    order = l1_orders[block & l1_mask]
                    if order[-1] != slot:
                        order.remove(slot)
                        order.append(slot)
                    if is_write:
                        l1_dirty[slot] = 1
                    stall += lat_l1
                else:
                    del writebacks[:]
                    hit_level = access_miss(block, is_write, False,
                                            writebacks)
                    stall += lat[hit_level]
                    if hit_level == 3:
                        l3_data_misses += 1
                        latency, path = serve_fast(block >> 6, block & 63,
                                                   now + stall, is_write)
                        stall += latency
                        if path != PATH_CTE_HIT:
                            fig5_cte_misses += 1
                            if tlb_missed:
                                fig5_after_tlb += 1
                    if writebacks:
                        drain_at = now + stall
                        for block in writebacks:
                            serve_writeback(block >> 6, block & 63, drain_at)

            now += stall * mlp
            if index >= warmup_end:
                measured += 1
            index += 1
    finally:
        # Flush loop-local state back onto the simulator, also on error.
        clock.now_ns = now
        state.index = index
        state.measured = measured
        sim._tlb_misses = tlb_misses
        sim._l3_data_misses = l3_data_misses
        sim._fig5_cte_misses = fig5_cte_misses
        sim._fig5_after_tlb = fig5_after_tlb
