"""Run supervision: periodic checkpoints, resume, wall-clock watchdog.

The ROADMAP's production-scale north star needs long simulations that
survive faults instead of dying at access 3 million.  The supervisor
wraps :meth:`repro.sim.simulator.Simulator.run` with three behaviours:

- **Checkpointing** -- every ``checkpoint_every`` accesses the whole
  simulator object (controller, caches, DRAM queues, RNG streams, clock,
  and the loop's :class:`~repro.sim.simulator.RunProgress`) is pickled
  atomically to ``checkpoint_path``.  Restoring with
  :func:`load_checkpoint` and calling ``run()`` again continues the
  replay with bit-identical results: RNG state is part of the pickle.
- **Wall-clock watchdog** -- when ``wall_clock_limit_s`` elapses the run
  stops *gracefully*: a final checkpoint is written and a partial
  :class:`~repro.sim.results.SimResult` flagged ``truncated`` (with the
  stop reason in ``error``) is still returned, so ``--emit-json``
  consumers get every metric collected so far.
- **Error structuring** -- checkpoint I/O failures surface as
  :class:`~repro.common.errors.ResourceError`; malformed checkpoint
  files as :class:`~repro.common.errors.ConfigError` (see the taxonomy
  in :mod:`repro.common.errors`).

Checkpoint format: a pickle of ``{"version", "workload", "controller",
"access_index", "simulator"}``.  The header fields exist so tools can
identify a checkpoint without unpickling the (large) simulator; the
version gate keeps stale files from resuming silently wrong.
"""

from __future__ import annotations

import os
import pickle
import time
from typing import Callable, Optional

from repro.common.errors import (  # noqa: F401  (re-exported taxonomy)
    ConfigError,
    ModelInvariantError,
    ResourceError,
    SimError,
    classify_error,
)
from repro.sim.results import SimResult
from repro.sim.simulator import RunProgress, Simulator

#: Bump when the pickled layout changes incompatibly.
CHECKPOINT_VERSION = 1

#: The watchdog samples the wall clock once per this many accesses --
#: cheap enough to leave on, coarse enough to stay off the hot path.
_WATCHDOG_STRIDE = 64


def save_checkpoint(sim: Simulator, path: str) -> None:
    """Atomically pickle the simulator (and its progress) to ``path``.

    Event-bus subscribers (closures over open trace files) are detached
    around the dump and restored afterwards; everything else the run
    depends on -- component state, RNG streams, fault-injector position,
    the clock -- is captured by value.
    """
    state = sim._run_state
    saved_subscribers = sim.context.bus.detach_subscribers()
    saved_owned = sim.context.detach_owned()
    try:
        payload = pickle.dumps({
            "version": CHECKPOINT_VERSION,
            "workload": sim.workload.name,
            "controller": sim.controller_name,
            "access_index": state.index if state is not None else 0,
            "simulator": sim,
        }, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as error:
        raise ResourceError(
            f"cannot serialize simulator state: {error}") from error
    finally:
        sim.context.restore_owned(saved_owned)
        sim.context.bus.restore_subscribers(saved_subscribers)
    tmp_path = f"{path}.tmp"
    try:
        with open(tmp_path, "wb") as handle:
            handle.write(payload)
            # Durability, not just atomicity: the tmp file's bytes must
            # be on disk before the rename, and the rename itself must
            # be journalled (the directory fsync), or a power cut can
            # leave `path` pointing at a zero-length file.
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
        _fsync_directory(os.path.dirname(path) or ".")
    except OSError as error:
        raise ResourceError(
            f"cannot write checkpoint to {path!r}: {error}") from error


def _fsync_directory(path: str) -> None:
    """fsync a directory so a just-renamed entry survives power loss.

    Best-effort: some platforms/filesystems refuse O_RDONLY directory
    fsync -- there the rename is as durable as the OS makes it."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def load_checkpoint(path: str) -> Simulator:
    """Restore a simulator saved by :func:`save_checkpoint`."""
    try:
        with open(path, "rb") as handle:
            record = pickle.load(handle)
    except OSError as error:
        raise ResourceError(
            f"cannot read checkpoint {path!r}: {error}") from error
    except (pickle.UnpicklingError, EOFError, AttributeError,
            ImportError) as error:
        raise ConfigError(
            f"{path!r} is not a repro checkpoint: {error}") from error
    if not isinstance(record, dict) or "simulator" not in record:
        raise ConfigError(f"{path!r} is not a repro checkpoint")
    version = record.get("version")
    if version != CHECKPOINT_VERSION:
        raise ConfigError(
            f"checkpoint {path!r} has version {version!r}; "
            f"this build reads version {CHECKPOINT_VERSION}"
        )
    return record["simulator"]


class RunSupervisor:
    """Drives a supervised (checkpointed, watchdogged) simulation run."""

    def __init__(
        self,
        checkpoint_path: Optional[str] = None,
        checkpoint_every: int = 0,
        wall_clock_limit_s: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
        heartbeat: Optional[Callable[[], None]] = None,
    ) -> None:
        if checkpoint_every < 0:
            raise ConfigError(
                f"checkpoint interval must be >= 0, got {checkpoint_every}")
        if checkpoint_every and not checkpoint_path:
            raise ConfigError(
                "checkpoint_every needs a checkpoint_path to write to")
        if wall_clock_limit_s is not None and wall_clock_limit_s <= 0:
            raise ConfigError(
                f"wall-clock limit must be > 0 s, got {wall_clock_limit_s}")
        self.checkpoint_path = checkpoint_path
        self.checkpoint_every = checkpoint_every
        self.wall_clock_limit_s = wall_clock_limit_s
        self._clock = clock
        #: Liveness callback, invoked once per watchdog stride.  The
        #: sweep worker pool points this at its shared heartbeat slot
        #: so the parent can tell a slow job from a hung child.
        self.heartbeat = heartbeat
        self._deadline: Optional[float] = None
        self.checkpoints_written = 0

    # ------------------------------------------------------------------
    # Simulator-facing hook
    # ------------------------------------------------------------------

    def on_access(self, sim: Simulator,
                  state: RunProgress) -> Optional[str]:
        """Called before each access; a non-None return stops the run."""
        if (self.checkpoint_every and state.index
                and state.index % self.checkpoint_every == 0):
            save_checkpoint(sim, self.checkpoint_path)
            self.checkpoints_written += 1
        if state.index % _WATCHDOG_STRIDE == 0:
            if self.heartbeat is not None:
                self.heartbeat()
            if (self._deadline is not None
                    and self._clock() >= self._deadline):
                return (f"wall-clock limit of {self.wall_clock_limit_s} s "
                        f"reached at access {state.index}")
        return None

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def run(self, sim: Simulator,
            warmup_fraction: float = 0.2) -> SimResult:
        """Run (or resume) ``sim`` under supervision.

        On watchdog truncation a final checkpoint is written (when a
        path is configured) so ``--resume`` can pick the run back up,
        and the partial result comes back flagged ``truncated``.
        """
        if self.wall_clock_limit_s is not None:
            self._deadline = self._clock() + self.wall_clock_limit_s
        result = sim.run(warmup_fraction=warmup_fraction, supervisor=self)
        if result.truncated and self.checkpoint_path:
            save_checkpoint(sim, self.checkpoint_path)
            self.checkpoints_written += 1
        return result
