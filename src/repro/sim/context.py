"""The shared simulation context: config, RNG streams, clock, components.

A :class:`SimContext` owns everything the hand-threaded constructor wiring
in the single- and multi-core simulators used to pass around piecemeal:

- the :class:`~repro.core.config.SystemConfig`,
- deterministic, **named** RNG streams (see :meth:`SimContext.rng`),
- the simulation clock,
- a component tree with dot-separated paths (``"core0.tlb"``,
  ``"controller.cte_cache"``), and
- the instrumentation surface (:class:`~repro.sim.instrument.EventBus` +
  :class:`~repro.sim.instrument.MetricsRegistry`).

Registering a component wires its statistics into the metrics registry
automatically, so every simulator front-end (single-core, multi-core,
CLI, benchmarks) reads the same namespaced keys.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.common.rng import DeterministicRNG
from repro.common.stats import Counter, Histogram, RatioStat, StatGroup
from repro.core.config import SystemConfig
from repro.sim.instrument import EventBus, MetricsRegistry, Probe, StatSource

#: Named RNG stream derivations.  The constants are load-bearing: they
#: reproduce the exact per-purpose seeds of the original constructor
#: wiring, so a given user seed produces bit-identical simulations across
#: the refactor.  New streams must pick fresh constants.
_RNG_STREAMS: Dict[str, Callable[[int], int]] = {
    "frames": lambda seed: seed,              # guest frame allocator
    "populate": lambda seed: seed + 1,        # guest page-table populator
    "host_frames": lambda seed: seed + 7,     # host frame allocator (virt)
    "host_populate": lambda seed: seed + 8,   # host populator (virt)
    "placement": lambda seed: seed ^ 0xD81F7,  # warm-up placement drift
    "compression": lambda seed: seed,         # page compression sampling
    "controller": lambda seed: seed,          # controller-internal forks
    "faults": lambda seed: seed ^ 0xFA17_5EED,  # fault-injection sampling
}


class SimClock:
    """The simulation wall clock, in nanoseconds."""

    def __init__(self) -> None:
        self.now_ns = 0.0

    def advance(self, delta_ns: float) -> float:
        self.now_ns += delta_ns
        return self.now_ns

    def reset(self) -> None:
        self.now_ns = 0.0


class SimContext:
    """Owns config, RNG, clock, instrumentation, and the component tree."""

    def __init__(self, system: Optional[SystemConfig] = None,
                 seed: int = 1) -> None:
        self.system = system or SystemConfig()
        self.seed = seed
        self.clock = SimClock()
        self.bus = EventBus()
        self.metrics = MetricsRegistry()
        self._components: Dict[str, object] = {}
        #: Host-side wall-clock profiler; None (the default) keeps every
        #: profiling guard a single attribute check.
        self.profiler = None
        #: Closable resources (trace writers) whose lifetime is tied to
        #: the simulation: the simulator's teardown closes them even
        #: when a run dies early.  See :meth:`own` / :meth:`close_owned`.
        self._owned: List[object] = []

    # ------------------------------------------------------------------
    # RNG streams
    # ------------------------------------------------------------------

    def rng(self, stream: str) -> DeterministicRNG:
        """A fresh deterministic generator for a named purpose.

        Streams are independent: each is seeded from the context seed via
        a stream-specific derivation, so components cannot perturb each
        other's randomness.  Calling twice with the same stream returns
        generators producing identical sequences -- construct once and
        keep the handle.
        """
        try:
            derive = _RNG_STREAMS[stream]
        except KeyError:
            raise ValueError(
                f"unknown RNG stream {stream!r}; "
                f"choose from {sorted(_RNG_STREAMS)}"
            ) from None
        return DeterministicRNG(derive(self.seed))

    # ------------------------------------------------------------------
    # Component tree
    # ------------------------------------------------------------------

    def register(self, path: str, component: object,
                 stats: Optional[StatSource] = None) -> object:
        """Add a component at a dot-separated tree path.

        Wires the component's statistics into :attr:`metrics` under the
        same path: an explicit ``stats`` source wins, otherwise a ``stats``
        attribute holding one of the :mod:`repro.common.stats` containers
        is attached automatically.  Returns the component for chaining::

            self.tlb = context.register("tlb", TLB(...))
        """
        if not path:
            raise ValueError("component path must be non-empty")
        if path in self._components:
            raise ValueError(f"component path {path!r} already registered")
        self._components[path] = component
        source = stats if stats is not None else getattr(component, "stats", None)
        if source is not None and (
            isinstance(source, (StatGroup, RatioStat, Counter, Histogram))
            or callable(source)
        ):
            self.metrics.attach(path, source)
        return component

    def component(self, path: str) -> object:
        try:
            return self._components[path]
        except KeyError:
            raise ValueError(
                f"unknown component {path!r}; "
                f"registered: {sorted(self._components)}"
            ) from None

    def components(self) -> List[Tuple[str, object]]:
        return sorted(self._components.items())

    def component_tree(self) -> Dict[str, object]:
        """The registered paths as nested dicts of component type names."""
        root: Dict[str, object] = {}
        for path, component in sorted(self._components.items()):
            node = root
            parts = path.split(".")
            for part in parts[:-1]:
                child = node.setdefault(part, {})
                if not isinstance(child, dict):
                    child = node[part] = {"": child}
                node = child
            leaf = parts[-1]
            label = type(component).__name__
            existing = node.get(leaf)
            if isinstance(existing, dict):
                existing[""] = label
            else:
                node[leaf] = label
        return root

    # ------------------------------------------------------------------
    # Instrumentation
    # ------------------------------------------------------------------

    def probe(self, namespace: str,
              stats: Optional[StatGroup] = None) -> Probe:
        """A :class:`Probe` bound to this context's bus (and profiler)."""
        return Probe(namespace, bus=self.bus, stats=stats,
                     profiler=self.profiler)

    def enable_profiling(self) -> "object":
        """Arm host-side wall-clock profiling (``profile.*`` metrics).

        Idempotent; returns the profiler.  Only opt-in callers reach
        this -- attaching the ``profile`` namespace changes metric dumps,
        which is exactly why no-flag runs never do.
        """
        if self.profiler is None:
            from repro.sim.profile import HostProfiler

            self.profiler = HostProfiler()
            self.metrics.attach("profile", self.profiler)
        return self.profiler

    def reset_metrics(self) -> None:
        """Warm-up boundary: zero statistics, keep all simulation state."""
        self.metrics.reset()

    # ------------------------------------------------------------------
    # Owned resources (simulator-teardown lifetime)
    # ------------------------------------------------------------------

    def own(self, resource: object) -> object:
        """Tie a closable resource's lifetime to the simulation.

        ``close_owned`` runs in the simulator's ``run()`` teardown (and
        again from CLI cleanup -- closing must be idempotent), so event
        writers are flushed and closed even when a run exits early via
        the watchdog or a fault-path failure.
        """
        self._owned.append(resource)
        return resource

    def close_owned(self) -> None:
        while self._owned:
            resource = self._owned.pop()
            close = getattr(resource, "close", None)
            if close is not None:
                close()

    def detach_owned(self) -> List[object]:
        """Remove (and return) owned resources around a checkpoint dump.

        Open file handles cannot pickle; the run supervisor detaches
        them like bus subscribers and restores with
        :meth:`restore_owned`.
        """
        saved = self._owned
        self._owned = []
        return saved

    def restore_owned(self, saved: List[object]) -> None:
        self._owned = saved
