"""Experiment orchestration for the paper's headline comparisons.

These functions implement the *protocols* of Section VII:

- ``iso_capacity_comparison`` -- Figure 17/18/19: run Compresso, measure
  its DRAM usage, run TMCC at exactly that budget, compare performance.
- ``iso_performance_capacity`` -- Table IV: shrink TMCC's DRAM budget
  until its performance drops to (>= 99% of) Compresso's; report the
  compression-ratio advantage at that operating point.
- ``osinspired_split`` -- Figure 20: TMCC vs the bare-bone OS-inspired
  design at matched budgets, with the fast-ML2-only ablation separating
  the ML1 (embedded CTE) and ML2 (fast Deflate) contributions.

Since the sweep engine landed, these protocols are thin layers over it:
each one declares a :class:`~repro.sweep.spec.SweepSpec` (or a single
matrix cell), runs it inline through
:func:`~repro.sweep.engine.run_sweep` /
:func:`~repro.sweep.worker.execute_job` with ``capture_errors=False``
(so historical raise behaviour is preserved), and reduces the recorded
rows back to the paper's dataclasses.  A protocol run here is therefore
the *same computation* as the matching cells of a ``repro sweep run``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.compmodel import PageCompressionModel
from repro.core.config import SystemConfig
from repro.sim.results import SimResult
from repro.workloads.trace import Workload

# The sweep layer imports repro.sim.results (hence this package), so
# its modules are imported lazily inside the protocol functions.


def run_workload(
    workload: Workload,
    controller: str,
    system: Optional[SystemConfig] = None,
    dram_budget_bytes: Optional[int] = None,
    huge_pages: bool = False,
    seed: int = 1,
    model: Optional[PageCompressionModel] = None,
    cores: int = 1,
    fast_path: str = "auto",
) -> SimResult:
    """Run one (workload, controller) configuration end to end.

    ``cores > 1`` routes through the multi-core engine (Table III's
    4-core configuration); huge pages are a single-core-only knob.
    ``fast_path`` is the :class:`Simulator` knob (auto/on/off); the
    multi-core engine is never fast-path eligible (the cores share an
    event bus), so ``"on"`` with ``cores > 1`` is rejected.
    """
    if cores > 1:
        if huge_pages:
            raise ValueError("huge_pages is only supported with cores=1")
        if fast_path == "on":
            raise ValueError("fast_path='on' is only supported with cores=1")
        from repro.sim.multicore import MultiCoreSimulator

        return MultiCoreSimulator(
            workload,
            num_cores=cores,
            controller=controller,
            system=system,
            dram_budget_bytes=dram_budget_bytes,
            seed=seed,
            model=model,
        ).run()
    from repro.sweep.worker import execute_job

    record = execute_job(
        _cell(workload, controller, seed,
              budget_bytes=dram_budget_bytes, huge_pages=huge_pages,
              fast_path=fast_path),
        budget_bytes=dram_budget_bytes,
        workload=workload,
        system=system,
        model=model,
        capture_errors=False,
    )
    return record["result"]


def _cell(workload: Workload, controller: str, seed: int,
          budget_bytes: Optional[int] = None, huge_pages: bool = False,
          fast_path: str = "auto"):
    """A free-standing matrix cell for one pre-built workload object."""
    from repro.sweep.spec import BudgetSpec, JobSpec

    budget = (BudgetSpec("bytes", float(budget_bytes))
              if budget_bytes else BudgetSpec("none"))
    return JobSpec(
        index=0, workload=workload.name, controller=controller,
        seed=seed, base_seed=seed, repeat=0, budget=budget, faults=None,
        accesses=len(workload.trace), scale=1.0, workload_seed=seed,
        fast_path=fast_path, huge_pages=huge_pages,
    )


def _shared_model(workload: Workload, system: SystemConfig,
                  seed: int) -> PageCompressionModel:
    """One compression oracle per workload so all controllers agree on
    per-page sizes/latencies."""
    return PageCompressionModel(
        workload.content,
        sample_pages=system.compression_samples,
        deflate_config=system.deflate,
        timing=system.deflate_timing,
        ibm=system.ibm_timing,
        seed=seed,
    )


@dataclass
class IsoCapacityResult:
    """Figure 17's data for one workload."""

    workload: str
    compresso: SimResult
    tmcc: SimResult

    @property
    def speedup(self) -> float:
        return self.tmcc.performance / self.compresso.performance

    @property
    def budget_bytes(self) -> int:
        return self.compresso.dram_used_bytes


def iso_capacity_comparison(
    workload: Workload,
    system: Optional[SystemConfig] = None,
    seed: int = 1,
    huge_pages: bool = False,
) -> IsoCapacityResult:
    """TMCC at Compresso's DRAM usage (saving the same amount of memory).

    Declared as a two-cell sweep (Compresso at its default budget as
    the iso reference, TMCC at ``iso``) and reduced via
    :func:`~repro.sweep.reduce.iso_capacity_rows`.
    """
    from repro.sweep.engine import run_sweep
    from repro.sweep.reduce import iso_capacity_rows
    from repro.sweep.spec import SweepSpec

    system = system or SystemConfig()
    model = _shared_model(workload, system, seed)
    spec = SweepSpec.build(
        name="iso-capacity",
        workloads=(workload.name,),
        controllers=("compresso", "tmcc@iso"),
        seeds=(seed,),
        huge_pages=huge_pages,
        known_workloads_only=False,
    )
    run = run_sweep(
        spec,
        capture_errors=False,
        workload_resolver=lambda job: workload,
        system=system,
        model=model,
    )
    row = iso_capacity_rows(run, subject="tmcc")[0]
    return IsoCapacityResult(workload.name, row["reference"], row["subject"])


@dataclass
class IsoPerformanceResult:
    """Table IV's data for one workload."""

    workload: str
    compresso: SimResult
    tmcc: SimResult

    @property
    def compresso_ratio(self) -> float:
        return self.compresso.compression_ratio

    @property
    def tmcc_ratio(self) -> float:
        return self.tmcc.compression_ratio

    @property
    def normalized_ratio(self) -> float:
        """Column F: TMCC's compression ratio over Compresso's."""
        return self.tmcc_ratio / self.compresso_ratio


def iso_performance_capacity(
    workload: Workload,
    system: Optional[SystemConfig] = None,
    seed: int = 1,
    performance_floor: float = 0.99,
    search_steps: int = 5,
) -> IsoPerformanceResult:
    """Shrink TMCC's budget until performance meets Compresso's floor.

    Binary-searches the DRAM budget between "fully compressed" and
    "Compresso's usage"; returns the smallest budget whose performance is
    still ``performance_floor`` of Compresso's.  Each probe is a single
    sweep-engine cell (through :func:`run_workload` /
    :func:`~repro.sweep.worker.execute_job`); the search itself stays
    sequential because every probe's budget depends on the last verdict.
    """
    system = system or SystemConfig()
    model = _shared_model(workload, system, seed)
    compresso = run_workload(workload, "compresso", system, seed=seed,
                             model=model)
    target = compresso.performance * performance_floor

    high = compresso.dram_used_bytes
    low = int(high * 0.25)
    best: Optional[SimResult] = None
    for _ in range(search_steps):
        mid = (low + high) // 2
        try:
            candidate = run_workload(workload, "tmcc", system,
                                     dram_budget_bytes=mid, seed=seed,
                                     model=model)
        except ValueError:  # budget below the compressible floor
            low = mid
            continue
        if candidate.performance >= target:
            best = candidate
            high = mid
        else:
            low = mid
    if best is None:
        best = run_workload(workload, "tmcc", system,
                            dram_budget_bytes=compresso.dram_used_bytes,
                            seed=seed, model=model)
    return IsoPerformanceResult(workload.name, compresso, best)


@dataclass
class SplitResult:
    """Figure 20's data for one workload at one DRAM budget."""

    workload: str
    osinspired: SimResult
    fast_ml2_only: SimResult
    tmcc: SimResult

    @property
    def total_speedup(self) -> float:
        return self.tmcc.performance / self.osinspired.performance

    @property
    def ml2_speedup(self) -> float:
        """Benefit of the fast Deflate alone."""
        return self.fast_ml2_only.performance / self.osinspired.performance

    @property
    def ml1_speedup(self) -> float:
        """Benefit of embedded CTEs on top of the fast Deflate."""
        return self.tmcc.performance / self.fast_ml2_only.performance


def osinspired_split(
    workload: Workload,
    dram_budget_bytes: int,
    system: Optional[SystemConfig] = None,
    seed: int = 1,
) -> SplitResult:
    """TMCC vs barebone OS-inspired at one budget, with the ML2 ablation.

    A three-controller sweep at one absolute byte budget.
    """
    from repro.sweep.engine import run_sweep
    from repro.sweep.spec import SweepSpec

    system = system or SystemConfig()
    model = _shared_model(workload, system, seed)
    spec = SweepSpec.build(
        name="osinspired-split",
        workloads=(workload.name,),
        controllers=tuple(
            {"name": name, "budgets": [int(dram_budget_bytes)]}
            for name in ("osinspired", "osinspired_fastml2", "tmcc")),
        seeds=(seed,),
        known_workloads_only=False,
    )
    run = run_sweep(
        spec,
        capture_errors=False,
        workload_resolver=lambda job: workload,
        system=system,
        model=model,
    )
    results = {name: run.result(run.find_jobs(controller=name)[0])
               for name in ("osinspired", "osinspired_fastml2", "tmcc")}
    return SplitResult(
        workload.name,
        osinspired=results["osinspired"],
        fast_ml2_only=results["osinspired_fastml2"],
        tmcc=results["tmcc"],
    )
