"""Host-side wall-clock profiling of the simulator's own Python code.

The simulated clock says where *modeled* time goes; this module says
where *host* time goes -- which Python hot path makes an 8-million-access
run slow.  It is deliberately tiny: a stack of named sections timed with
``time.perf_counter_ns``, aggregated into per-section inclusive
(``total_ns``), exclusive (``self_ns``), and call-count totals.

Everything is opt-in (``repro run --profile``).  When off, the
simulator's section guards are a single ``is None`` check and
:data:`NULL_TIMER` makes :meth:`~repro.sim.instrument.Probe.timed` free,
so no-flag runs pay nothing and stay bit-identical.

When on, the profiler registers as a callable metrics source under the
``profile.`` namespace::

    profile.<section>.total_ns   inclusive wall-clock time
    profile.<section>.self_ns    exclusive time (children subtracted)
    profile.<section>.calls      number of enter/exit pairs

Host time is inherently non-deterministic; ``profile.*`` keys exist only
under the flag precisely so deterministic metric dumps never contain
them.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Mapping


class _NullTimer:
    """Shared no-op context manager for profiling-off call sites."""

    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


#: The one instance every ``Probe.timed`` call shares when profiling is
#: off -- no allocation on the hot path.
NULL_TIMER = _NullTimer()


class _SectionTimer:
    """Context manager produced by :meth:`HostProfiler.section`."""

    __slots__ = ("_profiler", "_name")

    def __init__(self, profiler: "HostProfiler", name: str) -> None:
        self._profiler = profiler
        self._name = name

    def __enter__(self) -> "_SectionTimer":
        self._profiler.begin(self._name)
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._profiler.end()


class HostProfiler:
    """Stack-based self-time accounting over named sections.

    Sections nest: entering ``controller`` inside ``access`` attributes
    the controller's elapsed time to both sections' ``total_ns`` but
    only to the controller's ``self_ns`` -- the parent's exclusive time
    excludes its children, so the ``self_ns`` column localizes hot
    paths directly.
    """

    def __init__(self, clock: Callable[[], int] = time.perf_counter_ns) -> None:
        self._clock = clock
        #: (name, start_ns, accumulated child time) per open section.
        self._stack: List[List[object]] = []
        self._total_ns: Dict[str, int] = {}
        self._self_ns: Dict[str, int] = {}
        self._calls: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Timing
    # ------------------------------------------------------------------

    def begin(self, name: str) -> None:
        self._stack.append([name, self._clock(), 0])

    def end(self) -> None:
        if not self._stack:
            raise RuntimeError("HostProfiler.end() without a matching begin()")
        name, start_ns, child_ns = self._stack.pop()
        elapsed = self._clock() - start_ns
        self._total_ns[name] = self._total_ns.get(name, 0) + elapsed
        self._self_ns[name] = self._self_ns.get(name, 0) + elapsed - child_ns
        self._calls[name] = self._calls.get(name, 0) + 1
        if self._stack:
            self._stack[-1][2] += elapsed

    def section(self, name: str) -> _SectionTimer:
        """``with profiler.section("controller"): ...``"""
        return _SectionTimer(self, name)

    # ------------------------------------------------------------------
    # Reading (metrics-source protocol)
    # ------------------------------------------------------------------

    def sections(self) -> List[str]:
        return sorted(self._total_ns)

    def total_ns(self, name: str) -> int:
        return self._total_ns.get(name, 0)

    def self_ns(self, name: str) -> int:
        return self._self_ns.get(name, 0)

    def calls(self, name: str) -> int:
        return self._calls.get(name, 0)

    def __call__(self) -> Mapping[str, float]:
        """Flatten into ``<section>.total_ns/.self_ns/.calls`` keys."""
        out: Dict[str, float] = {}
        for name in self.sections():
            out[f"{name}.total_ns"] = self._total_ns[name]
            out[f"{name}.self_ns"] = self._self_ns[name]
            out[f"{name}.calls"] = self._calls[name]
        return out

    def reset(self) -> None:
        """Warm-up boundary support (open sections keep running)."""
        self._total_ns.clear()
        self._self_ns.clear()
        self._calls.clear()

    def report_rows(self) -> List[Dict[str, object]]:
        """Rows for human-facing rendering, hottest self-time first."""
        rows = [
            {
                "section": name,
                "calls": self._calls.get(name, 0),
                "total_ms": self._total_ns.get(name, 0) / 1e6,
                "self_ms": self._self_ns.get(name, 0) / 1e6,
            }
            for name in self.sections()
        ]
        rows.sort(key=lambda row: row["self_ms"], reverse=True)
        return rows
