"""Shared virtual-address decomposition for both replay loops.

One access record ``(vaddr, is_write)`` splits into:

- ``vpn`` -- the 4 KB virtual page number, ``vaddr >> 12``;
- ``tag`` -- the TLB tag: the vpn itself for 4 KB pages, or the
  2 MiB-aligned vpn (``vpn >> 9`` == ``vaddr >> 21``) for huge pages;
- ``block_index`` -- the 64 B block within the page,
  ``(vaddr & 0xFFF) >> 6``.

The instrumented loop (``Simulator._one_access``) decomposes one access
at a time via :func:`decompose_vaddr`; the fast loop pre-splits the
whole trace into columns via :func:`trace_columns`.  Both spellings are
defined here, once, so they cannot drift apart.

``trace_columns`` vectorizes with numpy when available (and not masked
out via ``REPRO_NO_NUMPY``); addresses beyond int64 overflow
``numpy.fromiter`` and fall back to the pure-python path, which has
arbitrary precision.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.common.numpy_compat import numpy_or_none


def decompose_vaddr(vaddr: int, huge_pages: bool) -> Tuple[int, int, int]:
    """One access: ``(vpn, tlb tag, block index within the page)``."""
    vpn = vaddr >> 12
    return vpn, (vpn >> 9) if huge_pages else vpn, (vaddr & 0xFFF) >> 6


def trace_columns(
    trace: Sequence, huge_pages: bool,
) -> Tuple[List[int], List[int], List[int], List[bool]]:
    """Split a trace into ``(vpns, tags, block_indices, writes)`` columns."""
    np = numpy_or_none()
    if np is not None:
        try:
            vaddrs = np.fromiter((record[0] for record in trace),
                                 dtype=np.int64, count=len(trace))
        except OverflowError:  # addresses beyond int64: rare, stay portable
            pass
        else:
            vpns = (vaddrs >> 12).tolist()
            tags = (vaddrs >> 21).tolist() if huge_pages else vpns
            blocks = ((vaddrs & 0xFFF) >> 6).tolist()
            writes = [record[1] for record in trace]
            return vpns, tags, blocks, writes
    vpns = [record[0] >> 12 for record in trace]
    tags = [vpn >> 9 for vpn in vpns] if huge_pages else vpns
    blocks = [(record[0] & 0xFFF) >> 6 for record in trace]
    writes = [record[1] for record in trace]
    return vpns, tags, blocks, writes
