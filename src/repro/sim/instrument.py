"""Structured instrumentation: event bus, probes, and the metrics registry.

Every layer of the simulation stack (TLB, page walker, caches, CTE cache,
migration engine, DRAM queues, the controllers' access paths) publishes
into one shared surface instead of ad-hoc per-component stat dicts:

- :class:`EventBus` -- a lightweight publish/subscribe bus for discrete
  trace events (access-path outcomes, migrations, TLB misses).  With no
  subscribers a publish is one attribute check, so instrumentation stays
  free on the hot path unless a consumer (``--trace-events``) opts in.
- :class:`MetricsRegistry` -- a hierarchy of named stat sources flattened
  into dot-namespaced keys (``tlb.hit_rate``, ``controller.cte_cache.
  hit_rate``, ``dram.row_buffer.hit_rate``).  Sources are the existing
  :mod:`repro.common.stats` containers, so components keep their counters
  and the registry only aggregates.
- :class:`Probe` -- the component-facing handle bundling a namespace, a
  :class:`~repro.common.stats.StatGroup`, and the bus.

The key naming scheme is documented in ``docs/architecture.md``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Union

from repro.common.stats import Counter, Histogram, RatioStat, StatGroup

#: Anything the metrics registry can flatten into namespaced keys.
StatSource = Union[StatGroup, RatioStat, Counter, Histogram,
                   Callable[[], Mapping[str, float]]]


@dataclass(frozen=True)
class Event:
    """One discrete trace event."""

    kind: str
    time_ns: float
    payload: Mapping[str, object] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        record: Dict[str, object] = {"kind": self.kind, "time_ns": self.time_ns}
        record.update(self.payload)
        return record


class EventBus:
    """Publish/subscribe for simulation trace events.

    Handlers subscribe to one ``kind`` or to everything; publishing with
    no handlers short-circuits before the :class:`Event` is even built.
    """

    def __init__(self) -> None:
        self._by_kind: Dict[str, List[Callable[[Event], None]]] = {}
        self._all: List[Callable[[Event], None]] = []

    @property
    def active(self) -> bool:
        """True when at least one subscriber exists."""
        return bool(self._all or self._by_kind)

    def subscribe(self, kind: str, handler: Callable[[Event], None]) -> None:
        self._by_kind.setdefault(kind, []).append(handler)

    def subscribe_all(self, handler: Callable[[Event], None]) -> None:
        self._all.append(handler)

    def unsubscribe(self, handler: Callable[[Event], None],
                    kind: Optional[str] = None) -> bool:
        """Remove one handler (from ``kind``, or wherever it appears).

        Returns True when the handler was found.  Consumers that attach
        themselves (trace writers, span tracers) detach with this so
        other subscribers survive -- ``unsubscribe_all`` would drop them
        too.  Unknown handlers are a no-op, so teardown paths can call
        it unconditionally.
        """
        removed = False
        if kind is not None:
            handlers = self._by_kind.get(kind, [])
            if handler in handlers:
                handlers.remove(handler)
                removed = True
            if not handlers:
                self._by_kind.pop(kind, None)
            return removed
        if handler in self._all:
            self._all.remove(handler)
            removed = True
        for name in list(self._by_kind):
            handlers = self._by_kind[name]
            while handler in handlers:
                handlers.remove(handler)
                removed = True
            if not handlers:
                del self._by_kind[name]
        return removed

    def unsubscribe_all(self) -> None:
        """Drop every subscriber (ends a ``--trace-events`` capture)."""
        self._by_kind.clear()
        self._all.clear()

    #: Alias: ``clear()`` reads better at the end of a capture session.
    clear = unsubscribe_all

    def detach_subscribers(self) -> tuple:
        """Remove and return every subscriber (checkpoint support).

        Subscribers are often closures over open files, which cannot be
        pickled; the run supervisor detaches them around a checkpoint
        dump and restores them with :meth:`restore_subscribers`.
        """
        saved = (self._by_kind, self._all)
        self._by_kind = {}
        self._all = []
        return saved

    def restore_subscribers(self, saved: tuple) -> None:
        self._by_kind, self._all = saved

    def publish(self, kind: str, time_ns: float, **payload: object) -> None:
        if not (self._all or self._by_kind):
            return
        handlers = self._by_kind.get(kind)
        if not handlers and not self._all:
            return
        event = Event(kind, time_ns, payload)
        for handler in self._all:
            handler(event)
        if handlers:
            for handler in handlers:
                handler(event)


def nest_metrics(flat: Mapping[str, float]) -> Dict[str, object]:
    """Turn a flat ``{"ns.key": value}`` dump into nested dicts.

    Used by :meth:`MetricsRegistry.tree` and by consumers that only hold
    a :attr:`~repro.sim.results.SimResult.metrics` snapshot.
    """
    root: Dict[str, object] = {}
    for key, value in flat.items():
        node = root
        parts = key.split(MetricsRegistry.SEPARATOR)
        for part in parts[:-1]:
            child = node.setdefault(part, {})
            if not isinstance(child, dict):
                # A leaf and a namespace collide (e.g. "walks" counter
                # next to "walks.something"); nest the leaf under "".
                child = node[part] = {"": child}
            node = child
        leaf = parts[-1]
        existing = node.get(leaf)
        if isinstance(existing, dict):
            existing[""] = value
        else:
            node[leaf] = value
    return root


def _flatten_source(source: StatSource) -> Mapping[str, float]:
    """One source's values keyed relative to its namespace."""
    if isinstance(source, StatGroup):
        return source.as_dict()
    if isinstance(source, RatioStat):
        return {"hits": source.hits, "total": source.total,
                "hit_rate": source.hit_rate}
    if isinstance(source, Counter):
        return {"value": source.value}
    if isinstance(source, Histogram):
        return {"count": source.count, "mean": source.mean}
    return dict(source())  # callable returning a mapping


class MetricsRegistry:
    """Hierarchical, namespaced view over every component's statistics.

    ``attach("controller.cte_cache", ratio_stat)`` makes the ratio's
    values appear as ``controller.cte_cache.hits`` / ``.total`` /
    ``.hit_rate`` in :meth:`snapshot`.  Callable sources compute derived
    values lazily at snapshot time (e.g. path fractions).
    """

    SEPARATOR = "."

    def __init__(self) -> None:
        self._sources: Dict[str, StatSource] = {}

    def attach(self, namespace: str, source: StatSource) -> None:
        if not namespace:
            raise ValueError("metrics namespace must be non-empty")
        if namespace in self._sources and self._sources[namespace] is not source:
            raise ValueError(f"metrics namespace {namespace!r} already attached")
        self._sources[namespace] = source

    def detach(self, namespace: str) -> None:
        self._sources.pop(namespace, None)

    def namespaces(self) -> List[str]:
        return sorted(self._sources)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, float]:
        """Flatten every source into ``{"ns.key": value}``.

        The returned dict is fully key-sorted (not just by namespace),
        so serializing it -- even without ``sort_keys`` -- produces
        byte-stable documents that ``repro report --compare`` can diff.
        """
        out: Dict[str, float] = {}
        for namespace in sorted(self._sources):
            for key, value in _flatten_source(self._sources[namespace]).items():
                out[f"{namespace}{self.SEPARATOR}{key}"] = value
        return dict(sorted(out.items()))

    def get(self, key: str, default: Optional[float] = None) -> Optional[float]:
        """One namespaced value, live (no full snapshot)."""
        namespace, _, leaf = key.rpartition(self.SEPARATOR)
        while namespace:
            source = self._sources.get(namespace)
            if source is not None:
                values = _flatten_source(source)
                suffix = key[len(namespace) + 1:]
                if suffix in values:
                    return values[suffix]
            namespace, _, _ = namespace.rpartition(self.SEPARATOR)
        return default

    def tree(self) -> Dict[str, object]:
        """The snapshot as nested dicts, for JSON export."""
        return nest_metrics(self.snapshot())

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.tree(), indent=indent, sort_keys=True)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def reset(self) -> None:
        """Reset every resettable source (warm-up boundary)."""
        for source in self._sources.values():
            reset = getattr(source, "reset", None)
            if reset is not None:
                reset()


class JsonlAppender:
    """An append-only, line-flushed JSONL sink.

    The durability primitive shared by harness-level telemetry (the
    sweep journal): the file is opened in append mode, every record is
    one ``json.dumps`` line flushed immediately, so a concurrent reader
    never sees a torn record and a crash loses at most the line being
    written.  Contrast with
    :class:`~repro.sim.tracing.TraceEventWriter`, which buffers
    (``FLUSH_EVERY``) because simulation event volume is orders of
    magnitude higher than scheduling event volume.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._handle = open(path, "a")

    def append(self, record: Mapping[str, object]) -> None:
        """Write one record line; no-op after :meth:`close`."""
        if self._handle is None:
            return
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JsonlAppender":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class Probe:
    """A component's handle into the instrumentation layer.

    Bundles the component's namespace, its :class:`StatGroup`, and the
    event bus so instrumented code reads as one call site::

        probe.count("ml2_accesses")
        probe.emit("access_path", now_ns, path=path, ppn=ppn)

    With host-side profiling enabled (``repro run --profile``) the probe
    additionally carries the run's
    :class:`~repro.sim.profile.HostProfiler`, so components can scope
    wall-clock timers to themselves::

        with probe.timed("harvest"):
            ...  # accounted as profile.<namespace>.harvest.*

    Without a profiler ``timed`` is a shared no-op context manager --
    one attribute check on the hot path.
    """

    def __init__(self, namespace: str, bus: Optional[EventBus] = None,
                 stats: Optional[StatGroup] = None,
                 profiler: Optional[object] = None) -> None:
        self.namespace = namespace
        self.bus = bus or EventBus()
        self.stats = stats if stats is not None else StatGroup(namespace)
        #: Optional :class:`~repro.sim.profile.HostProfiler`; None keeps
        #: :meth:`timed` free.
        self.profiler = profiler

    def count(self, name: str, amount: int = 1) -> None:
        self.stats.counter(name).increment(amount)

    def record(self, name: str, value: float) -> None:
        self.stats.histogram(name).record(value)

    def ratio(self, name: str, hit: bool) -> None:
        self.stats.ratio(name).record(hit)

    def emit(self, kind: str, time_ns: float, **payload: object) -> None:
        """Publish a namespaced trace event (``<namespace>.<kind>``)."""
        self.bus.publish(f"{self.namespace}.{kind}", time_ns, **payload)

    def timed(self, section: str):
        """A wall-clock timer scoped as ``<namespace>.<section>``.

        Returns the profiler's section context manager, or a shared
        no-op when profiling is off.
        """
        profiler = self.profiler
        if profiler is None:
            from repro.sim.profile import NULL_TIMER

            return NULL_TIMER
        return profiler.section(f"{self.namespace}.{section}")
