"""Deterministic fault injection for resilience testing.

The paper's correctness story rests on surviving bad states: stale
embedded CTEs are caught by the parallel verify fetch and repaired
lazily, incompressible pages overflow to uncompressed storage, and
capacity pressure forces emergency migration (PAPER.md Sections V-VI).
This module drives those paths on purpose, deterministically:

- A :class:`FaultPlan` is a declarative list of :class:`FaultSpec`
  entries -- *which* fault, at *what* per-access rate, inside *which*
  access-index window, with *how big* a burst.
- A :class:`FaultInjector` samples the plan once per trace access from
  the ``"faults"`` RNG stream of the run's
  :class:`~repro.sim.context.SimContext`, so a given (seed, plan) pair
  replays the exact same fault sequence -- and checkpoints capture the
  injector mid-sequence.

Injection works through small controller-side hooks (the
:class:`~repro.core.resilience.ResilienceState` intake fields and
TMCC's ``inject_stale_cte``); fault kinds a controller does not model
(e.g. ``stale_cte`` on Compresso) are counted as skipped, never raised.

Plan strings (CLI ``repro run --faults``)::

    kind[:rate[:burst]][@start-end]  [, more specs]

    stale_cte:0.02
    ml2_exhaustion:0.001@2000-8000
    dram_read_error:0.005:2,cte_cache_invalidate:0.001
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.common.errors import ConfigError
from repro.common.rng import DeterministicRNG

FAULT_STALE_CTE = "stale_cte"
FAULT_CTE_CACHE_INVALIDATE = "cte_cache_invalidate"
FAULT_INCOMPRESSIBLE_BURST = "incompressible_burst"
FAULT_ML2_EXHAUSTION = "ml2_exhaustion"
FAULT_MIGRATION_SATURATION = "migration_saturation"
FAULT_DRAM_READ_ERROR = "dram_read_error"

#: Every supported fault kind, in documentation order.
FAULT_KINDS = (
    FAULT_STALE_CTE,
    FAULT_CTE_CACHE_INVALIDATE,
    FAULT_INCOMPRESSIBLE_BURST,
    FAULT_ML2_EXHAUSTION,
    FAULT_MIGRATION_SATURATION,
    FAULT_DRAM_READ_ERROR,
)

#: How long an injected migration-buffer squatter holds its entry, per
#: unit of ``burst`` (ns).  Long enough that demand ML2 accesses stall.
_SATURATION_HOLD_NS = 500.0


@dataclass(frozen=True)
class FaultSpec:
    """One declarative fault source."""

    kind: str
    #: Per-access injection probability inside the window.
    rate: float = 0.01
    #: Payload size for burst-style kinds (pages for
    #: ``incompressible_burst``, errors for ``dram_read_error``, held
    #: entries for ``migration_saturation``).
    burst: int = 8
    #: Access-index window [start, end); ``end=None`` means open-ended.
    start: int = 0
    end: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigError(
                f"unknown fault kind {self.kind!r}; "
                f"choose from {list(FAULT_KINDS)}"
            )
        if not 0.0 < self.rate <= 1.0:
            raise ConfigError(
                f"fault rate must be in (0, 1], got {self.rate}"
            )
        if self.burst <= 0:
            raise ConfigError(f"fault burst must be > 0, got {self.burst}")
        if self.start < 0 or (self.end is not None and self.end <= self.start):
            raise ConfigError(
                f"fault window [{self.start}, {self.end}) is empty"
            )

    def active(self, access_index: int) -> bool:
        if access_index < self.start:
            return False
        return self.end is None or access_index < self.end


@dataclass(frozen=True)
class FaultPlan:
    """An ordered collection of fault specs."""

    specs: Tuple[FaultSpec, ...] = ()

    def __bool__(self) -> bool:
        return bool(self.specs)

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse the CLI plan syntax (see the module docstring)."""
        specs = []
        for raw in text.split(","):
            item = raw.strip()
            if not item:
                continue
            window, start, end = item, 0, None
            if "@" in item:
                item, _, window = item.partition("@")
                lo, sep, hi = window.partition("-")
                if not sep:
                    raise ConfigError(
                        f"fault window must be start-end, got {window!r}"
                    )
                try:
                    start = int(lo)
                    end = int(hi) if hi else None
                except ValueError:
                    raise ConfigError(
                        f"fault window bounds must be integers, got {window!r}"
                    ) from None
            parts = item.split(":")
            if len(parts) > 3:
                raise ConfigError(
                    f"fault spec has too many fields: {raw.strip()!r}"
                )
            kind = parts[0]
            try:
                rate = float(parts[1]) if len(parts) > 1 else 0.01
                burst = int(parts[2]) if len(parts) > 2 else 8
            except ValueError:
                raise ConfigError(
                    f"fault rate/burst must be numeric in {raw.strip()!r}"
                ) from None
            specs.append(FaultSpec(kind=kind, rate=rate, burst=burst,
                                   start=start, end=end))
        if not specs:
            raise ConfigError(f"fault plan {text!r} contains no specs")
        return cls(tuple(specs))

    def describe(self) -> str:
        out = []
        for spec in self.specs:
            item = f"{spec.kind}:{spec.rate}:{spec.burst}"
            if spec.start or spec.end is not None:
                item += f"@{spec.start}-{'' if spec.end is None else spec.end}"
            out.append(item)
        return ",".join(out)


class FaultInjector:
    """Applies a :class:`FaultPlan` to one controller, deterministically.

    Constructed by the simulator when a plan is supplied; enabling it
    flips the controller's :class:`~repro.core.resilience.ResilienceState`
    on, which arms the graceful-degradation paths the faults exercise.
    ``tick`` runs once per trace access *before* the access is served.
    """

    def __init__(self, plan: FaultPlan, rng: DeterministicRNG,
                 controller, bus=None) -> None:
        self.plan = plan
        self.rng = rng
        self.controller = controller
        #: Optional event bus: landed faults publish ``faults.injected``
        #: events, which the span tracer promotes into instant markers.
        self.bus = bus
        controller.resilience.enabled = True
        self._handlers: Dict[str, Callable[[FaultSpec, float], bool]] = {
            FAULT_STALE_CTE: self._stale_cte,
            FAULT_CTE_CACHE_INVALIDATE: self._cte_cache_invalidate,
            FAULT_INCOMPRESSIBLE_BURST: self._incompressible_burst,
            FAULT_ML2_EXHAUSTION: self._ml2_exhaustion,
            FAULT_MIGRATION_SATURATION: self._migration_saturation,
            FAULT_DRAM_READ_ERROR: self._dram_read_error,
        }

    def tick(self, access_index: int, now_ns: float) -> None:
        """Sample every active spec once; apply the faults that fire.

        One ``random()`` draw per active spec per access keeps the
        sequence a pure function of (seed, plan) -- independent of
        whether earlier faults found an eligible target.
        """
        resilience = self.controller.resilience
        for spec in self.plan.specs:
            if not spec.active(access_index):
                continue
            if not self.rng.chance(spec.rate):
                continue
            if self._handlers[spec.kind](spec, now_ns):
                resilience.count_fault(spec.kind)
                if self.bus is not None and self.bus.active:
                    self.bus.publish("faults.injected", now_ns,
                                     fault=spec.kind,
                                     access_index=access_index)
            else:
                resilience.count("faults_skipped")

    # ------------------------------------------------------------------
    # Handlers: return True when the fault actually landed
    # ------------------------------------------------------------------

    def _stale_cte(self, spec: FaultSpec, now_ns: float) -> bool:
        inject = getattr(self.controller, "inject_stale_cte", None)
        if inject is None:
            return False
        return inject(self.rng) is not None

    def _cte_cache_invalidate(self, spec: FaultSpec, now_ns: float) -> bool:
        cache = getattr(self.controller, "cte_cache", None)
        if cache is None or cache.occupancy_blocks == 0:
            return False
        cache.flush()
        return True

    def _incompressible_burst(self, spec: FaultSpec, now_ns: float) -> bool:
        resilience = self.controller.resilience
        resilience.incompressible_burst += spec.burst
        return True

    def _ml2_exhaustion(self, spec: FaultSpec, now_ns: float) -> bool:
        """Steal every free ML1 chunk, modeling external free-space
        pressure (another tenant's burst); the chunks never come back,
        so the emergency-eviction watchdog has to make room."""
        free_list = getattr(self.controller, "ml1_free", None)
        if free_list is None or free_list.count == 0:
            return False
        stolen = free_list.count
        free_list.pop_many(stolen)
        self.controller.resilience.count("chunks_stolen", stolen)
        return True

    def _migration_saturation(self, spec: FaultSpec, now_ns: float) -> bool:
        migration = getattr(self.controller, "migration", None)
        if migration is None:
            return False
        hold_ns = spec.burst * _SATURATION_HOLD_NS
        filled = False
        while migration.occupancy(now_ns) < migration.entries:
            migration.reserve(now_ns, hold_ns)
            filled = True
        return filled

    def _dram_read_error(self, spec: FaultSpec, now_ns: float) -> bool:
        self.controller.resilience.pending_dram_errors += spec.burst
        return True


def plans_for_smoke(rate: float = 0.01) -> Sequence[FaultPlan]:
    """One single-spec plan per fault kind (CI smoke coverage)."""
    return [FaultPlan((FaultSpec(kind=kind, rate=rate),)) for kind in FAULT_KINDS]
