"""Multi-core trace-driven simulation (Table III: 4 cores).

Each core gets private structures (TLB, page-walk cache, L1, L2,
prefetchers); the L3, the compression controller (with its CTE cache and
CTE buffer), and DRAM are shared, as in the simulated machine.

Threading model follows the paper's workloads: multi-threaded benchmarks
share one address space, so the trace is partitioned round-robin into one
stream per core (mcf/omnetpp, single-threaded in the paper, are run as
four instances there; here the round-robin split of an instance's trace
plays the same role of generating concurrent independent request streams).

Cores advance their own clocks; shared-resource contention appears
through the DRAM channel's busy horizon and through L3/CTE-cache
interference.  The reported performance is aggregate throughput.

Like the single-core engine, construction runs through a
:class:`~repro.sim.context.SimContext`; per-core components live in the
component tree under ``core<i>.*`` and shared ones at the top level, so
the metrics registry exposes, e.g., ``core0.tlb.hit_rate`` next to the
shared ``controller.cte_cache.hit_rate``.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cache.hierarchy import CacheHierarchy
from repro.cache.sa_cache import SetAssociativeCache
from repro.common.units import PAGE_SIZE
from repro.core import (  # noqa: F401  (importing registers the built-ins)
    CONTROLLER_REGISTRY,
    TwoLevelController,
    create_controller,
)
from repro.core.compmodel import PageCompressionModel
from repro.core.config import SystemConfig
from repro.dram.system import DRAMSystem
from repro.sim.context import SimContext
from repro.sim.results import SimResult
from repro.vm.pagetable import FrameAllocator, PageTable, PageTablePopulator
from repro.vm.tlb import TLB
from repro.vm.walker import PageWalker
from repro.workloads.trace import Workload


class _Core:
    """Private per-core state."""

    def __init__(self, index: int, system: SystemConfig, table: PageTable,
                 shared_l3: SetAssociativeCache) -> None:
        self.index = index
        self.tlb = TLB(entries=system.tlb_entries, name=f"tlb{index}")
        self.walker = PageWalker(table)
        self.hierarchy = CacheHierarchy(system.cache, shared_l3=shared_l3)
        self.now_ns = 0.0
        self.accesses = 0


class MultiCoreSimulator:
    """N cores replaying round-robin partitions of one workload trace."""

    def __init__(
        self,
        workload: Workload,
        num_cores: int = 4,
        controller: str = "tmcc",
        system: Optional[SystemConfig] = None,
        dram_budget_bytes: Optional[int] = None,
        seed: int = 1,
        model: Optional[PageCompressionModel] = None,
        context: Optional[SimContext] = None,
    ) -> None:
        if num_cores < 1:
            raise ValueError("need at least one core")
        if controller not in CONTROLLER_REGISTRY:
            raise ValueError(f"unknown controller {controller!r}; "
                             f"choose from {CONTROLLER_REGISTRY.names()}")
        self.context = context or SimContext(system, seed)
        self.workload = workload
        self.num_cores = num_cores
        self.controller_name = controller
        self.system = self.context.system

        total_frames = workload.footprint_pages * 4 + 4096
        allocator = FrameAllocator(total_frames, self.context.rng("frames"))
        self.table = PageTable(allocator)
        populator = PageTablePopulator(self.table, allocator,
                                       self.context.rng("populate"))
        populator.populate_region(workload.base_vpn, workload.footprint_pages)
        populator.finalize_noise()
        self._vpn_to_ppn = dict(populator.mapped_pages)

        shared_l3 = SetAssociativeCache(self.system.cache.l3_size,
                                        self.system.cache.l3_assoc, "l3")
        self.context.metrics.attach("cache.l3", shared_l3.stats)
        self.cores = [
            _Core(i, self.system, self.table, shared_l3)
            for i in range(num_cores)
        ]
        for core in self.cores:
            prefix = f"core{core.index}"
            self.context.register(f"{prefix}.tlb", core.tlb)
            self.context.register(f"{prefix}.walker.pwc", core.walker.pwc)
            self.context.metrics.attach(f"{prefix}.walker.walks",
                                        core.walker.walks)
            self.context.metrics.attach(f"{prefix}.cache.l1",
                                        core.hierarchy.l1.stats)
            self.context.metrics.attach(f"{prefix}.cache.l2",
                                        core.hierarchy.l2.stats)
        self.dram = self.context.register("dram", DRAMSystem(self.system.dram))
        self.model = model or PageCompressionModel(
            workload.content,
            sample_pages=self.system.compression_samples,
            deflate_config=self.system.deflate,
            timing=self.system.deflate_timing,
            ibm=self.system.ibm_timing,
            seed=seed,
        )
        self.controller = self.context.register(
            "controller",
            create_controller(controller, self.system, self.dram, seed=seed),
        )
        self.controller.attach_instrumentation(
            self.context.probe("controller", stats=self.controller.stats))
        self.context.metrics.attach("controller.paths",
                                    self.controller.path_fractions)
        # Per-stage access-pipeline latencies, same namespaces as the
        # single-core simulator.
        self.context.metrics.attach("controller.stage",
                                    self.controller.stage_stats)
        self.context.metrics.attach("controller.breakdown",
                                    self.controller.stage_accounting)
        if hasattr(self.controller, "cte_cache"):
            self.context.register("controller.cte_cache",
                                  self.controller.cte_cache)

        data_ppns, hotness = self._hotness()
        table_ppns = [page.ppn for page in self.table.table_pages()]
        if isinstance(self.controller, TwoLevelController):
            self.controller.initialize(data_ppns, hotness, table_ppns,
                                       self.model, dram_budget_bytes)
        else:
            self.controller.initialize(data_ppns, hotness, table_ppns,
                                       self.model)

    def _hotness(self):
        counts: Dict[int, int] = {}
        for vaddr, _ in self.workload.trace:
            vpn = vaddr >> 12
            counts[vpn] = counts.get(vpn, 0) + 1
        hotness: Dict[int, int] = {}
        data_ppns = []
        rank = 0
        for vpn in sorted(counts, key=counts.get, reverse=True):
            ppn = self._vpn_to_ppn.get(vpn)
            if ppn is None:
                continue
            hotness[ppn] = rank
            data_ppns.append(ppn)
            rank += 1
        for offset in range(self.workload.footprint_pages):
            vpn = self.workload.base_vpn + offset
            if vpn in counts:
                continue
            ppn = self._vpn_to_ppn.get(vpn)
            if ppn is None:
                continue
            hotness[ppn] = rank
            data_ppns.append(ppn)
            rank += 1
        return data_ppns, hotness

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(self, warmup_fraction: float = 0.2) -> SimResult:
        """Replay the partitioned trace; cores interleave by local time."""
        streams: List[List] = [[] for _ in range(self.num_cores)]
        for index, access in enumerate(self.workload.trace):
            streams[index % self.num_cores].append(access)
        compute_ns = self.system.cycles_to_ns(
            self.workload.compute_cycles_per_access)

        warmup = int(len(self.workload.trace) * warmup_fraction)
        positions = [0] * self.num_cores
        executed = 0
        measured = 0
        measure_start = None
        while True:
            # The least-advanced core with work remaining executes next;
            # that's how concurrent streams interleave at the shared MC.
            candidates = [c for c in self.cores
                          if positions[c.index] < len(streams[c.index])]
            if not candidates:
                break
            core = min(candidates, key=lambda c: c.now_ns)
            vaddr, is_write = streams[core.index][positions[core.index]]
            positions[core.index] += 1
            executed += 1
            if executed == warmup:
                measure_start = max(c.now_ns for c in self.cores)
            core.now_ns += compute_ns
            stall = self._one_access(core, vaddr, is_write)
            core.now_ns += stall * self.system.mlp_stall_factor
            if executed > warmup:
                measured += 1

        end = max(c.now_ns for c in self.cores)
        self.context.clock.now_ns = end
        elapsed = end - (measure_start or 0.0)
        return self._result(measured, max(1.0, elapsed))

    def _one_access(self, core: _Core, vaddr: int, is_write: bool) -> float:
        system = self.system
        vpn = vaddr >> 12
        stall = 0.0
        if not core.tlb.lookup(vpn):
            if self.context.bus.active:
                self.context.bus.publish("sim.tlb_miss", core.now_ns,
                                         vpn=vpn, core=core.index)
            try:
                walk = core.walker.walk(vpn)
            except KeyError:
                return 0.0
            for level, ptb_address in walk.fetches:
                result = core.hierarchy.access(ptb_address, is_ptb=True)
                stall += system.cycles_to_ns(result.latency_cycles)
                if result.l3_miss:
                    miss = self.controller.serve_l3_miss(
                        ptb_address >> 12, (ptb_address >> 6) & 63,
                        core.now_ns + stall, False)
                    stall += miss.latency_ns
                for block in result.dram_writebacks:
                    self.controller.serve_writeback(block >> 6, block & 63,
                                                    core.now_ns + stall)
                self.controller.note_ptb_fetch(
                    level, ptb_address, self.table.ptb_at(ptb_address),
                    huge_leaf=False)
            core.tlb.fill(vpn)
        ppn = self._vpn_to_ppn.get(vpn)
        if ppn is None:
            return stall
        paddr = ppn * PAGE_SIZE + (vaddr & (PAGE_SIZE - 1))
        result = core.hierarchy.access(paddr, is_write=is_write)
        stall += system.cycles_to_ns(result.latency_cycles)
        if result.l3_miss:
            miss = self.controller.serve_l3_miss(
                ppn, (vaddr & (PAGE_SIZE - 1)) >> 6,
                core.now_ns + stall, is_write)
            stall += miss.latency_ns
        for block in result.dram_writebacks:
            self.controller.serve_writeback(block >> 6, block & 63,
                                            core.now_ns + stall)
        return stall

    def metrics_snapshot(self) -> Dict[str, float]:
        """Every component's statistics under namespaced keys."""
        return self.context.metrics.snapshot()

    def _result(self, accesses: int, elapsed_ns: float) -> SimResult:
        controller = self.controller
        tlb_total = sum(c.tlb.stats.total for c in self.cores)
        tlb_misses = sum(c.tlb.stats.misses for c in self.cores)
        result = SimResult(
            workload=self.workload.name,
            controller=self.controller_name,
            accesses=accesses,
            elapsed_ns=elapsed_ns,
            tlb_miss_rate=tlb_misses / tlb_total if tlb_total else 0.0,
            tlb_misses=tlb_misses,
            cte_hit_rate=getattr(controller, "cte_hit_rate", 1.0),
            l3_misses=controller.stats.counter("l3_misses").value,
            avg_l3_miss_latency_ns=controller.average_miss_latency_ns,
            dram_reads=self.dram.stats.counter("reads").value,
            dram_writes=self.dram.stats.counter("writes").value,
            row_hit_rate=self.dram.row_hit_rate,
            bandwidth_utilization=self.dram.bandwidth_utilization(elapsed_ns),
            dram_used_bytes=controller.dram_used_bytes(),
            footprint_bytes=self.workload.footprint_pages * PAGE_SIZE,
            path_fractions=controller.path_fractions(),
            metrics=self.metrics_snapshot(),
        )
        if isinstance(controller, TwoLevelController):
            result.ml2_access_rate = controller.ml2_access_rate()
        return result
