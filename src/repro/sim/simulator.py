"""The trace-driven simulator.

Replays one workload's access trace through the full stack:

    virtual address -> TLB -> (page walk: PTB fetches through the caches,
    with TMCC harvesting embedded CTEs) -> cache hierarchy -> compression
    controller (CTE cache / CTE fetch / ML2 decompress / migrations) ->
    DRAM banks and queues

Latency accounting follows Section VI's spirit: on-chip cycles and DRAM
nanoseconds accumulate per access; the wall clock advances by compute
time plus the fraction of the memory stall the 4-wide OoO core cannot
hide (``mlp_stall_factor``).  Absolute IPC is not claimed -- only the
relative comparisons the paper makes.

Construction runs through a :class:`~repro.sim.context.SimContext`: it
owns the RNG streams, the clock, the component tree, and the
instrumentation surface (event bus + metrics registry).  Controllers are
instantiated by name from the controller registry
(:data:`repro.core.base.CONTROLLER_REGISTRY`), so new designs plug in by
decorating a class -- no simulator edits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.cache.hierarchy import CacheHierarchy
from repro.common.units import PAGE_SIZE
from repro.core import (  # noqa: F401  (importing registers the built-ins)
    CONTROLLER_REGISTRY,
    TMCCController,
    TwoLevelController,
    create_controller,
)
from repro.core.base import PATH_CTE_HIT
from repro.core.compmodel import PageCompressionModel
from repro.core.config import SystemConfig
from repro.dram.system import DRAMSystem
from repro.sim.columns import decompose_vaddr
from repro.sim.context import SimContext
from repro.sim.faults import FaultInjector, FaultPlan
from repro.sim.results import SimResult
from repro.vm.pagetable import FrameAllocator, PageTable, PageTablePopulator
from repro.vm.tlb import TLB
from repro.vm.walker import PageWalker
from repro.workloads.trace import Workload


@dataclass
class RunProgress:
    """Where a (possibly supervised) trace replay currently stands.

    Lives on the simulator so a checkpoint of the simulator object
    captures the loop position alongside every component's state.
    """

    index: int
    warmup_end: int
    measured: int = 0
    measure_start_ns: float = 0.0


class Simulator:
    """One workload x one memory-system configuration."""

    def __init__(
        self,
        workload: Workload,
        controller: str = "tmcc",
        system: Optional[SystemConfig] = None,
        dram_budget_bytes: Optional[int] = None,
        huge_pages: bool = False,
        seed: int = 1,
        model: Optional[PageCompressionModel] = None,
        placement_drift: float = 0.03,
        virtualized: bool = False,
        context: Optional[SimContext] = None,
        fault_plan: Optional[FaultPlan] = None,
        resilience: bool = False,
        fast_path: str = "auto",
    ) -> None:
        if controller not in CONTROLLER_REGISTRY:
            raise ValueError(f"unknown controller {controller!r}; "
                             f"choose from {CONTROLLER_REGISTRY.names()}")
        if virtualized and huge_pages:
            raise ValueError("virtualized mode models 4 KB guest pages only")
        if fast_path not in ("auto", "on", "off"):
            raise ValueError(f"fast_path must be 'auto', 'on', or 'off', "
                             f"got {fast_path!r}")
        #: Zero-observer loop selection: "auto" uses it whenever eligible,
        #: "on" demands it (ConfigError otherwise), "off" never uses it.
        self.fast_path = fast_path
        self.context = context or SimContext(system, seed)
        self.workload = workload
        self.controller_name = controller
        self.system = self.context.system
        self.clock = self.context.clock
        self.huge_pages = huge_pages
        #: Run the workload inside a VM: TLB misses take 2D nested walks
        #: through a host page table (Figure 12b); TMCC harvests embedded
        #: CTEs from every *host* PTB fetch of each nested walk.
        self.virtualized = virtualized
        #: Warm-up imperfection: the paper warms ML1/ML2 with ~1 s of
        #: atomic simulation, so placement reflects the working set *minus
        #: a little drift* between warm-up and the measured window.  A
        #: ``placement_drift`` fraction of warm pages start cold in ML2,
        #: producing the residual ML2 traffic Figure 21 reports.
        self.placement_drift = placement_drift
        self._placement_rng = self.context.rng("placement")

        # -- virtual memory setup ---------------------------------------
        total_frames = workload.footprint_pages * 4 + 4096
        self.allocator = FrameAllocator(total_frames, self.context.rng("frames"))
        self.table = PageTable(self.allocator)
        populator = PageTablePopulator(self.table, self.allocator,
                                       self.context.rng("populate"))
        if huge_pages:
            huge_count = -(-workload.footprint_pages // 512)
            base = workload.base_vpn & ~0x1FF
            populator.populate_huge_region(base, huge_count)
            self._vpn_to_ppn = {}
        else:
            populator.populate_region(workload.base_vpn, workload.footprint_pages)
            populator.finalize_noise()
            self._vpn_to_ppn = dict(populator.mapped_pages)

        self.tlb = self.context.register(
            "tlb", TLB(entries=self.system.tlb_entries))
        self.walker = self.context.register("walker", PageWalker(self.table))
        self.context.register("walker.pwc", self.walker.pwc)
        self.context.metrics.attach("walker.walks", self.walker.walks)
        self.context.metrics.attach("walker.ptb_fetches",
                                    self.walker.ptb_fetches)
        self.hierarchy = self.context.register(
            "cache", CacheHierarchy(self.system.cache))
        self.context.metrics.attach("cache.l1", self.hierarchy.l1.stats)
        self.context.metrics.attach("cache.l2", self.hierarchy.l2.stats)
        self.context.metrics.attach("cache.l3", self.hierarchy.l3.stats)
        self.dram = self.context.register("dram", DRAMSystem(self.system.dram))

        # -- virtualization: a host page table behind the guest's --------
        self.host_table: Optional[PageTable] = None
        self.nested_walker = None
        self._gfn_to_host: Dict[int, int] = {}
        if virtualized:
            from repro.vm.nested import NestedPageWalker

            guest_frames = sorted(
                set(self._vpn_to_ppn.values())
                | {page.ppn for page in self.table.table_pages()}
            )
            host_allocator = FrameAllocator(
                (max(guest_frames) + 1) * 2 + 4096,
                self.context.rng("host_frames"),
            )
            self.host_table = PageTable(host_allocator)
            host_populator = PageTablePopulator(
                self.host_table, host_allocator,
                self.context.rng("host_populate"),
            )
            host_populator.populate_region(0, max(guest_frames) + 1)
            host_populator.finalize_noise()
            self._gfn_to_host = dict(host_populator.mapped_pages)
            self.nested_walker = self.context.register(
                "nested_walker", NestedPageWalker(self.table, self.host_table))

        # -- compression model and controller ---------------------------
        self.model = model or PageCompressionModel(
            workload.content,
            sample_pages=self.system.compression_samples,
            deflate_config=self.system.deflate,
            timing=self.system.deflate_timing,
            ibm=self.system.ibm_timing,
            seed=seed,
        )
        self.controller = self.context.register(
            "controller",
            create_controller(controller, self.system, self.dram, seed=seed),
        )
        self.controller.attach_instrumentation(
            self.context.probe("controller", stats=self.controller.stats))
        self.context.metrics.attach("controller.paths",
                                    self.controller.path_fractions)
        # Per-stage access-pipeline latencies (Figures 8/18): histograms
        # under controller.stage.*, per-path aggregation under
        # controller.breakdown.* (both reset at the warm-up boundary).
        self.context.metrics.attach("controller.stage",
                                    self.controller.stage_stats)
        self.context.metrics.attach("controller.breakdown",
                                    self.controller.stage_accounting)
        if hasattr(self.controller, "cte_cache"):
            self.context.register("controller.cte_cache",
                                  self.controller.cte_cache)
        if hasattr(self.controller, "migration"):
            migration = self.context.register("controller.migration",
                                              self.controller.migration)
            self.context.metrics.attach("controller.migration.stalls",
                                        migration.stalls)
            self.context.metrics.attach("controller.migration.stall_ns",
                                        migration.stall_ns)

        data_ppns, hotness = self._data_pages_and_hotness()
        if self.virtualized:
            # Pinned pages: the host's own table pages plus the host
            # frames backing the guest's table pages (both are walked).
            table_ppns = [page.ppn for page in self.host_table.table_pages()]
            table_ppns += [
                self._gfn_to_host[page.ppn]
                for page in self.table.table_pages()
                if page.ppn in self._gfn_to_host
            ]
        else:
            table_ppns = [page.ppn for page in self.table.table_pages()]
        if isinstance(self.controller, TwoLevelController):
            self.controller.initialize(data_ppns, hotness, table_ppns,
                                       self.model, dram_budget_bytes)
            self.context.metrics.attach("controller.ml2", self._ml2_metrics)
        else:
            self.controller.initialize(data_ppns, hotness, table_ppns, self.model)

        # -- resilience: fault injection + graceful degradation ---------
        #: With a fault plan (or ``resilience=True``) the controller's
        #: emergency paths arm; without either, nothing differs from a
        #: fault-free build (bit-identical runs).
        self._fault_injector: Optional[FaultInjector] = None
        if fault_plan:
            self._fault_injector = FaultInjector(
                fault_plan, self.context.rng("faults"), self.controller,
                bus=self.context.bus)
        elif resilience:
            self.controller.resilience.enabled = True
        self.context.metrics.attach("resilience",
                                    self.controller.resilience.stats)

        # -- observability (all opt-in; None keeps hooks free) ----------
        #: Span tracer (``--trace-sample``); every hook is an ``is None``
        #: check, so untraced runs stay bit-identical.
        self.tracer = None
        #: Windowed metrics recorder (``--interval-ns``).
        self.timeseries = None

        # -- per-run counters -------------------------------------------
        self._fig5_cte_misses = 0
        self._fig5_after_tlb = 0
        self._l3_data_misses = 0
        self._tlb_misses = 0
        #: In-flight replay position; ``None`` between runs.  A run
        #: supervisor checkpoints the simulator mid-loop, so progress is
        #: part of the object's picklable state.
        self._run_state: Optional[RunProgress] = None
        self.context.metrics.attach("sim", self._sim_metrics)

    # ------------------------------------------------------------------
    # Observability attachment
    # ------------------------------------------------------------------

    def attach_tracer(self, tracer) -> "object":
        """Adopt a :class:`~repro.sim.tracing.SpanTracer`.

        The tracer also listens on the context bus so migrations and
        injected faults land as instant markers inside sampled traces.
        """
        self.tracer = tracer
        tracer.attach_bus(self.context.bus)
        return tracer

    def attach_timeseries(self, recorder) -> "object":
        """Adopt a :class:`~repro.sim.timeseries.TimeSeriesRecorder`."""
        self.timeseries = recorder
        return recorder

    def describe_run(self) -> Dict[str, object]:
        """The run's configuration, for ``run_config`` in ``--emit-json``
        documents and the header of ``repro report``."""
        return {
            "workload": self.workload.name,
            "controller": self.controller.describe(),
            "seed": self.context.seed,
            "huge_pages": self.huge_pages,
            "virtualized": self.virtualized,
            "placement_drift": self.placement_drift,
            "trace_length": len(self.workload.trace),
            "footprint_pages": self.workload.footprint_pages,
            "tlb_entries": self.system.tlb_entries,
            "mlp_stall_factor": self.system.mlp_stall_factor,
        }

    # ------------------------------------------------------------------
    # Setup helpers
    # ------------------------------------------------------------------

    def _data_pages_and_hotness(self):
        counts: Dict[int, int] = {}
        for vaddr, _ in self.workload.trace:
            vpn = vaddr >> 12
            counts[vpn] = counts.get(vpn, 0) + 1
        ranked_vpns = sorted(counts, key=counts.get, reverse=True)
        # Warm-up drift: a few warm pages turned cold before the measured
        # window (or were sampled unluckily by the 1% recency updates);
        # they start behind even the never-touched pages and hence in ML2.
        drifted = [vpn for vpn in ranked_vpns
                   if self._placement_rng.chance(self.placement_drift)]
        drifted_set = set(drifted)

        hotness: Dict[int, int] = {}
        data_ppns = []
        rank = 0

        def place(vpn: int) -> None:
            nonlocal rank
            ppn = self._translate_vpn(vpn)
            if ppn is None:  # trace address outside the mapped footprint
                return
            hotness[ppn] = rank
            data_ppns.append(ppn)
            rank += 1

        for vpn in ranked_vpns:
            if vpn not in drifted_set:
                place(vpn)
        for offset in range(self.workload.footprint_pages):
            vpn = self.workload.base_vpn + offset
            if vpn not in counts:
                place(vpn)
        for vpn in drifted:
            place(vpn)
        return data_ppns, hotness

    def _translate_vpn(self, vpn: int) -> Optional[int]:
        """vpn -> the *machine-physical* frame data lives in."""
        if self.huge_pages:
            return self.table.translate(vpn)
        guest_ppn = self._vpn_to_ppn.get(vpn)
        if guest_ppn is None:
            return None
        if self.virtualized:
            return self._gfn_to_host.get(guest_ppn)
        return guest_ppn

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def fast_path_eligible(self) -> bool:
        """True when no observer could distinguish the fast/slow loops.

        The zero-observer loop (:mod:`repro.sim.fastpath`) elides the
        per-access object graph and every instrumentation hook; it is
        only sound when nothing is listening and nothing perturbs the
        replay (fault injection, resilience retries, nested walks).
        """
        return (self.tracer is None
                and self.timeseries is None
                and self.context.profiler is None
                and self._fault_injector is None
                and not self.controller.resilience.enabled
                and not self.context.bus.active
                and not self.virtualized)

    def run(self, warmup_fraction: float = 0.2,
            supervisor=None) -> SimResult:
        """Replay the trace; statistics cover the post-warmup region.

        With a :class:`~repro.sim.supervisor.RunSupervisor`, the loop
        additionally checkpoints on the supervisor's cadence and stops
        early (returning a partial result flagged ``truncated``) when
        its wall-clock watchdog fires.  A simulator restored from a
        checkpoint resumes exactly where it stopped: the loop position
        rides on the object as :class:`RunProgress`.

        With ``fast_path`` "auto" (the default) an unobserved,
        unsupervised run takes the zero-observer loop instead -- same
        results, bit for bit, at a fraction of the host cost.
        """
        trace = self.workload.trace
        state = self._run_state
        if state is None:
            state = self._run_state = RunProgress(
                index=0, warmup_end=int(len(trace) * warmup_fraction))
        config = self.system
        compute_ns = config.cycles_to_ns(self.workload.compute_cycles_per_access)
        injector = self._fault_injector
        tracer = self.tracer
        timeseries = self.timeseries
        profiler = self.context.profiler
        stop_reason = None

        use_fast = (self.fast_path != "off" and supervisor is None
                    and self.fast_path_eligible())
        if self.fast_path == "on" and not use_fast:
            from repro.common.errors import ConfigError

            raise ConfigError(
                "fast_path='on' requires a zero-observer run: no tracer, "
                "timeseries recorder, profiler, fault injector, run "
                "supervisor, bus subscriber, resilience mode, or "
                "virtualization"
            )

        try:
            if use_fast:
                from repro.sim.fastpath import run_fast

                run_fast(self, state)
            else:
                # Invariant references hoisted out of the loop body; the
                # fast path goes further (see repro/sim/fastpath.py).
                clock = self.clock
                one_access = self._one_access
                warmup_end = state.warmup_end
                mlp = config.mlp_stall_factor
                trace_len = len(trace)
                while state.index < trace_len:
                    if supervisor is not None:
                        stop_reason = supervisor.on_access(self, state)
                        if stop_reason is not None:
                            break
                    index = state.index
                    vaddr, is_write = trace[index]
                    if index == warmup_end:
                        self._reset_stats()
                        state.measure_start_ns = clock.now_ns
                    if injector is not None:
                        injector.tick(index, clock.now_ns)
                    clock.advance(compute_ns)
                    if tracer is not None:
                        tracer.begin_access(clock.now_ns, index=index,
                                            vaddr=vaddr, write=is_write)
                    if profiler is None:
                        stall_ns = one_access(vaddr, is_write)
                    else:
                        profiler.begin("sim.access")
                        try:
                            stall_ns = one_access(vaddr, is_write)
                        finally:
                            profiler.end()
                    if tracer is not None:
                        tracer.end_access(clock.now_ns + stall_ns)
                    clock.advance(stall_ns * mlp)
                    if timeseries is not None:
                        timeseries.maybe_sample(clock.now_ns)
                    if index >= warmup_end:
                        state.measured += 1
                    state.index += 1

                if timeseries is not None:
                    timeseries.finish(self.clock.now_ns)
        finally:
            # Flush/close owned writers even when the loop dies early, so
            # --trace-events files are never left truncated and unflushed.
            self.context.close_owned()

        result = self._build_result(state.measured,
                                    self.clock.now_ns - state.measure_start_ns)
        if stop_reason is not None:
            result.truncated = True
            result.error = stop_reason
        else:
            self._run_state = None  # finished: a fresh run() starts over
        return result

    def _one_access(self, vaddr: int, is_write: bool) -> float:
        """Serve one trace record; returns the access's stall time (ns)."""
        config = self.system
        bus = self.context.bus
        tracer = self.tracer
        vpn, tag, block_index = decompose_vaddr(vaddr, self.huge_pages)
        stall_ns = 0.0
        tlb_missed = not self.tlb.lookup(tag)

        if tlb_missed:
            self._tlb_misses += 1
            if bus.active:
                bus.publish("sim.tlb_miss", self.clock.now_ns, vpn=vpn)
            walk_span = None
            if tracer is not None:
                from repro.sim.tracing import CATEGORY_WALK

                walk_span = tracer.begin("page_walk", CATEGORY_WALK,
                                         self.clock.now_ns, vpn=vpn,
                                         nested=self.virtualized)
            stall_ns += self._page_walk(vpn)
            if tracer is not None:
                tracer.end(walk_span, self.clock.now_ns + stall_ns)
            self.tlb.fill(tag)

        ppn = self._translate_vpn(vpn)
        if ppn is None:
            return stall_ns
        paddr = ppn * PAGE_SIZE + (vaddr & (PAGE_SIZE - 1))
        result = self.hierarchy.access(paddr, is_write=is_write)
        stall_ns += config.cycles_to_ns(result.latency_cycles)
        if result.l3_miss:
            self._l3_data_misses += 1
            miss = self.controller.serve_l3_miss(
                ppn, block_index, self.clock.now_ns + stall_ns, is_write
            )
            stall_ns += miss.latency_ns
            self._trace_miss(miss, kind="data", ppn=ppn)
            self._track_fig5(miss.path, after_tlb=tlb_missed)
        self._drain_writebacks(result.dram_writebacks, stall_ns)
        return stall_ns

    def _page_walk(self, vpn: int) -> float:
        """Serve a TLB miss; returns its stall contribution."""
        if self.virtualized:
            return self._nested_page_walk(vpn)
        config = self.system
        stall_ns = 0.0
        try:
            walk = self.walker.walk(vpn)
        except KeyError:
            return 0.0
        for level, ptb_address in walk.fetches:
            result = self.hierarchy.access(ptb_address, is_ptb=True)
            stall_ns += config.cycles_to_ns(result.latency_cycles)
            if result.l3_miss:
                miss = self.controller.serve_l3_miss(
                    ptb_address >> 12, (ptb_address >> 6) & 63,
                    self.clock.now_ns + stall_ns, False,
                )
                stall_ns += miss.latency_ns
                self._trace_miss(miss, kind="ptb", ppn=ptb_address >> 12,
                                 level=level)
                self._track_fig5(miss.path, after_tlb=True)
            self._drain_writebacks(result.dram_writebacks, stall_ns)
            huge_leaf = walk.huge and level == 2
            self.controller.note_ptb_fetch(
                level, ptb_address, self.table.ptb_at(ptb_address), huge_leaf
            )
        return stall_ns

    def _nested_page_walk(self, vpn: int) -> float:
        """Serve a TLB miss with a 2D walk (Figure 12b).

        Every fetch -- host PTBs and guest PTBs alike -- flows through the
        caches and the compression controller; only host PTB fetches feed
        TMCC's CTE harvesting, per Section V-A3's 2D discussion.
        """
        from repro.vm.nested import HOST_FETCH

        config = self.system
        stall_ns = 0.0
        try:
            walk = self.nested_walker.walk(vpn)
        except KeyError:
            return 0.0
        for kind, level, address in walk.fetches:
            result = self.hierarchy.access(address, is_ptb=True)
            stall_ns += config.cycles_to_ns(result.latency_cycles)
            if result.l3_miss:
                miss = self.controller.serve_l3_miss(
                    address >> 12, (address >> 6) & 63,
                    self.clock.now_ns + stall_ns, False,
                )
                stall_ns += miss.latency_ns
                self._trace_miss(miss, kind=f"ptb_{kind}",
                                 ppn=address >> 12, level=level)
                self._track_fig5(miss.path, after_tlb=True)
            self._drain_writebacks(result.dram_writebacks, stall_ns)
            if kind == HOST_FETCH:
                self.controller.note_ptb_fetch(
                    level, address, self.host_table.ptb_at(address),
                    huge_leaf=False,
                )
        return stall_ns

    def _trace_miss(self, miss, kind: str, ppn: int,
                    level: int = -1) -> None:
        """Promote a served miss's pipeline timeline into the open trace."""
        tracer = self.tracer
        if tracer is None or not tracer.active or miss.timeline is None:
            return
        args = {"path": miss.path, "kind": kind, "ppn": ppn,
                "in_ml2": miss.in_ml2}
        if level >= 0:
            args["level"] = level
        tracer.add_timeline("llc_miss", miss.timeline, **args)

    def _drain_writebacks(self, blocks, stall_ns: float) -> None:
        for block in blocks:
            self.controller.serve_writeback(
                block >> 6, block & 63, self.clock.now_ns + stall_ns
            )

    def _track_fig5(self, path: str, after_tlb: bool) -> None:
        if path in (PATH_CTE_HIT,):
            return
        # PATH_ML2 accesses also consulted the CTE path; only count real
        # CTE-cache misses, which every non-hit path represents.
        self._fig5_cte_misses += 1
        if after_tlb:
            self._fig5_after_tlb += 1

    # ------------------------------------------------------------------
    # Statistics plumbing
    # ------------------------------------------------------------------

    def _sim_metrics(self) -> Dict[str, float]:
        """The simulator's own counters, as a metrics source."""
        return {
            "tlb_misses": self._tlb_misses,
            "l3_data_misses": self._l3_data_misses,
            "fig5_cte_misses": self._fig5_cte_misses,
            "fig5_after_tlb": self._fig5_after_tlb,
            "now_ns": self.clock.now_ns,
        }

    def _ml2_metrics(self) -> Dict[str, float]:
        controller = self.controller
        return {
            "access_rate": controller.ml2_access_rate(),
            "ml1_pages": controller.ml1_page_count,
            "ml2_pages": controller.ml2_page_count,
        }

    def metrics_snapshot(self) -> Dict[str, float]:
        """Every component's statistics under namespaced keys."""
        return self.context.metrics.snapshot()

    def _reset_stats(self) -> None:
        self.context.reset_metrics()
        self._fig5_cte_misses = 0
        self._fig5_after_tlb = 0
        self._l3_data_misses = 0
        self._tlb_misses = 0
        if self.timeseries is not None:
            # Re-baseline deltas on the zeroed registry so the first
            # measured window is not one huge negative delta.
            self.timeseries.on_reset()

    def _build_result(self, accesses: int, elapsed_ns: float) -> SimResult:
        controller = self.controller
        stats = controller.stats
        cte_hit_rate = getattr(controller, "cte_hit_rate", 1.0)
        cte_misses = 0
        if hasattr(controller, "cte_cache"):
            cte_misses = controller.cte_cache.stats.misses
        result = SimResult(
            workload=self.workload.name,
            controller=self.controller_name,
            accesses=accesses,
            elapsed_ns=elapsed_ns,
            tlb_miss_rate=self.tlb.stats.miss_rate,
            tlb_misses=self._tlb_misses,
            cte_hit_rate=cte_hit_rate,
            cte_misses=cte_misses,
            cte_misses_after_tlb_miss=(
                self._fig5_after_tlb / self._fig5_cte_misses
                if self._fig5_cte_misses else 0.0
            ),
            l3_misses=stats.count_of("l3_misses"),
            l3_data_misses=self._l3_data_misses,
            avg_l3_miss_latency_ns=controller.average_miss_latency_ns,
            dram_reads=self.dram.stats.count_of("reads"),
            dram_writes=self.dram.stats.count_of("writes"),
            row_hit_rate=self.dram.row_hit_rate,
            bandwidth_utilization=self.dram.bandwidth_utilization(
                max(1.0, elapsed_ns)
            ),
            dram_used_bytes=controller.dram_used_bytes(),
            footprint_bytes=self.workload.footprint_pages * PAGE_SIZE,
            path_fractions=controller.path_fractions(),
            metrics=self.metrics_snapshot(),
        )
        if isinstance(controller, TwoLevelController):
            result.ml2_access_rate = controller.ml2_access_rate()
            result.extra["ml1_pages"] = controller.ml1_page_count
            result.extra["ml2_pages"] = controller.ml2_page_count
        if isinstance(controller, TMCCController):
            result.extra["embedded_coverage"] = controller.embedded_coverage
        return result
