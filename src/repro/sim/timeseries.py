"""Windowed metrics time-series: MetricsRegistry snapshots over sim time.

End-of-run metrics average over the whole measured region; phase
behaviour -- the CTE cache warming up, an ML2 burst when the working set
shifts, migration-buffer pressure ramping -- is invisible in them.  A
:class:`TimeSeriesRecorder` closes that gap: every ``interval_ns`` of
*simulated* time it snapshots the run's
:class:`~repro.sim.instrument.MetricsRegistry` and emits one **delta
row** -- each metric's change over the window, plus re-derived windowed
hit rates (``<ns>.hit_rate`` computed from the window's ``.hits`` /
``.total`` deltas, not the cumulative ratio), so plotting a column
directly gives the phase curve.

Rows are plain dicts; :func:`write_csv` / :func:`write_rows_jsonl`
render them with a sorted, union-of-keys column set so output is
byte-stable and diffable.  Like every observability feature, the
recorder is opt-in (``repro run --interval-ns``) and read-only: it
samples exactly at window boundaries using values the simulation already
computed, consumes no randomness, and leaves metrics untouched.
"""

from __future__ import annotations

import json
from typing import Dict, IO, List, Mapping, Optional, Sequence

from repro.common.errors import ConfigError
from repro.sim.instrument import MetricsRegistry

#: Bookkeeping columns every row carries, ahead of the metric columns.
ROW_META_KEYS = ("window", "start_ns", "end_ns")


class TimeSeriesRecorder:
    """Delta rows of the metrics registry on a fixed sim-time cadence."""

    def __init__(self, registry: MetricsRegistry, interval_ns: float) -> None:
        if interval_ns <= 0:
            raise ConfigError(
                f"time-series interval must be > 0 ns, got {interval_ns}")
        self.registry = registry
        self.interval_ns = float(interval_ns)
        self.rows: List[Dict[str, float]] = []
        self._window = 0
        self._window_start_ns = 0.0
        self._next_boundary_ns = self.interval_ns
        self._previous: Dict[str, float] = {}

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------

    def maybe_sample(self, now_ns: float) -> None:
        """Close every window boundary the clock has crossed."""
        while now_ns >= self._next_boundary_ns:
            self._close_window(self._next_boundary_ns)
            self._next_boundary_ns += self.interval_ns

    def finish(self, now_ns: float) -> None:
        """Flush the final partial window (run end or truncation)."""
        self.maybe_sample(now_ns)
        if now_ns > self._window_start_ns:
            self._close_window(now_ns)

    def on_reset(self) -> None:
        """Warm-up boundary: re-baseline deltas on the zeroed registry.

        Without this, the first post-warmup window would show the reset
        itself as a large negative delta.
        """
        self._previous = dict(self.registry.snapshot())

    def _close_window(self, end_ns: float) -> None:
        snapshot = self.registry.snapshot()
        row: Dict[str, float] = {
            "window": self._window,
            "start_ns": self._window_start_ns,
            "end_ns": end_ns,
        }
        previous = self._previous
        for key, value in snapshot.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            row[key] = value - previous.get(key, 0.0)
        # Windowed rates: the cumulative ``hit_rate`` delta is nearly
        # meaningless; recompute each ratio from the window's own
        # hits/total deltas so the column plots as a phase curve.
        for key in list(row):
            if not key.endswith(".hits"):
                continue
            prefix = key[: -len(".hits")]
            total = row.get(f"{prefix}.total")
            if total is None:
                continue
            rate_key = f"{prefix}.hit_rate"
            row[rate_key] = row[key] / total if total > 0 else 0.0
        self._previous = snapshot
        self._window_start_ns = end_ns
        self._window += 1
        self.rows.append(row)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def columns(self) -> List[str]:
        """Meta keys first, then the sorted union of metric keys."""
        keys = set()
        for row in self.rows:
            keys.update(row)
        metric_keys = sorted(keys - set(ROW_META_KEYS))
        return list(ROW_META_KEYS) + metric_keys

    def column(self, key: str) -> List[float]:
        """One metric's windowed values (0.0 where a window lacks it)."""
        return [float(row.get(key, 0.0)) for row in self.rows]

    def summary(self) -> Dict[str, float]:
        return {
            "windows": len(self.rows),
            "interval_ns": self.interval_ns,
        }


# ----------------------------------------------------------------------
# Serialization
# ----------------------------------------------------------------------


def write_csv(rows: Sequence[Mapping[str, float]], handle: IO[str],
              columns: Optional[Sequence[str]] = None) -> None:
    """Render rows as CSV with a sorted union-of-keys header."""
    if columns is None:
        keys = set()
        for row in rows:
            keys.update(row)
        columns = list(ROW_META_KEYS) + sorted(keys - set(ROW_META_KEYS))
    handle.write(",".join(columns) + "\n")
    for row in rows:
        handle.write(",".join(_csv_cell(row.get(key, 0.0))
                              for key in columns) + "\n")


def _csv_cell(value: object) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def write_rows_jsonl(rows: Sequence[Mapping[str, float]],
                     handle: IO[str]) -> None:
    for row in rows:
        handle.write(json.dumps(dict(row), sort_keys=True) + "\n")


def read_rows(path) -> List[Dict[str, float]]:
    """Load a time-series file written by either serializer."""
    from pathlib import Path

    try:
        text = Path(path).read_text()
    except OSError as error:
        raise ConfigError(
            f"cannot read time series {str(path)!r}: {error}") from error
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        return []
    if lines[0].lstrip().startswith("{"):
        return [json.loads(line) for line in lines]
    header = lines[0].split(",")
    rows = []
    for line in lines[1:]:
        cells = line.split(",")
        row: Dict[str, float] = {}
        for key, cell in zip(header, cells):
            try:
                row[key] = float(cell)
            except ValueError:
                row[key] = 0.0
        rows.append(row)
    return rows


def write_timeseries_file(rows: Sequence[Mapping[str, float]], path,
                          columns: Optional[Sequence[str]] = None) -> None:
    """Write rows in the format the extension names (.csv, else JSONL)."""
    from pathlib import Path

    path = Path(path)
    try:
        with open(path, "w") as handle:
            if path.suffix == ".csv":
                write_csv(rows, handle, columns)
            else:
                write_rows_jsonl(rows, handle)
    except OSError as error:
        raise ConfigError(
            f"cannot write time series to {str(path)!r}: {error}") from error
