"""Simulation result record.

One :class:`SimResult` carries every statistic the paper's figures plot,
so benchmark harnesses only format rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class SimResult:
    """Everything one simulation run measured."""

    workload: str
    controller: str
    accesses: int
    elapsed_ns: float

    # Translation behaviour
    tlb_miss_rate: float = 0.0
    tlb_misses: int = 0
    cte_hit_rate: float = 0.0
    cte_misses: int = 0
    #: Figure 5: fraction of CTE misses on walk-related accesses.
    cte_misses_after_tlb_miss: float = 0.0

    # LLC / memory behaviour
    l3_misses: int = 0
    l3_data_misses: int = 0
    avg_l3_miss_latency_ns: float = 0.0
    dram_reads: int = 0
    dram_writes: int = 0
    row_hit_rate: float = 0.0
    bandwidth_utilization: float = 0.0

    # Compression behaviour
    dram_used_bytes: int = 0
    footprint_bytes: int = 0
    ml2_access_rate: float = 0.0
    path_fractions: Dict[str, float] = field(default_factory=dict)
    extra: Dict[str, float] = field(default_factory=dict)
    #: The run stopped early (wall-clock watchdog or user interrupt);
    #: metrics cover only the accesses actually replayed.
    truncated: bool = False
    #: Why a truncated/failed run stopped, when known (one line).
    error: str = ""
    #: Full namespaced metric dump (``tlb.hit_rate``, ``controller.paths.
    #: cte_hit``, ...) from the run's MetricsRegistry; the key scheme is
    #: documented in docs/architecture.md.
    metrics: Dict[str, float] = field(default_factory=dict)

    @property
    def performance(self) -> float:
        """Accesses per microsecond -- the relative-performance metric.

        The paper reports store instructions/cycle; any monotone
        throughput proxy works for normalized comparisons.
        """
        if self.elapsed_ns <= 0:
            return 0.0
        return self.accesses / (self.elapsed_ns / 1000.0)

    @property
    def compression_ratio(self) -> float:
        """Footprint / DRAM used (effective-capacity gain)."""
        if self.dram_used_bytes <= 0:
            return 0.0
        return self.footprint_bytes / self.dram_used_bytes

    def headline(self) -> Dict[str, float]:
        """The handful of metrics a run report leads with.

        A stable, ordered subset of :meth:`as_dict` -- the numbers a
        reader checks first and ``repro report --compare`` diffs most
        prominently.
        """
        return {
            "performance": self.performance,
            "avg_l3_miss_latency_ns": self.avg_l3_miss_latency_ns,
            "compression_ratio": self.compression_ratio,
            "tlb_miss_rate": self.tlb_miss_rate,
            "cte_hit_rate": self.cte_hit_rate,
            "ml2_access_rate": self.ml2_access_rate,
            "row_hit_rate": self.row_hit_rate,
            "bandwidth_utilization": self.bandwidth_utilization,
        }

    def as_dict(self) -> Dict[str, object]:
        """Flatten everything (including derived metrics) for reporting."""
        from dataclasses import asdict

        flattened = asdict(self)
        flattened.update(
            performance=self.performance,
            compression_ratio=self.compression_ratio,
            tlb_misses_per_l3_miss=self.tlb_misses_per_l3_miss,
            cte_misses_per_l3_miss=self.cte_misses_per_l3_miss,
        )
        return flattened

    def to_json(self, path) -> None:
        """Write the stats record as JSON (a gem5-style stats dump)."""
        import json
        from pathlib import Path

        Path(path).write_text(json.dumps(self.as_dict(), indent=2,
                                         sort_keys=True))

    @classmethod
    def from_json(cls, path) -> "SimResult":
        """Load a previously dumped record (derived metrics recomputed)."""
        import json
        from pathlib import Path

        data = json.loads(Path(path).read_text())
        fields = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in data.items() if k in fields})

    @property
    def tlb_misses_per_l3_miss(self) -> float:
        """Figure 1's x-axis normalization for TLB misses."""
        if self.l3_data_misses <= 0:
            return 0.0
        return self.tlb_misses / self.l3_data_misses

    @property
    def cte_misses_per_l3_miss(self) -> float:
        if self.l3_misses <= 0:
            return 0.0
        return self.cte_misses / self.l3_misses
