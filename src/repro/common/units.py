"""Memory-size constants and address arithmetic.

The paper's memory hierarchy operates on two granularities everywhere:

- 64 B *memory blocks* (cache lines, page-table blocks, CTE blocks), and
- 4 KB *pages* (the unit of virtual translation and of TMCC's migration).

All addresses in this codebase are plain integers (byte addresses unless a
function name says otherwise).  Keeping them as ``int`` rather than wrapper
classes keeps the hot simulator loops cheap.
"""

from __future__ import annotations

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB
TIB = 1024 * GIB

#: Size of one memory block / cache line in bytes.
BLOCK_SIZE = 64

#: Size of one page in bytes (base pages; huge pages are handled separately).
PAGE_SIZE = 4 * KIB

#: Number of 64 B blocks in a 4 KB page.
BLOCKS_PER_PAGE = PAGE_SIZE // BLOCK_SIZE

#: Number of 8 B page-table entries in one 64 B page-table block.
PTES_PER_PTB = 8

#: Size of a page-table entry in bytes (x86-64).
PTE_SIZE = 8


def is_power_of_two(value: int) -> bool:
    """Return ``True`` when ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def align_down(address: int, alignment: int) -> int:
    """Round ``address`` down to a multiple of ``alignment`` (a power of two)."""
    if not is_power_of_two(alignment):
        raise ValueError(f"alignment must be a power of two, got {alignment}")
    return address & ~(alignment - 1)


def align_up(address: int, alignment: int) -> int:
    """Round ``address`` up to a multiple of ``alignment`` (a power of two)."""
    if not is_power_of_two(alignment):
        raise ValueError(f"alignment must be a power of two, got {alignment}")
    return (address + alignment - 1) & ~(alignment - 1)


def is_aligned(address: int, alignment: int) -> bool:
    """Return ``True`` when ``address`` is a multiple of ``alignment``."""
    if not is_power_of_two(alignment):
        raise ValueError(f"alignment must be a power of two, got {alignment}")
    return (address & (alignment - 1)) == 0


def page_of(address: int) -> int:
    """Return the page number containing byte ``address``."""
    return address >> 12


def block_of(address: int) -> int:
    """Return the block number containing byte ``address``."""
    return address >> 6


def page_base(address: int) -> int:
    """Return the byte address of the start of the page containing ``address``."""
    return address & ~(PAGE_SIZE - 1)


def block_base(address: int) -> int:
    """Return the byte address of the start of the block containing ``address``."""
    return address & ~(BLOCK_SIZE - 1)


def block_index_in_page(address: int) -> int:
    """Return which of the 64 blocks of its page ``address`` falls in."""
    return (address & (PAGE_SIZE - 1)) >> 6
