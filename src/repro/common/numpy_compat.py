"""Central numpy import gate.

Every consumer of numpy in the hot path imports it from here instead of
importing ``numpy`` directly, so one switch controls all of them:

- when numpy is not installed, ``np`` is ``None`` and callers take their
  pure-python columnar fallbacks;
- when the ``REPRO_NO_NUMPY`` environment variable is set (to anything
  non-empty), numpy is masked out even if installed.  CI uses this to
  run the bench gate and the fast-vs-slow goldens a second time against
  the pure-python paths, which would otherwise only be exercised on
  hosts without numpy.

``numpy_available()`` re-reads the environment so tests can flip the
variable with ``monkeypatch.setenv``; module-level ``np`` is resolved
once at import for the common case.
"""

from __future__ import annotations

import os

try:
    import numpy as _numpy
except ImportError:  # pragma: no cover - numpy ships with the toolchain
    _numpy = None


def numpy_or_none():
    """The numpy module, or ``None`` when missing or masked out."""
    if _numpy is None or os.environ.get("REPRO_NO_NUMPY"):
        return None
    return _numpy


#: Resolved once at import time; hot paths that cannot afford a call may
#: use this, but anything testable should call :func:`numpy_or_none`.
np = numpy_or_none()
