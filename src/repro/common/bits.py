"""Bit-field helpers and bitstream I/O.

Two consumers drive the design here:

- the hardware structures (PTEs, CTEs, compressed PTB encodings) extract and
  insert fixed-width fields out of integers, and
- the compression codecs (LZ, Huffman, Deflate, BDI, C-Pack, BPC) serialize
  variable-width codes into byte buffers and read them back bit-exactly.

:class:`BitWriter` and :class:`BitReader` write most-significant-bit first
within each byte, which keeps dumps easy to eyeball and matches how the
paper's HDL shifts codes out of its encoder.
"""

from __future__ import annotations


def mask(width: int) -> int:
    """Return an integer with the low ``width`` bits set."""
    if width < 0:
        raise ValueError(f"width must be non-negative, got {width}")
    return (1 << width) - 1


def extract_bits(value: int, low: int, width: int) -> int:
    """Extract ``width`` bits of ``value`` starting at bit ``low``."""
    return (value >> low) & mask(width)


def insert_bits(value: int, low: int, width: int, field: int) -> int:
    """Return ``value`` with bits ``[low, low+width)`` replaced by ``field``."""
    if field >> width:
        raise ValueError(f"field {field:#x} does not fit in {width} bits")
    cleared = value & ~(mask(width) << low)
    return cleared | (field << low)


def bit_length_of_count(count: int) -> int:
    """Bits needed to represent ``count`` distinct values (at least 1)."""
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    return max(1, (count - 1).bit_length())


class BitWriter:
    """Accumulates variable-width codes into a byte buffer, MSB-first."""

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._accumulator = 0
        self._pending_bits = 0

    def write(self, value: int, width: int) -> None:
        """Append the low ``width`` bits of ``value`` to the stream."""
        if width < 0:
            raise ValueError(f"width must be non-negative, got {width}")
        if value < 0 or value >> width:
            raise ValueError(f"value {value:#x} does not fit in {width} bits")
        accumulator = (self._accumulator << width) | value
        pending = self._pending_bits + width
        if pending >= 8:
            buffer = self._buffer
            while pending >= 8:
                pending -= 8
                buffer.append((accumulator >> pending) & 0xFF)
            accumulator &= (1 << pending) - 1
        self._accumulator = accumulator
        self._pending_bits = pending

    def write_bytes(self, data: bytes) -> None:
        """Append whole bytes (each written as an 8-bit code)."""
        for byte in data:
            self.write(byte, 8)

    @property
    def bit_length(self) -> int:
        """Total number of bits written so far."""
        return len(self._buffer) * 8 + self._pending_bits

    def getvalue(self) -> bytes:
        """Return the stream padded with zero bits to a whole byte."""
        result = bytearray(self._buffer)
        if self._pending_bits:
            result.append((self._accumulator << (8 - self._pending_bits)) & 0xFF)
        return bytes(result)


class BitReader:
    """Reads variable-width codes back out of a :class:`BitWriter` buffer."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._position = 0  # bit offset from the start of the buffer

    def read(self, width: int) -> int:
        """Consume and return the next ``width`` bits as an integer."""
        if width < 0:
            raise ValueError(f"width must be non-negative, got {width}")
        if self._position + width > len(self._data) * 8:
            raise EOFError(
                f"bitstream exhausted: need {width} bits at offset "
                f"{self._position} of {len(self._data) * 8}"
            )
        value = 0
        remaining = width
        while remaining:
            byte_index, bit_index = divmod(self._position, 8)
            available = 8 - bit_index
            take = min(available, remaining)
            chunk = (self._data[byte_index] >> (available - take)) & mask(take)
            value = (value << take) | chunk
            self._position += take
            remaining -= take
        return value

    def peek(self, width: int) -> int:
        """Return the next ``width`` bits without consuming them.

        Bits past the end of the buffer read as zero, which lets Huffman
        decoders peek a full code width near the end of a stream.
        """
        saved = self._position
        total_bits = len(self._data) * 8
        readable = min(width, max(0, total_bits - saved))
        value = self.read(readable) if readable else 0
        self._position = saved
        return value << (width - readable)

    def skip(self, width: int) -> None:
        """Advance the read position by ``width`` bits."""
        if self._position + width > len(self._data) * 8:
            raise EOFError("cannot skip past end of bitstream")
        self._position += width

    @property
    def position(self) -> int:
        """Current bit offset."""
        return self._position

    @property
    def bits_remaining(self) -> int:
        """Number of unread bits left in the buffer."""
        return len(self._data) * 8 - self._position
