"""Statistics primitives used across the simulator and benchmarks.

The simulator reports everything the paper's figures need -- miss rates,
latency averages, access-type breakdowns -- via these small containers so
each component can expose a uniform ``stats()`` mapping.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean; 0.0 for an empty sequence."""
    items = list(values)
    if not items:
        return 0.0
    return sum(items) / len(items)


def geomean(values: Iterable[float]) -> float:
    """Geometric mean; 0.0 for an empty sequence.

    The paper reports compression ratios and speedups as geometric means.
    Zero entries (a workload that recorded nothing, e.g. after a crash or
    an all-warm-up run) are skipped with a warning rather than poisoning
    the whole aggregate; negative entries are still a caller bug and
    raise.
    """
    items = list(values)
    if any(v < 0 for v in items):
        raise ValueError("geomean requires non-negative values")
    zeros = sum(1 for v in items if v == 0)
    if zeros:
        warnings.warn(f"geomean: skipping {zeros} zero value(s)",
                      stacklevel=2)
        items = [v for v in items if v > 0]
    if not items:
        return 0.0
    return math.exp(sum(math.log(v) for v in items) / len(items))


@dataclass(slots=True)
class Counter:
    """A named monotonically increasing event counter."""

    name: str
    value: int = 0

    def increment(self, amount: int = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0


@dataclass(slots=True)
class RatioStat:
    """Tracks hits out of total lookups (TLB/cache/CTE hit rates)."""

    name: str
    hits: int = 0
    total: int = 0

    def record(self, hit: bool) -> None:
        self.total += 1
        if hit:
            self.hits += 1

    @property
    def misses(self) -> int:
        return self.total - self.hits

    @property
    def hit_rate(self) -> float:
        return self.hits / self.total if self.total else 0.0

    @property
    def miss_rate(self) -> float:
        return 1.0 - self.hit_rate if self.total else 0.0

    def reset(self) -> None:
        self.hits = 0
        self.total = 0


@dataclass(slots=True)
class Histogram:
    """Accumulates samples; reports count/sum/mean and percentiles."""

    name: str
    samples: List[float] = field(default_factory=list)

    def record(self, value: float) -> None:
        self.samples.append(value)

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def total(self) -> float:
        return sum(self.samples)

    @property
    def mean(self) -> float:
        return mean(self.samples)

    def percentile(self, fraction: float) -> float:
        """Nearest-rank percentile with ``fraction`` in [0, 1].

        An empty histogram reports 0.0 for any valid fraction; a single
        sample is every percentile of itself.  An out-of-range fraction
        raises even when empty -- a bad fraction is a caller bug, not a
        property of the data.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        rank = min(len(ordered) - 1, max(0, math.ceil(fraction * len(ordered)) - 1))
        return ordered[rank]

    def reset(self) -> None:
        self.samples.clear()


class StatGroup:
    """A flat bag of named statistics with a uniform dump format.

    Components register counters/ratios/histograms once and callers render
    them with :meth:`as_dict`, which the benchmark harness prints as the
    rows of each reproduced table or figure.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._counters: Dict[str, Counter] = {}
        self._ratios: Dict[str, RatioStat] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def count_of(self, name: str) -> int:
        """A counter's value without creating it.

        Result builders read through this so that reporting a partial
        (truncated) result never changes which counters exist -- counter
        existence is part of checkpointed state, and resumed runs must
        stay bit-identical to uninterrupted ones.
        """
        counter = self._counters.get(name)
        return counter.value if counter is not None else 0

    def ratio(self, name: str) -> RatioStat:
        if name not in self._ratios:
            self._ratios[name] = RatioStat(name)
        return self._ratios[name]

    def histogram(self, name: str) -> Histogram:
        if name not in self._histograms:
            self._histograms[name] = Histogram(name)
        return self._histograms[name]

    def reset(self) -> None:
        for stat in (*self._counters.values(), *self._ratios.values(),
                     *self._histograms.values()):
            stat.reset()

    def as_dict(self) -> Mapping[str, float]:
        """Flatten all statistics into ``{name: value}`` for reporting."""
        out: Dict[str, float] = {}
        for counter in self._counters.values():
            out[counter.name] = counter.value
        for ratio in self._ratios.values():
            out[f"{ratio.name}.hits"] = ratio.hits
            out[f"{ratio.name}.total"] = ratio.total
            out[f"{ratio.name}.hit_rate"] = ratio.hit_rate
        for histogram in self._histograms.values():
            out[f"{histogram.name}.count"] = histogram.count
            out[f"{histogram.name}.mean"] = histogram.mean
        return out
