"""Decorator-based component registries.

The simulation stack is assembled from pluggable components -- memory
controllers, prefetchers, recency policies.  Each family keeps a
:class:`Registry` that maps a stable string name to the implementing
class; implementations self-register at import time with the registry's
``register`` decorator::

    CONTROLLER_REGISTRY = Registry("controller")

    @CONTROLLER_REGISTRY.register
    class TMCCController(TwoLevelController):
        name = "tmcc"

Benchmarks, the CLI, and out-of-tree extensions then discover components
by name (``registry.get("tmcc")``, ``registry.names()``) instead of
importing hardwired dicts, so adding a controller is one decorated class
-- no simulator edits.
"""

from __future__ import annotations

from typing import Callable, Dict, Generic, Iterator, List, Optional, Tuple, TypeVar

T = TypeVar("T")


class Registry(Generic[T]):
    """A named string -> class mapping with a registration decorator."""

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: Dict[str, T] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def register(self, entry: Optional[T] = None, *,
                 name: Optional[str] = None) -> Callable:
        """Register a class, usable bare or with an explicit name.

        ``@registry.register`` takes the name from the class's ``name``
        attribute; ``@registry.register(name="alias")`` overrides it.
        """
        def decorate(cls: T) -> T:
            key = name if name is not None else getattr(cls, "name", None)
            if not key:
                raise ValueError(
                    f"{self.kind} {cls!r} needs a non-empty 'name' attribute "
                    f"or an explicit name= argument"
                )
            self.add(key, cls)
            return cls

        if entry is not None:  # bare @registry.register
            return decorate(entry)
        return decorate

    def add(self, name: str, entry: T) -> None:
        existing = self._entries.get(name)
        if existing is not None and existing is not entry:
            raise ValueError(
                f"{self.kind} name {name!r} already registered to {existing!r}"
            )
        self._entries[name] = entry

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def get(self, name: str) -> T:
        try:
            return self._entries[name]
        except KeyError:
            raise ValueError(
                f"unknown {self.kind} {name!r}; choose from {self.names()}"
            ) from None

    def create(self, name: str, *args, **kwargs):
        """Instantiate the registered class."""
        return self.get(name)(*args, **kwargs)

    def names(self) -> List[str]:
        return sorted(self._entries)

    def items(self) -> List[Tuple[str, T]]:
        return sorted(self._entries.items())

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._entries)
