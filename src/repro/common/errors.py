"""The structured simulation-error taxonomy.

Every error the stack raises deliberately falls into one of three kinds,
so front-ends (the CLI, the benchmark harness, the run supervisor) can
react uniformly instead of pattern-matching message strings:

- :class:`ConfigError` -- the *request* was impossible: a DRAM budget
  below the compressible floor, a non-positive trace length, a scale
  outside (0, 1].  Also a :class:`ValueError`, so pre-taxonomy callers
  (``except ValueError``) keep working.  CLI exit code 2.
- :class:`ModelInvariantError` -- the *model* broke: a double free, a
  dismantled super-chunk handed back, a stage latency going negative.
  These indicate a bug (ours or an injected fault's), never bad input.
  Also a :class:`RuntimeError`.  CLI exit code 1.
- :class:`ResourceError` -- the *run* ran out of something external:
  wall-clock budget, checkpoint storage, file handles.  Also a
  :class:`RuntimeError`.  CLI exit code 1.

:func:`classify_error` maps any exception (taxonomy or not) to one of
the ``ERROR_KIND_*`` labels for structured reporting (``repro run
--emit-json`` error documents, the supervisor's truncation records).

On top of the kinds sits the *transient/permanent* split the sweep
engine's retry policy keys on: a ``resource`` failure (wall clock,
storage, a worker process dying under the job) may succeed if simply
re-run, while ``config``/``model_invariant``/``internal`` failures are
deterministic -- retrying replays the exact same error, so they fail
fast.  :func:`is_transient` answers that question for either an
exception or a recorded kind label.
"""

from __future__ import annotations

from typing import Union

ERROR_KIND_CONFIG = "config"
ERROR_KIND_INVARIANT = "model_invariant"
ERROR_KIND_RESOURCE = "resource"
ERROR_KIND_INTERNAL = "internal"

#: Kinds worth retrying: the failure came from outside the simulated
#: model (host resources, worker death, store I/O), so a re-run with
#: the same spec can legitimately succeed.
TRANSIENT_ERROR_KINDS = frozenset({ERROR_KIND_RESOURCE})


class SimError(Exception):
    """Base of the structured simulation-error taxonomy."""

    kind = ERROR_KIND_INTERNAL


class ConfigError(SimError, ValueError):
    """The requested configuration cannot be simulated."""

    kind = ERROR_KIND_CONFIG


class ModelInvariantError(SimError, RuntimeError):
    """Simulation state violated a model invariant (a bug or a fault)."""

    kind = ERROR_KIND_INVARIANT


class ResourceError(SimError, RuntimeError):
    """The run exhausted an external resource (time, storage, ...)."""

    kind = ERROR_KIND_RESOURCE


def is_transient(failure: Union[BaseException, str]) -> bool:
    """Whether a failure is worth retrying.

    Accepts either an exception (classified first) or a recorded
    ``ERROR_KIND_*`` label straight out of a sweep job record.
    """
    kind = (classify_error(failure) if isinstance(failure, BaseException)
            else failure)
    return kind in TRANSIENT_ERROR_KINDS


def classify_error(error: BaseException) -> str:
    """The taxonomy kind for any exception.

    Taxonomy members report their own kind; plain ``ValueError``s from
    pre-taxonomy code are treated as configuration errors (they are
    raised for impossible requests throughout the model layers), and
    everything else is ``internal``.
    """
    if isinstance(error, SimError):
        return error.kind
    if isinstance(error, ValueError):
        return ERROR_KIND_CONFIG
    if isinstance(error, (OSError, MemoryError, TimeoutError)):
        return ERROR_KIND_RESOURCE
    return ERROR_KIND_INTERNAL
