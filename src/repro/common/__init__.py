"""Shared utilities for the TMCC reproduction.

This package hosts the low-level helpers every substrate builds on:

- :mod:`repro.common.units` -- memory-size constants and address arithmetic.
- :mod:`repro.common.bits` -- bit-field extraction and bitstream I/O.
- :mod:`repro.common.stats` -- counters, histograms, and geometric means.
- :mod:`repro.common.rng` -- deterministic random number generation.
"""

from repro.common.units import (
    KIB,
    MIB,
    GIB,
    TIB,
    BLOCK_SIZE,
    PAGE_SIZE,
    BLOCKS_PER_PAGE,
    PTES_PER_PTB,
    align_down,
    align_up,
    block_of,
    is_aligned,
    page_of,
)
from repro.common.bits import (
    BitReader,
    BitWriter,
    bit_length_of_count,
    extract_bits,
    insert_bits,
    mask,
)
from repro.common.stats import (
    Counter,
    Histogram,
    RatioStat,
    StatGroup,
    geomean,
    mean,
)
from repro.common.rng import DeterministicRNG

__all__ = [
    "KIB",
    "MIB",
    "GIB",
    "TIB",
    "BLOCK_SIZE",
    "PAGE_SIZE",
    "BLOCKS_PER_PAGE",
    "PTES_PER_PTB",
    "align_down",
    "align_up",
    "block_of",
    "is_aligned",
    "page_of",
    "BitReader",
    "BitWriter",
    "bit_length_of_count",
    "extract_bits",
    "insert_bits",
    "mask",
    "Counter",
    "Histogram",
    "RatioStat",
    "StatGroup",
    "geomean",
    "mean",
    "DeterministicRNG",
]
