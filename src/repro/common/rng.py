"""Deterministic random number generation.

Every stochastic element of the reproduction -- workload traces, page
contents, the recency list's 1% access sampling -- draws from a seeded
:class:`DeterministicRNG` so every test and benchmark is exactly
reproducible run to run.
"""

from __future__ import annotations

import random
from typing import List, Sequence, TypeVar

T = TypeVar("T")


class DeterministicRNG:
    """A thin seeded wrapper over :class:`random.Random`.

    Wrapping (rather than using module-level :mod:`random`) guarantees that
    independent components cannot perturb each other's streams: each gets
    its own generator derived from an explicit seed.
    """

    def __init__(self, seed: int) -> None:
        self.seed = seed
        self._rng = random.Random(seed)

    def fork(self, salt: int) -> "DeterministicRNG":
        """Derive an independent child generator.

        Forking keeps, e.g., trace generation independent of page-content
        generation for the same workload seed.
        """
        return DeterministicRNG((self.seed * 1_000_003 + salt) & 0xFFFF_FFFF_FFFF)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in [low, high] inclusive."""
        return self._rng.randint(low, high)

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return self._rng.random()

    def chance(self, probability: float) -> bool:
        """Bernoulli trial."""
        return self._rng.random() < probability

    def choice(self, options: Sequence[T]) -> T:
        return self._rng.choice(options)

    def shuffle(self, items: List[T]) -> None:
        self._rng.shuffle(items)

    def sample(self, population: Sequence[T], count: int) -> List[T]:
        return self._rng.sample(population, count)

    def bytes(self, count: int) -> bytes:
        """``count`` uniformly random bytes."""
        return self._rng.randbytes(count)

    def gauss(self, mu: float, sigma: float) -> float:
        return self._rng.gauss(mu, sigma)

    def expovariate(self, rate: float) -> float:
        return self._rng.expovariate(rate)

    def zipf_index(self, population: int, exponent: float = 1.0) -> int:
        """Sample an index in [0, population) with a Zipf-like distribution.

        Used by the irregular-workload trace generators: low indices are
        hot, the tail is long.  Implemented by inverse-CDF on the harmonic
        approximation, cheap enough for million-access traces.
        """
        if population <= 0:
            raise ValueError("population must be positive")
        if population == 1:
            return 0
        # Inverse-transform on H(n) ~ ln(n); exact enough for trace shaping.
        u = self._rng.random()
        if exponent == 1.0:
            import math

            h_n = math.log(population) + 0.5772156649
            target = u * h_n
            return min(population - 1, max(0, int(math.exp(target) - 0.5)))
        # General exponent via rejection-free power-law approximation.
        power = 1.0 / (1.0 - exponent) if exponent != 1.0 else 1.0
        value = (1 - u * (1 - population ** (1 - exponent))) ** power
        return min(population - 1, max(0, int(value) - 1))
