"""A flat, columnar, exact-LRU ordering over integer keys.

``IntLRU`` replaces the ``OrderedDict``-as-LRU idiom of the hot-path
state stores (TLB, page-walk cache, CTE cache, recency list).  State is
structure-of-arrays: a ``key -> slot`` dict plus parallel ``key`` /
``value`` / ``prev`` / ``next`` columns indexed by slot, with head
(LRU) / tail (MRU) cursors and a free-slot stack.  All operations are
O(1) and allocation-free after warm-up (slots are recycled), and the
whole structure pickles (checkpoint/resume).

Semantics mirror an ``OrderedDict`` used with ``move_to_end`` and
``popitem(last=False)``: insertion and touch both make a key MRU;
``pop_lru`` removes the oldest.  The differential property tests pin
this equivalence against real ``OrderedDict`` oracles.
"""

from __future__ import annotations

from typing import Iterator, List, Optional


class IntLRU:
    """Exact LRU set/map over int keys, columnar storage, O(1) ops."""

    __slots__ = ("_slot", "_key", "_val", "_prev", "_next",
                 "_head", "_tail", "_free")

    def __init__(self) -> None:
        self._slot: dict = {}      # key -> slot
        self._key: List[int] = []  # slot -> key
        self._val: list = []       # slot -> caller value
        self._prev: List[int] = []  # slot -> previous (colder) slot or -1
        self._next: List[int] = []  # slot -> next (hotter) slot or -1
        self._head = -1  # LRU (coldest)
        self._tail = -1  # MRU (hottest)
        self._free: List[int] = []

    def __len__(self) -> int:
        return len(self._slot)

    def __contains__(self, key: int) -> bool:
        return key in self._slot

    def __bool__(self) -> bool:
        return bool(self._slot)

    def get(self, key: int, default=None):
        slot = self._slot.get(key)
        return default if slot is None else self._val[slot]

    def move_to_end(self, key: int) -> None:
        """Make ``key`` the MRU element (it must be present)."""
        slot = self._slot[key]
        nxt = self._next[slot]
        if nxt == -1:
            return  # already MRU
        prv = self._prev[slot]
        if prv == -1:
            self._head = nxt
        else:
            self._next[prv] = nxt
        self._prev[nxt] = prv
        tail = self._tail
        self._next[tail] = slot
        self._prev[slot] = tail
        self._next[slot] = -1
        self._tail = slot

    def insert_mru(self, key: int, value=True) -> None:
        """Insert an absent ``key`` at the MRU end."""
        free = self._free
        if free:
            slot = free.pop()
            self._key[slot] = key
            self._val[slot] = value
        else:
            slot = len(self._key)
            self._key.append(key)
            self._val.append(value)
            self._prev.append(-1)
            self._next.append(-1)
        self._slot[key] = slot
        tail = self._tail
        self._prev[slot] = tail
        self._next[slot] = -1
        if tail == -1:
            self._head = slot
        else:
            self._next[tail] = slot
        self._tail = slot

    def pop_lru(self) -> Optional[int]:
        """Remove and return the LRU key, or ``None`` when empty."""
        slot = self._head
        if slot == -1:
            return None
        key = self._key[slot]
        nxt = self._next[slot]
        self._head = nxt
        if nxt == -1:
            self._tail = -1
        else:
            self._prev[nxt] = -1
        del self._slot[key]
        self._val[slot] = None
        self._free.append(slot)
        return key

    def discard(self, key: int) -> bool:
        """Remove ``key`` if present; True when something was removed."""
        slot = self._slot.pop(key, None)
        if slot is None:
            return False
        prv = self._prev[slot]
        nxt = self._next[slot]
        if prv == -1:
            self._head = nxt
        else:
            self._next[prv] = nxt
        if nxt == -1:
            self._tail = prv
        else:
            self._prev[nxt] = prv
        self._val[slot] = None
        self._free.append(slot)
        return True

    def clear(self) -> None:
        self._slot.clear()
        del self._key[:]
        del self._val[:]
        del self._prev[:]
        del self._next[:]
        self._head = -1
        self._tail = -1
        del self._free[:]

    def keys_lru_to_mru(self) -> Iterator[int]:
        """Iterate keys coldest first (the OrderedDict iteration order)."""
        slot = self._head
        key = self._key
        nxt = self._next
        while slot != -1:
            yield key[slot]
            slot = nxt[slot]
