"""Table rendering and report assembly.

The benchmark harness, the CLI, and ``scripts/reproduce.py`` all present
reproduced tables; this module is the one place that formats them, so the
text output and the markdown report stay consistent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Sequence, Union

Cell = Union[str, int, float]


def render_table(header: Sequence[Cell], rows: Sequence[Sequence[Cell]]) -> str:
    """Align a header + rows into fixed-width text columns."""
    if not header:
        raise ValueError("a table needs a header")
    grid = [[str(c) for c in header]] + [[str(c) for c in row] for row in rows]
    width = len(grid[0])
    if any(len(row) != width for row in grid):
        raise ValueError("all rows must match the header's column count")
    widths = [max(len(row[i]) for row in grid) for i in range(width)]
    lines = ["  ".join(cell.ljust(w) for cell, w in zip(grid[0], widths))]
    lines.append("-" * len(lines[0]))
    for row in grid[1:]:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


@dataclass
class ReproducedTable:
    """One regenerated table/figure."""

    title: str
    header: Sequence[Cell]
    rows: List[Sequence[Cell]] = field(default_factory=list)

    def add_row(self, *cells: Cell) -> None:
        self.rows.append(cells)

    def render(self) -> str:
        return f"=== {self.title} ===\n{render_table(self.header, self.rows)}"

    def to_markdown(self) -> str:
        head = "| " + " | ".join(str(c) for c in self.header) + " |"
        sep = "|" + "|".join("---" for _ in self.header) + "|"
        body = "\n".join(
            "| " + " | ".join(str(c) for c in row) + " |" for row in self.rows
        )
        return f"## {self.title}\n\n{head}\n{sep}\n{body}\n"


@dataclass
class Report:
    """A collection of reproduced tables, writable as markdown."""

    title: str
    tables: List[ReproducedTable] = field(default_factory=list)

    def add(self, table: ReproducedTable) -> None:
        self.tables.append(table)

    def to_markdown(self) -> str:
        parts = [f"# {self.title}\n"]
        parts += [table.to_markdown() for table in self.tables]
        return "\n".join(parts)

    def write(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_markdown())
        return path
