"""Table rendering, run reports, and run-to-run comparison.

The benchmark harness, the CLI, and ``scripts/reproduce.py`` all present
reproduced tables; this module is the one place that formats them, so the
text output and the markdown report stay consistent.

On top of the table primitives it builds the ``repro report`` subsystem:

- :func:`build_run_report` turns one ``--emit-json`` run document (plus,
  optionally, an exported span trace and a time-series file) into a
  :class:`RunReport` -- configuration, headline metrics, access-path
  fractions, the per-path stage-latency breakdown, the top-k slowest
  spans, and unicode sparklines of the windowed time series -- rendered
  as markdown or a self-contained HTML page.
- :func:`compare_runs` diffs two run documents metric-by-metric
  (absolute and relative deltas); a document missing the run schema's
  required fields raises :class:`~repro.common.errors.ConfigError`, which
  the CLI maps to exit code 2.
"""

from __future__ import annotations

import html as _html
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Union

from repro.common.errors import ConfigError

Cell = Union[str, int, float]

#: Fields a run document must carry to be reportable/comparable; the
#: ``--emit-json`` record always has them.
RUN_SCHEMA_REQUIRED = ("workload", "controller", "metrics")

#: The headline metrics a report leads with (order is presentation
#: order; missing fields are skipped).
HEADLINE_FIELDS = (
    "performance",
    "avg_l3_miss_latency_ns",
    "compression_ratio",
    "tlb_miss_rate",
    "cte_hit_rate",
    "ml2_access_rate",
    "row_hit_rate",
    "bandwidth_utilization",
)

#: Sparkline glyphs, lowest to highest.
_SPARK_CHARS = "▁▂▃▄▅▆▇█"


def render_table(header: Sequence[Cell], rows: Sequence[Sequence[Cell]]) -> str:
    """Align a header + rows into fixed-width text columns."""
    if not header:
        raise ValueError("a table needs a header")
    grid = [[str(c) for c in header]] + [[str(c) for c in row] for row in rows]
    width = len(grid[0])
    if any(len(row) != width for row in grid):
        raise ValueError("all rows must match the header's column count")
    widths = [max(len(row[i]) for row in grid) for i in range(width)]
    lines = ["  ".join(cell.ljust(w) for cell, w in zip(grid[0], widths))]
    lines.append("-" * len(lines[0]))
    for row in grid[1:]:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


@dataclass
class ReproducedTable:
    """One regenerated table/figure."""

    title: str
    header: Sequence[Cell]
    rows: List[Sequence[Cell]] = field(default_factory=list)

    def add_row(self, *cells: Cell) -> None:
        self.rows.append(cells)

    def render(self) -> str:
        return f"=== {self.title} ===\n{render_table(self.header, self.rows)}"

    def to_markdown(self) -> str:
        head = "| " + " | ".join(str(c) for c in self.header) + " |"
        sep = "|" + "|".join("---" for _ in self.header) + "|"
        body = "\n".join(
            "| " + " | ".join(str(c) for c in row) + " |" for row in self.rows
        )
        return f"## {self.title}\n\n{head}\n{sep}\n{body}\n"


@dataclass
class Report:
    """A collection of reproduced tables, writable as markdown."""

    title: str
    tables: List[ReproducedTable] = field(default_factory=list)

    def add(self, table: ReproducedTable) -> None:
        self.tables.append(table)

    def to_markdown(self) -> str:
        parts = [f"# {self.title}\n"]
        parts += [table.to_markdown() for table in self.tables]
        return "\n".join(parts)

    def write(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_markdown())
        return path


# ----------------------------------------------------------------------
# Formatting helpers
# ----------------------------------------------------------------------


def format_value(value: object) -> str:
    """Uniform cell formatting: floats to 4 significant-ish digits."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return f"{value:.4g}"
    return str(value)


def sparkline(values: Sequence[float], width: int = 40) -> str:
    """Render a value series as a fixed-width unicode sparkline.

    Series longer than ``width`` are bucketed (mean per bucket); flat
    series render as a run of the lowest glyph.
    """
    values = [float(v) for v in values]
    if not values:
        return ""
    if len(values) > width:
        bucketed = []
        for i in range(width):
            lo = i * len(values) // width
            hi = max(lo + 1, (i + 1) * len(values) // width)
            chunk = values[lo:hi]
            bucketed.append(sum(chunk) / len(chunk))
        values = bucketed
    low = min(values)
    span = max(values) - low
    if span <= 0:
        return _SPARK_CHARS[0] * len(values)
    top = len(_SPARK_CHARS) - 1
    return "".join(
        _SPARK_CHARS[int((v - low) / span * top + 0.5)] for v in values)


# ----------------------------------------------------------------------
# Run reports (``repro report``)
# ----------------------------------------------------------------------


@dataclass
class ReportSection:
    """One heading plus exactly one body: table, preformatted, or text."""

    heading: str
    table: Optional[ReproducedTable] = None
    preformatted: Optional[str] = None
    text: Optional[str] = None

    def to_markdown(self) -> str:
        parts = [f"## {self.heading}\n"]
        if self.text:
            parts.append(self.text + "\n")
        if self.table is not None:
            # Reuse the table's markdown body without its own heading.
            body = self.table.to_markdown().split("\n", 2)[2]
            parts.append(body)
        if self.preformatted:
            parts.append(f"```\n{self.preformatted}\n```\n")
        return "\n".join(parts)

    def to_html(self) -> str:
        parts = [f"<h2>{_html.escape(self.heading)}</h2>"]
        if self.text:
            parts.append(f"<p>{_html.escape(self.text)}</p>")
        if self.table is not None:
            head = "".join(f"<th>{_html.escape(str(c))}</th>"
                           for c in self.table.header)
            rows = "".join(
                "<tr>" + "".join(f"<td>{_html.escape(str(c))}</td>"
                                 for c in row) + "</tr>"
                for row in self.table.rows
            )
            parts.append(
                f"<table><thead><tr>{head}</tr></thead>"
                f"<tbody>{rows}</tbody></table>")
        if self.preformatted:
            parts.append(f"<pre>{_html.escape(self.preformatted)}</pre>")
        return "\n".join(parts)


@dataclass
class RunReport:
    """A single run's rendered report (markdown or HTML)."""

    title: str
    sections: List[ReportSection] = field(default_factory=list)

    def add(self, section: ReportSection) -> None:
        self.sections.append(section)

    def to_markdown(self) -> str:
        parts = [f"# {self.title}\n"]
        parts += [section.to_markdown() for section in self.sections]
        return "\n".join(parts)

    def to_html(self) -> str:
        body = "\n".join(section.to_html() for section in self.sections)
        return (
            "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">"
            f"<title>{_html.escape(self.title)}</title>"
            "<style>"
            "body{font-family:sans-serif;margin:2em;max-width:70em}"
            "table{border-collapse:collapse;margin:1em 0}"
            "td,th{border:1px solid #999;padding:0.25em 0.6em;"
            "text-align:left}"
            "pre{background:#f4f4f4;padding:0.8em;overflow-x:auto}"
            "</style></head><body>"
            f"<h1>{_html.escape(self.title)}</h1>\n{body}\n</body></html>"
        )

    def write(self, path: Union[str, Path], html: bool = False) -> Path:
        path = Path(path)
        if path.parent != Path(""):
            path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_html() if html else self.to_markdown())
        return path


def _require_run_schema(record: Mapping[str, object], label: str) -> None:
    missing = [key for key in RUN_SCHEMA_REQUIRED
               if key not in record
               or (key == "metrics"
                   and not isinstance(record.get("metrics"), Mapping))]
    if missing:
        raise ConfigError(
            f"{label} is not a run document (missing {', '.join(missing)}); "
            "expected the output of `repro run --emit-json`")


def load_run_document(path: Union[str, Path]) -> Dict[str, object]:
    """Load and schema-check one ``--emit-json`` run document."""
    path = Path(path)
    try:
        record = json.loads(path.read_text())
    except OSError as error:
        raise ConfigError(
            f"cannot read run document {str(path)!r}: {error}") from error
    except json.JSONDecodeError as error:
        raise ConfigError(
            f"{str(path)!r} is not JSON: {error}") from error
    if not isinstance(record, dict):
        raise ConfigError(f"{str(path)!r} is not a run document")
    _require_run_schema(record, str(path))
    return record


def _flatten_config(config: Mapping[str, object],
                    prefix: str = "") -> List[Sequence[Cell]]:
    rows: List[Sequence[Cell]] = []
    for key in sorted(config):
        value = config[key]
        name = f"{prefix}{key}"
        if isinstance(value, Mapping):
            rows.extend(_flatten_config(value, prefix=f"{name}."))
        else:
            rows.append((name, format_value(value)))
    return rows


def _breakdown_rows(metrics: Mapping[str, object]) -> List[Sequence[Cell]]:
    """Reassemble the per-path stage table from ``controller.breakdown.*``."""
    prefix = "controller.breakdown."
    stages: Dict[tuple, Dict[str, float]] = {}
    for key, value in metrics.items():
        if not key.startswith(prefix):
            continue
        parts = key[len(prefix):].split(".")
        if len(parts) != 3:  # path-level totals have 2 components
            continue
        path, stage, column = parts
        stages.setdefault((path, stage), {})[column] = value
    rows: List[Sequence[Cell]] = []
    for (path, stage) in sorted(stages):
        columns = stages[(path, stage)]
        rows.append((
            path, stage,
            format_value(columns.get("count", 0)),
            format_value(columns.get("mean_ns", 0.0)),
            format_value(columns.get("critical_ns", 0.0)),
            format_value(columns.get("wasted_ns", 0.0)),
        ))
    return rows


def _slowest_span_rows(spans: Sequence[object],
                       top_k: int) -> List[Sequence[Cell]]:
    ranked = sorted(
        (s for s in spans if getattr(s, "category", "") in ("access", "miss")),
        key=lambda s: (-s.duration_ns, s.trace_id, s.span_id),
    )[:top_k]
    rows: List[Sequence[Cell]] = []
    for span in ranked:
        args = getattr(span, "args", {}) or {}
        detail = ", ".join(f"{k}={format_value(v)}"
                           for k, v in sorted(args.items())
                           if k in ("path", "kind", "vaddr", "ppn"))
        rows.append((
            span.trace_id, span.name, span.category,
            format_value(span.start_ns), format_value(span.duration_ns),
            detail,
        ))
    return rows


def _sparkline_sections(rows: Sequence[Mapping[str, float]],
                        max_columns: int = 8) -> str:
    """Sparklines for the windowed columns that actually vary."""
    from repro.sim.timeseries import ROW_META_KEYS

    keys = set()
    for row in rows:
        keys.update(row)
    keys -= set(ROW_META_KEYS)
    varying = []
    for key in sorted(keys):
        values = [float(row.get(key, 0.0)) for row in rows]
        if max(values) != min(values):
            varying.append((key, values))
        if len(varying) >= max_columns:
            break
    if not varying:
        return "(no windowed metric varied)"
    width = max(len(key) for key, _ in varying)
    lines = []
    for key, values in varying:
        lines.append(f"{key.ljust(width)}  {sparkline(values)}  "
                     f"min={format_value(min(values))} "
                     f"max={format_value(max(values))}")
    return "\n".join(lines)


def build_run_report(
    record: Mapping[str, object],
    spans: Optional[Sequence[object]] = None,
    timeseries_rows: Optional[Sequence[Mapping[str, float]]] = None,
    top_k: int = 10,
    bench_history: Optional[str] = None,
) -> RunReport:
    """Assemble a :class:`RunReport` from one run document.

    ``spans`` (from :func:`repro.sim.tracing.load_spans`) adds the
    top-k-slowest-spans section; ``timeseries_rows`` (from
    :func:`repro.sim.timeseries.read_rows`) adds sparklines;
    ``bench_history`` (the :func:`repro.bench.render_history` text) adds
    the performance-trajectory section so every report shows the perf
    trend alongside correctness results.
    """
    _require_run_schema(record, "run document")
    metrics = record["metrics"]
    report = RunReport(
        title=f"Run report: {record['workload']} / {record['controller']}")

    config_table = ReproducedTable("config", ("setting", "value"))
    run_config = record.get("run_config")
    if isinstance(run_config, Mapping):
        config_table.rows.extend(_flatten_config(run_config))
    for key in ("accesses", "elapsed_ns", "truncated", "error"):
        if record.get(key) not in (None, "", False):
            config_table.add_row(key, format_value(record[key]))
    report.add(ReportSection("Configuration", table=config_table))

    headline = ReproducedTable("headline", ("metric", "value"))
    for name in HEADLINE_FIELDS:
        if name in record:
            headline.add_row(name, format_value(record[name]))
    report.add(ReportSection("Headline metrics", table=headline))

    fractions = record.get("path_fractions")
    if isinstance(fractions, Mapping) and fractions:
        paths = ReproducedTable("paths", ("path", "fraction"))
        for name in sorted(fractions):
            paths.add_row(name, f"{float(fractions[name]):.2%}")
        report.add(ReportSection(
            "Access paths", table=paths,
            text="How LLC misses were served (Figure 19's categories)."))

    breakdown = _breakdown_rows(metrics)
    if breakdown:
        table = ReproducedTable(
            "breakdown",
            ("path", "stage", "count", "mean_ns", "critical_ns", "wasted_ns"))
        table.rows.extend(breakdown)
        report.add(ReportSection(
            "Stage-latency breakdown", table=table,
            text="Per-path service-pipeline stages "
                 "(controller.breakdown.* metrics)."))

    if spans:
        table = ReproducedTable(
            "spans",
            ("trace", "name", "category", "start_ns", "duration_ns", "args"))
        table.rows.extend(_slowest_span_rows(spans, top_k))
        report.add(ReportSection(
            f"Slowest spans (top {top_k})", table=table,
            text="Sampled access/miss spans, longest first."))

    if timeseries_rows:
        report.add(ReportSection(
            "Time series",
            preformatted=_sparkline_sections(timeseries_rows),
            text=f"{len(timeseries_rows)} windows; one sparkline per "
                 "varying windowed metric."))

    if bench_history:
        report.add(ReportSection(
            "Performance trajectory",
            preformatted=bench_history,
            text="Committed `repro bench` documents, oldest first "
                 "(suite accesses/sec and speedup vs the seed tree)."))

    return report


# ----------------------------------------------------------------------
# Run comparison (``repro report --compare A.json B.json``)
# ----------------------------------------------------------------------


def compare_runs(a: Mapping[str, object], b: Mapping[str, object],
                 label_a: str = "A", label_b: str = "B",
                 top_k: int = 20) -> Dict[str, object]:
    """Diff two run documents; both must satisfy the run schema.

    Returns ``headline`` delta rows (every field), the ``top_k``
    largest-relative-change ``metrics`` rows, and the metric keys only
    one document has.  Relative deltas are against ``a``'s value
    (``None`` when ``a`` is zero).
    """
    _require_run_schema(a, label_a)
    _require_run_schema(b, label_b)

    def delta_row(key: str, va: float, vb: float) -> Dict[str, object]:
        delta = vb - va
        relative = (delta / va) if va else None
        return {"key": key, "a": va, "b": vb,
                "delta": delta, "relative": relative}

    headline = []
    for name in HEADLINE_FIELDS:
        va, vb = a.get(name), b.get(name)
        if isinstance(va, (int, float)) and isinstance(vb, (int, float)):
            headline.append(delta_row(name, float(va), float(vb)))

    metrics_a: Mapping[str, object] = a["metrics"]
    metrics_b: Mapping[str, object] = b["metrics"]
    shared = []
    for key in sorted(set(metrics_a) & set(metrics_b)):
        va, vb = metrics_a[key], metrics_b[key]
        if not isinstance(va, (int, float)) or isinstance(va, bool):
            continue
        if not isinstance(vb, (int, float)) or isinstance(vb, bool):
            continue
        if va != vb:
            shared.append(delta_row(key, float(va), float(vb)))
    shared.sort(key=lambda row: (
        -(abs(row["relative"]) if row["relative"] is not None
          else float("inf")),
        row["key"],
    ))

    return {
        "label_a": label_a,
        "label_b": label_b,
        "workloads": (a["workload"], b["workload"]),
        "controllers": (a["controller"], b["controller"]),
        "headline": headline,
        "metrics": shared[:top_k],
        "metrics_changed": len(shared),
        "only_in_a": sorted(set(metrics_a) - set(metrics_b)),
        "only_in_b": sorted(set(metrics_b) - set(metrics_a)),
    }


def _relative_cell(row: Mapping[str, object]) -> str:
    relative = row["relative"]
    if relative is None:
        return "n/a"
    return f"{relative:+.2%}"


# ----------------------------------------------------------------------
# Sweep reports (``repro sweep report``)
# ----------------------------------------------------------------------


#: Result fields the sweep trend view compares across two sweeps.
SWEEP_TREND_FIELDS = ("performance", "compression_ratio",
                      "avg_l3_miss_latency_ns")


def _sweep_cell_key(job: Mapping[str, object]) -> tuple:
    """A matrix cell's identity across sweeps: the simulated
    coordinates, never the sweep/store identity -- two differently
    named sweeps over the same matrix match cell-for-cell (their
    job_ids hash to the same values for the same coordinates, which is
    the spec_hash cell-matching discipline)."""
    return (job.get("workload"), job.get("controller"), job.get("budget"),
            job.get("seed"), job.get("faults") or "")


def _sweep_column(job: Mapping[str, object]) -> str:
    budget = str(job.get("budget") or "none")
    controller = str(job.get("controller"))
    return controller if budget == "none" else f"{controller}@{budget}"


def _outcome_cell(jobs: Sequence[Mapping[str, object]]) -> str:
    """One outcome-grid cell aggregating a (workload, column) group
    over its seeds/repeats."""
    done = sum(1 for job in jobs if job.get("status") == "done"
               and not job.get("quarantined"))
    total = len(jobs)
    flags = []
    for status, flag in (("failed", "FAIL"), ("timeout", "TIME")):
        n = sum(1 for job in jobs if job.get("status") == status)
        if n:
            flags.append(f"{n} {flag}")
    quarantined = sum(1 for job in jobs if job.get("quarantined"))
    if quarantined:
        flags.append(f"{quarantined} QUAR")
    open_jobs = sum(1 for job in jobs
                    if job.get("status") in ("pending", "running"))
    if open_jobs:
        flags.append(f"{open_jobs} open")
    label = "ok" if done == total else f"{done}/{total} ok"
    return label if not flags else (
        f"{done}/{total} ok, " + ", ".join(flags) if done
        else ", ".join(flags))


def build_sweep_report(
    document: Mapping[str, object],
    events: Optional[Sequence[Mapping[str, object]]] = None,
    compare_document: Optional[Mapping[str, object]] = None,
    compare_label: str = "B",
) -> RunReport:
    """The sweep section of the reporting surface.

    ``document`` is :meth:`repro.sweep.store.SweepStore.export_document`
    output; ``events`` (a loaded telemetry journal) adds the live
    snapshot and per-worker timeline; ``compare_document`` (another
    sweep's export) adds the cross-sweep trend table, matching matrix
    cells by their simulated coordinates.
    """
    sweep = document.get("sweep")
    jobs = document.get("jobs")
    if not isinstance(sweep, Mapping) or not isinstance(jobs, list):
        raise ConfigError(
            "not a sweep export document (missing sweep/jobs); expected "
            "the output of `repro sweep export`")
    report = RunReport(title=f"Sweep report: {sweep.get('sweep_id')}")

    overview = ReproducedTable("overview", ("field", "value"))
    overview.add_row("name", str(sweep.get("name", "")))
    overview.add_row("status", str(sweep.get("status", "")))
    overview.add_row("spec_hash", str(sweep.get("spec_hash", "")))
    overview.add_row("jobs", len(jobs))
    for status in ("done", "failed", "timeout", "pending", "running"):
        count = sum(1 for job in jobs if job.get("status") == status)
        if count:
            overview.add_row(status, count)
    quarantined = sum(1 for job in jobs if job.get("quarantined"))
    if quarantined:
        overview.add_row("quarantined", quarantined)
    retries = sum(max(0, int(job.get("attempts") or 1) - 1) for job in jobs)
    if retries:
        overview.add_row("retries", retries)
    report.add(ReportSection("Overview", table=overview))

    # Per-cell outcome grid: workloads down, controller@budget across.
    columns: List[str] = []
    workloads: List[str] = []
    grouped: Dict[tuple, List[Mapping[str, object]]] = {}
    for job in jobs:
        column = _sweep_column(job)
        workload = str(job.get("workload"))
        if column not in columns:
            columns.append(column)
        if workload not in workloads:
            workloads.append(workload)
        grouped.setdefault((workload, column), []).append(job)
    grid = ReproducedTable("outcomes", ("workload", *columns))
    for workload in workloads:
        cells = [
            _outcome_cell(grouped[(workload, column)])
            if (workload, column) in grouped else "-"
            for column in columns
        ]
        grid.add_row(workload, *cells)
    report.add(ReportSection(
        "Outcome grid", table=grid,
        text="Matrix cells aggregated over seeds/repeats."))

    trouble = [job for job in jobs
               if job.get("status") != "done" or job.get("quarantined")
               or int(job.get("attempts") or 1) > 1]
    if trouble:
        table = ReproducedTable(
            "failures",
            ("idx", "cell", "seed", "status", "attempts", "error"))
        for job in trouble:
            flags = " [quarantined]" if job.get("quarantined") else ""
            error = str(job.get("error") or job.get("last_error") or "")
            table.add_row(
                job.get("idx"), f"{job.get('workload')}/{_sweep_column(job)}",
                job.get("seed"), str(job.get("status")) + flags,
                job.get("attempts") or 0, error)
        report.add(ReportSection(
            "Retries and quarantine", table=table,
            text="Jobs that failed, timed out, were quarantined, or "
                 "needed more than one attempt."))

    if events:
        from repro.sweep.telemetry import build_snapshot, render_snapshot

        snap = build_snapshot(events)
        report.add(ReportSection(
            "Telemetry snapshot",
            preformatted=render_snapshot(snap),
            text=f"{len(events)} journal events."))
        if snap.workers_state:
            table = ReproducedTable(
                "workers",
                ("slot", "jobs", "busy_s", "utilization", "deaths",
                 "hangs", "dispatch order"))
            for slot in sorted(snap.workers_state):
                state = snap.workers_state[slot]
                util = (state.busy_s / snap.elapsed_s
                        if snap.elapsed_s > 0 else 0.0)
                sequence = " ".join(str(i) for i in state.job_indexes)
                table.add_row(slot, state.jobs_done,
                              f"{state.busy_s:.1f}", f"{util:.1%}",
                              state.deaths, state.hangs, sequence)
            report.add(ReportSection(
                "Worker timeline", table=table,
                text="Per-slot history from the journal (dispatch "
                     "order lists matrix indexes)."))

    if compare_document is not None:
        report.add(ReportSection(
            f"Trend vs {compare_label}",
            table=sweep_trend_table(document, compare_document),
            text="Headline metrics for matrix cells both sweeps "
                 "recorded (matched by workload/controller/budget/"
                 "seed/faults)."))

    return report


def sweep_trend_table(a: Mapping[str, object],
                      b: Mapping[str, object]) -> ReproducedTable:
    """The cross-sweep trend: headline metric deltas per shared cell."""
    for document, label in ((a, "A"), (b, "B")):
        if not isinstance(document.get("jobs"), list):
            raise ConfigError(f"sweep document {label} has no jobs list")
    results_b = {
        _sweep_cell_key(job): job.get("result")
        for job in b["jobs"]
        if isinstance(job.get("result"), Mapping)
    }
    table = ReproducedTable(
        "trend", ("cell", "metric", "A", "B", "delta", "relative"))
    matched = 0
    for job in a["jobs"]:
        result_a = job.get("result")
        if not isinstance(result_a, Mapping):
            continue
        result_b = results_b.get(_sweep_cell_key(job))
        if result_b is None:
            continue
        matched += 1
        cell = (f"{job.get('workload')}/{_sweep_column(job)} "
                f"s{job.get('seed')}")
        for name in SWEEP_TREND_FIELDS:
            va, vb = result_a.get(name), result_b.get(name)
            if not isinstance(va, (int, float)) \
                    or not isinstance(vb, (int, float)):
                continue
            delta = float(vb) - float(va)
            relative = f"{delta / va:+.2%}" if va else "n/a"
            table.add_row(cell, name, format_value(float(va)),
                          format_value(float(vb)), format_value(delta),
                          relative)
    if not matched:
        table.add_row("(no shared cells)", "-", "-", "-", "-", "-")
    return table


def render_comparison(comparison: Mapping[str, object]) -> str:
    """Human-readable text for a :func:`compare_runs` result."""
    label_a = comparison["label_a"]
    label_b = comparison["label_b"]
    workloads = comparison["workloads"]
    controllers = comparison["controllers"]
    lines = [
        f"comparing {label_a} ({workloads[0]}/{controllers[0]}) "
        f"vs {label_b} ({workloads[1]}/{controllers[1]})",
        "",
    ]
    if comparison["headline"]:
        rows = [(r["key"], format_value(r["a"]), format_value(r["b"]),
                 format_value(r["delta"]), _relative_cell(r))
                for r in comparison["headline"]]
        lines.append(render_table(
            ("headline metric", label_a, label_b, "delta", "relative"), rows))
        lines.append("")
    if comparison["metrics"]:
        rows = [(r["key"], format_value(r["a"]), format_value(r["b"]),
                 format_value(r["delta"]), _relative_cell(r))
                for r in comparison["metrics"]]
        lines.append(render_table(
            (f"metric (top {len(rows)} of "
             f"{comparison['metrics_changed']} changed)",
             label_a, label_b, "delta", "relative"), rows))
        lines.append("")
    else:
        lines.append("no shared metric changed")
        lines.append("")
    for side, label in (("only_in_a", label_a), ("only_in_b", label_b)):
        keys = comparison[side]
        if keys:
            shown = ", ".join(keys[:8])
            more = f" (+{len(keys) - 8} more)" if len(keys) > 8 else ""
            lines.append(f"only in {label}: {shown}{more}")
    return "\n".join(lines).rstrip() + "\n"
