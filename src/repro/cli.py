"""Command-line interface.

The subcommands cover the library's main entry points:

- ``workloads`` -- list the paper's workloads (``--json`` for machines).
- ``deflate``   -- compress synthetic pages of one content profile and
  report size/latency under our ASIC vs block-level vs IBM's ASIC.
- ``run``       -- simulate one workload under one controller, with the
  observability surface: ``--emit-json`` for the namespaced metric tree,
  ``--trace-events`` for a raw JSONL event stream, ``--trace-sample`` /
  ``--trace-out`` for causal span traces (Perfetto-loadable),
  ``--interval-ns`` / ``--interval-out`` for windowed metric
  time-series, and ``--profile`` for host self-time.
- ``compare``   -- the headline experiment: TMCC vs Compresso at equal
  DRAM usage for one workload (a three-cell sweep under the hood).
- ``sweep``     -- the sweep engine: ``sweep run`` executes a
  declarative job matrix (a ``.toml``/``.json`` spec or a built-in like
  ``fig18``) into a resumable SQLite store, in parallel with ``-j N``,
  retrying transient host failures (``--max-retries``), supervising
  hung workers (``--heartbeat-timeout``), and optionally injecting
  deterministic host faults (``--chaos``); exit code 4 means some jobs
  were quarantined after exhausting retries.  Runs write a telemetry
  journal next to the store (``--no-journal`` disables): ``sweep
  watch`` follows a live sweep from a second process (progress,
  throughput, ETA, per-worker state), ``sweep events`` tails/filters
  the journal or converts it to a Perfetto trace, and ``sweep report``
  renders the outcome grid, failure table, worker timeline, and a
  cell-matched cross-sweep trend (``--compare``).  ``sweep ls``/
  ``show``/``export`` query stores (``export --failures`` emits the
  quarantine report); ``sweep repair`` salvages completed rows from a
  damaged store; ``sweep curve`` (or the historical ``sweep
  <workload>`` spelling) prints TMCC's performance/capacity trade-off
  curve.
- ``report``    -- render one ``--emit-json`` document as a
  markdown/HTML run report, or diff two with ``--compare A B``.
- ``bench``     -- run the pinned performance suite (``repro.bench``),
  write ``BENCH_<date>.json``, and optionally gate against a committed
  baseline (``--baseline``/``--max-regression``).
- ``trace convert`` -- translate span traces between JSONL and Perfetto.

Controllers come from :data:`repro.core.CONTROLLER_REGISTRY`; pass
``--controller list`` to ``run`` (or ``trace run``) to enumerate them.

Examples::

    python -m repro.cli workloads --json
    python -m repro.cli deflate graph
    python -m repro.cli run mcf --controller tmcc --emit-json
    python -m repro.cli run mcf --trace-sample 64 --trace-out t.json \\
        --interval-ns 1000000 --interval-out windows.csv
    python -m repro.cli report result.json --trace t.json
    python -m repro.cli report --compare a.json b.json
    python -m repro.cli compare canneal --accesses 40000 --scale 0.4
    python -m repro.cli sweep run fig18 --store sweeps.db -j 4
    python -m repro.cli sweep export fig18 --format csv
    python -m repro.cli sweep mcf --points 4
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.common.errors import ERROR_KIND_CONFIG, classify_error
from repro.common.units import PAGE_SIZE
from repro.compression.block import SelectiveBlockCompressor
from repro.compression.deflate import (
    DeflateCodec,
    DeflateTimingModel,
    IBMDeflateModel,
)
from repro.workloads.content import CONTENT_PROFILES, ContentSynthesizer
from repro.workloads.suite import PAPER_WORKLOAD_NAMES, workload_by_name

_WORKLOAD_KINDS = {
    "mcf": "SPEC-like pointer chase",
    "omnetpp": "SPEC-like event queue",
    "canneal": "PARSEC-like annealing",
}


def _controller_names() -> List[str]:
    from repro.core import available_controllers

    return available_controllers()


def _validate_args(args: argparse.Namespace) -> Optional[str]:
    """One-line validation errors for knobs shared across subcommands.

    Catching impossible values here keeps deep model-layer tracebacks
    (negative trace lengths, empty placement plans) out of the user's
    face; the return value is printed as ``error: <message>``.
    """
    accesses = getattr(args, "accesses", None)
    if accesses is not None and accesses <= 0:
        return f"--accesses must be > 0, got {accesses}"
    scale = getattr(args, "scale", None)
    if scale is not None and not 0.0 < scale <= 1.0:
        return f"--scale must be in (0, 1], got {scale}"
    points = getattr(args, "points", None)
    if points is not None and points <= 0:
        return f"--points must be > 0, got {points}"
    cores = getattr(args, "cores", None)
    if cores is not None and cores < 1:
        return f"--cores must be >= 1, got {cores}"
    seed = getattr(args, "seed", None)
    if seed is not None and seed < 0:
        return f"--seed must be >= 0, got {seed}"
    checkpoint_every = getattr(args, "checkpoint_every", None)
    if checkpoint_every is not None and checkpoint_every < 0:
        return f"--checkpoint-every must be >= 0, got {checkpoint_every}"
    if checkpoint_every and not getattr(args, "checkpoint", None):
        return "--checkpoint-every needs --checkpoint PATH"
    limit = getattr(args, "wall_clock_limit", None)
    if limit is not None and limit <= 0:
        return f"--wall-clock-limit must be > 0 seconds, got {limit}"
    pages = getattr(args, "pages", None)
    if pages is not None and pages <= 0:
        return f"--pages must be > 0, got {pages}"
    jobs = getattr(args, "jobs", None)
    if jobs is not None and jobs < 1:
        return f"--jobs must be >= 1, got {jobs}"
    timeout = getattr(args, "timeout", None)
    if timeout is not None and timeout <= 0:
        return f"--timeout must be > 0 seconds, got {timeout}"
    max_retries = getattr(args, "max_retries", None)
    if max_retries is not None and max_retries < 0:
        return f"--max-retries must be >= 0, got {max_retries}"
    heartbeat_timeout = getattr(args, "heartbeat_timeout", None)
    if heartbeat_timeout is not None and heartbeat_timeout <= 0:
        return (f"--heartbeat-timeout must be > 0 seconds, "
                f"got {heartbeat_timeout}")
    chaos = getattr(args, "chaos", None)
    if chaos is not None and getattr(args, "no_chaos", False):
        return "--chaos and --no-chaos are mutually exclusive"
    if chaos is not None and getattr(args, "jobs", 1) < 2:
        return "--chaos needs a worker pool; use -j 2 or more"
    if getattr(args, "journal", None) and getattr(args, "no_journal", False):
        return "--journal and --no-journal are mutually exclusive"
    interval = getattr(args, "interval", None)
    if interval is not None and interval <= 0:
        return f"--interval must be > 0 seconds, got {interval}"
    tail = getattr(args, "tail", None)
    if tail is not None and tail < 0:
        return f"--tail must be >= 0, got {tail}"
    return None


def _check_controller(name: str) -> bool:
    """True if ``name`` is registered; otherwise print the choices."""
    names = _controller_names()
    if name in names:
        return True
    print(f"unknown controller {name!r}; choose from {names}",
          file=sys.stderr)
    return False


def _cmd_workloads(args: argparse.Namespace) -> int:
    if getattr(args, "json", False):
        records = [
            {"name": name,
             "kind": _WORKLOAD_KINDS.get(name, "GraphBIG-like kernel")}
            for name in PAPER_WORKLOAD_NAMES
        ]
        print(json.dumps(records, indent=2))
        return 0
    print(f"{'workload':14s} {'kind':22s}")
    for name in PAPER_WORKLOAD_NAMES:
        print(f"{name:14s} "
              f"{_WORKLOAD_KINDS.get(name, 'GraphBIG-like kernel'):22s}")
    return 0


def _cmd_deflate(args: argparse.Namespace) -> int:
    if args.profile not in CONTENT_PROFILES:
        print(f"unknown profile {args.profile!r}; "
              f"choose from {sorted(CONTENT_PROFILES)}", file=sys.stderr)
        return 2
    synthesizer = ContentSynthesizer(args.profile, seed=args.seed)
    codec = DeflateCodec()
    blocks = SelectiveBlockCompressor()
    timing = DeflateTimingModel()
    ibm = IBMDeflateModel()
    pages = [synthesizer.page(v) for v in range(args.pages)]
    original = len(pages) * PAGE_SIZE
    compressed = [codec.compress(p) for p in pages]
    for c, p in zip(compressed, pages):
        if codec.decompress(c) != p:
            print("round-trip FAILED", file=sys.stderr)
            return 1
    deflate_bytes = sum(c.size_bytes for c in compressed)
    block_bytes = sum(blocks.compressed_page_size(p) for p in pages)
    half = sum(timing.decompress_latency_ns(c, PAGE_SIZE // 2)
               for c in compressed) / len(compressed)
    print(f"profile {args.profile}: {args.pages} pages, round-trip OK")
    print(f"our ASIC Deflate: {original / deflate_bytes:5.2f}x, "
          f"half-page latency {half:.0f} ns")
    print(f"block-level:      {original / block_bytes:5.2f}x")
    print(f"IBM ASIC half-page latency: "
          f"{ibm.decompress_latency_ns(PAGE_SIZE, PAGE_SIZE // 2):.0f} ns")
    return 0


def _print_breakdown(accounting) -> None:
    """Render the per-path per-stage latency table behind ``--breakdown``.

    ``share`` is each stage's critical-path time as a fraction of all
    measured miss latency, so the column sums to ~1.0 over the table.
    """
    rows = accounting.breakdown()
    if not rows:
        print("no per-stage data recorded (no LLC misses?)")
        return
    header = (f"{'path':<18} {'stage':<16} {'count':>8} "
              f"{'mean_ns':>10} {'share':>7}")
    print(header)
    print("-" * len(header))
    for row in rows:
        print(f"{row['path']:<18} {row['stage']:<16} {row['count']:>8} "
              f"{row['mean_ns']:>10.2f} {row['share']:>7.1%}")


def _run_failure(args: argparse.Namespace, error: BaseException,
                 sim=None) -> int:
    """Report a failed ``run``: one stderr line, plus JSON when asked.

    With ``--emit-json`` the failure still produces a JSON document --
    an ``error`` field, its taxonomy ``error_kind``, and whatever
    metrics the simulator collected before dying -- so harnesses never
    have to parse tracebacks.  Exit code 2 for configuration mistakes,
    1 for model-invariant / resource failures.
    """
    kind = classify_error(error)
    message = str(error) or type(error).__name__
    print(f"error ({kind}): {message}", file=sys.stderr)
    if sim is not None:
        # Best effort: a failed run still leaves its sampled spans and
        # windowed rows behind for post-mortem analysis.
        try:
            timeseries = getattr(sim, "timeseries", None)
            if timeseries is not None:
                timeseries.finish(sim.clock.now_ns)
            _write_observability_outputs(args, sim, quiet=True)
        except Exception:
            pass
    if getattr(args, "emit_json", False):
        metrics = {}
        if sim is not None:
            try:
                metrics = sim.context.metrics.snapshot()
            except Exception:
                metrics = {}
        print(json.dumps({"error": message, "error_kind": kind,
                          "metrics": metrics}, indent=2, sort_keys=True))
    return 2 if kind == ERROR_KIND_CONFIG else 1


def _validate_observability_args(args: argparse.Namespace) -> Optional[str]:
    """Validation for the opt-in tracing/time-series/profiling flags."""
    if args.trace_sample is not None:
        if args.trace_sample < 1:
            return f"--trace-sample must be >= 1, got {args.trace_sample}"
        if not args.trace_out:
            return "--trace-sample needs --trace-out PATH"
    if args.trace_buffer < 2:
        return f"--trace-buffer must be >= 2 spans, got {args.trace_buffer}"
    if args.interval_ns is not None and args.interval_ns <= 0:
        return f"--interval-ns must be > 0, got {args.interval_ns}"
    if args.interval_ns is not None and not args.interval_out:
        return "--interval-ns needs --interval-out PATH"
    if args.interval_out and args.interval_ns is None:
        return "--interval-out needs --interval-ns NS"
    observability = (args.trace_out or args.interval_ns is not None
                     or args.profile)
    if observability and args.cores > 1:
        return ("--trace-out/--interval-ns/--profile only support "
                "single-core runs")
    if args.profile and args.resume is not None:
        return ("--profile cannot be combined with --resume; profiling "
                "hooks are wired at construction time")
    return None


def _validate_run_args(args: argparse.Namespace) -> Optional[str]:
    issue = _validate_args(args)
    if issue is not None:
        return issue
    issue = _validate_observability_args(args)
    if issue is not None:
        return issue
    if args.resume is not None:
        if args.faults:
            return ("--faults cannot be combined with --resume; the "
                    "fault plan is part of the checkpoint")
        if args.cores > 1:
            return "--resume only supports single-core runs"
        return None
    if args.workload is None:
        return "a workload is required unless --controller list or --resume"
    if args.workload not in PAPER_WORKLOAD_NAMES:
        return (f"unknown workload {args.workload!r}; "
                f"choose from {PAPER_WORKLOAD_NAMES}")
    if args.cores > 1 and args.faults:
        return "--faults only supports single-core runs"
    if args.cores > 1 and (args.checkpoint or args.wall_clock_limit):
        return "--checkpoint/--wall-clock-limit only support single-core runs"
    if args.cores > 1 and args.fast_path == "on":
        return "--fast-path on only supports single-core runs"
    return None


def _write_observability_outputs(args: argparse.Namespace, sim,
                                 quiet: bool) -> None:
    """Write --trace-out / --interval-out files from whatever the run
    collected.  Called after normal, truncated, *and* failed runs, so a
    watchdog-killed simulation still leaves its sampled spans behind."""
    tracer = getattr(sim, "tracer", None)
    if tracer is not None and args.trace_out:
        from repro.sim.tracing import write_trace_file

        write_trace_file(
            tracer.spans(), args.trace_out,
            metadata={"workload": sim.workload.name,
                      "controller": sim.controller_name,
                      **tracer.summary()},
        )
        if not quiet:
            summary = tracer.summary()
            print(f"trace: {summary['traces_retained']} traces "
                  f"({summary['spans_retained']} spans, "
                  f"{summary['traces_dropped']} dropped) "
                  f"written to {args.trace_out}")
    timeseries = getattr(sim, "timeseries", None)
    if timeseries is not None and args.interval_out:
        from repro.sim.timeseries import write_timeseries_file

        write_timeseries_file(timeseries.rows, args.interval_out,
                              columns=timeseries.columns())
        if not quiet:
            print(f"time series: {len(timeseries.rows)} windows "
                  f"written to {args.interval_out}")


def _run_simulation(args: argparse.Namespace, holder: dict) -> int:
    """The body of ``repro run``; raises into :func:`_run_failure`."""
    from repro.sim.faults import FaultPlan
    from repro.sim.supervisor import RunSupervisor, load_checkpoint
    from repro.sim.tracing import SpanTracer, TraceEventWriter

    plan = FaultPlan.parse(args.faults) if args.faults else None

    event_writer = None
    if args.trace_events:  # fail fast, before the expensive trace build
        event_writer = TraceEventWriter(args.trace_events)

    try:
        if args.resume is not None:
            if args.workload is not None:
                print(f"note: resuming from {args.resume}; "
                      f"workload argument ignored", file=sys.stderr)
            sim = load_checkpoint(args.resume)
            sim.fast_path = args.fast_path
            controller_name = sim.controller_name
        else:
            from repro.sim.multicore import MultiCoreSimulator
            from repro.sim.simulator import Simulator

            workload = workload_by_name(args.workload,
                                        max_accesses=args.accesses,
                                        scale=args.scale)
            controller_name = args.controller
            if args.cores > 1:
                sim = MultiCoreSimulator(workload, num_cores=args.cores,
                                         controller=args.controller,
                                         seed=args.seed)
            else:
                context = None
                if args.profile:
                    # Probes capture the profiler at construction, so it
                    # must be armed on the context *before* the build.
                    from repro.sim.context import SimContext

                    context = SimContext(seed=args.seed)
                    context.enable_profiling()
                sim = Simulator(workload, controller=args.controller,
                                seed=args.seed, fault_plan=plan,
                                context=context,
                                fast_path=args.fast_path)
    except BaseException:
        if event_writer is not None:
            event_writer.close()
        raise
    holder["sim"] = sim

    if event_writer is not None:
        # The simulator's run() teardown closes owned writers (close is
        # idempotent, so the failure path's close below is harmless).
        event_writer.attach(sim.context.bus)
        sim.context.own(event_writer)

    if args.trace_out:
        tracer = SpanTracer(sample_every=args.trace_sample or 1,
                            buffer_spans=args.trace_buffer)
        sim.attach_tracer(tracer)
    if args.interval_ns is not None:
        from repro.sim.timeseries import TimeSeriesRecorder

        sim.attach_timeseries(
            TimeSeriesRecorder(sim.context.metrics, args.interval_ns))

    supervisor = None
    if args.checkpoint or args.wall_clock_limit:
        supervisor = RunSupervisor(
            checkpoint_path=args.checkpoint,
            checkpoint_every=args.checkpoint_every,
            wall_clock_limit_s=args.wall_clock_limit,
        )

    try:
        if supervisor is not None:
            result = supervisor.run(sim)
        else:
            result = sim.run()
    finally:
        if event_writer is not None:
            event_writer.close()

    _write_observability_outputs(args, sim, quiet=args.emit_json)

    if args.emit_json:
        from repro.sim.instrument import nest_metrics

        record = result.as_dict()
        record["metrics_tree"] = nest_metrics(result.metrics)
        if hasattr(sim, "describe_run"):
            record["run_config"] = sim.describe_run()
        print(json.dumps(record, indent=2, sort_keys=True))
    else:
        print(f"{sim.workload.name} / {controller_name}: "
              f"{result.accesses} accesses, "
              f"{result.l3_misses} LLC misses, "
              f"avg miss latency {result.avg_l3_miss_latency_ns:.1f} ns, "
              f"perf {result.performance:.1f}/us, "
              f"capacity {result.compression_ratio:.2f}x")
        if args.breakdown:
            _print_breakdown(sim.controller.stage_accounting)
        if args.profile:
            _print_profile(sim.context.profiler)
        if args.trace_events:
            print(f"trace events written to {args.trace_events}")
    if result.truncated:
        print(f"run truncated: {result.error}", file=sys.stderr)
        if args.checkpoint:
            print(f"resume with: repro run --resume {args.checkpoint}",
                  file=sys.stderr)
        return 3
    return 0


def _print_profile(profiler) -> None:
    """Render the --profile host self-time table, hottest first."""
    if profiler is None:
        return
    rows = profiler.report_rows()
    if not rows:
        print("no profiled sections (run too short?)")
        return
    header = f"{'section':<28} {'calls':>10} {'total_ms':>10} {'self_ms':>10}"
    print(header)
    print("-" * len(header))
    for row in rows:
        print(f"{row['section']:<28} {row['calls']:>10} "
              f"{row['total_ms']:>10.2f} {row['self_ms']:>10.2f}")


def _cmd_run(args: argparse.Namespace) -> int:
    if args.controller == "list":
        for name in _controller_names():
            print(name)
        return 0
    issue = _validate_run_args(args)
    if issue is not None:
        from repro.common.errors import ConfigError

        return _run_failure(args, ConfigError(issue))
    if args.resume is None and not _check_controller(args.controller):
        return 2
    holder: dict = {}
    try:
        return _run_simulation(args, holder)
    except BrokenPipeError:
        raise
    except Exception as error:
        return _run_failure(args, error, holder.get("sim"))


def _cmd_compare(args: argparse.Namespace) -> int:
    """Figure 17's protocol as a thin wrapper over the sweep engine:
    a three-cell matrix for one workload, reduced to the iso row."""
    from repro.sweep.engine import run_sweep
    from repro.sweep.reduce import iso_capacity_rows
    from repro.sweep.spec import SweepSpec
    from repro.workloads.suite import cached_workload

    spec = SweepSpec.build(
        name="compare",
        workloads=(args.workload,),
        controllers=("uncompressed", "compresso", "tmcc@iso"),
        accesses=args.accesses,
        scale=args.scale,
    )
    run = run_sweep(spec, capture_errors=False)
    row = iso_capacity_rows(run, subject="tmcc")[0]
    uncompressed = run.result(run.find_jobs(controller="uncompressed")[0])
    if getattr(args, "emit_json", False):
        from repro.sim.instrument import nest_metrics

        systems = {}
        for label, result in (("uncompressed", uncompressed),
                              ("compresso", row["reference"]),
                              ("tmcc", row["subject"])):
            record = result.as_dict()
            record["metrics_tree"] = nest_metrics(result.metrics)
            systems[label] = record
        print(json.dumps({"workload": args.workload,
                          "speedup": row["speedup"],
                          "systems": systems},
                         indent=2, sort_keys=True))
        return 0
    workload = cached_workload(args.workload, max_accesses=args.accesses,
                               scale=args.scale)
    print(f"{args.workload}: footprint "
          f"{workload.footprint_pages * 4 // 1024} MiB, "
          f"{workload.access_count} accesses")
    print(f"{'system':14s} {'L3 miss lat':>12s} {'perf':>10s} {'capacity':>9s}")
    for label, result in (("no compress", uncompressed),
                          ("Compresso", row["reference"]),
                          ("TMCC", row["subject"])):
        print(f"{label:14s} {result.avg_l3_miss_latency_ns:9.1f} ns "
              f"{result.performance:7.1f}/us {result.compression_ratio:8.2f}x")
    print(f"TMCC speedup at iso-capacity: {row['speedup']:.3f}x")
    return 0


def _load_sweep_spec(ident: str):
    """A sweep spec from a file path or a built-in matrix name."""
    import os

    from repro.common.errors import ConfigError
    from repro.sweep.spec import SweepSpec, builtin_spec

    if os.path.exists(ident):
        return SweepSpec.from_file(ident)
    try:
        return builtin_spec(ident)
    except ConfigError:
        raise ConfigError(
            f"no spec file {ident!r} and no built-in sweep by that name; "
            f"built-ins: fig18, smoke")


def _cmd_sweep_run(args: argparse.Namespace) -> int:
    import dataclasses

    from repro.common.errors import ConfigError
    from repro.sweep.chaos import ChaosPlan
    from repro.sweep.engine import RetryPolicy, run_sweep

    try:
        spec = _load_sweep_spec(args.spec)
        if args.timeout is not None:
            spec = dataclasses.replace(spec, job_timeout_s=args.timeout)
        total = len(spec.expand())
        chaos = (ChaosPlan.parse(args.chaos, seed=args.chaos_seed)
                 if args.chaos else None)
        retry = RetryPolicy(max_retries=args.max_retries)
    except ConfigError as error:
        print(f"error (config): {error}", file=sys.stderr)
        return 2

    finished = {"count": 0}

    def progress(event: str, job, record) -> None:
        if event == "skip":
            finished["count"] += 1
            print(f"[{finished['count']:>{len(str(total))}}/{total}] "
                  f"{job.label()}: skipped (already recorded)", flush=True)
        elif event == "retry":
            print(f"[retry] {job.label()}: {record['status']}"
                  + (f" ({record['error']})" if record.get("error") else "")
                  + "; backing off and retrying", flush=True)
        elif event == "finish":
            finished["count"] += 1
            line = (f"[{finished['count']:>{len(str(total))}}/{total}] "
                    f"{job.label()}: {record['status']}")
            result = record.get("result")
            if record["status"] == "done" and result is not None:
                line += (f"  perf {result.performance:.1f}/us "
                         f"capacity {result.compression_ratio:.2f}x "
                         f"({record['elapsed_s']:.1f}s)")
            elif record.get("error"):
                line += f"  ({record['error']})"
            print(line, flush=True)

    # Journal on by default: True resolves to the store-adjacent path.
    journal = None if args.no_journal else (args.journal or True)

    try:
        run = run_sweep(spec, store=args.store, workers=args.jobs,
                        fresh=args.fresh, progress=progress,
                        retry=retry, chaos=chaos,
                        heartbeat_timeout_s=args.heartbeat_timeout,
                        journal=journal)
    except KeyboardInterrupt:
        print(f"\ninterrupted; completed jobs are recorded -- resume with: "
              f"repro sweep run {args.spec} --store {args.store}",
              file=sys.stderr)
        return 130
    except ConfigError as error:
        print(f"error (config): {error}", file=sys.stderr)
        return 2

    counts = run.counts
    summary = ", ".join(f"{counts[key]} {key}" for key in
                        ("done", "failed", "timeout") if counts.get(key))
    if run.quarantined:
        summary += f" ({len(run.quarantined)} quarantined)"
    resumed = " (resumed)" if run.resumed else ""
    print(f"sweep {run.sweep_id}{resumed}: {summary or 'no jobs'} "
          f"in {run.elapsed_s:.1f}s; store: {args.store}")
    if run.quarantined:
        by_id = {job.job_id: job for job in run.jobs}
        print(f"quarantine report: {len(run.quarantined)} job(s) "
              f"exhausted their retries", file=sys.stderr)
        for job_id, info in sorted(
                run.quarantined.items(),
                key=lambda item: by_id[item[0]].index):
            job = by_id[job_id]
            print(f"  idx {job.index} {job.label()}: "
                  f"{info['error_type'] or 'failure'} after "
                  f"{info['attempts']} attempts -- {info['error']}",
                  file=sys.stderr)
        return 4
    if not run.ok:
        print(f"some jobs did not finish; inspect with: "
              f"repro sweep show {run.sweep_id} --store {args.store}",
              file=sys.stderr)
    return 0 if run.ok else 1


def _cmd_sweep_ls(args: argparse.Namespace) -> int:
    from repro.sweep.store import SweepStore

    sweeps = SweepStore.open(args.store).list_sweeps()
    if not sweeps:
        print(f"no sweeps recorded in {args.store}")
        return 0
    print(f"{'sweep_id':24s} {'status':12s} {'jobs':>9s}  name")
    for sweep in sweeps:
        print(f"{sweep['sweep_id']:24s} {sweep['status']:12s} "
              f"{sweep['jobs_done']:>4d}/{sweep['jobs_total']:<4d} "
              f"{sweep['name']}")
    return 0


def _cmd_sweep_show(args: argparse.Namespace) -> int:
    from repro.sweep.store import SweepStore

    store = SweepStore.open(args.store)
    sweep = store.find_sweep(args.sweep)
    jobs = store.jobs(sweep["sweep_id"])
    print(f"sweep {sweep['sweep_id']}: status {sweep['status']}, "
          f"{len(jobs)} jobs, spec {sweep['spec_hash']}")
    header = (f"{'idx':>4s} {'workload':14s} {'controller':12s} "
              f"{'budget':>8s} {'seed':>5s} {'status':8s} {'try':>4s} "
              f"{'perf':>9s} {'capacity':>9s}")
    print(header)
    print("-" * len(header))
    for job in jobs:
        result = json.loads(job["result_json"]) if job["result_json"] else {}
        perf = (f"{result['performance']:7.1f}/us"
                if "performance" in result else "-".rjust(9))
        ratio = (f"{result['compression_ratio']:8.2f}x"
                 if "compression_ratio" in result else "-".rjust(9))
        attempts = job.get("attempts", 0) or 0
        flags = ""
        if job.get("quarantined"):
            flags += "  [quarantined]"
        if job["error"]:
            flags += f"  {job['error']}"
        print(f"{job['idx']:>4d} {job['workload']:14s} "
              f"{job['controller']:12s} {job['budget']:>8s} "
              f"{job['seed']:>5d} {job['status']:8s} {attempts:>4d} "
              f"{perf:>9s} {ratio:>9s}" + flags)

    import os

    journal_file = store.journal_path(sweep["sweep_id"])
    if os.path.exists(journal_file):
        from repro.sweep.telemetry import build_snapshot, read_journal

        snap = build_snapshot(read_journal(journal_file))
        throughput = ("n/a" if snap.throughput_jpm is None
                      else f"{snap.throughput_jpm:.1f} jobs/min")
        if snap.ended:
            eta = "-"
        elif snap.eta_s is None:
            eta = "n/a"
        else:
            eta = f"{snap.eta_s:.0f}s"
        print(f"throughput: {throughput}   ETA: {eta}   "
              f"elapsed: {snap.elapsed_s:.1f}s")
    else:
        print("throughput: n/a   ETA: n/a   (no journal)")
    print(f"live view: repro sweep watch {sweep['sweep_id']} "
          f"--store {args.store}")
    return 0


#: Column order of the ``sweep export --failures`` CSV (matches
#: :meth:`repro.sweep.store.SweepStore.failure_rows`).
_FAILURE_COLUMNS = ("idx", "job_id", "workload", "controller", "budget",
                    "seed", "faults", "status", "attempts", "quarantined",
                    "error", "last_error")


def _cmd_sweep_export(args: argparse.Namespace) -> int:
    from repro.sweep.reduce import export_csv
    from repro.sweep.store import SweepStore

    store = SweepStore.open(args.store)
    if args.failures:
        sweep = store.find_sweep(args.sweep)
        rows = store.failure_rows(sweep["sweep_id"])
        if args.format == "csv":
            import csv
            import io

            buffer = io.StringIO()
            writer = csv.writer(buffer)
            writer.writerow(_FAILURE_COLUMNS)
            for row in rows:
                writer.writerow([row.get(column, "")
                                 for column in _FAILURE_COLUMNS])
            text = buffer.getvalue()
        else:
            text = json.dumps(
                {"schema": "repro-sweep-failures/1",
                 "sweep_id": sweep["sweep_id"],
                 "failures": rows},
                indent=2, sort_keys=True) + "\n"
        count = len(rows)
        noun = "failed/quarantined job(s)"
    else:
        document = store.export_document(args.sweep)
        text = (export_csv(document) if args.format == "csv"
                else json.dumps(document, indent=2, sort_keys=True) + "\n")
        count = len(document["jobs"])
        noun = "jobs"
    if args.out:
        from pathlib import Path

        Path(args.out).write_text(text)
        print(f"exported {count} {noun} to {args.out}")
    else:
        print(text, end="")
    return 0


def _cmd_sweep_watch(args: argparse.Namespace) -> int:
    """Follow a live sweep from a second process: re-render the journal
    snapshot every ``--interval`` seconds until the sweep ends."""
    import os
    import time

    from repro.common.errors import ConfigError
    from repro.sweep.store import SweepStore
    from repro.sweep.telemetry import (
        build_snapshot,
        read_journal,
        render_snapshot,
    )

    store = SweepStore.open(args.store)
    sweep = store.find_sweep(args.sweep)
    journal_file = args.journal or store.journal_path(sweep["sweep_id"])
    if not os.path.exists(journal_file):
        raise ConfigError(
            f"no journal at {journal_file!r}; the journal is on by "
            f"default for `repro sweep run` -- was this sweep run with "
            f"--no-journal?")
    try:
        while True:
            snap = build_snapshot(read_journal(journal_file))
            frame = render_snapshot(snap, store_path=args.store)
            if not args.once and sys.stdout.isatty():
                print("\x1b[H\x1b[2J", end="")
            print(frame, flush=True)
            if args.once or snap.ended:
                return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:
        print()
        return 0


def _cmd_sweep_events(args: argparse.Namespace) -> int:
    """Tail/filter/export the telemetry journal."""
    import os

    from repro.common.errors import ConfigError
    from repro.sweep.store import SweepStore
    from repro.sweep.telemetry import (
        EVENT_KINDS,
        journal_spans,
        read_journal,
    )

    store = SweepStore.open(args.store)
    sweep = store.find_sweep(args.sweep)
    journal_file = args.journal or store.journal_path(sweep["sweep_id"])
    if not os.path.exists(journal_file):
        raise ConfigError(
            f"no journal at {journal_file!r}; the journal is on by "
            f"default for `repro sweep run` -- was this sweep run with "
            f"--no-journal?")
    events = read_journal(journal_file)
    origin = next((event["mono"] for event in events
                   if isinstance(event.get("mono"), (int, float))), 0.0)
    if args.job is not None:
        # The index filter also keeps index-less events (worker deaths,
        # store retries) that name one of the matching job_ids.
        job_ids = {event.get("job_id") for event in events
                   if event.get("index") == args.job and event.get("job_id")}
        events = [event for event in events
                  if event.get("index") == args.job
                  or event.get("job_id") in job_ids]
    if args.kind:
        kinds = {item.strip() for item in args.kind.split(",")
                 if item.strip()}
        unknown = kinds - set(EVENT_KINDS)
        if unknown:
            raise ConfigError(
                f"unknown event kind(s) {sorted(unknown)}; choose from "
                f"{sorted(EVENT_KINDS)}")
        events = [event for event in events if event.get("event") in kinds]
    if args.perfetto:
        from repro.sim.tracing import write_trace_file

        spans = journal_spans(events)
        write_trace_file(spans, args.perfetto,
                         metadata={"sweep_id": sweep["sweep_id"],
                                   "journal": journal_file})
        print(f"wrote {len(spans)} spans to {args.perfetto}")
        return 0
    if args.tail:
        events = events[-args.tail:]
    if args.json:
        for event in events:
            print(json.dumps(event, sort_keys=True))
        return 0
    for event in events:
        kind = str(event.get("event"))
        mono = event.get("mono")
        offset = (float(mono) - origin
                  if isinstance(mono, (int, float)) else 0.0)
        details = " ".join(
            f"{key}={event[key]}" for key in EVENT_KINDS.get(kind, ())
            if key in event)
        print(f"{event.get('seq', 0):>5d} +{offset:9.3f}s {kind:14s} "
              f"{details}")
    return 0


def _cmd_sweep_report(args: argparse.Namespace) -> int:
    """Render the sweep report section (outcome grid, failures, worker
    timeline, optional cross-sweep trend)."""
    import os

    from repro.reporting import build_sweep_report
    from repro.sweep.store import SweepStore
    from repro.sweep.telemetry import read_journal

    store = SweepStore.open(args.store)
    sweep = store.find_sweep(args.sweep)
    document = store.export_document(sweep["sweep_id"])
    journal_file = store.journal_path(sweep["sweep_id"])
    events = (read_journal(journal_file)
              if os.path.exists(journal_file) else None)
    compare_document = None
    compare_label = "B"
    if args.compare:
        other = store.find_sweep(args.compare)
        compare_document = store.export_document(other["sweep_id"])
        compare_label = other["sweep_id"]
    report = build_sweep_report(document, events=events,
                                compare_document=compare_document,
                                compare_label=compare_label)
    if args.out:
        html = args.html or args.out.endswith(".html")
        report.write(args.out, html=html)
        print(f"report written to {args.out}")
    elif args.html:
        print(report.to_html())
    else:
        print(report.to_markdown())
    return 0


def _cmd_sweep_curve(args: argparse.Namespace) -> int:
    """The historical ``repro sweep <workload>`` capacity ladder, now a
    declarative fraction-budget sweep plus a reduction."""
    from repro.sweep.engine import run_sweep
    from repro.sweep.reduce import capacity_curve_rows
    from repro.sweep.spec import BudgetSpec, SweepSpec

    fractions = [1.0 - step * (0.6 / max(1, args.points - 1))
                 for step in range(args.points)]
    spec = SweepSpec.build(
        name=f"curve-{args.workload}",
        workloads=(args.workload,),
        controllers=(
            "compresso",
            {"name": "tmcc",
             "budgets": [BudgetSpec("fraction", f) for f in fractions]},
        ),
        accesses=args.accesses,
        scale=args.scale,
    )
    run = run_sweep(spec)
    compresso = run.result(
        run.find_jobs(controller="compresso", budget_kind="none")[0])
    print(f"Compresso: {compresso.dram_used_bytes / 2**20:.1f} MB, "
          f"perf {compresso.performance:.1f}/us")
    print(f"{'budget':>10s} {'perf vs Compresso':>18s} {'capacity':>9s}")
    for row in capacity_curve_rows(run, args.workload):
        budget = row["budget_bytes"]
        result = row["result"]
        if result is None:
            error = run.errors.get(row["job_id"], {})
            # The kind every ValueError classifies to -- the same set the
            # pre-engine loop caught around each probe.
            if error.get("error_kind") == ERROR_KIND_CONFIG:
                print(f"{budget / 2**20:7.1f} MB  (below compressible floor)")
            else:
                print(f"{budget / 2**20:7.1f} MB  (failed: "
                      f"{error.get('error', row['status'])})")
            continue
        print(f"{budget / 2**20:7.1f} MB "
              f"{result.performance / compresso.performance:17.2%} "
              f"{result.compression_ratio:8.2f}x")
    return 0


def _cmd_sweep_repair(args: argparse.Namespace) -> int:
    from repro.sweep.store import SweepStore

    counts = SweepStore.repair(args.src, args.out)
    print(f"repaired {args.src} -> {args.out}: "
          f"{counts['jobs_salvaged']} job(s) salvaged, "
          f"{counts['jobs_reset']} reset to pending, "
          f"{counts['metrics']} metric rows, "
          f"{counts['sweeps']} sweep(s)")
    if counts["jobs_reset"]:
        print(f"re-run the sweep against {args.out} to fill the reset "
              f"rows", file=sys.stderr)
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.common.errors import ConfigError, ResourceError

    handlers = {
        "run": _cmd_sweep_run,
        "ls": _cmd_sweep_ls,
        "show": _cmd_sweep_show,
        "export": _cmd_sweep_export,
        "watch": _cmd_sweep_watch,
        "events": _cmd_sweep_events,
        "report": _cmd_sweep_report,
        "curve": _cmd_sweep_curve,
        "repair": _cmd_sweep_repair,
    }
    try:
        return handlers[args.sweep_command](args)
    except ConfigError as error:
        print(f"error (config): {error}", file=sys.stderr)
        return 2
    except ResourceError as error:
        print(f"error (resource): {error}", file=sys.stderr)
        return 1


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.common.errors import ConfigError
    from repro.reporting import (
        build_run_report,
        compare_runs,
        load_run_document,
        render_comparison,
    )

    try:
        if args.compare:
            path_a, path_b = args.compare
            comparison = compare_runs(
                load_run_document(path_a), load_run_document(path_b),
                label_a=path_a, label_b=path_b,
            )
            text = render_comparison(comparison)
            if args.out:
                from pathlib import Path

                Path(args.out).write_text(text)
                print(f"comparison written to {args.out}")
            else:
                print(text, end="")
            return 0
        if not args.result:
            raise ConfigError(
                "a run document is required unless --compare A B")
        record = load_run_document(args.result)
        spans = None
        if args.trace:
            from repro.sim.tracing import load_spans

            spans = load_spans(args.trace)
        rows = None
        if args.timeseries:
            from repro.sim.timeseries import read_rows

            rows = read_rows(args.timeseries)
        bench_history = None
        if args.bench_history:
            from repro.bench import render_history

            try:
                bench_history = render_history(args.bench_history)
            except ConfigError as error:
                print(f"note: skipping bench history ({error})",
                      file=sys.stderr)
        report = build_run_report(record, spans=spans, timeseries_rows=rows,
                                  top_k=args.top_k,
                                  bench_history=bench_history)
        if args.out:
            html = args.html or args.out.endswith(".html")
            report.write(args.out, html=html)
            print(f"report written to {args.out}")
        elif args.html:
            print(report.to_html())
        else:
            print(report.to_markdown())
        return 0
    except ConfigError as error:
        print(f"error (config): {error}", file=sys.stderr)
        return 2


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import (
        BENCH_WORKLOADS,
        compare_to_baseline,
        default_output_name,
        load_document,
        render_history,
        run_suite,
        write_document,
    )
    from repro.common.errors import ConfigError

    if args.history is not None:
        try:
            print(render_history(args.history))
        except ConfigError as error:
            print(f"error (config): {error}", file=sys.stderr)
            return 2
        return 0
    try:
        if not 0.0 <= args.max_regression < 1.0:
            raise ConfigError(f"--max-regression must be in [0, 1), "
                              f"got {args.max_regression}")
        workloads = tuple(BENCH_WORKLOADS)
        if args.workloads:
            workloads = tuple(name.strip()
                              for name in args.workloads.split(",")
                              if name.strip())
            if not workloads:
                raise ConfigError("--workloads must name at least one "
                                  "workload")
        baseline = load_document(args.baseline) if args.baseline else None

        def show(record) -> None:
            print(f"{record['workload']}/{record['controller']}: "
                  f"{record['accesses_per_s']:,.0f} acc/s", flush=True)

        document = run_suite(accesses=args.accesses, workloads=workloads,
                             fast_path=args.fast_path, seed=args.seed,
                             progress=show)
    except ConfigError as error:
        print(f"error (config): {error}", file=sys.stderr)
        return 2
    out = args.out or default_output_name()
    write_document(document, out)
    print(f"suite: {document['suite_accesses']} accesses in "
          f"{document['suite_elapsed_s']}s = "
          f"{document['suite_accesses_per_s']:,.0f} acc/s")
    print(f"benchmark document written to {out}")
    if baseline is not None:
        regressions = compare_to_baseline(document, baseline,
                                          args.max_regression)
        if regressions:
            for message in regressions:
                print(f"regression: {message}", file=sys.stderr)
            return 1
        print(f"no regression beyond {args.max_regression:.0%} "
              f"vs {args.baseline}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.trace_command == "convert":
        from repro.common.errors import ConfigError
        from repro.sim.tracing import convert_trace

        try:
            count = convert_trace(args.src, args.dst)
        except ConfigError as error:
            print(f"error (config): {error}", file=sys.stderr)
            return 2
        print(f"converted {count} spans: {args.src} -> {args.dst}")
        return 0

    from repro.workloads.traceio import save_trace, workload_from_trace

    if args.trace_command == "export":
        workload = workload_by_name(args.workload, max_accesses=args.accesses,
                                    scale=args.scale)
        save_trace(workload.trace, args.path)
        print(f"wrote {workload.access_count} accesses "
              f"({workload.footprint_pages} footprint pages) to {args.path}")
        return 0
    # run
    if args.controller == "list":
        for name in _controller_names():
            print(name)
        return 0
    if not _check_controller(args.controller):
        return 2
    if args.path is None:
        print("a trace path is required unless --controller list",
              file=sys.stderr)
        return 2
    from repro.sim.simulator import Simulator

    workload = workload_from_trace(args.path)
    result = Simulator(workload, controller=args.controller).run()
    print(f"{workload.name}: {result.accesses} accesses, "
          f"{result.l3_misses} LLC misses, "
          f"avg miss latency {result.avg_l3_miss_latency_ns:.1f} ns, "
          f"perf {result.performance:.1f}/us, "
          f"capacity {result.compression_ratio:.2f}x")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TMCC (MICRO 2022) reproduction toolkit",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    workloads = commands.add_parser("workloads",
                                    help="list the paper's workloads")
    workloads.add_argument("--json", action="store_true",
                           help="emit the list as JSON")

    deflate = commands.add_parser("deflate", help="compress synthetic pages")
    deflate.add_argument("profile", help="content profile (e.g. graph, mcf)")
    deflate.add_argument("--pages", type=int, default=12)
    deflate.add_argument("--seed", type=int, default=1)

    run = commands.add_parser(
        "run", help="simulate one workload under one controller")
    run.add_argument("workload", nargs="?",
                     help="workload name (omit with --controller list)")
    run.add_argument("--controller", default="tmcc",
                     help="registered controller name, or 'list'")
    run.add_argument("--accesses", type=int, default=40_000)
    run.add_argument("--scale", type=float, default=0.4)
    run.add_argument("--seed", type=int, default=1)
    run.add_argument("--cores", type=int, default=1,
                     help=">1 uses the multi-core engine")
    run.add_argument("--breakdown", action="store_true",
                     help="print the per-path per-stage miss-latency table")
    run.add_argument("--emit-json", action="store_true",
                     help="emit the result plus the namespaced metric tree "
                          "(on failure: an error document)")
    run.add_argument("--trace-events", metavar="PATH",
                     help="write instrumentation events as JSONL")
    run.add_argument("--trace-sample", type=int, metavar="N",
                     help="span-trace every Nth access (needs --trace-out)")
    run.add_argument("--trace-buffer", type=int, default=4096, metavar="SPANS",
                     help="max retained spans, head/tail split "
                          "(default: 4096)")
    run.add_argument("--trace-out", metavar="PATH",
                     help="write sampled span traces: .jsonl for span "
                          "lines, anything else for Perfetto/Chrome "
                          "trace JSON (implies --trace-sample 1)")
    run.add_argument("--interval-ns", type=float, metavar="NS",
                     help="record windowed metric deltas every NS of "
                          "simulated time (needs --interval-out)")
    run.add_argument("--interval-out", metavar="PATH",
                     help="write the time series: .csv or JSONL by "
                          "extension")
    run.add_argument("--fast-path", choices=("auto", "on", "off"),
                     default="auto",
                     help="zero-observer replay loop: 'auto' takes it "
                          "whenever eligible, 'on' demands it (config "
                          "error when observers force the slow loop), "
                          "'off' always runs the instrumented loop")
    run.add_argument("--profile", action="store_true",
                     help="measure host wall-clock self-time per section "
                          "(adds profile.* metrics; non-deterministic)")
    run.add_argument("--faults", metavar="SPEC",
                     help="inject deterministic faults: comma-separated "
                          "kind[:rate[:burst]][@start-end] "
                          "(see repro.sim.faults for the kinds)")
    run.add_argument("--checkpoint", metavar="PATH",
                     help="checkpoint file to write (with --checkpoint-every "
                          "or on wall-clock truncation)")
    run.add_argument("--checkpoint-every", type=int, default=0, metavar="N",
                     help="checkpoint every N accesses (needs --checkpoint)")
    run.add_argument("--resume", metavar="PATH",
                     help="resume a run from a checkpoint file")
    run.add_argument("--wall-clock-limit", type=float, metavar="SECONDS",
                     help="stop gracefully (exit 3, partial result) after "
                          "this much wall-clock time")

    compare = commands.add_parser(
        "compare", help="TMCC vs Compresso at iso-capacity")
    compare.add_argument("workload", choices=PAPER_WORKLOAD_NAMES)
    compare.add_argument("--accesses", type=int, default=40_000)
    compare.add_argument("--scale", type=float, default=0.4)
    compare.add_argument("--emit-json", action="store_true",
                         help="emit per-system results with metric trees")

    sweep = commands.add_parser(
        "sweep", help="declarative sweeps: run a job matrix into a "
                      "result store, inspect it, or plot the legacy "
                      "capacity curve")
    sweep_sub = sweep.add_subparsers(dest="sweep_command", required=True)

    sweep_run = sweep_sub.add_parser(
        "run", help="run (or resume) a sweep spec against a store")
    sweep_run.add_argument("spec",
                           help="spec file (.toml/.json) or a built-in "
                                "matrix name (fig18, smoke)")
    sweep_run.add_argument("--store", default="sweeps.db", metavar="PATH",
                           help="SQLite result store "
                                "(default: sweeps.db; created on demand)")
    sweep_run.add_argument("-j", "--jobs", type=int, default=1,
                           help="worker processes (default: 1, inline)")
    sweep_run.add_argument("--fresh", action="store_true",
                           help="discard this spec's recorded rows and "
                                "start over instead of resuming")
    sweep_run.add_argument("--max-retries", type=int, default=2,
                           metavar="N",
                           help="retries per job for transient failures "
                                "(worker death, hangs, timeouts, store "
                                "I/O; default: 2, 0 disables)")
    sweep_run.add_argument("--heartbeat-timeout", type=float, default=None,
                           metavar="SECONDS",
                           help="kill and replace a worker silent for this "
                                "long (default: off; worker *death* is "
                                "always detected)")
    sweep_run.add_argument("--chaos", metavar="PLAN", default=None,
                           help="inject host faults: "
                                "kind[:count[:param]][@index],... with "
                                "kinds worker_kill/hang/enospc/"
                                "corrupt_row (needs -j >= 2)")
    sweep_run.add_argument("--chaos-seed", type=int, default=0, metavar="N",
                           help="seed for chaos victim choice (default: 0)")
    sweep_run.add_argument("--no-chaos", action="store_true",
                           help="explicitly disable fault injection "
                                "(rejects a conflicting --chaos)")
    sweep_run.add_argument("--timeout", type=float, metavar="SECONDS",
                           help="per-job wall-clock watchdog "
                                "(overrides the spec's job_timeout_s)")
    sweep_run.add_argument("--journal", metavar="PATH", default=None,
                           help="telemetry event journal path (default: "
                                "<store>.<sweep_id>.journal.jsonl, "
                                "written automatically)")
    sweep_run.add_argument("--no-journal", action="store_true",
                           help="disable the telemetry journal (results "
                                "are byte-identical either way)")

    sweep_ls = sweep_sub.add_parser("ls", help="list recorded sweeps")
    sweep_ls.add_argument("--store", default="sweeps.db", metavar="PATH")

    sweep_show = sweep_sub.add_parser(
        "show", help="show one sweep's job table")
    sweep_show.add_argument("sweep",
                            help="sweep id, id prefix, or sweep name")
    sweep_show.add_argument("--store", default="sweeps.db", metavar="PATH")

    sweep_export = sweep_sub.add_parser(
        "export", help="export one sweep as JSON or CSV")
    sweep_export.add_argument("sweep",
                              help="sweep id, id prefix, or sweep name")
    sweep_export.add_argument("--store", default="sweeps.db",
                              metavar="PATH")
    sweep_export.add_argument("--format", choices=("json", "csv"),
                              default="json")
    sweep_export.add_argument("--out", metavar="PATH",
                              help="write here instead of stdout")
    sweep_export.add_argument("--failures", action="store_true",
                              help="export only failed/quarantined jobs "
                                   "(idx, last error, attempts) instead "
                                   "of the full document")

    sweep_watch = sweep_sub.add_parser(
        "watch", help="follow a live sweep's telemetry journal "
                      "(progress, throughput, ETA, per-worker state)")
    sweep_watch.add_argument("sweep",
                             help="sweep id, id prefix, or sweep name")
    sweep_watch.add_argument("--store", default="sweeps.db", metavar="PATH")
    sweep_watch.add_argument("--journal", metavar="PATH", default=None,
                             help="journal file (default: the store-"
                                  "adjacent path `sweep run` writes)")
    sweep_watch.add_argument("--interval", type=float, default=2.0,
                             metavar="SECONDS",
                             help="refresh period (default: 2)")
    sweep_watch.add_argument("--once", action="store_true",
                             help="print one status frame and exit")

    sweep_events = sweep_sub.add_parser(
        "events", help="tail/filter/export the telemetry journal")
    sweep_events.add_argument("sweep",
                              help="sweep id, id prefix, or sweep name")
    sweep_events.add_argument("--store", default="sweeps.db",
                              metavar="PATH")
    sweep_events.add_argument("--journal", metavar="PATH", default=None,
                              help="journal file (default: the store-"
                                   "adjacent path `sweep run` writes)")
    sweep_events.add_argument("--kind", metavar="CSV", default=None,
                              help="only these event kinds "
                                   "(comma-separated, e.g. "
                                   "job_retry,worker_death)")
    sweep_events.add_argument("--job", type=int, metavar="IDX",
                              default=None,
                              help="only events about this matrix index")
    sweep_events.add_argument("--tail", type=int, metavar="N", default=0,
                              help="only the last N events (default: all)")
    sweep_events.add_argument("--json", action="store_true",
                              help="raw JSONL instead of the aligned "
                                   "human format")
    sweep_events.add_argument("--perfetto", metavar="PATH", default=None,
                              help="convert the (filtered) journal to a "
                                   "Perfetto trace at PATH instead of "
                                   "printing")

    sweep_report = sweep_sub.add_parser(
        "report", help="render a sweep report: outcome grid, failures, "
                       "worker timeline, cross-sweep trend")
    sweep_report.add_argument("sweep",
                              help="sweep id, id prefix, or sweep name")
    sweep_report.add_argument("--store", default="sweeps.db",
                              metavar="PATH")
    sweep_report.add_argument("--compare", metavar="OTHER", default=None,
                              help="second sweep (same store) for the "
                                   "cell-matched trend section")
    sweep_report.add_argument("--out", metavar="PATH",
                              help="write the report here instead of "
                                   "stdout")
    sweep_report.add_argument("--html", action="store_true",
                              help="render HTML instead of markdown")

    sweep_repair = sweep_sub.add_parser(
        "repair", help="salvage completed rows from a damaged store "
                       "into a fresh one")
    sweep_repair.add_argument("src", metavar="DAMAGED",
                              help="path of the damaged store")
    sweep_repair.add_argument("--out", required=True, metavar="PATH",
                              help="path for the repaired store "
                                   "(must not exist)")

    sweep_curve = sweep_sub.add_parser(
        "curve", help="TMCC's performance/capacity trade-off curve "
                      "(also reachable as `repro sweep <workload>`)")
    sweep_curve.add_argument("workload", choices=PAPER_WORKLOAD_NAMES)
    sweep_curve.add_argument("--accesses", type=int, default=40_000)
    sweep_curve.add_argument("--scale", type=float, default=0.4)
    sweep_curve.add_argument("--points", type=int, default=4)

    bench = commands.add_parser(
        "bench", help="run the pinned performance suite "
                      "(accesses/sec per controller)")
    bench.add_argument("--accesses", type=int, default=60_000,
                       help="replay length per configuration "
                            "(default: 60000, the fig18 pin)")
    bench.add_argument("--workloads", metavar="CSV",
                       help="comma-separated subset of the pinned "
                            "workloads (default: all seven)")
    bench.add_argument("--fast-path", choices=("auto", "on", "off"),
                       default="auto",
                       help="which replay loop the suite times "
                            "(default: auto)")
    bench.add_argument("--seed", type=int, default=1)
    bench.add_argument("--out", metavar="PATH",
                       help="output document "
                            "(default: BENCH_<date>.json)")
    bench.add_argument("--baseline", metavar="PATH",
                       help="committed reference document; exit 1 when "
                            "any configuration regresses beyond "
                            "--max-regression")
    bench.add_argument("--max-regression", type=float, default=0.20,
                       metavar="FRACTION",
                       help="allowed fractional slowdown vs the "
                            "baseline (default: 0.20)")
    bench.add_argument("--history", nargs="?", const="benchmarks/perf",
                       metavar="DIR",
                       help="print the committed BENCH_*.json trajectory "
                            "table (per-controller acc/s, speedup vs the "
                            "seed tree) instead of running the suite "
                            "(default DIR: benchmarks/perf)")

    trace = commands.add_parser(
        "trace", help="export a workload trace / simulate a trace file")
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    export = trace_sub.add_parser("export", help="write a .rtrc trace file")
    export.add_argument("workload", choices=PAPER_WORKLOAD_NAMES)
    export.add_argument("path")
    export.add_argument("--accesses", type=int, default=40_000)
    export.add_argument("--scale", type=float, default=0.4)
    trace_run = trace_sub.add_parser("run", help="simulate a trace file")
    trace_run.add_argument("path", nargs="?",
                           help="trace file (omit with --controller list)")
    trace_run.add_argument("--controller", default="tmcc")
    convert = trace_sub.add_parser(
        "convert", help="convert a span trace between JSONL and Perfetto")
    convert.add_argument("src", help="input trace (format sniffed)")
    convert.add_argument("dst",
                         help="output path (.jsonl for span lines, "
                              "anything else for Perfetto JSON)")

    report = commands.add_parser(
        "report", help="render a run report / compare two runs")
    report.add_argument("result", nargs="?",
                        help="a `repro run --emit-json` document")
    report.add_argument("--compare", nargs=2, metavar=("A", "B"),
                        help="diff two --emit-json documents instead")
    report.add_argument("--out", metavar="PATH",
                        help="write the report here instead of stdout")
    report.add_argument("--html", action="store_true",
                        help="render HTML instead of markdown")
    report.add_argument("--trace", metavar="PATH",
                        help="a --trace-out file: adds the slowest-spans "
                             "section")
    report.add_argument("--timeseries", metavar="PATH",
                        help="an --interval-out file: adds sparklines")
    report.add_argument("--top-k", type=int, default=10,
                        help="slowest spans to list (default: 10)")
    report.add_argument("--bench-history", nargs="?",
                        const="benchmarks/perf", metavar="DIR",
                        help="embed the committed `repro bench` "
                             "trajectory table (default DIR: "
                             "benchmarks/perf; skipped with a note when "
                             "no documents exist)")

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # Historical spelling: `repro sweep <workload>` predates the sweep
    # subcommands and still means the capacity curve.
    if (len(argv) >= 2 and argv[0] == "sweep"
            and argv[1] in PAPER_WORKLOAD_NAMES):
        argv.insert(1, "curve")
    args = build_parser().parse_args(argv)
    handlers = {
        "workloads": _cmd_workloads,
        "deflate": _cmd_deflate,
        "run": _cmd_run,
        "compare": _cmd_compare,
        "sweep": _cmd_sweep,
        "bench": _cmd_bench,
        "trace": _cmd_trace,
        "report": _cmd_report,
    }
    if args.command != "run":  # run validates inside (for --emit-json)
        issue = _validate_args(args)
        if issue is not None:
            print(f"error: {issue}", file=sys.stderr)
            return 2
    try:
        return handlers[args.command](args)
    except BrokenPipeError:  # e.g. piped into `head`
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
