"""Command-line interface.

Five subcommands cover the library's main entry points:

- ``workloads`` -- list the paper's workloads (``--json`` for machines).
- ``deflate``   -- compress synthetic pages of one content profile and
  report size/latency under our ASIC vs block-level vs IBM's ASIC.
- ``run``       -- simulate one workload under one controller, with the
  structured-instrumentation surface (``--emit-json`` for the namespaced
  metric tree, ``--trace-events`` for a JSONL event stream).
- ``compare``   -- the headline experiment: TMCC vs Compresso at equal
  DRAM usage for one workload.
- ``sweep``     -- TMCC's performance/capacity trade-off curve.

Controllers come from :data:`repro.core.CONTROLLER_REGISTRY`; pass
``--controller list`` to ``run`` (or ``trace run``) to enumerate them.

Examples::

    python -m repro.cli workloads --json
    python -m repro.cli deflate graph
    python -m repro.cli run mcf --controller tmcc --emit-json
    python -m repro.cli compare canneal --accesses 40000 --scale 0.4
    python -m repro.cli sweep mcf --points 4
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.common.units import PAGE_SIZE
from repro.compression.block import SelectiveBlockCompressor
from repro.compression.deflate import (
    DeflateCodec,
    DeflateTimingModel,
    IBMDeflateModel,
)
from repro.sim.experiments import iso_capacity_comparison, run_workload
from repro.workloads.content import CONTENT_PROFILES, ContentSynthesizer
from repro.workloads.suite import PAPER_WORKLOAD_NAMES, workload_by_name

_WORKLOAD_KINDS = {
    "mcf": "SPEC-like pointer chase",
    "omnetpp": "SPEC-like event queue",
    "canneal": "PARSEC-like annealing",
}


def _controller_names() -> List[str]:
    from repro.core import available_controllers

    return available_controllers()


def _check_controller(name: str) -> bool:
    """True if ``name`` is registered; otherwise print the choices."""
    names = _controller_names()
    if name in names:
        return True
    print(f"unknown controller {name!r}; choose from {names}",
          file=sys.stderr)
    return False


def _cmd_workloads(args: argparse.Namespace) -> int:
    if getattr(args, "json", False):
        records = [
            {"name": name,
             "kind": _WORKLOAD_KINDS.get(name, "GraphBIG-like kernel")}
            for name in PAPER_WORKLOAD_NAMES
        ]
        print(json.dumps(records, indent=2))
        return 0
    print(f"{'workload':14s} {'kind':22s}")
    for name in PAPER_WORKLOAD_NAMES:
        print(f"{name:14s} "
              f"{_WORKLOAD_KINDS.get(name, 'GraphBIG-like kernel'):22s}")
    return 0


def _cmd_deflate(args: argparse.Namespace) -> int:
    if args.profile not in CONTENT_PROFILES:
        print(f"unknown profile {args.profile!r}; "
              f"choose from {sorted(CONTENT_PROFILES)}", file=sys.stderr)
        return 2
    synthesizer = ContentSynthesizer(args.profile, seed=args.seed)
    codec = DeflateCodec()
    blocks = SelectiveBlockCompressor()
    timing = DeflateTimingModel()
    ibm = IBMDeflateModel()
    pages = [synthesizer.page(v) for v in range(args.pages)]
    original = len(pages) * PAGE_SIZE
    compressed = [codec.compress(p) for p in pages]
    for c, p in zip(compressed, pages):
        if codec.decompress(c) != p:
            print("round-trip FAILED", file=sys.stderr)
            return 1
    deflate_bytes = sum(c.size_bytes for c in compressed)
    block_bytes = sum(blocks.compressed_page_size(p) for p in pages)
    half = sum(timing.decompress_latency_ns(c, PAGE_SIZE // 2)
               for c in compressed) / len(compressed)
    print(f"profile {args.profile}: {args.pages} pages, round-trip OK")
    print(f"our ASIC Deflate: {original / deflate_bytes:5.2f}x, "
          f"half-page latency {half:.0f} ns")
    print(f"block-level:      {original / block_bytes:5.2f}x")
    print(f"IBM ASIC half-page latency: "
          f"{ibm.decompress_latency_ns(PAGE_SIZE, PAGE_SIZE // 2):.0f} ns")
    return 0


def _print_breakdown(accounting) -> None:
    """Render the per-path per-stage latency table behind ``--breakdown``.

    ``share`` is each stage's critical-path time as a fraction of all
    measured miss latency, so the column sums to ~1.0 over the table.
    """
    rows = accounting.breakdown()
    if not rows:
        print("no per-stage data recorded (no LLC misses?)")
        return
    header = (f"{'path':<18} {'stage':<16} {'count':>8} "
              f"{'mean_ns':>10} {'share':>7}")
    print(header)
    print("-" * len(header))
    for row in rows:
        print(f"{row['path']:<18} {row['stage']:<16} {row['count']:>8} "
              f"{row['mean_ns']:>10.2f} {row['share']:>7.1%}")


def _cmd_run(args: argparse.Namespace) -> int:
    if args.controller == "list":
        for name in _controller_names():
            print(name)
        return 0
    if args.workload is None:
        print("a workload is required unless --controller list",
              file=sys.stderr)
        return 2
    if args.workload not in PAPER_WORKLOAD_NAMES:
        print(f"unknown workload {args.workload!r}; "
              f"choose from {PAPER_WORKLOAD_NAMES}", file=sys.stderr)
        return 2
    if not _check_controller(args.controller):
        return 2

    trace_file = None
    if args.trace_events:  # fail fast, before the expensive trace build
        try:
            trace_file = open(args.trace_events, "w")
        except OSError as error:
            print(f"cannot write trace events to {args.trace_events!r}: "
                  f"{error}", file=sys.stderr)
            return 2

    from repro.sim.multicore import MultiCoreSimulator
    from repro.sim.simulator import Simulator

    workload = workload_by_name(args.workload, max_accesses=args.accesses,
                                scale=args.scale)
    if args.cores > 1:
        sim = MultiCoreSimulator(workload, num_cores=args.cores,
                                 controller=args.controller, seed=args.seed)
    else:
        sim = Simulator(workload, controller=args.controller, seed=args.seed)

    if trace_file is not None:
        sim.context.bus.subscribe_all(
            lambda event: trace_file.write(
                json.dumps(event.as_dict(), sort_keys=True) + "\n"))
    try:
        result = sim.run()
    finally:
        if trace_file is not None:
            sim.context.bus.unsubscribe_all()
            trace_file.close()

    if args.emit_json:
        from repro.sim.instrument import nest_metrics

        record = result.as_dict()
        record["metrics_tree"] = nest_metrics(result.metrics)
        print(json.dumps(record, indent=2, sort_keys=True))
        return 0
    print(f"{workload.name} / {args.controller}: {result.accesses} accesses, "
          f"{result.l3_misses} LLC misses, "
          f"avg miss latency {result.avg_l3_miss_latency_ns:.1f} ns, "
          f"perf {result.performance:.1f}/us, "
          f"capacity {result.compression_ratio:.2f}x")
    if args.breakdown:
        _print_breakdown(sim.controller.stage_accounting)
    if args.trace_events:
        print(f"trace events written to {args.trace_events}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    workload = workload_by_name(args.workload, max_accesses=args.accesses,
                                scale=args.scale)
    uncompressed = run_workload(workload, "uncompressed")
    iso = iso_capacity_comparison(workload)
    if getattr(args, "emit_json", False):
        from repro.sim.instrument import nest_metrics

        systems = {}
        for label, result in (("uncompressed", uncompressed),
                              ("compresso", iso.compresso),
                              ("tmcc", iso.tmcc)):
            record = result.as_dict()
            record["metrics_tree"] = nest_metrics(result.metrics)
            systems[label] = record
        print(json.dumps({"workload": args.workload,
                          "speedup": iso.speedup,
                          "systems": systems},
                         indent=2, sort_keys=True))
        return 0
    print(f"{args.workload}: footprint "
          f"{workload.footprint_pages * 4 // 1024} MiB, "
          f"{workload.access_count} accesses")
    print(f"{'system':14s} {'L3 miss lat':>12s} {'perf':>10s} {'capacity':>9s}")
    for label, result in (("no compress", uncompressed),
                          ("Compresso", iso.compresso),
                          ("TMCC", iso.tmcc)):
        print(f"{label:14s} {result.avg_l3_miss_latency_ns:9.1f} ns "
              f"{result.performance:7.1f}/us {result.compression_ratio:8.2f}x")
    print(f"TMCC speedup at iso-capacity: {iso.speedup:.3f}x")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    workload = workload_by_name(args.workload, max_accesses=args.accesses,
                                scale=args.scale)
    compresso = run_workload(workload, "compresso")
    print(f"Compresso: {compresso.dram_used_bytes / 2**20:.1f} MB, "
          f"perf {compresso.performance:.1f}/us")
    print(f"{'budget':>10s} {'perf vs Compresso':>18s} {'capacity':>9s}")
    for step in range(args.points):
        fraction = 1.0 - step * (0.6 / max(1, args.points - 1))
        budget = int(compresso.dram_used_bytes * fraction)
        try:
            result = run_workload(workload, "tmcc", dram_budget_bytes=budget)
        except ValueError:
            print(f"{budget / 2**20:7.1f} MB  (below compressible floor)")
            continue
        print(f"{budget / 2**20:7.1f} MB "
              f"{result.performance / compresso.performance:17.2%} "
              f"{result.compression_ratio:8.2f}x")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.workloads.traceio import save_trace, workload_from_trace

    if args.trace_command == "export":
        workload = workload_by_name(args.workload, max_accesses=args.accesses,
                                    scale=args.scale)
        save_trace(workload.trace, args.path)
        print(f"wrote {workload.access_count} accesses "
              f"({workload.footprint_pages} footprint pages) to {args.path}")
        return 0
    # run
    if args.controller == "list":
        for name in _controller_names():
            print(name)
        return 0
    if not _check_controller(args.controller):
        return 2
    if args.path is None:
        print("a trace path is required unless --controller list",
              file=sys.stderr)
        return 2
    from repro.sim.simulator import Simulator

    workload = workload_from_trace(args.path)
    result = Simulator(workload, controller=args.controller).run()
    print(f"{workload.name}: {result.accesses} accesses, "
          f"{result.l3_misses} LLC misses, "
          f"avg miss latency {result.avg_l3_miss_latency_ns:.1f} ns, "
          f"perf {result.performance:.1f}/us, "
          f"capacity {result.compression_ratio:.2f}x")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TMCC (MICRO 2022) reproduction toolkit",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    workloads = commands.add_parser("workloads",
                                    help="list the paper's workloads")
    workloads.add_argument("--json", action="store_true",
                           help="emit the list as JSON")

    deflate = commands.add_parser("deflate", help="compress synthetic pages")
    deflate.add_argument("profile", help="content profile (e.g. graph, mcf)")
    deflate.add_argument("--pages", type=int, default=12)
    deflate.add_argument("--seed", type=int, default=1)

    run = commands.add_parser(
        "run", help="simulate one workload under one controller")
    run.add_argument("workload", nargs="?",
                     help="workload name (omit with --controller list)")
    run.add_argument("--controller", default="tmcc",
                     help="registered controller name, or 'list'")
    run.add_argument("--accesses", type=int, default=40_000)
    run.add_argument("--scale", type=float, default=0.4)
    run.add_argument("--seed", type=int, default=1)
    run.add_argument("--cores", type=int, default=1,
                     help=">1 uses the multi-core engine")
    run.add_argument("--breakdown", action="store_true",
                     help="print the per-path per-stage miss-latency table")
    run.add_argument("--emit-json", action="store_true",
                     help="emit the result plus the namespaced metric tree")
    run.add_argument("--trace-events", metavar="PATH",
                     help="write instrumentation events as JSONL")

    for name, help_text in (("compare", "TMCC vs Compresso at iso-capacity"),
                            ("sweep", "performance/capacity trade-off")):
        sub = commands.add_parser(name, help=help_text)
        sub.add_argument("workload", choices=PAPER_WORKLOAD_NAMES)
        sub.add_argument("--accesses", type=int, default=40_000)
        sub.add_argument("--scale", type=float, default=0.4)
        if name == "sweep":
            sub.add_argument("--points", type=int, default=4)
        if name == "compare":
            sub.add_argument("--emit-json", action="store_true",
                             help="emit per-system results with metric trees")

    trace = commands.add_parser(
        "trace", help="export a workload trace / simulate a trace file")
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    export = trace_sub.add_parser("export", help="write a .rtrc trace file")
    export.add_argument("workload", choices=PAPER_WORKLOAD_NAMES)
    export.add_argument("path")
    export.add_argument("--accesses", type=int, default=40_000)
    export.add_argument("--scale", type=float, default=0.4)
    trace_run = trace_sub.add_parser("run", help="simulate a trace file")
    trace_run.add_argument("path", nargs="?",
                           help="trace file (omit with --controller list)")
    trace_run.add_argument("--controller", default="tmcc")

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "workloads": _cmd_workloads,
        "deflate": _cmd_deflate,
        "run": _cmd_run,
        "compare": _cmd_compare,
        "sweep": _cmd_sweep,
        "trace": _cmd_trace,
    }
    try:
        return handlers[args.command](args)
    except BrokenPipeError:  # e.g. piped into `head`
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
