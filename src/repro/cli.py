"""Command-line interface.

Four subcommands cover the library's main entry points:

- ``workloads`` -- list the paper's workloads and their footprints.
- ``deflate``   -- compress synthetic pages of one content profile and
  report size/latency under our ASIC vs block-level vs IBM's ASIC.
- ``compare``   -- the headline experiment: TMCC vs Compresso at equal
  DRAM usage for one workload.
- ``sweep``     -- TMCC's performance/capacity trade-off curve.

Examples::

    python -m repro.cli workloads
    python -m repro.cli deflate graph
    python -m repro.cli compare canneal --accesses 40000 --scale 0.4
    python -m repro.cli sweep mcf --points 4
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.common.units import PAGE_SIZE
from repro.compression.block import SelectiveBlockCompressor
from repro.compression.deflate import (
    DeflateCodec,
    DeflateTimingModel,
    IBMDeflateModel,
)
from repro.sim.experiments import iso_capacity_comparison, run_workload
from repro.workloads.content import CONTENT_PROFILES, ContentSynthesizer
from repro.workloads.suite import PAPER_WORKLOAD_NAMES, workload_by_name


def _cmd_workloads(_args: argparse.Namespace) -> int:
    print(f"{'workload':14s} {'kind':22s}")
    kinds = {
        "mcf": "SPEC-like pointer chase",
        "omnetpp": "SPEC-like event queue",
        "canneal": "PARSEC-like annealing",
    }
    for name in PAPER_WORKLOAD_NAMES:
        print(f"{name:14s} {kinds.get(name, 'GraphBIG-like kernel'):22s}")
    return 0


def _cmd_deflate(args: argparse.Namespace) -> int:
    if args.profile not in CONTENT_PROFILES:
        print(f"unknown profile {args.profile!r}; "
              f"choose from {sorted(CONTENT_PROFILES)}", file=sys.stderr)
        return 2
    synthesizer = ContentSynthesizer(args.profile, seed=args.seed)
    codec = DeflateCodec()
    blocks = SelectiveBlockCompressor()
    timing = DeflateTimingModel()
    ibm = IBMDeflateModel()
    pages = [synthesizer.page(v) for v in range(args.pages)]
    original = len(pages) * PAGE_SIZE
    compressed = [codec.compress(p) for p in pages]
    for c, p in zip(compressed, pages):
        if codec.decompress(c) != p:
            print("round-trip FAILED", file=sys.stderr)
            return 1
    deflate_bytes = sum(c.size_bytes for c in compressed)
    block_bytes = sum(blocks.compressed_page_size(p) for p in pages)
    half = sum(timing.decompress_latency_ns(c, PAGE_SIZE // 2)
               for c in compressed) / len(compressed)
    print(f"profile {args.profile}: {args.pages} pages, round-trip OK")
    print(f"our ASIC Deflate: {original / deflate_bytes:5.2f}x, "
          f"half-page latency {half:.0f} ns")
    print(f"block-level:      {original / block_bytes:5.2f}x")
    print(f"IBM ASIC half-page latency: "
          f"{ibm.decompress_latency_ns(PAGE_SIZE, PAGE_SIZE // 2):.0f} ns")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    workload = workload_by_name(args.workload, max_accesses=args.accesses,
                                scale=args.scale)
    uncompressed = run_workload(workload, "uncompressed")
    iso = iso_capacity_comparison(workload)
    print(f"{args.workload}: footprint "
          f"{workload.footprint_pages * 4 // 1024} MiB, "
          f"{workload.access_count} accesses")
    print(f"{'system':14s} {'L3 miss lat':>12s} {'perf':>10s} {'capacity':>9s}")
    for label, result in (("no compress", uncompressed),
                          ("Compresso", iso.compresso),
                          ("TMCC", iso.tmcc)):
        print(f"{label:14s} {result.avg_l3_miss_latency_ns:9.1f} ns "
              f"{result.performance:7.1f}/us {result.compression_ratio:8.2f}x")
    print(f"TMCC speedup at iso-capacity: {iso.speedup:.3f}x")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    workload = workload_by_name(args.workload, max_accesses=args.accesses,
                                scale=args.scale)
    compresso = run_workload(workload, "compresso")
    print(f"Compresso: {compresso.dram_used_bytes / 2**20:.1f} MB, "
          f"perf {compresso.performance:.1f}/us")
    print(f"{'budget':>10s} {'perf vs Compresso':>18s} {'capacity':>9s}")
    for step in range(args.points):
        fraction = 1.0 - step * (0.6 / max(1, args.points - 1))
        budget = int(compresso.dram_used_bytes * fraction)
        try:
            result = run_workload(workload, "tmcc", dram_budget_bytes=budget)
        except ValueError:
            print(f"{budget / 2**20:7.1f} MB  (below compressible floor)")
            continue
        print(f"{budget / 2**20:7.1f} MB "
              f"{result.performance / compresso.performance:17.2%} "
              f"{result.compression_ratio:8.2f}x")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.workloads.traceio import save_trace, workload_from_trace

    if args.trace_command == "export":
        workload = workload_by_name(args.workload, max_accesses=args.accesses,
                                    scale=args.scale)
        save_trace(workload.trace, args.path)
        print(f"wrote {workload.access_count} accesses "
              f"({workload.footprint_pages} footprint pages) to {args.path}")
        return 0
    # run
    from repro.sim.simulator import CONTROLLERS, Simulator

    if args.controller not in CONTROLLERS:
        print(f"unknown controller {args.controller!r}; "
              f"choose from {sorted(CONTROLLERS)}", file=sys.stderr)
        return 2
    workload = workload_from_trace(args.path)
    result = Simulator(workload, controller=args.controller).run()
    print(f"{workload.name}: {result.accesses} accesses, "
          f"{result.l3_misses} LLC misses, "
          f"avg miss latency {result.avg_l3_miss_latency_ns:.1f} ns, "
          f"perf {result.performance:.1f}/us, "
          f"capacity {result.compression_ratio:.2f}x")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TMCC (MICRO 2022) reproduction toolkit",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("workloads", help="list the paper's workloads")

    deflate = commands.add_parser("deflate", help="compress synthetic pages")
    deflate.add_argument("profile", help="content profile (e.g. graph, mcf)")
    deflate.add_argument("--pages", type=int, default=12)
    deflate.add_argument("--seed", type=int, default=1)

    for name, help_text in (("compare", "TMCC vs Compresso at iso-capacity"),
                            ("sweep", "performance/capacity trade-off")):
        sub = commands.add_parser(name, help=help_text)
        sub.add_argument("workload", choices=PAPER_WORKLOAD_NAMES)
        sub.add_argument("--accesses", type=int, default=40_000)
        sub.add_argument("--scale", type=float, default=0.4)
        if name == "sweep":
            sub.add_argument("--points", type=int, default=4)

    trace = commands.add_parser(
        "trace", help="export a workload trace / simulate a trace file")
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    export = trace_sub.add_parser("export", help="write a .rtrc trace file")
    export.add_argument("workload", choices=PAPER_WORKLOAD_NAMES)
    export.add_argument("path")
    export.add_argument("--accesses", type=int, default=40_000)
    export.add_argument("--scale", type=float, default=0.4)
    run = trace_sub.add_parser("run", help="simulate a trace file")
    run.add_argument("path")
    run.add_argument("--controller", default="tmcc")

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "workloads": _cmd_workloads,
        "deflate": _cmd_deflate,
        "compare": _cmd_compare,
        "sweep": _cmd_sweep,
        "trace": _cmd_trace,
    }
    try:
        return handlers[args.command](args)
    except BrokenPipeError:  # e.g. piped into `head`
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
