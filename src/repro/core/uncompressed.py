"""No-compression reference system.

Physical pages map 1:1 to DRAM pages, every LLC miss is exactly one DRAM
access, and there is no translation beyond the page table.  This is
Figure 18's "No Compression" bar (~53 ns average L3 miss latency: NoC +
DRAM) and the denominator for effective-capacity claims.
"""

from __future__ import annotations

from typing import Dict

from repro.core.base import MemoryController, register_controller


@register_controller
class UncompressedController(MemoryController):
    """The base class already implements identity placement."""

    name = "uncompressed"

    def describe(self) -> Dict[str, object]:
        summary = super().describe()
        summary["compression"] = "none"
        return summary
