"""TMCC: Translation-optimized Memory Compression for Capacity (Section V).

On top of the two-level engine, TMCC adds its two contributions:

1. **Embedded CTEs in compressed PTBs** (Section V-A).  Every page-walker
   PTB fetch is reported via :meth:`note_ptb_fetch`; the controller keeps
   a shadow of each PTB's hardware-compressed encoding and a 64-entry CTE
   Buffer mapping PPN -> (embedded CTE snapshot, owning PTB).  When an LLC
   miss later misses the CTE cache, the buffered snapshot lets the MC
   fetch the data *speculatively in parallel* with the verifying CTE read
   (Figure 11).  A stale snapshot (the page migrated since the PTB last
   embedded it) is detected by the parallel verify, costs one re-access,
   and is repaired lazily (Figure 8c).

2. **Memory-specialized Deflate for ML2** (Section V-B): ML2 hits pay the
   fast ASIC's half-page latency (~140 ns) instead of IBM's (~878 ns);
   these latencies come from the page's own measured
   :class:`~repro.core.compmodel.PageRecord`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.base import (
    PATH_ML2,
    PATH_PARALLEL_MISMATCH,
    PATH_PARALLEL_OK,
    register_controller,
)
from repro.core.config import SystemConfig
from repro.core.pipeline import (
    STAGE_CTE_FETCH,
    STAGE_CTE_REPAIR,
    STAGE_DATA_FETCH,
    STAGE_SPEC_DATA_FETCH,
    PipelineNode,
    Stage,
    parallel,
    serial,
)
from repro.core.twolevel import TwoLevelController
from repro.dram.system import DRAMSystem
from repro.mc.cte import PageCTE
from repro.vm.pte import pte_ppn, pte_present
from repro.vm.ptbcodec import PTBCodec

#: CTE Buffer capacity (Section V-A6: 64 entries, ~1 KB).
CTE_BUFFER_ENTRIES = 64


@register_controller
class TMCCController(TwoLevelController):
    """The paper's design."""

    name = "tmcc"

    def __init__(self, config: SystemConfig, dram: DRAMSystem,
                 seed: int = 0) -> None:
        super().__init__(config, dram)
        self.ptb_codec = PTBCodec()
        #: PTB physical address -> compressed shadow (None: incompressible).
        self._ptb_shadow: Dict[int, Optional[object]] = {}
        #: PTB physical address -> (shadow, ((ppn, cte slot index), ...))
        #: for its present PTEs.  Valid because the page table is static
        #: while a simulation runs and a PTB's shadow object, truncated
        #: PPNs, and capacity never change after ``_shadow_for`` -- only
        #: ``cte_slots`` mutate, and those are re-read on every harvest.
        self._ptb_harvest: Dict[int, tuple] = {}
        #: PPN -> (snapshot, owning PTB address); bounded FIFO (Figure 10).
        #: Plain dict: insertion order is recency order (delete + reinsert
        #: on every touch), the oldest key evicts first.
        self._cte_buffer: Dict[int, Tuple[Optional[tuple], int]] = {}

    # ------------------------------------------------------------------
    # Page-walk side: harvesting embedded CTEs
    # ------------------------------------------------------------------

    def note_ptb_fetch(self, level: int, ptb_address: int,
                       ptes: Optional[List[int]], huge_leaf: bool) -> None:
        """The walker fetched a PTB; buffer its embedded CTEs.

        ``huge_leaf`` marks an L2 PTB whose entries map 2 MiB pages: its
        PTEs cover 4K base pages each, far too many CTEs to embed
        (Section VIII), so TMCC learns nothing from it.
        """
        if ptes is None or huge_leaf:
            return
        harvest = self._ptb_harvest.get(ptb_address)
        if harvest is None:
            shadow = self._shadow_for(ptb_address, ptes)
            ppn_bits = self.ptb_codec.ppn_bits
            pairs = []
            for pte in ptes:
                if not pte_present(pte):
                    continue
                ppn = pte_ppn(pte)
                slot = None
                if shadow is not None:
                    slot = shadow.cte_slot_index(ppn, ppn_bits)
                pairs.append((ppn, slot))
            harvest = self._ptb_harvest[ptb_address] = (shadow, tuple(pairs))
        shadow, pairs = harvest
        slots = shadow.cte_slots if shadow is not None else None
        buffer = self._cte_buffer
        # Inlined _buffer_insert: one pop per insert, exactly as before.
        for ppn, slot in pairs:
            if ppn in buffer:
                del buffer[ppn]  # re-inserting below moves it to MRU
            buffer[ppn] = (slots[slot] if slot is not None else None,
                           ptb_address)
            if len(buffer) > CTE_BUFFER_ENTRIES:
                del buffer[next(iter(buffer))]

    def _shadow_for(self, ptb_address: int, ptes: List[int]):
        if ptb_address in self._ptb_shadow:
            return self._ptb_shadow[ptb_address]
        compressed = self.ptb_codec.compress(ptes)
        if compressed is not None:
            # Freshly compressed PTB: embed the CTEs we currently hold
            # (the L2-compresses-on-walker-fill path of Section V-A4).
            for pte in ptes:
                if not pte_present(pte):
                    continue
                ppn = pte_ppn(pte)
                compressed.set_cte_for_ppn(
                    ppn, self.ptb_codec.ppn_bits, self._snapshot(ppn)
                )
            self.stats.counter("ptbs_compressed").increment()
            table_ppn = ptb_address >> 12
            table_cte = self._cte.get(table_ppn)
            if table_cte is not None:
                block_index = (ptb_address >> 6) & 63
                table_cte.set_block_pair_compressed(block_index, True)
        else:
            self.stats.counter("ptbs_incompressible").increment()
        self._ptb_shadow[ptb_address] = compressed
        return compressed

    def _snapshot(self, ppn: int) -> Optional[tuple]:
        """Current truncated-CTE content for a page, or None if unknown."""
        cte = self._cte.get(ppn)
        if cte is None:
            return None
        return (cte.dram_page, cte.in_ml2, cte.dram_offset)

    def _buffer_insert(self, ppn: int, embedded: Optional[tuple],
                       ptb_address: int) -> None:
        buffer = self._cte_buffer
        if ppn in buffer:
            del buffer[ppn]  # re-inserting below moves it to MRU
        buffer[ppn] = (embedded, ptb_address)
        while len(buffer) > CTE_BUFFER_ENTRIES:
            del buffer[next(iter(buffer))]

    # ------------------------------------------------------------------
    # Miss side: parallel speculative access (Figures 8b/8c, 11)
    # ------------------------------------------------------------------

    def _translate_pipeline(self, ppn: int, cte: PageCTE,
                            block_index: int) -> Tuple[PipelineNode, str]:
        entry = self._cte_buffer.get(ppn)
        if entry is None or entry[0] is None:
            # Uncommon: no embedded CTE available -> serial, like prior work.
            return super()._translate_pipeline(ppn, cte, block_index)

        snapshot, ptb_address = entry
        if snapshot == self._snapshot(ppn):
            # Common case (Figure 8b): the speculative data access races
            # the verifying CTE read; the miss pays only the longer leg.
            pipeline = parallel(
                self._cte_fetch_stage(ppn),
                self._data_pipeline(ppn, cte, block_index),
            )
            return pipeline, PATH_ML2 if cte.in_ml2 else PATH_PARALLEL_OK

        # Mismatch (Figure 8c): the speculative DRAM access is wasted
        # work; the verify detects it, the block is re-fetched from the
        # page's true location, and the PTB's embedded copy is repaired
        # lazily off the critical path.
        def spec_read(start_ns: float) -> float:
            return self._dram_read_ns(
                snapshot[0] * 4096 + block_index * 64, start_ns
            )

        def repair(_start_ns: float) -> float:
            self._repair_embedded(ppn, ptb_address)
            self.stats.counter("embedded_mismatches").increment()
            return 0.0

        pipeline = serial(
            parallel(
                self._cte_fetch_stage(ppn),
                Stage(STAGE_SPEC_DATA_FETCH, spec_read, wasted=True),
            ),
            self._data_pipeline(ppn, cte, block_index),
            Stage(STAGE_CTE_REPAIR, repair, record=False),
        )
        return pipeline, PATH_ML2 if cte.in_ml2 else PATH_PARALLEL_MISMATCH

    def _translate_fast(self, ppn: int, cte: PageCTE, block_index: int,
                        now_ns: float):
        """Fast-path twin of :meth:`_translate_pipeline`.

        Winner/slack bookkeeping replicates ``_Parallel._evaluate``: the
        first maximal branch wins (``max``/``index`` semantics), losing
        branches drop to non-critical, and their hidden completion time
        lands on the branch's last recorded span.
        """
        entry = self._cte_buffer.get(ppn)
        if entry is None or entry[0] is None:
            return super()._translate_fast(ppn, cte, block_index, now_ns)

        snapshot, ptb_address = entry
        in_ml2 = cte.in_ml2
        if snapshot == self._snapshot(ppn):
            cte_lat = self._fetch_cte_fast(ppn, now_ns)
            if in_ml2:
                data_spans, data_dur = self._ml2_fast(ppn, cte, now_ns)
                path = PATH_ML2
            else:
                data_dur = self._dram_read_fast(
                    self._data_address(ppn, block_index), now_ns)
                data_spans = ((STAGE_DATA_FETCH, data_dur, True, False, 0.0),)
                path = PATH_PARALLEL_OK
            if cte_lat >= data_dur:  # ties go to the first branch, like max()
                duration = cte_lat
                slack = duration - data_dur
                spans = [(STAGE_CTE_FETCH, cte_lat, True, False, 0.0)]
                last = len(data_spans) - 1
                for index, (name, lat, _critical, wasted, span_slack) in \
                        enumerate(data_spans):
                    if index == last and slack > 0.0:
                        span_slack += slack
                    spans.append((name, lat, False, wasted, span_slack))
            else:
                duration = data_dur
                slack = duration - cte_lat
                spans = [(STAGE_CTE_FETCH, cte_lat, False, False,
                          slack if slack > 0.0 else 0.0)]
                spans.extend(data_spans)
            return spans, duration, path

        # Mismatch: parallel(cte, wasted spec read) then the real data
        # access, then the lazy repair (record=False, zero latency).
        cte_lat = self._fetch_cte_fast(ppn, now_ns)
        spec_lat = self._dram_read_fast(
            snapshot[0] * 4096 + block_index * 64, now_ns)
        if cte_lat >= spec_lat:
            head_dur = cte_lat
            slack = head_dur - spec_lat
            head = [(STAGE_CTE_FETCH, cte_lat, True, False, 0.0),
                    (STAGE_SPEC_DATA_FETCH, spec_lat, False, True,
                     slack if slack > 0.0 else 0.0)]
        else:
            head_dur = spec_lat
            slack = head_dur - cte_lat
            head = [(STAGE_CTE_FETCH, cte_lat, False, False,
                     slack if slack > 0.0 else 0.0),
                    (STAGE_SPEC_DATA_FETCH, spec_lat, True, True, 0.0)]
        base_ns = now_ns + head_dur
        if in_ml2:
            data_spans, data_dur = self._ml2_fast(ppn, cte, base_ns)
            path = PATH_ML2
        else:
            data_dur = self._dram_read_fast(
                self._data_address(ppn, block_index), base_ns)
            data_spans = ((STAGE_DATA_FETCH, data_dur, True, False, 0.0),)
            path = PATH_PARALLEL_MISMATCH
        head.extend(data_spans)
        self._repair_embedded(ppn, ptb_address)
        self.stats.counter("embedded_mismatches").value += 1
        return head, head_dur + data_dur, path

    def _repair_embedded(self, ppn: int, ptb_address: int) -> None:
        """Piggybacked-response repair (Section V-A3, last paragraph)."""
        shadow = self._ptb_shadow.get(ptb_address)
        fresh = self._snapshot(ppn)
        if shadow is not None:
            shadow.set_cte_for_ppn(ppn, self.ptb_codec.ppn_bits, fresh)
        if ppn in self._cte_buffer:
            self._cte_buffer[ppn] = (fresh, ptb_address)
        self.stats.counter("embedded_repairs").increment()
        self.resilience.count("cte_repairs")

    # ------------------------------------------------------------------
    # Fault intake (repro.sim.faults)
    # ------------------------------------------------------------------

    def inject_stale_cte(self, rng) -> Optional[int]:
        """Corrupt one buffered embedded-CTE snapshot (fault injection).

        Models a PTB whose embedded CTE went stale without the usual
        migration bookkeeping (e.g. lost repair).  Picks a currently-
        consistent buffered snapshot, flips its dram_page, and drops the
        page's CTE-cache block so the next LLC miss takes the speculative
        path -- forcing the verify-mismatch replay + lazy repair
        machinery.  Returns the chosen ppn, or None if nothing was
        eligible.
        """
        candidates = [
            ppn for ppn, (snapshot, _) in self._cte_buffer.items()
            if snapshot is not None and snapshot == self._snapshot(ppn)
        ]
        if not candidates:
            return None
        ppn = rng.choice(candidates)
        snapshot, ptb_address = self._cte_buffer[ppn]
        stale = (snapshot[0] ^ 0x1,) + snapshot[1:]
        self._cte_buffer[ppn] = (stale, ptb_address)
        self.cte_cache.invalidate_page(ppn)
        return ppn

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def describe(self) -> Dict[str, object]:
        summary = super().describe()
        summary.update({
            "cte_buffer_entries": CTE_BUFFER_ENTRIES,
            "cte_buffer_occupancy": len(self._cte_buffer),
            "ptb_shadows": len(self._ptb_shadow),
            "embedded_coverage": self.embedded_coverage,
        })
        return summary

    @property
    def embedded_coverage(self) -> float:
        """Fraction of CTE-cache misses served via embedded CTEs."""
        ok = self.stats.count_of("path_parallel_ok")
        bad = self.stats.count_of("path_parallel_mismatch")
        serial = self.stats.count_of("path_serial_no_cte")
        total = ok + bad + serial
        return (ok + bad) / total if total else 0.0
