"""Per-page compression oracles.

Running the bit-exact Deflate over every page a simulation migrates would
dominate runtime (Python pays ~10 ms per 4 KB page), so each workload gets
an oracle: a *sample* of its pages is pushed through the real codecs
(page-level Deflate with the pipeline timing model, and the block-level
best-of selector), and every simulated page deterministically maps to one
of the measured records.  The simulator therefore sees genuine compressed
sizes and latencies -- including their variance -- at trace-replay speed,
and the Figure 15 benches still run the codecs on full corpora.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

from repro.common.units import PAGE_SIZE
from repro.compression.block import SelectiveBlockCompressor
from repro.compression.deflate import (
    DeflateCodec,
    DeflateConfig,
    DeflateTimingModel,
    IBMDeflateModel,
)


@dataclass(frozen=True)
class PageRecord:
    """Measured compression outcome of one sampled page."""

    #: Page-level Deflate (TMCC ML2) storage cost in bytes.
    deflate_bytes: int
    #: Our ASIC's latency to reach the block an L3 miss wants (ns).
    decompress_half_ns: float
    #: Our ASIC's full-page decompression latency (ns).
    decompress_full_ns: float
    #: Our ASIC's compression latency (ns).
    compress_ns: float
    #: IBM-ASIC latencies for the same page (the OS-inspired baseline).
    ibm_decompress_half_ns: float
    ibm_decompress_full_ns: float
    ibm_compress_ns: float
    #: Block-level (Compresso) compressed size in bytes.
    block_bytes: int
    #: Per-64B-block compressed sizes (bytes), as Compresso's metadata
    #: block records them; sums to ``block_bytes``.
    block_sizes: tuple = ()

    @property
    def deflate_incompressible(self) -> bool:
        """ML1 keeps pages whose Deflate output isn't smaller than 4 KB."""
        return self.deflate_bytes >= PAGE_SIZE

    @property
    def deflate_ratio(self) -> float:
        return PAGE_SIZE / self.deflate_bytes

    @property
    def block_ratio(self) -> float:
        return PAGE_SIZE / self.block_bytes


class PageCompressionModel:
    """vpn -> :class:`PageRecord`, backed by real codec measurements."""

    def __init__(
        self,
        content: Callable[[int], bytes],
        sample_pages: int = 24,
        deflate_config: DeflateConfig = DeflateConfig(),
        timing: DeflateTimingModel = DeflateTimingModel(),
        ibm: IBMDeflateModel = IBMDeflateModel(),
        seed: int = 0,
    ) -> None:
        if sample_pages <= 0:
            raise ValueError("need at least one sample page")
        codec = DeflateCodec(deflate_config)
        blocks = SelectiveBlockCompressor()
        self._records: List[PageRecord] = []
        for index in range(sample_pages):
            page = content(seed * 100_000 + index)
            compressed = codec.compress(page)
            block_sizes = tuple(
                b.size_bytes for b in blocks.compress_page(page)
            )
            self._records.append(
                PageRecord(
                    deflate_bytes=compressed.size_bytes,
                    decompress_half_ns=timing.decompress_latency_ns(
                        compressed, PAGE_SIZE // 2
                    ),
                    decompress_full_ns=timing.decompress_latency_ns(compressed),
                    compress_ns=timing.compress_latency_ns(compressed),
                    ibm_decompress_half_ns=ibm.decompress_latency_ns(
                        PAGE_SIZE, PAGE_SIZE // 2
                    ),
                    ibm_decompress_full_ns=ibm.decompress_latency_ns(PAGE_SIZE),
                    ibm_compress_ns=ibm.compress_latency_ns(PAGE_SIZE),
                    block_bytes=sum(block_sizes),
                    block_sizes=block_sizes,
                )
            )

    def record_for(self, vpn: int) -> PageRecord:
        """Deterministic page -> record assignment (Knuth hash)."""
        return self._records[(vpn * 2_654_435_761) % len(self._records)]

    # ------------------------------------------------------------------
    # Aggregates used for capacity planning (Table IV)
    # ------------------------------------------------------------------

    def mean_deflate_bytes(self) -> float:
        return sum(r.deflate_bytes for r in self._records) / len(self._records)

    def mean_block_bytes(self) -> float:
        return sum(r.block_bytes for r in self._records) / len(self._records)

    def deflate_corpus_ratio(self) -> float:
        return PAGE_SIZE / self.mean_deflate_bytes()

    def block_corpus_ratio(self) -> float:
        return PAGE_SIZE / self.mean_block_bytes()
