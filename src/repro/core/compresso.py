"""Compresso [6]: the state-of-the-art block-level baseline.

Every 4 KB page is compressed block-by-block (best of BDI/BPC/C-Pack/zero)
and repacked into 512 B chunks.  Translation is block-granular: each page
needs a 64 B CTE, cached in a 128 KB CTE cache (Table III), so the cache
reaches only 2K pages.  An LLC miss that misses the CTE cache must fetch
the CTE from DRAM *before* it knows where the data block lives -- the
serialization TMCC exists to remove (Figure 8a).

Repacking on compressibility changes happens in the background; its cost
shows up as extra DRAM writes, not read latency, matching the paper's
treatment.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Sequence

from repro.common.rng import DeterministicRNG
from repro.common.units import PAGE_SIZE
from repro.core.base import (
    MemoryController,
    MissResult,
    PATH_CTE_HIT,
    PATH_SERIAL_NO_CTE,
    register_controller,
)
from repro.core.compmodel import PageCompressionModel
from repro.core.pipeline import (
    STAGE_CTE_FETCH,
    STAGE_DATA_FETCH,
    Stage,
    cond,
    evaluate,
    serial,
)
from repro.core.config import SystemConfig
from repro.dram.system import DRAMSystem
from repro.mc.cte import CTE_SIZE_BLOCKLEVEL, CompressoCTE
from repro.mc.ctecache import CTECache

#: Compresso's repacking granularity.
CHUNK_BYTES = 512


@register_controller
class CompressoController(MemoryController):
    """Block-level hardware memory compression for capacity.

    ``cte_victim_in_llc`` reproduces the design Section III evaluates and
    rejects: CTE blocks evicted from the CTE cache spill into the LLC.
    An LLC hit still pays the ~20 ns distributed-LLC access before the
    data fetch (saving only ~15 ns of the ~35 ns DRAM access), and an LLC
    *miss* discovers that 20 ns late -- so with roughly even hit/miss
    odds the scheme loses, which is why the paper (and our default) keeps
    CTEs out of the LLC.
    """

    name = "compresso"

    #: Distributed NoC LLC access time (Section III cites ~20 ns).
    LLC_ACCESS_NS = 20.0

    def __init__(self, config: SystemConfig, dram: DRAMSystem,
                 seed: int = 0, cte_victim_in_llc: bool = False) -> None:
        super().__init__(config, dram, seed=seed)
        self.cte_cache = CTECache(
            size_bytes=config.compresso_cte_cache_bytes,
            cte_size=CTE_SIZE_BLOCKLEVEL,
            name="compresso_cte",
        )
        self.cte_victim_in_llc = cte_victim_in_llc
        #: Victim CTE blocks resident in the LLC (bounded LRU over block
        #: ids; ~1 MB of the 8 MB LLC ends up holding CTE blocks).
        self._llc_victims: "OrderedDict[int, bool]" = OrderedDict()
        self._llc_victim_capacity = (1 << 20) // 64
        #: ppn -> per-page metadata (chunk list + per-block sizes).
        self._cte: Dict[int, CompressoCTE] = {}
        #: Free 512 B chunk ids; freed chunks are reused first.
        self._chunk_free: List[int] = []
        self._next_chunk = 0
        self._rng = DeterministicRNG(seed ^ 0xC0)

    # ------------------------------------------------------------------
    # Chunk pool
    # ------------------------------------------------------------------

    def _alloc_chunks(self, count: int) -> List[int]:
        chunks = []
        for _ in range(count):
            if self._chunk_free:
                chunks.append(self._chunk_free.pop())
            else:
                chunks.append(self._next_chunk)
                self._next_chunk += 1
        return chunks

    def _free_chunks(self, chunks: List[int]) -> None:
        self._chunk_free.extend(chunks)

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------

    def initialize(
        self,
        data_ppns: Sequence[int],
        hotness_rank: Dict[int, int],
        table_ppns: Sequence[int],
        model: PageCompressionModel,
        dram_budget_bytes: Optional[int] = None,
    ) -> None:
        """Compress and pack every page; Compresso has no budget knob --
        its DRAM usage *is* the outcome (Table IV column B)."""
        blocks_per_page = PAGE_SIZE // 64
        for ppn in table_ppns:
            # Page-table pages: kept uncompressed-equivalent (hot, dirty).
            cte = CompressoCTE(block_sizes=[64] * blocks_per_page)
            cte.chunks = self._alloc_chunks(cte.chunks_needed(CHUNK_BYTES))
            self._cte[ppn] = cte
        for ppn in data_ppns:
            record = model.record_for(ppn)
            sizes = list(record.block_sizes) if record.block_sizes else \
                [record.block_bytes // blocks_per_page] * blocks_per_page
            cte = CompressoCTE(block_sizes=sizes)
            cte.chunks = self._alloc_chunks(cte.chunks_needed(CHUNK_BYTES))
            self._cte[ppn] = cte
        self._cte_table_base = (self._next_chunk + 8) * CHUNK_BYTES

    def _data_address(self, ppn: int, block_index: int) -> int:
        """Block addresses follow the page's repacked chunk layout."""
        cte = self._cte.get(ppn)
        if cte is None:
            return super()._data_address(ppn, block_index)
        location = cte.block_location(block_index, CHUNK_BYTES)
        if location is None:
            return super()._data_address(ppn, block_index)
        chunk, offset = location
        return chunk * CHUNK_BYTES + offset

    # ------------------------------------------------------------------
    # Runtime
    # ------------------------------------------------------------------

    def serve_l3_miss(self, ppn: int, block_index: int, now_ns: float,
                      is_write: bool = False) -> MissResult:
        with self._timed("serve_miss"):
            self.stats.counter("l3_misses").increment()
            cache_hit = self.cte_cache.lookup(ppn)
            # On a CTE-cache miss the metadata fetch (possibly via the LLC
            # victim path) strictly precedes the data fetch -- the Figure
            # 8a serialization TMCC exists to remove.
            pipeline = cond(
                cache_hit,
                self._data_fetch_stage(ppn, block_index),
                serial(
                    Stage(STAGE_CTE_FETCH,
                          lambda start_ns: self._fetch_cte_serial_ns(
                              ppn, start_ns)),
                    self._data_fetch_stage(ppn, block_index),
                ),
            )
            timeline = evaluate(pipeline, now_ns)
            if cache_hit:
                path = PATH_CTE_HIT
            else:
                self._fill_cte_cache(ppn)
                path = PATH_SERIAL_NO_CTE
            return self._finish_miss(timeline, path, False, now_ns, ppn)

    def serve_l3_miss_fast(self, ppn: int, block_index: int, now_ns: float,
                           is_write: bool = False):
        """Zero-observer twin of :meth:`serve_l3_miss` (see base.py)."""
        counter = self._fast_l3_counter
        if counter is None:
            counter = self._fast_l3_counter = self.stats.counter("l3_misses")
        counter.value += 1
        cache = self.cte_cache
        block = ppn // cache.pages_per_block
        lru = cache._lru
        cache_hit = block in lru
        cache_stats = cache.stats
        cache_stats.total += 1
        if cache_hit:
            cache_stats.hits += 1
            lru.move_to_end(block)
            total = self._dram_read_fast(
                self._data_address(ppn, block_index), now_ns)
            spans = ((STAGE_DATA_FETCH, total, True, False, 0.0),)
            path = PATH_CTE_HIT
        else:
            cte_lat = self._fetch_cte_serial_fast(ppn, now_ns)
            data_lat = self._dram_read_fast(
                self._data_address(ppn, block_index), now_ns + cte_lat)
            total = cte_lat + data_lat
            spans = ((STAGE_CTE_FETCH, cte_lat, True, False, 0.0),
                     (STAGE_DATA_FETCH, data_lat, True, False, 0.0))
            self._fill_cte_cache(ppn)
            path = PATH_SERIAL_NO_CTE
        self._finish_fast(path, spans, total)
        return total, path

    def _fetch_cte_serial_fast(self, ppn: int, now_ns: float) -> float:
        """:meth:`_fetch_cte_serial_ns` via the allocation-free DRAM read."""
        stats = self.stats
        counters = self._fast_path_counters
        if self.cte_victim_in_llc:
            block = ppn // self.cte_cache.pages_per_block
            victims = self._llc_victims
            if block in victims:
                victims.move_to_end(block)
                counter = counters.get("cte_llc_hits")
                if counter is None:
                    counter = counters["cte_llc_hits"] = stats.counter(
                        "cte_llc_hits")
                counter.value += 1
                return self.LLC_ACCESS_NS
            counter = counters.get("cte_llc_misses")
            if counter is None:
                counter = counters["cte_llc_misses"] = stats.counter(
                    "cte_llc_misses")
            counter.value += 1
            counter = counters.get("cte_dram_fetches")
            if counter is None:
                counter = counters["cte_dram_fetches"] = stats.counter(
                    "cte_dram_fetches")
            counter.value += 1
            return self.LLC_ACCESS_NS + self._dram_read_fast(
                self._cte_address(ppn, CTE_SIZE_BLOCKLEVEL), now_ns,
                include_noc=False)
        counter = counters.get("cte_dram_fetches")
        if counter is None:
            counter = counters["cte_dram_fetches"] = stats.counter(
                "cte_dram_fetches")
        counter.value += 1
        return self._dram_read_fast(
            self._cte_address(ppn, CTE_SIZE_BLOCKLEVEL), now_ns,
            include_noc=False)

    def _fetch_cte_serial_ns(self, ppn: int, now_ns: float) -> float:
        """Serial CTE fetch, optionally probing the LLC victim copy."""
        block = ppn // self.cte_cache.pages_per_block
        if self.cte_victim_in_llc:
            if block in self._llc_victims:
                self._llc_victims.move_to_end(block)
                self.stats.counter("cte_llc_hits").increment()
                return self.LLC_ACCESS_NS
            # LLC miss discovered ~20 ns late, then DRAM.
            self.stats.counter("cte_llc_misses").increment()
            self.stats.counter("cte_dram_fetches").increment()
            return self.LLC_ACCESS_NS + self._dram_read_ns(
                self._cte_address(ppn, CTE_SIZE_BLOCKLEVEL), now_ns,
                include_noc=False,
            )
        self.stats.counter("cte_dram_fetches").increment()
        return self._dram_read_ns(
            self._cte_address(ppn, CTE_SIZE_BLOCKLEVEL), now_ns,
            include_noc=False,
        )

    def _fill_cte_cache(self, ppn: int) -> None:
        """Fill the CTE cache; spill the victim to the LLC if enabled."""
        victim = self.cte_cache.fill(ppn)
        if victim is not None and self.cte_victim_in_llc:
            victims = self._llc_victims
            victims[victim] = True
            if len(victims) > self._llc_victim_capacity:
                victims.popitem(last=False)

    def serve_writeback(self, ppn: int, block_index: int, now_ns: float) -> None:
        super().serve_writeback(ppn, block_index, now_ns)
        # Writebacks change the written block's compressibility: resample
        # its size from the page's own block-size population.  When the
        # page no longer fits its chunks, Compresso pops a chunk from the
        # free list; when slack appears, background repacking frees one.
        cte = self._cte.get(ppn)
        if cte is None or not self._rng.chance(0.05):
            return
        cte.block_sizes[block_index] = self._rng.choice(cte.block_sizes)
        needed = cte.chunks_needed(CHUNK_BYTES)
        if needed > len(cte.chunks):
            cte.chunks += self._alloc_chunks(needed - len(cte.chunks))
            self.stats.counter("chunk_overflows").increment()
            self.dram.write(self._data_address(ppn, 0), now_ns)
        elif needed < len(cte.chunks):
            self._free_chunks(cte.chunks[needed:])
            del cte.chunks[needed:]
            self.stats.counter("repacks").increment()
            # Background repack rewrites the page's tail.
            self.dram.stream(self._data_address(ppn, 0),
                             needed * CHUNK_BYTES // 64, now_ns,
                             is_write=True)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def describe(self) -> Dict[str, object]:
        summary = super().describe()
        summary.update({
            "cte_cache_bytes": self.cte_cache.size_bytes,
            "cte_size_bytes": CTE_SIZE_BLOCKLEVEL,
            "chunk_bytes": CHUNK_BYTES,
            "chunks_allocated": self._next_chunk,
            "chunks_free": len(self._chunk_free),
            "cte_victim_in_llc": self.cte_victim_in_llc,
        })
        return summary

    def dram_used_bytes(self) -> int:
        """Chunks in use + the 64 B-per-page CTE table (6.25% overhead)."""
        data = sum(len(cte.chunks) for cte in self._cte.values()) * CHUNK_BYTES
        metadata = len(self._cte) * CTE_SIZE_BLOCKLEVEL
        return data + metadata

    @property
    def cte_hit_rate(self) -> float:
        return self.cte_cache.stats.hit_rate

    @property
    def cte_llc_hit_rate(self) -> float:
        """Of CTE-cache misses, the fraction served by the LLC victims."""
        hits = self.stats.count_of("cte_llc_hits")
        misses = self.stats.count_of("cte_llc_misses")
        total = hits + misses
        return hits / total if total else 0.0


@register_controller
class CompressoLLCVictimController(CompressoController):
    """Compresso with the rejected CTEs-in-LLC victim scheme enabled."""

    name = "compresso_llc_victim"

    def __init__(self, config: SystemConfig, dram: DRAMSystem,
                 seed: int = 0) -> None:
        super().__init__(config, dram, seed=seed, cte_victim_in_llc=True)
