"""The bare-bone OS-inspired hardware compression (Section IV).

Exactly the two-level engine with page-level CTEs -- but with neither of
TMCC's fixes: a CTE-cache miss always fetches the CTE from DRAM *before*
the data (Figure 4b), and ML2 pays the latency of IBM's general-purpose
ASIC Deflate (>800 ns to reach a block).  Figure 20 measures TMCC's two
optimizations against this design.
"""

from __future__ import annotations

from typing import Dict

from repro.core.base import register_controller
from repro.core.compmodel import PageRecord
from repro.core.twolevel import TwoLevelController


@register_controller
class OSInspiredController(TwoLevelController):
    """Two-level memory, serial translation, IBM-speed Deflate."""

    name = "osinspired"

    def describe(self) -> Dict[str, object]:
        summary = super().describe()
        summary["ml2_engine"] = "ibm"
        return summary

    def _decompress_half_ns(self, record: PageRecord) -> float:
        return record.ibm_decompress_half_ns

    def _decompress_full_ns(self, record: PageRecord) -> float:
        return record.ibm_decompress_full_ns

    def _compress_ns(self, record: PageRecord) -> float:
        return record.ibm_compress_ns


@register_controller
class OSInspiredFastDeflateController(TwoLevelController):
    """Ablation point: fast Deflate but still serial translation.

    Figure 20 splits TMCC's win into its ML1 part (embedded CTEs) and its
    ML2 part (the memory-specialized Deflate); this controller isolates
    the ML2 part.
    """

    name = "osinspired_fastml2"

    def describe(self) -> Dict[str, object]:
        summary = super().describe()
        summary["ml2_engine"] = "asic"
        return summary
