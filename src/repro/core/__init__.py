"""The paper's contribution and its baselines.

- :mod:`repro.core.config` -- simulated-system configuration (Table III).
- :mod:`repro.core.compmodel` -- per-page compression oracles that put
  real codec measurements behind every simulated page.
- :mod:`repro.core.base` -- the memory-compression-controller interface
  and shared DRAM-layout bookkeeping.
- :mod:`repro.core.pipeline` -- the declarative latency-composition
  algebra (Stage / serial / parallel / cond) every controller's miss
  path is built from, and the per-stage timeline it records.
- :mod:`repro.core.uncompressed` -- no-compression reference (Figure 18).
- :mod:`repro.core.compresso` -- Compresso [6], the state-of-the-art
  block-level hardware memory compression TMCC compares against.
- :mod:`repro.core.twolevel` -- the shared OS-inspired ML1/ML2 engine
  (Section IV-B).
- :mod:`repro.core.osinspired` -- the bare-bone OS-inspired design
  (serial page-level CTEs + IBM-speed Deflate; Figure 20's baseline).
- :mod:`repro.core.tmcc` -- TMCC proper: embedded CTEs in compressed PTBs
  with speculative parallel verification, plus the memory-specialized
  Deflate for ML2 (Section V).
"""

from repro.core.config import SystemConfig
from repro.core.compmodel import PageCompressionModel, PageRecord
from repro.core.pipeline import (
    ServiceTimeline,
    Stage,
    StageAccounting,
    StageSpan,
    cond,
    defer,
    evaluate,
    parallel,
    serial,
)
from repro.core.base import (
    CONTROLLER_REGISTRY,
    MemoryController,
    MissResult,
    available_controllers,
    create_controller,
    register_controller,
)
from repro.core.uncompressed import UncompressedController
from repro.core.compresso import CompressoController, CompressoLLCVictimController
from repro.core.osinspired import (
    OSInspiredController,
    OSInspiredFastDeflateController,
)
from repro.core.twolevel import TwoLevelController
from repro.core.tmcc import TMCCController

__all__ = [
    "SystemConfig",
    "PageCompressionModel",
    "PageRecord",
    "ServiceTimeline",
    "Stage",
    "StageAccounting",
    "StageSpan",
    "cond",
    "defer",
    "evaluate",
    "parallel",
    "serial",
    "MemoryController",
    "MissResult",
    "CONTROLLER_REGISTRY",
    "available_controllers",
    "create_controller",
    "register_controller",
    "UncompressedController",
    "CompressoController",
    "CompressoLLCVictimController",
    "OSInspiredController",
    "OSInspiredFastDeflateController",
    "TwoLevelController",
    "TMCCController",
]
