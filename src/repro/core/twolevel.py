"""The OS-inspired two-level memory engine (Section IV-B).

ML1 holds hot pages uncompressed (one 4 KB chunk each); ML2 holds cold
pages Deflate-compressed in size-class sub-chunks.  A single chunk pool
backs both: ML2's free lists grow by taking chunks from ML1's free list
and dismantle empty super-chunks back into it.

This class implements everything the OS-inspired approach shares --
placement under a DRAM budget, page-level CTEs and their cache, the
recency list, eviction watermarks, and the ML2 access/migration path.
Subclasses differ in (a) how a CTE-cache miss is translated (serial fetch
vs TMCC's embedded-CTE parallel fetch) and (b) which Deflate engine's
latencies ML2 pays (IBM's vs the memory-specialized ASIC).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.errors import ConfigError
from repro.common.rng import DeterministicRNG
from repro.common.units import BLOCK_SIZE, PAGE_SIZE
from repro.core.base import (
    _DATA_FETCH_NS_KEY,
    MemoryController,
    MissResult,
    PATH_CTE_HIT,
    PATH_ML2,
    PATH_SERIAL_NO_CTE,
)
from repro.core.pipeline import (
    STAGE_CTE_FETCH,
    STAGE_DATA_FETCH,
    STAGE_DECOMPRESS,
    STAGE_EMERGENCY_EVICT,
    STAGE_EVICT,
    STAGE_MIGRATE,
    STAGE_MIGRATION_STALL,
    STAGE_ML2_READ,
    PipelineNode,
    Stage,
    cond,
    defer,
    evaluate,
    serial,
)
from repro.core.compmodel import PageCompressionModel, PageRecord
from repro.core.config import SystemConfig
from repro.dram.system import DRAMSystem
from repro.mc.cte import CTE_SIZE_PAGE, PageCTE
from repro.mc.ctecache import CTECache
from repro.mc.freelist import ML1FreeList, ML2FreeLists, SubChunk
from repro.mc.migration import MigrationBuffer
from repro.mc.recency import RecencyList

#: Sub-chunk padding slack when planning the ML1/ML2 split (size-class
#: rounding makes ML2 slightly bigger than the sum of compressed sizes).
_PLAN_SLACK = 1.08


class TwoLevelController(MemoryController):
    """Shared ML1/ML2 machinery; see subclasses for the CTE policies."""

    name = "twolevel"

    def __init__(self, config: SystemConfig, dram: DRAMSystem,
                 seed: int = 0) -> None:
        super().__init__(config, dram, seed=seed)
        self.cte_cache = CTECache(
            size_bytes=config.tmcc_cte_cache_bytes,
            cte_size=CTE_SIZE_PAGE,
            name=f"{self.name}_cte",
        )
        self.ml1_free = ML1FreeList()
        self.ml2_free = ML2FreeLists()
        self.recency = RecencyList(DeterministicRNG(seed ^ 0xEC))
        self.migration = MigrationBuffer()
        self._cte: Dict[int, PageCTE] = {}
        self._subchunk: Dict[int, SubChunk] = {}
        self._model: Optional[PageCompressionModel] = None
        self._pinned: set = set()  # page-table pages never leave ML1
        self._total_pages = 0
        self._budget_chunks = 0

    # ------------------------------------------------------------------
    # ML2 engine selection (overridden by the OS-inspired baseline)
    # ------------------------------------------------------------------

    def _decompress_half_ns(self, record: PageRecord) -> float:
        return record.decompress_half_ns

    def _decompress_full_ns(self, record: PageRecord) -> float:
        return record.decompress_full_ns

    def _compress_ns(self, record: PageRecord) -> float:
        return record.compress_ns

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------

    def initialize(
        self,
        data_ppns: Sequence[int],
        hotness_rank: Dict[int, int],
        table_ppns: Sequence[int],
        model: PageCompressionModel,
        dram_budget_bytes: Optional[int] = None,
    ) -> None:
        """Split pages across ML1/ML2 to fit ``dram_budget_bytes``.

        Models the paper's warm-up equilibrium: the hottest pages that fit
        live in ML1, everything colder sits compressed in ML2.  With no
        budget, everything is ML1 (no memory is being saved).
        """
        self._model = model
        self._total_pages = len(data_ppns) + len(table_ppns)
        footprint = self._total_pages * PAGE_SIZE
        metadata = self._total_pages * (CTE_SIZE_PAGE + RecencyList.ELEMENT_BYTES)
        if dram_budget_bytes is None:
            # No budget: everything fits in ML1 (no memory being saved).
            dram_budget_bytes = (footprint + metadata
                                 + (self.config.ml1_low_watermark + 1) * PAGE_SIZE)

        budget_chunks = (dram_budget_bytes - metadata) // PAGE_SIZE
        self._budget_chunks = budget_chunks

        ordered = sorted(data_ppns, key=lambda p: hotness_rank.get(p, 1 << 30))
        must_ml1 = [p for p in table_ppns]
        compressible: List[int] = []
        for ppn in ordered:
            if model.record_for(ppn).deflate_incompressible:
                must_ml1.append(ppn)
            else:
                compressible.append(ppn)

        # Keep a free-chunk reserve, scaled down for small simulations.
        reserve = min(self.config.ml1_low_watermark, max(2, budget_chunks // 8))
        available = budget_chunks - len(must_ml1) - reserve
        if available < 0:
            raise ConfigError(
                f"DRAM budget {dram_budget_bytes} cannot hold even the "
                f"{len(must_ml1)} uncompressible/pinned pages"
            )
        ml1_count = self._plan_split(compressible, available)

        # Build the chunk pool and place pages.
        self.ml1_free.push_many(range(budget_chunks))
        for ppn in must_ml1 + compressible[:ml1_count]:
            chunk = self.ml1_free.pop()
            self._dram_page[ppn] = chunk
            self._cte[ppn] = PageCTE(dram_page=chunk, in_ml2=False)
        for ppn in compressible[ml1_count:]:
            self._place_in_ml2(ppn)
        self._pinned = set(table_ppns)

        # Recency list: coldest pushed first so the hottest end up at MRU.
        for ppn in reversed(compressible[:ml1_count]):
            self.recency.push_hot(ppn)
        self._cte_table_base = budget_chunks * PAGE_SIZE

    def _plan_split(self, compressible: List[int], available_chunks: int) -> int:
        """Largest hot prefix kept in ML1 such that everything fits."""
        if self._model is None:
            raise RuntimeError("initialize() sets the model first")
        sizes = [
            self.ml2_free.class_for(self._model.record_for(p).deflate_bytes)
            for p in compressible
        ]
        suffix = [0] * (len(sizes) + 1)
        for i in range(len(sizes) - 1, -1, -1):
            suffix[i] = suffix[i + 1] + sizes[i]

        def fits(ml1_count: int) -> bool:
            ml2_chunks = -(-int(suffix[ml1_count] * _PLAN_SLACK) // PAGE_SIZE)
            return ml1_count + ml2_chunks <= available_chunks

        if not fits(0):
            raise ConfigError(
                "DRAM budget too small even with full compression"
            )
        low, high = 0, len(sizes)
        while low < high:
            mid = (low + high + 1) // 2
            if fits(mid):
                low = mid
            else:
                high = mid - 1
        return low

    def _place_in_ml2(self, ppn: int) -> bool:
        record = self._model.record_for(ppn)
        subchunk = self.ml2_free.alloc(record.deflate_bytes, self.ml1_free)
        if subchunk is None:
            return False
        self._subchunk[ppn] = subchunk
        base_chunk = subchunk.superchunk.chunk_ids[0]
        self._dram_page[ppn] = base_chunk
        self._cte[ppn] = PageCTE(
            dram_page=base_chunk,
            dram_offset=subchunk.slot * subchunk.size,
            in_ml2=True,
            compressed_size=record.deflate_bytes,
        )
        return True

    # ------------------------------------------------------------------
    # Runtime: LLC misses
    # ------------------------------------------------------------------

    def serve_l3_miss(self, ppn: int, block_index: int, now_ns: float,
                      is_write: bool = False) -> MissResult:
        with self._timed("serve_miss"):
            return self._serve_l3_miss(ppn, block_index, now_ns, is_write)

    def _serve_l3_miss(self, ppn: int, block_index: int, now_ns: float,
                       is_write: bool) -> MissResult:
        self.stats.counter("l3_misses").increment()
        cte = self._cte.get(ppn)
        if cte is None:  # page unknown to the controller (e.g. I/O space)
            timeline = evaluate(self._data_fetch_stage(ppn, block_index), now_ns)
            self.stats.histogram("miss_latency_ns").record(timeline.total_ns)
            self._record_stages(timeline, PATH_CTE_HIT, ppn)
            return MissResult(timeline.total_ns, PATH_CTE_HIT,
                              timeline=timeline)

        cache_hit = self.cte_cache.lookup(ppn)
        in_ml2 = cte.in_ml2
        if cache_hit:
            pipeline = self._data_pipeline(ppn, cte, block_index)
            path = PATH_ML2 if in_ml2 else PATH_CTE_HIT
        else:
            pipeline, path = self._translate_pipeline(ppn, cte, block_index)
        timeline = evaluate(pipeline, now_ns)
        if not cache_hit:
            self.cte_cache.fill(ppn)

        if not cte.in_ml2 and not cte.is_incompressible:
            self.recency.on_access(ppn)
        self._record_path(path, now_ns, timeline.total_ns, ppn)
        self._record_stages(timeline, path, ppn)
        self.stats.histogram("miss_latency_ns").record(timeline.total_ns)
        return MissResult(timeline.total_ns, path, in_ml2=in_ml2,
                          timeline=timeline)

    def _translate_pipeline(self, ppn: int, cte: PageCTE,
                            block_index: int) -> Tuple[PipelineNode, str]:
        """CTE-cache miss: the baseline fetches the CTE *serially*
        (Figure 8a) -- the data access cannot start before the CTE
        arrives.  TMCC overrides this with the parallel speculative
        pipeline."""
        pipeline = serial(
            self._cte_fetch_stage(ppn),
            self._data_pipeline(ppn, cte, block_index),
        )
        return pipeline, PATH_ML2 if cte.in_ml2 else PATH_SERIAL_NO_CTE

    def _cte_fetch_stage(self, ppn: int) -> Stage:
        return Stage(STAGE_CTE_FETCH,
                     lambda start_ns: self._fetch_cte_ns(ppn, start_ns))

    def _fetch_cte_ns(self, ppn: int, now_ns: float) -> float:
        self.stats.counter("cte_dram_fetches").increment()
        return self._dram_read_ns(
            self._cte_address(ppn, CTE_SIZE_PAGE), now_ns, include_noc=False
        )

    def _data_pipeline(self, ppn: int, cte: PageCTE,
                       block_index: int) -> PipelineNode:
        """Fetch the block: one DRAM read in ML1, or the ML2 decompress +
        migrate pipeline.  The ML2 side is deferred because its stage
        costs close over the sub-pipeline's own start time (the
        migration-buffer reservation is made at arrival)."""
        return cond(
            cte.in_ml2,
            defer(lambda start_ns: self._ml2_pipeline(ppn, cte, start_ns)),
            self._data_fetch_stage(ppn, block_index),
        )

    # ------------------------------------------------------------------
    # Zero-observer fast path (mirrors _serve_l3_miss; see base.py)
    # ------------------------------------------------------------------

    def serve_l3_miss_fast(self, ppn: int, block_index: int, now_ns: float,
                           is_write: bool = False):
        counter = self._fast_l3_counter
        if counter is None:
            counter = self._fast_l3_counter = self.stats.counter("l3_misses")
        counter.value += 1
        cte = self._cte.get(ppn)
        if cte is None:  # page unknown to the controller (e.g. I/O space)
            latency = self._dram_read_fast(
                self._data_address(ppn, block_index), now_ns)
            self.stats.histogram("miss_latency_ns").samples.append(latency)
            accounting = self.stage_accounting
            accounting.record_span(PATH_CTE_HIT, STAGE_DATA_FETCH, latency,
                                   True, False, 0.0)
            accounting.record_total(PATH_CTE_HIT, latency)
            self.stage_stats.histogram(
                _DATA_FETCH_NS_KEY).samples.append(latency)
            return latency, PATH_CTE_HIT

        cache = self.cte_cache
        block = ppn // cache.pages_per_block
        lru = cache._lru
        cache_hit = block in lru
        cache_stats = cache.stats
        cache_stats.total += 1
        if cache_hit:
            cache_stats.hits += 1
            lru.move_to_end(block)
            if cte.in_ml2:
                spans, total = self._ml2_fast(ppn, cte, now_ns)
                path = PATH_ML2
            else:
                total = self._dram_read_fast(
                    self._data_address(ppn, block_index), now_ns)
                spans = ((STAGE_DATA_FETCH, total, True, False, 0.0),)
                path = PATH_CTE_HIT
        else:
            spans, total, path = self._translate_fast(ppn, cte, block_index,
                                                      now_ns)
            # cte_cache.fill(), inlined; re-check presence because the
            # eviction pump may have invalidated neighbours of ``block``
            # during the pipeline side effects above.
            if block in lru:
                lru.move_to_end(block)
            else:
                if len(lru) >= cache.capacity_blocks:
                    lru.pop_lru()
                lru.insert_mru(block)

        if not cte.in_ml2 and not cte.is_incompressible:
            self.recency.on_access(ppn)
        self._finish_fast(path, spans, total)
        return total, path

    def _translate_fast(self, ppn: int, cte: PageCTE, block_index: int,
                        now_ns: float):
        """Serial CTE fetch then data; returns ``(spans, total_ns, path)``."""
        if cte.in_ml2:
            cte_lat = self._fetch_cte_fast(ppn, now_ns)
            ml2_spans, ml2_total = self._ml2_fast(ppn, cte, now_ns + cte_lat)
            spans = ((STAGE_CTE_FETCH, cte_lat, True, False, 0.0),) + ml2_spans
            return spans, cte_lat + ml2_total, PATH_ML2
        cte_lat = self._fetch_cte_fast(ppn, now_ns)
        data_lat = self._dram_read_fast(
            self._data_address(ppn, block_index), now_ns + cte_lat)
        spans = ((STAGE_CTE_FETCH, cte_lat, True, False, 0.0),
                 (STAGE_DATA_FETCH, data_lat, True, False, 0.0))
        return spans, cte_lat + data_lat, PATH_SERIAL_NO_CTE

    def _fetch_cte_fast(self, ppn: int, now_ns: float) -> float:
        counters = self._fast_path_counters
        counter = counters.get("cte_dram_fetches")
        if counter is None:
            counter = counters["cte_dram_fetches"] = self.stats.counter(
                "cte_dram_fetches")
        counter.value += 1
        return self._dram_read_fast(
            self._cte_address(ppn, CTE_SIZE_PAGE), now_ns, include_noc=False)

    def _ml2_fast(self, ppn: int, cte: PageCTE, start_ns: float):
        """ML2 service without the pipeline graph; ``(spans, total_ns)``.

        Side-effect order matches :meth:`_ml2_pipeline` evaluation: page
        stream reserved with the first read, migration-buffer entry
        claimed at the access's arrival time, migrate, then the eviction
        pump.  The ``migrate`` stage is ``record=False`` in the slow
        path, so it contributes no span here either.
        """
        record = self._model.record_for(ppn)
        self.stats.counter("ml2_accesses").value += 1
        compressed_blocks = -(-cte.compressed_size // BLOCK_SIZE)
        decompress_ns = self._decompress_half_ns(record)
        migration_ns = self._decompress_full_ns(record) + 64 * \
            self.dram.config.timing.burst_ns
        base_address = self._data_address(ppn, 0)
        first_read = self._dram_read_fast(base_address, start_ns)
        self.dram.stream(base_address, compressed_blocks - 1, start_ns)
        stall_ns = self.migration.reserve(start_ns, migration_ns).stall_ns
        total = first_read + decompress_ns + stall_ns
        self._migrate_to_ml1(ppn, cte, start_ns + total)
        eviction_ns = self._maybe_evict(start_ns + total)
        if self.ml1_free.count < self.config.ml1_critical_watermark:
            self.stats.counter("priority_flips").value += 1
            evict_lat = eviction_ns
        else:
            evict_lat = 0.0
        spans = (
            (STAGE_ML2_READ, first_read, True, False, 0.0),
            (STAGE_DECOMPRESS, decompress_ns, True, False, 0.0),
            (STAGE_MIGRATION_STALL, stall_ns, True, False, 0.0),
            (STAGE_EVICT, evict_lat, True, False, 0.0),
        )
        return spans, total + evict_lat

    # ------------------------------------------------------------------
    # ML2 access: decompress + background migration to ML1
    # ------------------------------------------------------------------

    def _ml2_pipeline(self, ppn: int, cte: PageCTE,
                      now_ns: float) -> PipelineNode:
        """The ML2 service pipeline, anchored at ``now_ns``:

        ml2_read -> decompress -> migration_stall -> [migrate] -> evict

        The MC replies as soon as the needed block decompresses
        (half-page latency); the full-page migration drains in the
        background through the 8-entry buffer, whose occupancy is
        reserved at the access's *arrival* time.  Eviction normally runs
        behind demand accesses and contributes zero foreground latency;
        under the Section VI priority flip (free list below the critical
        watermark) the demand access pays for it.
        """
        record = self._model.record_for(ppn)
        self.stats.counter("ml2_accesses").increment()
        compressed_blocks = -(-cte.compressed_size // BLOCK_SIZE)

        def ml2_read(start_ns: float) -> float:
            first_read = self._dram_read_ns(
                self._data_address(ppn, 0), start_ns, include_noc=True
            )
            self.dram.stream(self._data_address(ppn, 0),
                             compressed_blocks - 1, start_ns)
            return first_read

        migration_ns = self._decompress_full_ns(record) + 64 * \
            self.dram.config.timing.burst_ns

        def migration_stall(_start_ns: float) -> float:
            # The buffer entry is claimed when the access arrives, not
            # when decompression finishes.
            return self.migration.reserve(now_ns, migration_ns).stall_ns

        def migrate(start_ns: float) -> float:
            self._migrate_to_ml1(ppn, cte, start_ns)
            return 0.0

        def evict(start_ns: float) -> float:
            eviction_ns = self._maybe_evict(start_ns)
            if self.ml1_free.count < self.config.ml1_critical_watermark:
                self.stats.counter("priority_flips").increment()
                return eviction_ns
            return 0.0

        stages = [
            Stage(STAGE_ML2_READ, ml2_read),
            Stage(STAGE_DECOMPRESS, self._decompress_half_ns(record)),
            Stage(STAGE_MIGRATION_STALL, migration_stall),
            Stage(STAGE_MIGRATE, migrate, record=False),
            Stage(STAGE_EVICT, evict),
        ]
        if self.resilience.enabled:
            stages.append(Stage(STAGE_EMERGENCY_EVICT, self._emergency_evict))
        return serial(*stages)

    def _emergency_evict(self, start_ns: float) -> float:
        """Capacity-pressure watchdog (resilience-enabled runs only).

        When the ordinary eviction pump leaves the ML1 free list empty --
        e.g. under an injected free-space-exhaustion fault -- the pump
        wedged state that used to persist silently is converted into a
        modeled emergency migration: force one eviction in the demand
        access's foreground and account it under ``resilience.*``.
        """
        if self.ml1_free.count > 0:
            return 0.0
        resilience = self.resilience
        resilience.count("emergency_evictions")
        foreground_ns = self._maybe_evict(start_ns, force_one=True)
        if self.ml1_free.count == 0:
            # Even the emergency pass found nothing to evict (everything
            # pinned/incompressible): the controller keeps serving from
            # ML2 (decompress-on-access) instead of raising.
            resilience.count("emergency_eviction_starved")
        return foreground_ns

    def _migrate_to_ml1(self, ppn: int, cte: PageCTE, now_ns: float) -> None:
        chunk = self.ml1_free.pop()
        if chunk is None:
            self._maybe_evict(now_ns, force_one=True)
            chunk = self.ml1_free.pop()
            if chunk is None:
                # Truly wedged: leave the page in ML2 (decompress-on-access).
                self.stats.counter("migration_failed").increment()
                return
        subchunk = self._subchunk.pop(ppn, None)
        if subchunk is not None:
            self.ml2_free.free(subchunk, self.ml1_free)
        self._dram_page[ppn] = chunk
        cte.dram_page = chunk
        cte.dram_offset = 0
        cte.in_ml2 = False
        cte.compressed_size = 0
        self.dram.stream(chunk * PAGE_SIZE, 64, now_ns, is_write=True)
        self.recency.push_hot(ppn)
        self.stats.counter("ml2_to_ml1_migrations").increment()
        if self._probe is not None:
            self._probe.emit("migration", now_ns, direction="ml2_to_ml1",
                             ppn=ppn)

    # ------------------------------------------------------------------
    # Eviction pump (ML1 -> ML2)
    # ------------------------------------------------------------------

    def _maybe_evict(self, now_ns: float, force_one: bool = False) -> float:
        """Run the eviction pump; returns the compression time spent.

        The return value is the foreground cost a caller pays when the
        Section VI priority flip is in effect (free list below the
        critical watermark); under normal priority it is ignored.
        """
        target = self.config.ml1_low_watermark
        foreground_ns = 0.0
        evicted = 0
        guard = 0
        while (self.ml1_free.count < target or (force_one and evicted == 0)):
            guard += 1
            if guard > 128:
                break
            victim = self.recency.evict_coldest()
            if victim is None:
                self.stats.counter("eviction_starved").increment()
                break
            cte = self._cte.get(victim)
            if cte is None or cte.in_ml2 or victim in self._pinned:
                continue
            record = self._model.record_for(victim)
            resilience = self.resilience
            forced_incompressible = False
            if resilience.enabled and resilience.incompressible_burst > 0:
                # Injected burst: the victim's fresh contents no longer
                # compress (e.g. newly encrypted pages).
                resilience.incompressible_burst -= 1
                resilience.count("incompressible_forced")
                forced_incompressible = True
            if record.deflate_incompressible or forced_incompressible:
                # Retain in ML1, off the recency list (Section IV-B).
                cte.is_incompressible = True
                self.stats.counter("incompressible_retained").increment()
                if forced_incompressible:
                    resilience.count("overflow_uncompressed")
                continue
            old_chunk = self._dram_page[victim]
            self.ml1_free.push(old_chunk)
            if not self._place_in_ml2(victim):
                # Could not carve a sub-chunk; undo the free-list push.
                popped = self.ml1_free.pop()
                self._dram_page[victim] = popped
                self._cte[victim] = PageCTE(dram_page=popped, in_ml2=False)
                self.stats.counter("eviction_failed").increment()
                if resilience.enabled:
                    # Overflow-to-uncompressed: the victim stays resident
                    # uncompressed (off the recency list, like Compresso's
                    # overflow region) and the pump keeps draining other
                    # candidates instead of giving up mid-pressure.
                    self._cte[victim].is_incompressible = True
                    resilience.count("overflow_uncompressed")
                    continue
                self.recency.push_hot(victim)
                break
            # Compressed page streams out in the background.
            compressed_blocks = -(-record.deflate_bytes // BLOCK_SIZE)
            self.dram.stream(self._dram_page[victim] * PAGE_SIZE,
                             compressed_blocks, now_ns, is_write=True)
            self.migration.acquire(now_ns, self._compress_ns(record))
            foreground_ns += self._compress_ns(record)
            self.cte_cache.invalidate_page(victim)
            self.stats.counter("ml1_to_ml2_evictions").increment()
            if self._probe is not None:
                self._probe.emit("migration", now_ns, direction="ml1_to_ml2",
                                 ppn=victim)
            evicted += 1
        return foreground_ns

    # ------------------------------------------------------------------
    # Writebacks
    # ------------------------------------------------------------------

    def serve_writeback(self, ppn: int, block_index: int, now_ns: float) -> None:
        self.dram.write(self._data_address(ppn, block_index), now_ns)
        self.stats.counter("writebacks").increment()
        cte = self._cte.get(ppn)
        if cte is not None and cte.is_incompressible and not cte.in_ml2:
            # Writebacks may change compressibility; 1% re-add (Section IV-B).
            if self.recency.maybe_readd_after_writeback(ppn):
                cte.is_incompressible = False

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def describe(self) -> Dict[str, object]:
        summary = super().describe()
        summary.update({
            "ml1_pages": self.ml1_page_count,
            "ml2_pages": self.ml2_page_count,
            "budget_chunks": self._budget_chunks,
            "ml1_free_chunks": self.ml1_free.count,
            "cte_cache_bytes": self.cte_cache.size_bytes,
            "ml1_low_watermark": self.config.ml1_low_watermark,
            "ml1_critical_watermark": self.config.ml1_critical_watermark,
        })
        return summary

    def dram_used_bytes(self) -> int:
        """Chunks in use (ML1 pages + ML2 super-chunks) + metadata."""
        used_chunks = self._budget_chunks - self.ml1_free.count
        metadata = self._total_pages * CTE_SIZE_PAGE + self.recency.overhead_bytes()
        return used_chunks * PAGE_SIZE + metadata

    @property
    def ml2_page_count(self) -> int:
        return sum(1 for cte in self._cte.values() if cte.in_ml2)

    @property
    def ml1_page_count(self) -> int:
        return sum(1 for cte in self._cte.values() if not cte.in_ml2)

    @property
    def cte_hit_rate(self) -> float:
        return self.cte_cache.stats.hit_rate

    def ml2_access_rate(self) -> float:
        """ML2 accesses per LLC miss (Figure 21's metric)."""
        misses = self.stats.count_of("l3_misses")
        if not misses:
            return 0.0
        return self.stats.count_of("ml2_accesses") / misses
