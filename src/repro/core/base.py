"""Controller interface and shared DRAM-layout bookkeeping.

A memory-compression controller owns everything below the LLC: the CTE
table in DRAM, the CTE cache, data placement, and migrations.  The
simulator calls it for every LLC miss and dirty writeback, and (for TMCC)
notifies it of page-walker PTB fetches so it can harvest embedded CTEs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.common.registry import Registry
from repro.common.stats import StatGroup
from repro.common.units import BLOCK_SIZE, PAGE_SIZE
from repro.core.compmodel import PageCompressionModel
from repro.core.config import SystemConfig
from repro.core.pipeline import (
    STAGE_DATA_FETCH,
    ServiceTimeline,
    Stage,
    StageAccounting,
    StageTotals,
    evaluate,
)
from repro.core.resilience import ResilienceState
from repro.dram.system import DRAMSystem

#: Access-path labels (Figure 8 timelines / Figure 19 breakdown).
PATH_CTE_HIT = "cte_hit"
PATH_PARALLEL_OK = "parallel_ok"
PATH_PARALLEL_MISMATCH = "parallel_mismatch"
PATH_SERIAL_NO_CTE = "serial_no_cte"
PATH_ML2 = "ml2"

#: All access-path labels, in Figure 19's reporting order.
ACCESS_PATHS = (PATH_CTE_HIT, PATH_PARALLEL_OK, PATH_PARALLEL_MISMATCH,
                PATH_SERIAL_NO_CTE, PATH_ML2)

#: Pre-interned stat keys for the zero-observer fast path: the hot loop
#: must not rebuild ``path_<p>`` / ``<stage>.ns`` strings per miss.
_PATH_COUNTER_KEY = {path: f"path_{path}" for path in ACCESS_PATHS}
_STAGE_KEYS: Dict[str, tuple] = {}
_DATA_FETCH_NS_KEY = f"{STAGE_DATA_FETCH}.ns"

#: The memory-controller registry.  Controller classes self-register with
#: ``@CONTROLLER_REGISTRY.register`` (the key is the class's ``name``);
#: simulators, benchmarks, and the CLI instantiate by name.
CONTROLLER_REGISTRY: Registry = Registry("controller")

register_controller = CONTROLLER_REGISTRY.register


def available_controllers() -> list:
    """Registered controller names, importing the built-ins first."""
    from repro import core  # noqa: F401  (imports register the built-ins)

    return CONTROLLER_REGISTRY.names()


def create_controller(name: str, config: SystemConfig, dram: DRAMSystem,
                      seed: int = 0) -> "MemoryController":
    """Instantiate a registered controller by name."""
    from repro import core  # noqa: F401  (imports register the built-ins)

    return CONTROLLER_REGISTRY.create(name, config, dram, seed=seed)


@dataclass(slots=True)
class MissResult:
    """Outcome of one LLC-miss service."""

    latency_ns: float
    path: str
    in_ml2: bool = False
    #: The evaluated access pipeline: start/end of every stage (CTE
    #: fetch, data fetch, decompress, ...).  ``latency_ns`` equals
    #: ``timeline.total_ns``; the field carries the decomposition for
    #: Figure 8/18-style consumers.
    timeline: Optional[ServiceTimeline] = None


class MemoryController:
    """Base class: identity placement, no compression, no translation."""

    name = "base"

    def __init__(self, config: SystemConfig, dram: DRAMSystem,
                 seed: int = 0) -> None:
        self.config = config
        self.dram = dram
        self.seed = seed
        self.stats = StatGroup(self.name)
        #: Per-stage latency statistics (``controller.stage.<name>.ns``
        #: histograms), fed by every evaluated access pipeline.
        self.stage_stats = StatGroup(f"{self.name}.stage")
        #: Per-path aggregation of stage timings for ``--breakdown`` and
        #: the ``controller.breakdown.*`` metric namespace.
        self.stage_accounting = StageAccounting()
        #: Instrumentation handle; harmless no-op bus until a context
        #: attaches its own via :meth:`attach_instrumentation`.
        self._probe = None
        #: Pressure-resilience switches and ``resilience.*`` counters.
        #: Disabled by default: no-fault runs stay bit-identical to a
        #: build without the resilience layer.
        self.resilience = ResilienceState()
        #: ppn -> nominal DRAM page for address formation.
        self._dram_page: Dict[int, int] = {}
        self._cte_table_base = 0  # set at initialize()
        #: Fast-path stat sinks, bound lazily on first use so stat keys
        #: are still created in the same order as the slow path (lazy
        #: creation is observable in ``as_dict``).  Counters/histograms
        #: reset in place (identity survives ``_reset_stats``), so the
        #: bound objects and sample lists stay valid across the warm-up
        #: boundary.
        self._fast_path_counters: Dict[str, object] = {}
        self._fast_hist_samples: Dict[str, list] = {}
        self._fast_l3_counter = None
        self._fast_miss_samples: Optional[list] = None

    def attach_instrumentation(self, probe) -> None:
        """Adopt a context-provided :class:`~repro.sim.instrument.Probe`.

        The probe shares this controller's :class:`StatGroup`, so counters
        recorded either way agree; the bus gains the controller's trace
        events (access paths, migrations).
        """
        self._probe = probe

    def _timed(self, section: str):
        """Host-profiling guard: ``with self._timed("serve_miss"): ...``.

        Free unless a probe with an armed profiler is attached (the
        shared no-op timer is returned otherwise), so the hot path pays
        nothing on default runs.
        """
        probe = self._probe
        if probe is None:
            from repro.sim.profile import NULL_TIMER

            return NULL_TIMER
        return probe.timed(section)

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------

    def initialize(
        self,
        data_ppns: Sequence[int],
        hotness_rank: Dict[int, int],
        table_ppns: Sequence[int],
        model: PageCompressionModel,
        dram_budget_bytes: Optional[int] = None,
    ) -> None:
        """Place all pages.  ``hotness_rank[ppn]`` is 0 for the hottest.

        The base class maps every page 1:1 into DRAM (no compression).
        """
        for index, ppn in enumerate(list(table_ppns) + list(data_ppns)):
            self._dram_page[ppn] = index
        self._cte_table_base = len(self._dram_page) * PAGE_SIZE

    # ------------------------------------------------------------------
    # Address helpers
    # ------------------------------------------------------------------

    def _data_address(self, ppn: int, block_index: int) -> int:
        dram_page = self._dram_page.get(ppn, ppn)
        return dram_page * PAGE_SIZE + block_index * BLOCK_SIZE

    def _cte_address(self, ppn: int, cte_size: int) -> int:
        return self._cte_table_base + ppn * cte_size

    def _dram_read_ns(self, address: int, now_ns: float,
                      include_noc: bool = True) -> float:
        """One 64 B DRAM read; CTE reads skip the LLC<->MC NoC leg.

        With resilience enabled and a transient DRAM error pending
        (:mod:`repro.sim.faults`), the read is re-issued with bounded
        retries -- each retry is a real DRAM access whose latency the
        miss pays -- instead of silently returning corrupt data.
        """
        result = self.dram.read(address, now_ns)
        latency = result.latency_ns
        resilience = self.resilience
        if resilience.enabled and resilience.pending_dram_errors:
            retries = 0
            while (resilience.pending_dram_errors
                   and retries < resilience.max_dram_retries):
                resilience.pending_dram_errors -= 1
                retries += 1
                retry = self.dram.read(address, now_ns + latency)
                latency += retry.latency_ns
            resilience.count("dram_read_errors", retries)
            resilience.count("dram_retries", retries)
            if resilience.pending_dram_errors:
                # Retry budget exhausted: model the ECC-correction
                # fallback instead of looping forever.
                resilience.pending_dram_errors = 0
                resilience.count("dram_retry_exhausted")
        if include_noc:
            return latency
        return latency - self.dram.config.timing.noc_ns

    # ------------------------------------------------------------------
    # Runtime interface
    # ------------------------------------------------------------------

    def serve_l3_miss(self, ppn: int, block_index: int, now_ns: float,
                      is_write: bool = False) -> MissResult:
        """Serve an LLC miss for block ``block_index`` of page ``ppn``."""
        with self._timed("serve_miss"):
            timeline = evaluate(self._data_fetch_stage(ppn, block_index),
                                now_ns)
            self.stats.counter("l3_misses").increment()
            self.stats.histogram("miss_latency_ns").record(timeline.total_ns)
            self._record_stages(timeline, PATH_CTE_HIT)
            return MissResult(timeline.total_ns, PATH_CTE_HIT,
                              timeline=timeline)

    def _data_fetch_stage(self, ppn: int, block_index: int) -> Stage:
        """The plain one-DRAM-read data stage every controller shares."""
        return Stage(
            STAGE_DATA_FETCH,
            lambda start_ns: self._dram_read_ns(
                self._data_address(ppn, block_index), start_ns
            ),
        )

    def serve_writeback(self, ppn: int, block_index: int, now_ns: float) -> None:
        """Absorb a dirty LLC writeback (posted; no read-path latency)."""
        self.dram.write(self._data_address(ppn, block_index), now_ns)
        self.stats.counter("writebacks").increment()

    def note_ptb_fetch(self, level: int, ptb_address: int,
                       ptes: Optional[List[int]], huge_leaf: bool) -> None:
        """Page-walker fetched a PTB; TMCC overrides this to harvest CTEs."""

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def describe(self) -> Dict[str, object]:
        """The controller's configuration, for run reports.

        Flat, JSON-friendly, and deterministic: ``repro report`` renders
        it as the configuration section, and ``--emit-json`` documents
        carry it under ``run_config.controller``.  Subclasses extend the
        base dict with their own structures (CTE caches, ML1/ML2 split,
        CTE buffer).
        """
        return {
            "name": self.name,
            "pages": len(self._dram_page),
        }

    def dram_used_bytes(self) -> int:
        """DRAM consumed by data + translation metadata."""
        return len(self._dram_page) * PAGE_SIZE

    @property
    def average_miss_latency_ns(self) -> float:
        return self.stats.histogram("miss_latency_ns").mean

    def path_fractions(self) -> Dict[str, float]:
        """Figure 19: how ML1 reads were served, as fractions."""
        counts = {p: self.stats.count_of(f"path_{p}") for p in ACCESS_PATHS}
        total = sum(counts.values())
        if not total:
            return {p: 0.0 for p in ACCESS_PATHS}
        return {p: c / total for p, c in counts.items()}

    def _record_path(self, path: str, now_ns: float = 0.0,
                     latency_ns: float = 0.0, ppn: int = -1) -> None:
        self.stats.counter(f"path_{path}").increment()
        if self._probe is not None:
            self._probe.emit("access_path", now_ns, path=path,
                             latency_ns=latency_ns, ppn=ppn)

    def _record_stages(self, timeline: ServiceTimeline, path: str,
                       ppn: int = -1) -> None:
        """Feed one evaluated pipeline into the stage-metric surface.

        Every span lands in ``controller.stage.<name>.ns``; wasted
        speculative work and parallel slack get their own histograms so
        the Figure 8 timelines can separate paid, discarded, and hidden
        time.  With a trace subscriber attached, each span also becomes a
        ``controller.stage`` event.
        """
        self.stage_accounting.record(path, timeline)
        stats = self.stage_stats
        for span in timeline.spans:
            stats.histogram(f"{span.name}.ns").record(span.latency_ns)
            if span.wasted:
                stats.histogram(f"{span.name}.wasted_ns").record(span.latency_ns)
            elif span.slack_ns:
                stats.histogram(f"{span.name}.slack_ns").record(span.slack_ns)
        probe = self._probe
        if probe is not None and probe.bus.active:
            for span in timeline.spans:
                probe.emit("stage", span.start_ns, stage=span.name,
                           path=path, latency_ns=span.latency_ns,
                           end_ns=span.end_ns, critical=span.critical,
                           wasted=span.wasted, ppn=ppn)

    def _finish_miss(self, timeline: ServiceTimeline, path: str,
                     in_ml2: bool, now_ns: float, ppn: int) -> MissResult:
        """Shared epilogue: path counter, stage metrics, latency histogram."""
        self._record_path(path, now_ns, timeline.total_ns, ppn)
        self._record_stages(timeline, path, ppn)
        self.stats.histogram("miss_latency_ns").record(timeline.total_ns)
        return MissResult(timeline.total_ns, path, in_ml2=in_ml2,
                          timeline=timeline)

    # ------------------------------------------------------------------
    # Zero-observer fast path (docs/performance.md)
    # ------------------------------------------------------------------
    #
    # ``serve_l3_miss_fast`` is the no-observer twin of ``serve_l3_miss``:
    # same DRAM traffic, same stat mutations, same RNG draws, but no
    # Stage/ServiceTimeline/MissResult object graph.  The ``--emit-json``
    # byte-equality golden pins the contract; any behavioural divergence
    # between the two is a bug.  Only valid when no tracer/profiler/
    # timeseries/fault-injector is attached and resilience is disabled
    # (``Simulator.fast_path_eligible`` gates this).

    def _dram_read_fast(self, address: int, now_ns: float,
                        include_noc: bool = True) -> float:
        """:meth:`_dram_read_ns` without the ``ReadResult`` allocation.

        Assumes resilience is disabled (the eligibility gate guarantees
        it), so the retry loop is dead code here.
        """
        latency = self.dram.read_ns(address, now_ns)
        if include_noc:
            return latency
        return latency - self.dram.config.timing.noc_ns

    def serve_l3_miss_fast(self, ppn: int, block_index: int, now_ns: float,
                           is_write: bool = False):
        """Serve an LLC miss on the fast path; returns ``(latency_ns, path)``.

        Stat sinks are bound lazily and cached; mutation *order* mirrors
        :meth:`serve_l3_miss` exactly (stat keys are created in the same
        sequence, which the ``--emit-json`` byte-equality golden sees).
        """
        latency = self._dram_read_fast(self._data_address(ppn, block_index),
                                       now_ns)
        counter = self._fast_l3_counter
        if counter is None:
            counter = self._fast_l3_counter = self.stats.counter("l3_misses")
        counter.value += 1
        samples = self._fast_miss_samples
        if samples is None:
            samples = self._fast_miss_samples = self.stats.histogram(
                "miss_latency_ns").samples
        samples.append(latency)
        # record_span(PATH_CTE_HIT, STAGE_DATA_FETCH, latency, True,
        # False, 0.0) + record_total(PATH_CTE_HIT, latency), inlined.
        accounting = self.stage_accounting
        paths = accounting._paths
        stages = paths.get(PATH_CTE_HIT)
        if stages is None:
            stages = paths[PATH_CTE_HIT] = {}
        totals = stages.get(STAGE_DATA_FETCH)
        if totals is None:
            totals = stages[STAGE_DATA_FETCH] = StageTotals()
        totals.count += 1
        totals.total_ns += latency
        totals.critical_ns += latency
        path_total = accounting._path_total_ns
        path_total[PATH_CTE_HIT] = path_total.get(PATH_CTE_HIT, 0.0) + latency
        path_count = accounting._path_count
        path_count[PATH_CTE_HIT] = path_count.get(PATH_CTE_HIT, 0) + 1
        hist_samples = self._fast_hist_samples
        data_samples = hist_samples.get(_DATA_FETCH_NS_KEY)
        if data_samples is None:
            data_samples = hist_samples[_DATA_FETCH_NS_KEY] = (
                self.stage_stats.histogram(_DATA_FETCH_NS_KEY).samples)
        data_samples.append(latency)
        return latency, PATH_CTE_HIT

    def _finish_fast(self, path: str, spans, total_ns: float) -> None:
        """Fast-path epilogue mirroring :meth:`_finish_miss`.

        ``spans`` is a sequence of ``(name, latency_ns, critical, wasted,
        slack_ns)`` tuples in the order the slow path would record them.
        ``StageAccounting.record_span``/``record_total`` and the stage
        histogram lookups are inlined against cached sinks: this runs
        once per LLC miss and the get-or-create layers dominated it.
        ``_paths`` & friends are cleared in place by the accounting's
        ``reset()``, so holding the dicts themselves is safe.
        """
        counters = self._fast_path_counters
        counter = counters.get(path)
        if counter is None:
            counter = counters[path] = self.stats.counter(
                _PATH_COUNTER_KEY[path])
        counter.value += 1
        accounting = self.stage_accounting
        paths_dict = accounting._paths
        stages = paths_dict.get(path)
        if stages is None:
            stages = paths_dict[path] = {}
        hist_samples = self._fast_hist_samples
        histogram = self.stage_stats.histogram
        for name, latency_ns, critical, wasted, slack_ns in spans:
            totals = stages.get(name)
            if totals is None:
                totals = stages[name] = StageTotals()
            totals.count += 1
            totals.total_ns += latency_ns
            if critical:
                totals.critical_ns += latency_ns
            if wasted:
                totals.wasted_ns += latency_ns
            totals.slack_ns += slack_ns
            keys = _STAGE_KEYS.get(name)
            if keys is None:
                keys = _STAGE_KEYS[name] = (
                    f"{name}.ns", f"{name}.wasted_ns", f"{name}.slack_ns")
            key = keys[0]
            samples = hist_samples.get(key)
            if samples is None:
                samples = hist_samples[key] = histogram(key).samples
            samples.append(latency_ns)
            if wasted:
                key = keys[1]
                samples = hist_samples.get(key)
                if samples is None:
                    samples = hist_samples[key] = histogram(key).samples
                samples.append(latency_ns)
            elif slack_ns:
                key = keys[2]
                samples = hist_samples.get(key)
                if samples is None:
                    samples = hist_samples[key] = histogram(key).samples
                samples.append(slack_ns)
        path_total = accounting._path_total_ns
        path_total[path] = path_total.get(path, 0.0) + total_ns
        path_count = accounting._path_count
        path_count[path] = path_count.get(path, 0) + 1
        samples = self._fast_miss_samples
        if samples is None:
            samples = self._fast_miss_samples = self.stats.histogram(
                "miss_latency_ns").samples
        samples.append(total_ns)
