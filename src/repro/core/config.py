"""Simulated-system configuration (Table III).

One dataclass gathers every knob the experiments sweep, so a benchmark can
say "TMCC at Compresso's DRAM usage, huge pages on, 2 MCs" in one place.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache.hierarchy import HierarchyConfig
from repro.compression.deflate import DeflateConfig, DeflateTimingModel, IBMDeflateModel
from repro.dram.system import DRAMConfig
from repro.common.units import KIB


@dataclass(frozen=True)
class SystemConfig:
    """Everything Table III fixes, plus the reproduction's scale knobs."""

    #: CPU clock (Table III: 2.8 GHz, 4-wide OoO).
    cpu_ghz: float = 2.8
    #: Single-level TLB entries (Table III: 2048, Zen-3-like total reach).
    tlb_entries: int = 2048
    cache: HierarchyConfig = field(default_factory=HierarchyConfig)
    dram: DRAMConfig = field(default_factory=DRAMConfig)

    #: TMCC / OS-inspired CTE cache (Table III: 64 KB, 8 B page CTEs).
    tmcc_cte_cache_bytes: int = 64 * KIB
    #: Compresso CTE cache (Table III: 128 KB, 64 B per-page CTEs).
    compresso_cte_cache_bytes: int = 128 * KIB

    deflate: DeflateConfig = field(default_factory=DeflateConfig)
    deflate_timing: DeflateTimingModel = field(default_factory=DeflateTimingModel)
    ibm_timing: IBMDeflateModel = field(default_factory=IBMDeflateModel)

    #: ML1 free-list watermarks (Section VI; scaled to simulation size --
    #: the paper's 4000/3000 chunks assume a ~100 GB machine).
    ml1_low_watermark: int = 48
    ml1_critical_watermark: int = 32

    #: Memory-level-parallelism factor: the fraction of each memory stall
    #: the core cannot hide (4-wide OoO overlaps some of it).
    mlp_stall_factor: float = 0.45

    #: Sampled pages per workload for the compression oracles.
    compression_samples: int = 24

    def cycles_to_ns(self, cycles: float) -> float:
        return cycles / self.cpu_ghz

    def ns_to_cycles(self, ns: float) -> float:
        return ns * self.cpu_ghz
