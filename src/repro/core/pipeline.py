"""Declarative latency composition for the LLC-miss service path.

The paper's central claims are timeline claims: Figure 8 contrasts the
serial CTE-fetch -> data-fetch chain against TMCC's parallel speculative
fetch, Figure 18 decomposes average L3-miss latency, and Figure 19 splits
accesses across service paths.  Instead of each controller hand-threading
``now_ns`` offsets and ad-hoc ``max()`` arithmetic, the miss path is
*data*: controllers build a small expression tree out of

- :class:`Stage` -- one named unit of work with a latency (a constant, or
  a callable evaluated with the stage's start time so DRAM queue state is
  sampled at the moment the request would actually issue),
- :func:`serial` -- stages back to back (latencies sum),
- :func:`parallel` -- stages racing (latency is the max; losing branches
  get their hidden time attributed as *slack*, and speculative stages
  marked ``wasted`` keep their full cost visible),
- :func:`cond` -- build-time selection between alternative sub-paths,
- :func:`defer` -- a sub-pipeline whose shape (or closures) depend on its
  own start time, built lazily during evaluation.

:func:`evaluate` walks the tree once, in declaration order, and returns a
:class:`ServiceTimeline` recording the start/end of every stage.  The
evaluation is careful to reproduce the exact floating-point association
of the hand-written arithmetic it replaced (sums accumulate left to
right; a nested pipeline's base time is formed with a single addition),
so a controller refactored onto the algebra reports bit-identical
``MissResult.latency_ns`` values.

:class:`StageAccounting` aggregates timelines per access path for the
Figure 8/18 reconstructions (``repro run --breakdown``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

#: A stage's cost: a non-negative constant, or a callable receiving the
#: stage's absolute start time (ns) and returning the latency (ns).
Latency = Union[float, int, Callable[[float], float]]

# ----------------------------------------------------------------------
# Canonical stage names (metric keys are ``controller.stage.<name>.*``)
# ----------------------------------------------------------------------

STAGE_CTE_FETCH = "cte_fetch"
STAGE_DATA_FETCH = "data_fetch"
STAGE_SPEC_DATA_FETCH = "spec_data_fetch"
STAGE_CTE_REPAIR = "cte_repair"
STAGE_ML2_READ = "ml2_read"
STAGE_DECOMPRESS = "decompress"
STAGE_MIGRATION_STALL = "migration_stall"
STAGE_MIGRATE = "migrate"
STAGE_EVICT = "evict"
STAGE_EMERGENCY_EVICT = "emergency_evict"


@dataclass(slots=True)
class StageSpan:
    """One stage's occurrence on a service timeline."""

    name: str
    start_ns: float
    end_ns: float
    latency_ns: float
    #: On the critical path (serial stages and parallel winners).  The
    #: critical spans of a timeline sum to its total latency.
    critical: bool = True
    #: Time this stage's branch finished before the parallel winner --
    #: latency hidden under another branch, not paid by the miss.
    slack_ns: float = 0.0
    #: Speculative work that was discarded (e.g. TMCC's stale-CTE data
    #: fetch); the cost is real DRAM work even when off the critical path.
    wasted: bool = False

    def as_dict(self) -> Dict[str, object]:
        return {
            "stage": self.name,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "latency_ns": self.latency_ns,
            "critical": self.critical,
            "slack_ns": self.slack_ns,
            "wasted": self.wasted,
        }


@dataclass(slots=True)
class ServiceTimeline:
    """The evaluated pipeline: every stage's placement plus the total."""

    start_ns: float
    total_ns: float
    spans: List[StageSpan]

    @property
    def end_ns(self) -> float:
        return self.start_ns + self.total_ns

    def stage_names(self) -> List[str]:
        return [span.name for span in self.spans]

    def span(self, name: str) -> Optional[StageSpan]:
        """The first span with ``name``, or None."""
        for item in self.spans:
            if item.name == name:
                return item
        return None

    def critical_ns(self) -> float:
        """Sum of critical-span latencies (equals ``total_ns``)."""
        return sum(span.latency_ns for span in self.spans if span.critical)

    def wasted_ns(self) -> float:
        return sum(span.latency_ns for span in self.spans if span.wasted)


class PipelineNode:
    """Base class of the composition tree."""

    def _evaluate(self, base_ns: float, spans: List[StageSpan]) -> float:
        """Append this node's spans, starting at ``base_ns``; return the
        node's duration in ns."""
        raise NotImplementedError


class Stage(PipelineNode):
    """One named unit of work.

    ``latency`` is either a constant or a callable invoked with the
    stage's absolute start time; callables may perform the modeled side
    effects (DRAM reads, migration-buffer reservations) -- evaluation
    order is declaration order, so side effects happen exactly where the
    hand-written control flow performed them.

    ``record=False`` runs the stage (for its side effects) without
    emitting a span -- bookkeeping actions that take no foreground time.
    """

    __slots__ = ("name", "latency", "wasted", "record")

    def __init__(self, name: str, latency: Latency, wasted: bool = False,
                 record: bool = True) -> None:
        if not name:
            raise ValueError("stage name must be non-empty")
        if not callable(latency) and latency < 0:
            raise ValueError(f"stage {name!r} latency must be non-negative")
        self.name = name
        self.latency = latency
        self.wasted = wasted
        self.record = record

    def _evaluate(self, base_ns: float, spans: List[StageSpan]) -> float:
        latency = self.latency
        if callable(latency):
            latency = latency(base_ns)
        if self.record:
            spans.append(StageSpan(self.name, base_ns, base_ns + latency,
                                   latency, wasted=self.wasted))
        return latency


class _Serial(PipelineNode):
    __slots__ = ("children",)

    def __init__(self, children: Sequence[PipelineNode]) -> None:
        self.children = list(children)

    def _evaluate(self, base_ns: float, spans: List[StageSpan]) -> float:
        total = 0.0
        for child in self.children:
            total += child._evaluate(base_ns + total, spans)
        return total


class _Parallel(PipelineNode):
    __slots__ = ("children",)

    def __init__(self, children: Sequence[PipelineNode]) -> None:
        if not children:
            raise ValueError("parallel() needs at least one branch")
        self.children = list(children)

    def _evaluate(self, base_ns: float, spans: List[StageSpan]) -> float:
        durations: List[float] = []
        branch_slices: List[Tuple[int, int]] = []
        for child in self.children:
            mark = len(spans)
            durations.append(child._evaluate(base_ns, spans))
            branch_slices.append((mark, len(spans)))
        duration = max(durations)
        winner = durations.index(duration)
        for index, (lo, hi) in enumerate(branch_slices):
            if index == winner:
                continue
            slack = duration - durations[index]
            for span in spans[lo:hi]:
                span.critical = False
            # The branch's hidden time belongs to its last span (its
            # completion is what the winner overlaps past).
            if hi > lo and slack > 0.0:
                spans[hi - 1].slack_ns += slack
        return duration


class _Deferred(PipelineNode):
    __slots__ = ("builder",)

    def __init__(self, builder: Callable[[float], "NodeLike"]) -> None:
        self.builder = builder

    def _evaluate(self, base_ns: float, spans: List[StageSpan]) -> float:
        return as_node(self.builder(base_ns))._evaluate(base_ns, spans)


NodeLike = Union[PipelineNode, Stage]


def as_node(node: NodeLike) -> PipelineNode:
    if isinstance(node, PipelineNode):
        return node
    raise TypeError(f"not a pipeline node: {node!r}")


def serial(*children: NodeLike) -> PipelineNode:
    """Stages back to back; the duration is the left-to-right sum."""
    return _Serial([as_node(child) for child in children])


def parallel(*children: NodeLike) -> PipelineNode:
    """Branches racing from a common start; the duration is the max.

    Branches are evaluated in declaration order (side effects included);
    losing branches are marked non-critical and their hidden completion
    time is attributed as :attr:`StageSpan.slack_ns`.
    """
    return _Parallel([as_node(child) for child in children])


def cond(condition: object, then: NodeLike,
         otherwise: Optional[NodeLike] = None) -> PipelineNode:
    """Build-time selection: ``then`` when truthy, else ``otherwise``
    (an empty pipeline when omitted)."""
    if condition:
        return as_node(then)
    if otherwise is None:
        return _Serial([])
    return as_node(otherwise)


def defer(builder: Callable[[float], NodeLike]) -> PipelineNode:
    """A sub-pipeline built at evaluation time from its own start time.

    Use when a stage's cost model needs the sub-pipeline's base time in a
    closure (e.g. a migration-buffer reservation made at the access's
    arrival, not at the reserving stage's own start).
    """
    return _Deferred(builder)


def evaluate(node: NodeLike, start_ns: float = 0.0) -> ServiceTimeline:
    """Run the pipeline once; returns the recorded timeline."""
    spans: List[StageSpan] = []
    total = as_node(node)._evaluate(start_ns, spans)
    return ServiceTimeline(start_ns=start_ns, total_ns=total, spans=spans)


# ----------------------------------------------------------------------
# Aggregation (Figure 8/18 reconstruction)
# ----------------------------------------------------------------------


@dataclass(slots=True)
class StageTotals:
    """Aggregated occurrences of one stage under one access path."""

    count: int = 0
    total_ns: float = 0.0
    #: Portion on the critical path -- what the miss actually paid.
    critical_ns: float = 0.0
    #: Discarded speculative work (full stage cost).
    wasted_ns: float = 0.0
    #: Completion time hidden under a longer parallel branch.
    slack_ns: float = 0.0

    @property
    def mean_ns(self) -> float:
        return self.total_ns / self.count if self.count else 0.0


class StageAccounting:
    """Per-path, per-stage aggregation over every serviced miss.

    Registered as a metrics source (``controller.breakdown.*``): calling
    the instance flattens into ``<path>.<stage>.mean_ns`` /
    ``.critical_ns`` / ``.count`` keys, plus each path's ``total_ns``.
    ``reset()`` supports the warm-up boundary.
    """

    def __init__(self) -> None:
        self._paths: Dict[str, Dict[str, StageTotals]] = {}
        self._path_total_ns: Dict[str, float] = {}
        self._path_count: Dict[str, int] = {}

    def record(self, path: str, timeline: ServiceTimeline) -> None:
        stages = self._paths.setdefault(path, {})
        for span in timeline.spans:
            totals = stages.get(span.name)
            if totals is None:
                totals = stages[span.name] = StageTotals()
            totals.count += 1
            totals.total_ns += span.latency_ns
            if span.critical:
                totals.critical_ns += span.latency_ns
            if span.wasted:
                totals.wasted_ns += span.latency_ns
            totals.slack_ns += span.slack_ns
        self._path_total_ns[path] = (
            self._path_total_ns.get(path, 0.0) + timeline.total_ns
        )
        self._path_count[path] = self._path_count.get(path, 0) + 1

    def record_span(self, path: str, name: str, latency_ns: float,
                    critical: bool, wasted: bool, slack_ns: float) -> None:
        """Fast-path equivalent of one span's share of :meth:`record`.

        Lets the zero-observer fast path aggregate without materializing
        :class:`StageSpan`/:class:`ServiceTimeline` objects; pair with
        :meth:`record_total` once per miss.
        """
        stages = self._paths.get(path)
        if stages is None:
            stages = self._paths[path] = {}
        totals = stages.get(name)
        if totals is None:
            totals = stages[name] = StageTotals()
        totals.count += 1
        totals.total_ns += latency_ns
        if critical:
            totals.critical_ns += latency_ns
        if wasted:
            totals.wasted_ns += latency_ns
        totals.slack_ns += slack_ns

    def record_total(self, path: str, total_ns: float) -> None:
        """The per-miss path totals of :meth:`record` (fast-path half)."""
        self._path_total_ns[path] = self._path_total_ns.get(path, 0.0) + total_ns
        self._path_count[path] = self._path_count.get(path, 0) + 1

    # -- reading -------------------------------------------------------

    def paths(self) -> List[str]:
        return sorted(self._paths)

    def stages(self, path: str) -> Dict[str, StageTotals]:
        return dict(self._paths.get(path, {}))

    def path_total_ns(self, path: str) -> float:
        return self._path_total_ns.get(path, 0.0)

    def path_count(self, path: str) -> int:
        return self._path_count.get(path, 0)

    def grand_total_ns(self) -> float:
        return sum(self._path_total_ns.values())

    def breakdown(self) -> List[Dict[str, object]]:
        """Rows for the ``--breakdown`` table, one per (path, stage).

        ``share`` is the stage's critical-path time as a fraction of all
        miss latency, so shares sum to ~1 across the whole table.
        """
        grand = self.grand_total_ns()
        rows: List[Dict[str, object]] = []
        for path in self.paths():
            for name, totals in sorted(self._paths[path].items()):
                rows.append({
                    "path": path,
                    "stage": name,
                    "count": totals.count,
                    "mean_ns": totals.mean_ns,
                    "critical_ns": totals.critical_ns,
                    "wasted_ns": totals.wasted_ns,
                    "slack_ns": totals.slack_ns,
                    "share": totals.critical_ns / grand if grand else 0.0,
                })
        return rows

    # -- metrics-source protocol ---------------------------------------

    def __call__(self) -> Mapping[str, float]:
        out: Dict[str, float] = {}
        for path in self.paths():
            out[f"{path}.total_ns"] = self._path_total_ns.get(path, 0.0)
            out[f"{path}.count"] = self._path_count.get(path, 0)
            for name, totals in sorted(self._paths[path].items()):
                prefix = f"{path}.{name}"
                out[f"{prefix}.count"] = totals.count
                out[f"{prefix}.mean_ns"] = totals.mean_ns
                out[f"{prefix}.critical_ns"] = totals.critical_ns
                if totals.wasted_ns:
                    out[f"{prefix}.wasted_ns"] = totals.wasted_ns
                if totals.slack_ns:
                    out[f"{prefix}.slack_ns"] = totals.slack_ns
        return out

    def reset(self) -> None:
        self._paths.clear()
        self._path_total_ns.clear()
        self._path_count.clear()
