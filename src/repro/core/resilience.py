"""Controller-side resilience state: pressure handling and fault intake.

Every :class:`~repro.core.base.MemoryController` owns a
:class:`ResilienceState`.  It is **disabled by default** and, while
disabled, every hook is a single attribute check -- a no-fault run is
bit-identical to a build without this module.  The fault injector
(:mod:`repro.sim.faults`) or ``Simulator(resilience=True)`` enables it,
which arms:

- the capacity-pressure watchdog (emergency eviction expressed as the
  ``emergency_evict`` pipeline stage instead of a wedged free list),
- overflow-to-uncompressed retention when ML2 cannot carve a sub-chunk
  for an eviction victim (Compresso's worst-case behaviour, modeled
  instead of aborted),
- transient-DRAM-error retries in the shared DRAM read helper.

All counters live in one :class:`~repro.common.stats.StatGroup`
published under the ``resilience.*`` metric namespace (see
``docs/architecture.md`` for the key list).
"""

from __future__ import annotations

from repro.common.stats import StatGroup

#: Bounded retry: a transient DRAM read error is re-issued at most this
#: many times per read before the model falls back to ECC correction.
MAX_DRAM_RETRIES = 4


class ResilienceState:
    """Per-controller fault intake and graceful-degradation switches."""

    def __init__(self) -> None:
        #: Master switch; while False no behaviour differs from main.
        self.enabled = False
        self.stats = StatGroup("resilience")
        #: Eviction victims to treat as incompressible (burst faults).
        self.incompressible_burst = 0
        #: Outstanding transient DRAM read errors to serve with retries.
        self.pending_dram_errors = 0
        self.max_dram_retries = MAX_DRAM_RETRIES

    # ------------------------------------------------------------------
    # Convenience counters (all under the ``resilience.*`` namespace)
    # ------------------------------------------------------------------

    def count(self, name: str, amount: int = 1) -> None:
        self.stats.counter(name).increment(amount)

    def count_fault(self, kind: str) -> None:
        self.count("faults_injected")
        self.count(f"faults.{kind}")
