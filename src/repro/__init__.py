"""repro — a reproduction of TMCC (MICRO 2022).

Translation-optimized Memory Compression for Capacity, rebuilt as a
Python library: the memory-specialized ASIC Deflate, compressed
page-table blocks with embedded compression-translation entries, the
two-level (ML1/ML2) OS-inspired memory organization, the Compresso
baseline, and the trace-driven memory-subsystem simulator that
regenerates every table and figure of the paper's evaluation.

Quick tour::

    from repro.compression.deflate import DeflateCodec
    from repro.sim.experiments import iso_capacity_comparison
    from repro.workloads.suite import workload_by_name

    codec = DeflateCodec()                     # bit-exact page codec
    iso = iso_capacity_comparison(workload_by_name("shortestPath"))
    print(iso.speedup)                         # TMCC vs Compresso

See README.md for the architecture map, DESIGN.md for the
paper-experiment index, and EXPERIMENTS.md for paper-vs-measured results.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
