"""A set-associative, write-back, LRU cache.

Lines carry two metadata bits beyond dirty: ``compressed`` (the new data
bit TMCC adds to every L2/L3 line to mark compressed-PTB encoding,
Section V-A4) and ``is_ptb`` (whether the line was brought in by the page
walker -- hardware knows this from the requester ID).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional

from repro.common.stats import RatioStat
from repro.common.units import BLOCK_SIZE


@dataclass(slots=True)
class CacheLine:
    """Metadata of one resident block."""

    block: int  # block number (address >> 6)
    dirty: bool = False
    compressed: bool = False
    is_ptb: bool = False


class SetAssociativeCache:
    """LRU set-associative cache over 64 B blocks."""

    def __init__(self, size_bytes: int, associativity: int, name: str = "cache") -> None:
        if size_bytes % (BLOCK_SIZE * associativity):
            raise ValueError(
                f"{name}: size {size_bytes} not divisible by "
                f"{BLOCK_SIZE} x associativity {associativity}"
            )
        self.name = name
        self.size_bytes = size_bytes
        self.associativity = associativity
        self.num_sets = size_bytes // (BLOCK_SIZE * associativity)
        if self.num_sets & (self.num_sets - 1):
            raise ValueError(f"{name}: number of sets must be a power of two")
        self._sets: List["OrderedDict[int, CacheLine]"] = [
            OrderedDict() for _ in range(self.num_sets)
        ]
        self.stats = RatioStat(name)

    def _set_of(self, block: int) -> "OrderedDict[int, CacheLine]":
        return self._sets[block & (self.num_sets - 1)]

    # ------------------------------------------------------------------
    # Probes
    # ------------------------------------------------------------------

    def lookup(self, block: int, is_write: bool = False) -> Optional[CacheLine]:
        """Probe; on hit, updates recency (and dirty for writes)."""
        entries = self._set_of(block)
        line = entries.get(block)
        self.stats.record(line is not None)
        if line is not None:
            entries.move_to_end(block)
            if is_write:
                line.dirty = True
        return line

    def peek(self, block: int) -> Optional[CacheLine]:
        """Probe without side effects (no stats, no recency update)."""
        return self._set_of(block).get(block)

    def contains(self, block: int) -> bool:
        return block in self._set_of(block)

    # ------------------------------------------------------------------
    # Fills and evictions
    # ------------------------------------------------------------------

    def fill(self, block: int, dirty: bool = False, compressed: bool = False,
             is_ptb: bool = False) -> Optional[CacheLine]:
        """Insert a block; returns the evicted line, if any."""
        entries = self._set_of(block)
        if block in entries:
            line = entries[block]
            entries.move_to_end(block)
            line.dirty = line.dirty or dirty
            line.compressed = compressed
            line.is_ptb = line.is_ptb or is_ptb
            return None
        victim: Optional[CacheLine] = None
        if len(entries) >= self.associativity:
            _, victim = entries.popitem(last=False)
        entries[block] = CacheLine(block, dirty=dirty, compressed=compressed,
                                   is_ptb=is_ptb)
        return victim

    def invalidate(self, block: int) -> Optional[CacheLine]:
        """Remove a block (used for inclusive/exclusive maintenance)."""
        return self._set_of(block).pop(block, None)

    def flush(self) -> List[CacheLine]:
        """Drop everything; returns the dirty lines that would write back."""
        dirty: List[CacheLine] = []
        for entries in self._sets:
            dirty.extend(line for line in entries.values() if line.dirty)
            entries.clear()
        return dirty

    @property
    def occupancy(self) -> int:
        return sum(len(entries) for entries in self._sets)
