"""A set-associative, write-back, LRU cache.

Lines carry two metadata bits beyond dirty: ``compressed`` (the new data
bit TMCC adds to every L2/L3 line to mark compressed-PTB encoding,
Section V-A4) and ``is_ptb`` (whether the line was brought in by the page
walker -- hardware knows this from the requester ID).

Two implementations share the API:

- :class:`SetAssociativeCache` -- the production store.  State is
  *columnar* (structure-of-arrays): one global ``block -> slot`` index,
  flat parallel ``tags``/``dirty``/``compressed``/``is_ptb`` columns
  indexed by slot (``slot = set * associativity + way``), and a per-set
  recency *order list* of slots (LRU first).  The fast replay loop
  reads the columns directly and batch-classifies whole trace chunks
  against the ``tags`` column (``docs/performance.md``).
- :class:`ReferenceSetAssociativeCache` -- the original
  per-entry-object implementation (``OrderedDict`` of
  :class:`CacheLine` per set), kept as the readable spec and as the
  oracle for the differential property tests in
  ``tests/cache/test_columnar_differential.py``.

The ``tags`` column is an ``array('q')`` so numpy can view it zero-copy;
a block number beyond int64 (never produced by the simulator, but the
API stays total) demotes the column to a plain list and disables the
numpy view for that cache.
"""

from __future__ import annotations

from array import array
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.common.stats import RatioStat
from repro.common.units import BLOCK_SIZE


@dataclass(slots=True)
class CacheLine:
    """Metadata of one resident block."""

    block: int  # block number (address >> 6)
    dirty: bool = False
    compressed: bool = False
    is_ptb: bool = False


class SetAssociativeCache:
    """LRU set-associative cache over 64 B blocks, columnar storage."""

    def __init__(self, size_bytes: int, associativity: int, name: str = "cache") -> None:
        if size_bytes % (BLOCK_SIZE * associativity):
            raise ValueError(
                f"{name}: size {size_bytes} not divisible by "
                f"{BLOCK_SIZE} x associativity {associativity}"
            )
        self.name = name
        self.size_bytes = size_bytes
        self.associativity = associativity
        self.num_sets = size_bytes // (BLOCK_SIZE * associativity)
        if self.num_sets & (self.num_sets - 1):
            raise ValueError(f"{name}: number of sets must be a power of two")
        slots = self.num_sets * associativity
        #: block -> slot for every resident block (the membership probe).
        self._index: dict = {}
        #: slot -> block; -1 marks an empty slot.  ``array('q')`` so the
        #: batched fast path can view it as an int64 matrix.
        self._tags = array("q", [-1]) * slots
        self._dirty = bytearray(slots)
        self._compressed = bytearray(slots)
        self._is_ptb = bytearray(slots)
        #: Per-set recency order: slot ids, LRU first, MRU last.
        self._orders: List[List[int]] = [[] for _ in range(self.num_sets)]
        #: Per-set free-slot stacks (lowest slot allocated first).
        assoc = associativity
        self._free: List[List[int]] = [
            list(range((s + 1) * assoc - 1, s * assoc - 1, -1))
            for s in range(self.num_sets)
        ]
        self.stats = RatioStat(name)

    # ------------------------------------------------------------------
    # Probes
    # ------------------------------------------------------------------

    def lookup(self, block: int, is_write: bool = False) -> Optional[CacheLine]:
        """Probe; on hit, updates recency (and dirty for writes)."""
        slot = self._index.get(block)
        self.stats.record(slot is not None)
        if slot is None:
            return None
        order = self._orders[block & (self.num_sets - 1)]
        if order[-1] != slot:
            order.remove(slot)
            order.append(slot)
        if is_write:
            self._dirty[slot] = 1
        return self._line_at(slot)

    def peek(self, block: int) -> Optional[CacheLine]:
        """Probe without side effects (no stats, no recency update)."""
        slot = self._index.get(block)
        return None if slot is None else self._line_at(slot)

    def contains(self, block: int) -> bool:
        return block in self._index

    # ------------------------------------------------------------------
    # Fills and evictions
    # ------------------------------------------------------------------

    def fill(self, block: int, dirty: bool = False, compressed: bool = False,
             is_ptb: bool = False) -> Optional[CacheLine]:
        """Insert a block; returns the evicted line, if any."""
        index = self._index
        slot = index.get(block)
        if slot is not None:  # refresh in place
            order = self._orders[block & (self.num_sets - 1)]
            if order[-1] != slot:
                order.remove(slot)
                order.append(slot)
            if dirty:
                self._dirty[slot] = 1
            self._compressed[slot] = 1 if compressed else 0
            if is_ptb:
                self._is_ptb[slot] = 1
            return None
        set_index = block & (self.num_sets - 1)
        order = self._orders[set_index]
        victim: Optional[CacheLine] = None
        if len(order) >= self.associativity:
            slot = order.pop(0)
            victim = self._line_at(slot)
            del index[victim.block]
        else:
            slot = self._free[set_index].pop()
        self._store_tag(slot, block)
        self._dirty[slot] = 1 if dirty else 0
        self._compressed[slot] = 1 if compressed else 0
        self._is_ptb[slot] = 1 if is_ptb else 0
        index[block] = slot
        order.append(slot)
        return victim

    def invalidate(self, block: int) -> Optional[CacheLine]:
        """Remove a block (used for inclusive/exclusive maintenance)."""
        slot = self._index.pop(block, None)
        if slot is None:
            return None
        line = self._line_at(slot)
        set_index = block & (self.num_sets - 1)
        self._orders[set_index].remove(slot)
        self._free[set_index].append(slot)
        self._tags[slot] = -1
        return line

    def flush(self) -> List[CacheLine]:
        """Drop everything; returns the dirty lines that would write back."""
        dirty_lines: List[CacheLine] = []
        dirty = self._dirty
        for set_index, order in enumerate(self._orders):
            for slot in order:
                if dirty[slot]:
                    dirty_lines.append(self._line_at(slot))
            if order:
                free = self._free[set_index]
                for slot in order:
                    self._tags[slot] = -1
                    free.append(slot)
                del order[:]
        self._index.clear()
        return dirty_lines

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def occupancy(self) -> int:
        return len(self._index)

    def blocks(self) -> Iterator[int]:
        """All resident block numbers (no recency effect, any order)."""
        return iter(self._index)

    def _line_at(self, slot: int) -> CacheLine:
        """Materialize the slot's metadata as a detached :class:`CacheLine`."""
        return CacheLine(self._tags[slot], dirty=bool(self._dirty[slot]),
                         compressed=bool(self._compressed[slot]),
                         is_ptb=bool(self._is_ptb[slot]))

    def _store_tag(self, slot: int, block: int) -> None:
        try:
            self._tags[slot] = block
        except OverflowError:  # beyond int64: demote to a plain list
            self._tags = list(self._tags)
            self._tags[slot] = block

    def tags_matrix(self):
        """numpy ``(num_sets, assoc)`` int64 view of the tags column, or
        ``None`` (numpy missing/masked, or the column was demoted)."""
        from repro.common.numpy_compat import numpy_or_none

        np = numpy_or_none()
        if np is None or not isinstance(self._tags, array):
            return None
        return np.frombuffer(self._tags, dtype=np.int64).reshape(
            self.num_sets, self.associativity)


class ReferenceSetAssociativeCache:
    """The original per-entry-object implementation (the readable spec).

    Kept verbatim for differential testing: random operation sequences
    against this oracle and :class:`SetAssociativeCache` must produce
    identical hits, victims, and stats.
    """

    def __init__(self, size_bytes: int, associativity: int, name: str = "cache") -> None:
        if size_bytes % (BLOCK_SIZE * associativity):
            raise ValueError(
                f"{name}: size {size_bytes} not divisible by "
                f"{BLOCK_SIZE} x associativity {associativity}"
            )
        self.name = name
        self.size_bytes = size_bytes
        self.associativity = associativity
        self.num_sets = size_bytes // (BLOCK_SIZE * associativity)
        if self.num_sets & (self.num_sets - 1):
            raise ValueError(f"{name}: number of sets must be a power of two")
        self._sets: List["OrderedDict[int, CacheLine]"] = [
            OrderedDict() for _ in range(self.num_sets)
        ]
        self.stats = RatioStat(name)

    def _set_of(self, block: int) -> "OrderedDict[int, CacheLine]":
        return self._sets[block & (self.num_sets - 1)]

    def lookup(self, block: int, is_write: bool = False) -> Optional[CacheLine]:
        entries = self._set_of(block)
        line = entries.get(block)
        self.stats.record(line is not None)
        if line is not None:
            entries.move_to_end(block)
            if is_write:
                line.dirty = True
        return line

    def peek(self, block: int) -> Optional[CacheLine]:
        return self._set_of(block).get(block)

    def contains(self, block: int) -> bool:
        return block in self._set_of(block)

    def fill(self, block: int, dirty: bool = False, compressed: bool = False,
             is_ptb: bool = False) -> Optional[CacheLine]:
        entries = self._set_of(block)
        if block in entries:
            line = entries[block]
            entries.move_to_end(block)
            line.dirty = line.dirty or dirty
            line.compressed = compressed
            line.is_ptb = line.is_ptb or is_ptb
            return None
        victim: Optional[CacheLine] = None
        if len(entries) >= self.associativity:
            _, victim = entries.popitem(last=False)
        entries[block] = CacheLine(block, dirty=dirty, compressed=compressed,
                                   is_ptb=is_ptb)
        return victim

    def invalidate(self, block: int) -> Optional[CacheLine]:
        return self._set_of(block).pop(block, None)

    def flush(self) -> List[CacheLine]:
        dirty: List[CacheLine] = []
        for entries in self._sets:
            dirty.extend(line for line in entries.values() if line.dirty)
            entries.clear()
        return dirty

    @property
    def occupancy(self) -> int:
        return sum(len(entries) for entries in self._sets)

    def blocks(self) -> Iterator[int]:
        for entries in self._sets:
            yield from entries
