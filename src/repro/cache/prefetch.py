"""Prefetchers of the simulated system (Table III).

Two flavors feed the L1/L2 caches: a next-line prefetcher with automatic
turn-off (it disables itself when its recent prefetches go unused) and a
stride prefetcher (degree 2 at L1, 4 at L2 in the paper's setup).

Prefetchers only decide *which* blocks to bring in; the hierarchy performs
the fills.  They see the miss stream, which is how hardware prefetchers are
trained in practice.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.common.registry import Registry

#: Prefetcher implementations, discoverable by name (``next_line``,
#: ``stride``) for hierarchy configuration and out-of-tree designs.
PREFETCHER_REGISTRY: Registry = Registry("prefetcher")

register_prefetcher = PREFETCHER_REGISTRY.register


@register_prefetcher
class NextLinePrefetcher:
    """Prefetch block+1 on a miss, with automatic turn-off.

    Usefulness is tracked over a sliding window of issued prefetches; when
    fewer than ``min_accuracy`` of the last ``window`` prefetched blocks
    were demanded, the prefetcher turns itself off (and re-evaluates after
    another window of misses).
    """

    name = "next_line"

    def __init__(self, window: int = 64, min_accuracy: float = 0.25) -> None:
        self.window = window
        self.min_accuracy = min_accuracy
        #: Insertion-ordered (plain dict); oldest prefetch retires first.
        self._outstanding: Dict[int, bool] = {}
        self._recent_results: List[bool] = []
        self._enabled = True
        self._cooloff = 0

    @property
    def enabled(self) -> bool:
        return self._enabled

    def train_demand(self, block: int) -> None:
        """A demand access; credits the prefetch that predicted it."""
        if block in self._outstanding:
            self._outstanding[block] = True

    def on_miss(self, block: int) -> List[int]:
        """Return blocks to prefetch for a demand miss at ``block``."""
        outstanding = self._outstanding
        if len(outstanding) > self.window:
            self._retire_oldest_if_full()
        if not self._enabled:
            self._cooloff += 1
            if self._cooloff >= self.window:
                self._enabled = True
                self._cooloff = 0
                self._recent_results.clear()
            return []
        target = block + 1
        outstanding[target] = False
        return [target]

    def _retire_oldest_if_full(self) -> None:
        outstanding = self._outstanding
        results = self._recent_results
        window = self.window
        while len(outstanding) > window:
            used = outstanding.pop(next(iter(outstanding)))
            results.append(used)
            if len(results) >= window:
                accuracy = sum(results) / len(results)
                if accuracy < self.min_accuracy:
                    self._enabled = False
                results.clear()


@register_prefetcher
class StridePrefetcher:
    """Region-based stride detection with configurable degree.

    Tracks the last address and stride per 4 KB region; after two
    consecutive accesses with the same stride it prefetches ``degree``
    blocks ahead along that stride.
    """

    name = "stride"

    def __init__(self, degree: int = 2, table_entries: int = 64) -> None:
        if degree < 1:
            raise ValueError("degree must be >= 1")
        self.degree = degree
        self.table_entries = table_entries
        #: region -> (last block, stride, confirmed); insertion order is
        #: recency order (pop + reinsert on every touch), oldest evicts.
        self._table: Dict[int, Tuple[int, int, bool]] = {}

    def on_access(self, block: int) -> List[int]:
        """Observe a demand access; return blocks to prefetch."""
        region = block >> 6  # 64 blocks = 4 KB region
        table = self._table
        entries = self.table_entries
        entry = table.pop(region, None)
        if entry is None:
            table[region] = (block, 0, False)
            if len(table) > entries:
                del table[next(iter(table))]
            return []
        new_stride = block - entry[0]
        if new_stride != 0 and new_stride == entry[1]:
            table[region] = (block, new_stride, True)
            if len(table) > entries:
                del table[next(iter(table))]
            return [p for i in range(self.degree)
                    if (p := block + new_stride * (i + 1)) >= 0]
        table[region] = (block, new_stride, False)
        if len(table) > entries:
            del table[next(iter(table))]
        return []
