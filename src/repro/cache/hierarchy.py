"""The three-level cache hierarchy of Table III.

Structure: 64 KB L1 (data+instruction modeled as one), 256 KB inclusive L2,
8 MB exclusive L3, with L1/L2 next-line + stride prefetchers.  Latencies
are Table III's: L1 3 cycles, L2 +11, L3 +50.

The hierarchy serves *block* requests and reports whether DRAM must be
involved (``l3_miss``); the memory controller owns everything below.  Dirty
L3 victims surface as ``dram_writebacks`` so the controller can model write
traffic and compressed-page bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.cache.prefetch import NextLinePrefetcher, StridePrefetcher
from repro.cache.sa_cache import CacheLine, SetAssociativeCache
from repro.common.units import KIB, MIB


@dataclass(frozen=True)
class HierarchyConfig:
    """Sizes/latencies per Table III."""

    l1_size: int = 64 * KIB
    l1_assoc: int = 8
    l2_size: int = 256 * KIB
    l2_assoc: int = 8
    l3_size: int = 8 * MIB
    l3_assoc: int = 16
    l1_latency: int = 3
    l2_latency: int = 11  # additional cycles
    l3_latency: int = 50  # additional cycles
    enable_prefetch: bool = True
    l1_stride_degree: int = 2
    l2_stride_degree: int = 4


@dataclass
class AccessResult:
    """What one block access did."""

    hit_level: str  # "l1" | "l2" | "l3" | "memory"
    latency_cycles: int
    l3_miss: bool
    dram_writebacks: List[int] = field(default_factory=list)
    served_compressed: bool = False

    @property
    def hit(self) -> bool:
        return self.hit_level != "memory"


class CacheHierarchy:
    """L1 + inclusive L2 + exclusive L3 with prefetch.

    ``shared_l3`` lets several per-core hierarchies sit in front of one
    LLC, the Table III multi-core organization (private L1/L2 per core,
    one shared exclusive L3).
    """

    def __init__(self, config: HierarchyConfig = HierarchyConfig(),
                 shared_l3: Optional[SetAssociativeCache] = None) -> None:
        self.config = config
        self.l1 = SetAssociativeCache(config.l1_size, config.l1_assoc, "l1")
        self.l2 = SetAssociativeCache(config.l2_size, config.l2_assoc, "l2")
        self.l3 = shared_l3 if shared_l3 is not None else SetAssociativeCache(
            config.l3_size, config.l3_assoc, "l3")
        self._next_line = NextLinePrefetcher()
        self._stride_l1 = StridePrefetcher(degree=config.l1_stride_degree)
        self._stride_l2 = StridePrefetcher(degree=config.l2_stride_degree)

    # ------------------------------------------------------------------
    # Main access path
    # ------------------------------------------------------------------

    def access(self, address: int, is_write: bool = False,
               is_ptb: bool = False) -> AccessResult:
        """Serve one demand access; returns where it hit and at what cost."""
        block = address >> 6
        config = self.config
        writebacks: List[int] = []

        if config.enable_prefetch:
            self._next_line.train_demand(block)

        line = self.l1.lookup(block, is_write)
        if line is not None:
            return AccessResult("l1", config.l1_latency, l3_miss=False,
                                served_compressed=line.compressed)

        latency = config.l1_latency + config.l2_latency
        if config.enable_prefetch:
            self._issue_prefetches(self._prefetch_candidates_l1(block), writebacks)

        line = self.l2.lookup(block)
        if line is not None:
            self._fill_l1(block, is_write, line.compressed, line.is_ptb, writebacks)
            return AccessResult("l2", latency, l3_miss=False,
                                dram_writebacks=writebacks,
                                served_compressed=line.compressed)

        latency += config.l3_latency
        if config.enable_prefetch:
            self._issue_prefetches(self._stride_l2.on_access(block), writebacks)

        line = self.l3.lookup(block)
        if line is not None:
            # Exclusive L3: the block moves up to L2/L1.
            moved = self.l3.invalidate(block)
            self._fill_l2(block, moved.dirty if moved else False,
                          moved.compressed if moved else False,
                          moved.is_ptb if moved else is_ptb, writebacks)
            self._fill_l1(block, is_write,
                          moved.compressed if moved else False,
                          moved.is_ptb if moved else is_ptb, writebacks)
            return AccessResult("l3", latency, l3_miss=False,
                                dram_writebacks=writebacks,
                                served_compressed=moved.compressed if moved else False)

        # Memory: caller adds DRAM latency; we complete the fills now.
        self._fill_l2(block, dirty=False, compressed=False, is_ptb=is_ptb,
                      writebacks=writebacks)
        self._fill_l1(block, is_write, compressed=False, is_ptb=is_ptb,
                      writebacks=writebacks)
        return AccessResult("memory", latency, l3_miss=True,
                            dram_writebacks=writebacks)

    # ------------------------------------------------------------------
    # Fill helpers (inclusive L2, exclusive L3)
    # ------------------------------------------------------------------

    def _fill_l1(self, block: int, is_write: bool, compressed: bool,
                 is_ptb: bool, writebacks: List[int]) -> None:
        victim = self.l1.fill(block, dirty=is_write, compressed=compressed,
                              is_ptb=is_ptb)
        if victim is not None and victim.dirty:
            # Inclusive L2 holds the line; merge the dirty data down.
            l2_line = self.l2.peek(victim.block)
            if l2_line is not None:
                l2_line.dirty = True
            else:
                # L2 already evicted it (rare ordering); send to L3.
                self._victim_to_l3(victim, writebacks)

    def _fill_l2(self, block: int, dirty: bool, compressed: bool,
                 is_ptb: bool, writebacks: List[int]) -> None:
        victim = self.l2.fill(block, dirty=dirty, compressed=compressed,
                              is_ptb=is_ptb)
        if victim is not None:
            # Inclusive: purge the L1 copy; its dirtiness rides along.
            l1_copy = self.l1.invalidate(victim.block)
            if l1_copy is not None and l1_copy.dirty:
                victim.dirty = True
            self._victim_to_l3(victim, writebacks)

    def _victim_to_l3(self, victim: CacheLine, writebacks: List[int]) -> None:
        l3_victim = self.l3.fill(victim.block, dirty=victim.dirty,
                                 compressed=victim.compressed,
                                 is_ptb=victim.is_ptb)
        if l3_victim is not None and l3_victim.dirty:
            writebacks.append(l3_victim.block)

    # ------------------------------------------------------------------
    # Prefetch
    # ------------------------------------------------------------------

    def _prefetch_candidates_l1(self, block: int) -> List[int]:
        candidates = self._next_line.on_miss(block)
        candidates += self._stride_l1.on_access(block)
        return candidates

    def _issue_prefetches(self, blocks: List[int], writebacks: List[int]) -> None:
        """Install prefetched blocks into L2 (no latency is charged)."""
        for block in blocks:
            if self.l1.contains(block) or self.l2.contains(block):
                continue
            if self.l3.contains(block):
                moved = self.l3.invalidate(block)
                self._fill_l2(block, moved.dirty, moved.compressed,
                              moved.is_ptb, writebacks)
            else:
                self._fill_l2(block, dirty=False, compressed=False,
                              is_ptb=False, writebacks=writebacks)

    # ------------------------------------------------------------------
    # Introspection for the compression controllers
    # ------------------------------------------------------------------

    def resident_line(self, address: int) -> Optional[CacheLine]:
        """The L1/L2/L3 line holding ``address``, if any (no side effects)."""
        block = address >> 6
        return self.l1.peek(block) or self.l2.peek(block) or self.l3.peek(block)

    def mark_compressed(self, address: int, compressed: bool = True) -> None:
        """Set the compressed-PTB data bit on whichever copies exist."""
        block = address >> 6
        for cache in (self.l1, self.l2, self.l3):
            line = cache.peek(block)
            if line is not None:
                line.compressed = compressed

    def invalidate_everywhere(self, address: int) -> None:
        block = address >> 6
        for cache in (self.l1, self.l2, self.l3):
            cache.invalidate(block)
