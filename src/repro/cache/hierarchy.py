"""The three-level cache hierarchy of Table III.

Structure: 64 KB L1 (data+instruction modeled as one), 256 KB inclusive L2,
8 MB exclusive L3, with L1/L2 next-line + stride prefetchers.  Latencies
are Table III's: L1 3 cycles, L2 +11, L3 +50.

The hierarchy serves *block* requests and reports whether DRAM must be
involved (``l3_miss``); the memory controller owns everything below.  Dirty
L3 victims surface as ``dram_writebacks`` so the controller can model write
traffic and compressed-page bookkeeping.

Storage is columnar (``sa_cache.SetAssociativeCache``): the fill helpers
and fast twins below write the flat tag/flag columns and per-set recency
order lists directly -- no :class:`CacheLine` objects move between
levels.  Any change to the fill semantics must be mirrored in
``ReferenceSetAssociativeCache`` (the readable spec) and stays pinned by
the differential property tests and the fast-vs-slow goldens.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.cache.prefetch import NextLinePrefetcher, StridePrefetcher
from repro.cache.sa_cache import CacheLine, SetAssociativeCache
from repro.common.units import KIB, MIB


@dataclass(frozen=True)
class HierarchyConfig:
    """Sizes/latencies per Table III."""

    l1_size: int = 64 * KIB
    l1_assoc: int = 8
    l2_size: int = 256 * KIB
    l2_assoc: int = 8
    l3_size: int = 8 * MIB
    l3_assoc: int = 16
    l1_latency: int = 3
    l2_latency: int = 11  # additional cycles
    l3_latency: int = 50  # additional cycles
    enable_prefetch: bool = True
    l1_stride_degree: int = 2
    l2_stride_degree: int = 4


@dataclass(slots=True)
class AccessResult:
    """What one block access did."""

    hit_level: str  # "l1" | "l2" | "l3" | "memory"
    latency_cycles: int
    l3_miss: bool
    dram_writebacks: List[int] = field(default_factory=list)
    served_compressed: bool = False

    @property
    def hit(self) -> bool:
        return self.hit_level != "memory"


class CacheHierarchy:
    """L1 + inclusive L2 + exclusive L3 with prefetch.

    ``shared_l3`` lets several per-core hierarchies sit in front of one
    LLC, the Table III multi-core organization (private L1/L2 per core,
    one shared exclusive L3).
    """

    def __init__(self, config: HierarchyConfig = HierarchyConfig(),
                 shared_l3: Optional[SetAssociativeCache] = None) -> None:
        self.config = config
        self.l1 = SetAssociativeCache(config.l1_size, config.l1_assoc, "l1")
        self.l2 = SetAssociativeCache(config.l2_size, config.l2_assoc, "l2")
        self.l3 = shared_l3 if shared_l3 is not None else SetAssociativeCache(
            config.l3_size, config.l3_assoc, "l3")
        self._next_line = NextLinePrefetcher()
        self._stride_l1 = StridePrefetcher(degree=config.l1_stride_degree)
        self._stride_l2 = StridePrefetcher(degree=config.l2_stride_degree)
        #: ``config.enable_prefetch`` is fixed at construction; the fast
        #: path reads this attribute to skip the dataclass field load.
        self._prefetch_on = config.enable_prefetch

    # ------------------------------------------------------------------
    # Main access path
    # ------------------------------------------------------------------

    def access(self, address: int, is_write: bool = False,
               is_ptb: bool = False) -> AccessResult:
        """Serve one demand access; returns where it hit and at what cost."""
        block = address >> 6
        config = self.config
        writebacks: List[int] = []

        if config.enable_prefetch:
            self._next_line.train_demand(block)

        line = self.l1.lookup(block, is_write)
        if line is not None:
            return AccessResult("l1", config.l1_latency, l3_miss=False,
                                served_compressed=line.compressed)

        latency = config.l1_latency + config.l2_latency
        if config.enable_prefetch:
            self._issue_prefetches(self._prefetch_candidates_l1(block), writebacks)

        line = self.l2.lookup(block)
        if line is not None:
            self._fill_l1(block, is_write, line.compressed, line.is_ptb, writebacks)
            return AccessResult("l2", latency, l3_miss=False,
                                dram_writebacks=writebacks,
                                served_compressed=line.compressed)

        latency += config.l3_latency
        if config.enable_prefetch:
            self._issue_prefetches(self._stride_l2.on_access(block), writebacks)

        line = self.l3.lookup(block)
        if line is not None:
            # Exclusive L3: the block moves up to L2/L1.
            moved = self.l3.invalidate(block)
            self._fill_l2(block, moved.dirty if moved else False,
                          moved.compressed if moved else False,
                          moved.is_ptb if moved else is_ptb, writebacks)
            self._fill_l1(block, is_write,
                          moved.compressed if moved else False,
                          moved.is_ptb if moved else is_ptb, writebacks)
            return AccessResult("l3", latency, l3_miss=False,
                                dram_writebacks=writebacks,
                                served_compressed=moved.compressed if moved else False)

        # Memory: caller adds DRAM latency; we complete the fills now.
        self._fill_l2(block, dirty=False, compressed=False, is_ptb=is_ptb,
                      writebacks=writebacks)
        self._fill_l1(block, is_write, compressed=False, is_ptb=is_ptb,
                      writebacks=writebacks)
        return AccessResult("memory", latency, l3_miss=True,
                            dram_writebacks=writebacks)

    def access_fast(self, block: int, is_write: bool, is_ptb: bool,
                    writebacks: List[int]) -> int:
        """Zero-observer variant of :meth:`access`.

        Returns the hit level (0=L1, 1=L2, 2=L3, 3=memory) instead of an
        :class:`AccessResult`; dirty L3 victims are appended to the
        caller-owned ``writebacks`` list.  Every cache, prefetcher, and
        stat state transition must stay identical to :meth:`access` (the
        fast-path contract, ``docs/performance.md``).
        """
        if self._prefetch_on:
            outstanding = self._next_line._outstanding
            if block in outstanding:
                outstanding[block] = True

        l1 = self.l1
        slot = l1._index.get(block)
        stats = l1.stats
        stats.total += 1
        if slot is not None:
            stats.hits += 1
            order = l1._orders[block & (l1.num_sets - 1)]
            if order[-1] != slot:
                order.remove(slot)
                order.append(slot)
            if is_write:
                l1._dirty[slot] = 1
            return 0
        return self.access_fast_miss(block, is_write, is_ptb, writebacks)

    def access_fast_miss(self, block: int, is_write: bool, is_ptb: bool,
                         writebacks: List[int]) -> int:
        """L1-miss continuation of :meth:`access_fast`.

        Split out so the fast replay loop can inline the (hot, trivial)
        next-line training + L1 probe and only pay a call on a miss.
        """
        if self._prefetch_on:
            # _prefetch_candidates_l1 issued in candidate order; issuing
            # next-line candidates before training the L1 stride table is
            # equivalent because prefetchers never read cache contents.
            # NextLinePrefetcher.on_miss + the single-block issue are
            # inlined (retire may flip ``_enabled``, so it runs first).
            nl = self._next_line
            outstanding = nl._outstanding
            if len(outstanding) > nl.window:
                nl._retire_oldest_if_full()
            if nl._enabled:
                target = block + 1
                outstanding[target] = False
                if (target not in self.l1._index
                        and target not in self.l2._index):
                    l3 = self.l3
                    slot = l3._index.pop(target, None)
                    if slot is not None:
                        set_index = target & (l3.num_sets - 1)
                        l3._orders[set_index].remove(slot)
                        l3._free[set_index].append(slot)
                        l3._tags[slot] = -1
                        self._fill_l2(target, l3._dirty[slot],
                                      l3._compressed[slot], l3._is_ptb[slot],
                                      writebacks)
                    else:
                        self._fill_l2(target, dirty=False, compressed=False,
                                      is_ptb=False, writebacks=writebacks)
            else:
                nl._cooloff += 1
                if nl._cooloff >= nl.window:
                    nl._enabled = True
                    nl._cooloff = 0
                    nl._recent_results.clear()
            candidates = self._stride_l1.on_access(block)
            if candidates:
                self._issue_prefetches(candidates, writebacks)

        l2 = self.l2
        slot = l2._index.get(block)
        stats = l2.stats
        stats.total += 1
        if slot is not None:
            stats.hits += 1
            order = l2._orders[block & (l2.num_sets - 1)]
            if order[-1] != slot:
                order.remove(slot)
                order.append(slot)
            self._fill_l1(block, is_write, l2._compressed[slot],
                          l2._is_ptb[slot], writebacks)
            return 1

        if self._prefetch_on:
            candidates = self._stride_l2.on_access(block)
            if candidates:
                self._issue_prefetches(candidates, writebacks)

        l3 = self.l3
        slot = l3._index.pop(block, None)
        stats = l3.stats
        stats.total += 1
        if slot is not None:
            stats.hits += 1
            # lookup-then-invalidate collapses to one removal: the
            # lookup's recency bump is dead state on a leaving line.
            set_index = block & (l3.num_sets - 1)
            l3._orders[set_index].remove(slot)
            l3._free[set_index].append(slot)
            l3._tags[slot] = -1
            moved_dirty = l3._dirty[slot]
            moved_compressed = l3._compressed[slot]
            moved_ptb = l3._is_ptb[slot]
            self._fill_l2(block, moved_dirty, moved_compressed, moved_ptb,
                          writebacks)
            self._fill_l1(block, is_write, moved_compressed, moved_ptb,
                          writebacks)
            return 2

        self._fill_l2(block, dirty=False, compressed=False, is_ptb=is_ptb,
                      writebacks=writebacks)
        self._fill_l1(block, is_write, compressed=False, is_ptb=is_ptb,
                      writebacks=writebacks)
        return 3

    # ------------------------------------------------------------------
    # Fill helpers (inclusive L2, exclusive L3)
    # ------------------------------------------------------------------

    # The fill helpers write the columnar state directly: they sit under
    # every L1 miss of the replay loop, and both the object graph and the
    # call layers of the original per-line implementation dominated the
    # hierarchy's profile.  Any change to the fill semantics must be
    # mirrored in ``ReferenceSetAssociativeCache`` (``sa_cache.py``).

    def _fill_l1(self, block: int, is_write: bool, compressed, is_ptb,
                 writebacks: List[int]) -> None:
        l1 = self.l1
        index = l1._index
        slot = index.get(block)
        if slot is not None:  # refresh in place
            order = l1._orders[block & (l1.num_sets - 1)]
            if order[-1] != slot:
                order.remove(slot)
                order.append(slot)
            if is_write:
                l1._dirty[slot] = 1
            l1._compressed[slot] = 1 if compressed else 0
            if is_ptb:
                l1._is_ptb[slot] = 1
            return
        set_index = block & (l1.num_sets - 1)
        order = l1._orders[set_index]
        victim_block = -1
        if len(order) >= l1.associativity:
            slot = order.pop(0)
            victim_dirty = l1._dirty[slot]
            if victim_dirty:
                victim_block = l1._tags[slot]
                victim_compressed = l1._compressed[slot]
                victim_ptb = l1._is_ptb[slot]
                del index[victim_block]
            else:
                del index[l1._tags[slot]]
        else:
            slot = l1._free[set_index].pop()
        try:
            l1._tags[slot] = block
        except OverflowError:  # beyond int64: demote via the slow helper
            l1._store_tag(slot, block)
        l1._dirty[slot] = 1 if is_write else 0
        l1._compressed[slot] = 1 if compressed else 0
        l1._is_ptb[slot] = 1 if is_ptb else 0
        index[block] = slot
        order.append(slot)
        if victim_block >= 0:
            # Inclusive L2 holds the line; merge the dirty data down.
            l2 = self.l2
            l2_slot = l2._index.get(victim_block)
            if l2_slot is not None:
                l2._dirty[l2_slot] = 1
            else:
                # L2 already evicted it (rare ordering); send to L3.
                self._victim_to_l3(victim_block, True, victim_compressed,
                                   victim_ptb, writebacks)

    def _fill_l2(self, block: int, dirty, compressed, is_ptb,
                 writebacks: List[int]) -> None:
        l2 = self.l2
        index = l2._index
        slot = index.get(block)
        if slot is not None:  # refresh in place
            order = l2._orders[block & (l2.num_sets - 1)]
            if order[-1] != slot:
                order.remove(slot)
                order.append(slot)
            if dirty:
                l2._dirty[slot] = 1
            l2._compressed[slot] = 1 if compressed else 0
            if is_ptb:
                l2._is_ptb[slot] = 1
            return
        set_index = block & (l2.num_sets - 1)
        order = l2._orders[set_index]
        victim_block = -1
        if len(order) >= l2.associativity:
            slot = order.pop(0)
            victim_block = l2._tags[slot]
            victim_dirty = l2._dirty[slot]
            victim_compressed = l2._compressed[slot]
            victim_ptb = l2._is_ptb[slot]
            del index[victim_block]
        else:
            slot = l2._free[set_index].pop()
        try:
            l2._tags[slot] = block
        except OverflowError:  # beyond int64: demote via the slow helper
            l2._store_tag(slot, block)
        l2._dirty[slot] = 1 if dirty else 0
        l2._compressed[slot] = 1 if compressed else 0
        l2._is_ptb[slot] = 1 if is_ptb else 0
        index[block] = slot
        order.append(slot)
        if victim_block >= 0:
            # Inclusive: purge the L1 copy; its dirtiness rides along.
            l1 = self.l1
            l1_slot = l1._index.pop(victim_block, None)
            if l1_slot is not None:
                l1_set = victim_block & (l1.num_sets - 1)
                l1._orders[l1_set].remove(l1_slot)
                l1._free[l1_set].append(l1_slot)
                l1._tags[l1_slot] = -1
                if l1._dirty[l1_slot]:
                    victim_dirty = True
            self._victim_to_l3(victim_block, victim_dirty, victim_compressed,
                               victim_ptb, writebacks)

    def _victim_to_l3(self, block: int, dirty, compressed, is_ptb,
                      writebacks: List[int]) -> None:
        l3 = self.l3
        index = l3._index
        slot = index.get(block)
        if slot is not None:  # refresh in place
            order = l3._orders[block & (l3.num_sets - 1)]
            if order[-1] != slot:
                order.remove(slot)
                order.append(slot)
            if dirty:
                l3._dirty[slot] = 1
            l3._compressed[slot] = 1 if compressed else 0
            if is_ptb:
                l3._is_ptb[slot] = 1
            return
        set_index = block & (l3.num_sets - 1)
        order = l3._orders[set_index]
        if len(order) >= l3.associativity:
            slot = order.pop(0)
            if l3._dirty[slot]:
                writebacks.append(l3._tags[slot])
            del index[l3._tags[slot]]
        else:
            slot = l3._free[set_index].pop()
        try:
            l3._tags[slot] = block
        except OverflowError:  # beyond int64: demote via the slow helper
            l3._store_tag(slot, block)
        l3._dirty[slot] = 1 if dirty else 0
        l3._compressed[slot] = 1 if compressed else 0
        l3._is_ptb[slot] = 1 if is_ptb else 0
        index[block] = slot
        order.append(slot)

    # ------------------------------------------------------------------
    # Prefetch
    # ------------------------------------------------------------------

    def _prefetch_candidates_l1(self, block: int) -> List[int]:
        candidates = self._next_line.on_miss(block)
        candidates += self._stride_l1.on_access(block)
        return candidates

    def _issue_prefetches(self, blocks: List[int], writebacks: List[int]) -> None:
        """Install prefetched blocks into L2 (no latency is charged)."""
        if not blocks:
            return
        l1, l2, l3 = self.l1, self.l2, self.l3
        l1_index = l1._index
        l2_index = l2._index
        l3_index = l3._index
        for block in blocks:
            if block in l1_index or block in l2_index:
                continue
            # contains + invalidate collapse to one removal.
            slot = l3_index.pop(block, None)
            if slot is not None:
                set_index = block & (l3.num_sets - 1)
                l3._orders[set_index].remove(slot)
                l3._free[set_index].append(slot)
                l3._tags[slot] = -1
                self._fill_l2(block, l3._dirty[slot], l3._compressed[slot],
                              l3._is_ptb[slot], writebacks)
            else:
                self._fill_l2(block, dirty=False, compressed=False,
                              is_ptb=False, writebacks=writebacks)

    # ------------------------------------------------------------------
    # Introspection for the compression controllers
    # ------------------------------------------------------------------

    def resident_line(self, address: int) -> Optional[CacheLine]:
        """The L1/L2/L3 line holding ``address``, if any (no side effects)."""
        block = address >> 6
        return self.l1.peek(block) or self.l2.peek(block) or self.l3.peek(block)

    def mark_compressed(self, address: int, compressed: bool = True) -> None:
        """Set the compressed-PTB data bit on whichever copies exist."""
        block = address >> 6
        flag = 1 if compressed else 0
        for cache in (self.l1, self.l2, self.l3):
            slot = cache._index.get(block)
            if slot is not None:
                cache._compressed[slot] = flag

    def invalidate_everywhere(self, address: int) -> None:
        block = address >> 6
        for cache in (self.l1, self.l2, self.l3):
            cache.invalidate(block)
