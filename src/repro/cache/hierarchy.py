"""The three-level cache hierarchy of Table III.

Structure: 64 KB L1 (data+instruction modeled as one), 256 KB inclusive L2,
8 MB exclusive L3, with L1/L2 next-line + stride prefetchers.  Latencies
are Table III's: L1 3 cycles, L2 +11, L3 +50.

The hierarchy serves *block* requests and reports whether DRAM must be
involved (``l3_miss``); the memory controller owns everything below.  Dirty
L3 victims surface as ``dram_writebacks`` so the controller can model write
traffic and compressed-page bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.cache.prefetch import NextLinePrefetcher, StridePrefetcher
from repro.cache.sa_cache import CacheLine, SetAssociativeCache
from repro.common.units import KIB, MIB


@dataclass(frozen=True)
class HierarchyConfig:
    """Sizes/latencies per Table III."""

    l1_size: int = 64 * KIB
    l1_assoc: int = 8
    l2_size: int = 256 * KIB
    l2_assoc: int = 8
    l3_size: int = 8 * MIB
    l3_assoc: int = 16
    l1_latency: int = 3
    l2_latency: int = 11  # additional cycles
    l3_latency: int = 50  # additional cycles
    enable_prefetch: bool = True
    l1_stride_degree: int = 2
    l2_stride_degree: int = 4


@dataclass(slots=True)
class AccessResult:
    """What one block access did."""

    hit_level: str  # "l1" | "l2" | "l3" | "memory"
    latency_cycles: int
    l3_miss: bool
    dram_writebacks: List[int] = field(default_factory=list)
    served_compressed: bool = False

    @property
    def hit(self) -> bool:
        return self.hit_level != "memory"


class CacheHierarchy:
    """L1 + inclusive L2 + exclusive L3 with prefetch.

    ``shared_l3`` lets several per-core hierarchies sit in front of one
    LLC, the Table III multi-core organization (private L1/L2 per core,
    one shared exclusive L3).
    """

    def __init__(self, config: HierarchyConfig = HierarchyConfig(),
                 shared_l3: Optional[SetAssociativeCache] = None) -> None:
        self.config = config
        self.l1 = SetAssociativeCache(config.l1_size, config.l1_assoc, "l1")
        self.l2 = SetAssociativeCache(config.l2_size, config.l2_assoc, "l2")
        self.l3 = shared_l3 if shared_l3 is not None else SetAssociativeCache(
            config.l3_size, config.l3_assoc, "l3")
        self._next_line = NextLinePrefetcher()
        self._stride_l1 = StridePrefetcher(degree=config.l1_stride_degree)
        self._stride_l2 = StridePrefetcher(degree=config.l2_stride_degree)

    # ------------------------------------------------------------------
    # Main access path
    # ------------------------------------------------------------------

    def access(self, address: int, is_write: bool = False,
               is_ptb: bool = False) -> AccessResult:
        """Serve one demand access; returns where it hit and at what cost."""
        block = address >> 6
        config = self.config
        writebacks: List[int] = []

        if config.enable_prefetch:
            self._next_line.train_demand(block)

        line = self.l1.lookup(block, is_write)
        if line is not None:
            return AccessResult("l1", config.l1_latency, l3_miss=False,
                                served_compressed=line.compressed)

        latency = config.l1_latency + config.l2_latency
        if config.enable_prefetch:
            self._issue_prefetches(self._prefetch_candidates_l1(block), writebacks)

        line = self.l2.lookup(block)
        if line is not None:
            self._fill_l1(block, is_write, line.compressed, line.is_ptb, writebacks)
            return AccessResult("l2", latency, l3_miss=False,
                                dram_writebacks=writebacks,
                                served_compressed=line.compressed)

        latency += config.l3_latency
        if config.enable_prefetch:
            self._issue_prefetches(self._stride_l2.on_access(block), writebacks)

        line = self.l3.lookup(block)
        if line is not None:
            # Exclusive L3: the block moves up to L2/L1.
            moved = self.l3.invalidate(block)
            self._fill_l2(block, moved.dirty if moved else False,
                          moved.compressed if moved else False,
                          moved.is_ptb if moved else is_ptb, writebacks)
            self._fill_l1(block, is_write,
                          moved.compressed if moved else False,
                          moved.is_ptb if moved else is_ptb, writebacks)
            return AccessResult("l3", latency, l3_miss=False,
                                dram_writebacks=writebacks,
                                served_compressed=moved.compressed if moved else False)

        # Memory: caller adds DRAM latency; we complete the fills now.
        self._fill_l2(block, dirty=False, compressed=False, is_ptb=is_ptb,
                      writebacks=writebacks)
        self._fill_l1(block, is_write, compressed=False, is_ptb=is_ptb,
                      writebacks=writebacks)
        return AccessResult("memory", latency, l3_miss=True,
                            dram_writebacks=writebacks)

    def access_fast(self, block: int, is_write: bool, is_ptb: bool,
                    writebacks: List[int]) -> int:
        """Zero-observer variant of :meth:`access`.

        Returns the hit level (0=L1, 1=L2, 2=L3, 3=memory) instead of an
        :class:`AccessResult`; dirty L3 victims are appended to the
        caller-owned ``writebacks`` list.  Every cache, prefetcher, and
        stat state transition must stay identical to :meth:`access` (the
        fast-path contract, ``docs/performance.md``).
        """
        if self.config.enable_prefetch:
            outstanding = self._next_line._outstanding
            if block in outstanding:
                outstanding[block] = True

        l1 = self.l1
        entries = l1._sets[block & (l1.num_sets - 1)]
        line = entries.get(block)
        stats = l1.stats
        stats.total += 1
        if line is not None:
            stats.hits += 1
            entries.move_to_end(block)
            if is_write:
                line.dirty = True
            return 0
        return self.access_fast_miss(block, is_write, is_ptb, writebacks)

    def access_fast_miss(self, block: int, is_write: bool, is_ptb: bool,
                         writebacks: List[int]) -> int:
        """L1-miss continuation of :meth:`access_fast`.

        Split out so the fast replay loop can inline the (hot, trivial)
        next-line training + L1 probe and only pay a call on a miss.
        """
        if self.config.enable_prefetch:
            # _prefetch_candidates_l1 issued in candidate order; issuing
            # next-line candidates before training the L1 stride table is
            # equivalent because prefetchers never read cache contents.
            self._issue_prefetches(self._next_line.on_miss(block), writebacks)
            self._issue_prefetches(self._stride_l1.on_access(block), writebacks)

        l2 = self.l2
        entries = l2._sets[block & (l2.num_sets - 1)]
        line = entries.get(block)
        stats = l2.stats
        stats.total += 1
        if line is not None:
            stats.hits += 1
            entries.move_to_end(block)
            self._fill_l1(block, is_write, line.compressed, line.is_ptb, writebacks)
            return 1

        if self.config.enable_prefetch:
            self._issue_prefetches(self._stride_l2.on_access(block), writebacks)

        l3 = self.l3
        entries = l3._sets[block & (l3.num_sets - 1)]
        moved = entries.get(block)
        stats = l3.stats
        stats.total += 1
        if moved is not None:
            stats.hits += 1
            # lookup-then-invalidate collapses to one removal: the
            # lookup's recency bump is dead state on a leaving line.
            del entries[block]
            self._fill_l2(block, moved.dirty, moved.compressed,
                          moved.is_ptb, writebacks)
            self._fill_l1(block, is_write, moved.compressed, moved.is_ptb,
                          writebacks)
            return 2

        self._fill_l2(block, dirty=False, compressed=False, is_ptb=is_ptb,
                      writebacks=writebacks)
        self._fill_l1(block, is_write, compressed=False, is_ptb=is_ptb,
                      writebacks=writebacks)
        return 3

    # ------------------------------------------------------------------
    # Fill helpers (inclusive L2, exclusive L3)
    # ------------------------------------------------------------------

    # The fill helpers inline :meth:`SetAssociativeCache.fill` (and the
    # peek/invalidate of the inclusion maintenance): they sit under every
    # L1 miss of the replay loop, and the extra call layers dominated the
    # hierarchy's profile.  Any change to the fill semantics must be
    # mirrored in ``sa_cache.py``.

    def _fill_l1(self, block: int, is_write: bool, compressed: bool,
                 is_ptb: bool, writebacks: List[int]) -> None:
        l1 = self.l1
        entries = l1._sets[block & (l1.num_sets - 1)]
        line = entries.get(block)
        if line is not None:  # refresh in place
            entries.move_to_end(block)
            line.dirty = line.dirty or is_write
            line.compressed = compressed
            line.is_ptb = line.is_ptb or is_ptb
            return
        victim = None
        if len(entries) >= l1.associativity:
            _, victim = entries.popitem(last=False)
        entries[block] = CacheLine(block, dirty=is_write,
                                   compressed=compressed, is_ptb=is_ptb)
        if victim is not None and victim.dirty:
            # Inclusive L2 holds the line; merge the dirty data down.
            l2 = self.l2
            l2_line = l2._sets[victim.block & (l2.num_sets - 1)].get(victim.block)
            if l2_line is not None:
                l2_line.dirty = True
            else:
                # L2 already evicted it (rare ordering); send to L3.
                self._victim_to_l3(victim, writebacks)

    def _fill_l2(self, block: int, dirty: bool, compressed: bool,
                 is_ptb: bool, writebacks: List[int]) -> None:
        l2 = self.l2
        entries = l2._sets[block & (l2.num_sets - 1)]
        line = entries.get(block)
        if line is not None:  # refresh in place
            entries.move_to_end(block)
            line.dirty = line.dirty or dirty
            line.compressed = compressed
            line.is_ptb = line.is_ptb or is_ptb
            return
        victim = None
        if len(entries) >= l2.associativity:
            _, victim = entries.popitem(last=False)
        entries[block] = CacheLine(block, dirty=dirty, compressed=compressed,
                                   is_ptb=is_ptb)
        if victim is not None:
            # Inclusive: purge the L1 copy; its dirtiness rides along.
            l1 = self.l1
            l1_copy = l1._sets[victim.block & (l1.num_sets - 1)].pop(
                victim.block, None)
            if l1_copy is not None and l1_copy.dirty:
                victim.dirty = True
            self._victim_to_l3(victim, writebacks)

    def _victim_to_l3(self, victim: CacheLine, writebacks: List[int]) -> None:
        l3 = self.l3
        block = victim.block
        entries = l3._sets[block & (l3.num_sets - 1)]
        line = entries.get(block)
        if line is not None:  # refresh in place
            entries.move_to_end(block)
            line.dirty = line.dirty or victim.dirty
            line.compressed = victim.compressed
            line.is_ptb = line.is_ptb or victim.is_ptb
            return
        l3_victim = None
        if len(entries) >= l3.associativity:
            _, l3_victim = entries.popitem(last=False)
        # The victim object itself moves into L3: it is unreferenced after
        # this call and the fill would copy its fields verbatim anyway.
        entries[block] = victim
        if l3_victim is not None and l3_victim.dirty:
            writebacks.append(l3_victim.block)

    # ------------------------------------------------------------------
    # Prefetch
    # ------------------------------------------------------------------

    def _prefetch_candidates_l1(self, block: int) -> List[int]:
        candidates = self._next_line.on_miss(block)
        candidates += self._stride_l1.on_access(block)
        return candidates

    def _issue_prefetches(self, blocks: List[int], writebacks: List[int]) -> None:
        """Install prefetched blocks into L2 (no latency is charged)."""
        if not blocks:
            return
        l1, l2, l3 = self.l1, self.l2, self.l3
        for block in blocks:
            if block in l1._sets[block & (l1.num_sets - 1)]:
                continue
            if block in l2._sets[block & (l2.num_sets - 1)]:
                continue
            # contains + invalidate collapse to one pop.
            moved = l3._sets[block & (l3.num_sets - 1)].pop(block, None)
            if moved is not None:
                self._fill_l2(block, moved.dirty, moved.compressed,
                              moved.is_ptb, writebacks)
            else:
                self._fill_l2(block, dirty=False, compressed=False,
                              is_ptb=False, writebacks=writebacks)

    # ------------------------------------------------------------------
    # Introspection for the compression controllers
    # ------------------------------------------------------------------

    def resident_line(self, address: int) -> Optional[CacheLine]:
        """The L1/L2/L3 line holding ``address``, if any (no side effects)."""
        block = address >> 6
        return self.l1.peek(block) or self.l2.peek(block) or self.l3.peek(block)

    def mark_compressed(self, address: int, compressed: bool = True) -> None:
        """Set the compressed-PTB data bit on whichever copies exist."""
        block = address >> 6
        for cache in (self.l1, self.l2, self.l3):
            line = cache.peek(block)
            if line is not None:
                line.compressed = compressed

    def invalidate_everywhere(self, address: int) -> None:
        block = address >> 6
        for cache in (self.l1, self.l2, self.l3):
            cache.invalidate(block)
