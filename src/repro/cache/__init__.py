"""Cache substrate: set-associative caches, the three-level hierarchy of
Table III, and the next-line/stride prefetchers the simulated system uses.
"""

from repro.cache.sa_cache import CacheLine, SetAssociativeCache
from repro.cache.hierarchy import AccessResult, CacheHierarchy, HierarchyConfig
from repro.cache.prefetch import NextLinePrefetcher, StridePrefetcher

__all__ = [
    "CacheLine",
    "SetAssociativeCache",
    "AccessResult",
    "CacheHierarchy",
    "HierarchyConfig",
    "NextLinePrefetcher",
    "StridePrefetcher",
]
