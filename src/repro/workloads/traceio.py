"""Trace file I/O.

The simulator is trace-driven, so users with their own address traces
(from Pin, DynamoRIO, gem5, or production sampling) can replay them
through every memory system here.  The format is deliberately simple:

Binary format ``.rtrc`` (little-endian):

```
magic   4 B   b"RTRC"
version 2 B   1
flags   2 B   reserved (0)
count   8 B   number of records
records count x 8 B each: (virtual byte address << 1) | is_write
        -- byte addresses up to 2^62 round-trip exactly.
```

A text format (one ``R <hex addr>`` / ``W <hex addr>`` per line, ``#``
comments) is also supported for hand-written traces.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import Callable, List, Optional, Union

from repro.workloads.trace import Access, Workload

_MAGIC = b"RTRC"
_VERSION = 1
_HEADER = struct.Struct("<4sHHQ")


def save_trace(trace: List[Access], path: Union[str, Path]) -> None:
    """Write a trace in the binary ``.rtrc`` format."""
    path = Path(path)
    with path.open("wb") as f:
        f.write(_HEADER.pack(_MAGIC, _VERSION, 0, len(trace)))
        packer = struct.Struct("<Q")
        for address, is_write in trace:
            if address < 0 or address >= 1 << 62:
                raise ValueError(f"address {address:#x} out of range")
            f.write(packer.pack((address << 1) | int(is_write)))


def load_trace(path: Union[str, Path]) -> List[Access]:
    """Read a binary ``.rtrc`` trace."""
    path = Path(path)
    data = path.read_bytes()
    if len(data) < _HEADER.size:
        raise ValueError(f"{path} is not a trace file (too short)")
    magic, version, _flags, count = _HEADER.unpack_from(data)
    if magic != _MAGIC:
        raise ValueError(f"{path} is not a trace file (bad magic)")
    if version != _VERSION:
        raise ValueError(f"unsupported trace version {version}")
    expected = _HEADER.size + count * 8
    if len(data) != expected:
        raise ValueError(
            f"trace truncated: {len(data)} bytes, expected {expected}"
        )
    trace: List[Access] = []
    for (word,) in struct.iter_unpack("<Q", data[_HEADER.size:]):
        trace.append((word >> 1, bool(word & 1)))
    return trace


def save_trace_text(trace: List[Access], path: Union[str, Path]) -> None:
    """Write the human-readable text format."""
    path = Path(path)
    with path.open("w") as f:
        f.write("# repro trace: 'R <hex address>' or 'W <hex address>'\n")
        for address, is_write in trace:
            f.write(f"{'W' if is_write else 'R'} {address:#x}\n")


def load_trace_text(path: Union[str, Path]) -> List[Access]:
    """Read the text format (``R``/``W`` + address per line)."""
    trace: List[Access] = []
    for line_number, line in enumerate(Path(path).read_text().splitlines(), 1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) != 2 or parts[0] not in ("R", "W"):
            raise ValueError(f"{path}:{line_number}: expected 'R|W <addr>'")
        trace.append((int(parts[1], 0), parts[0] == "W"))
    return trace


def workload_from_trace(
    path: Union[str, Path],
    name: Optional[str] = None,
    content: Optional[Callable[[int], bytes]] = None,
    compute_cycles_per_access: float = 4.0,
) -> Workload:
    """Wrap a trace file as a :class:`Workload` the simulator accepts.

    The footprint is derived from the trace's address range; page
    contents default to the ``graph`` profile (override ``content`` if
    your pages' compressibility matters to the experiment).
    """
    path = Path(path)
    if path.suffix == ".rtrc":
        trace = load_trace(path)
    else:
        trace = load_trace_text(path)
    if not trace:
        raise ValueError(f"{path} contains no accesses")
    vpns = [address >> 12 for address, _ in trace]
    base_vpn = min(vpns)
    footprint_pages = max(vpns) - base_vpn + 1
    if content is None:
        from repro.workloads.content import ContentSynthesizer

        content = ContentSynthesizer("graph", seed=1).page
    return Workload(
        name=name or path.stem,
        trace=trace,
        footprint_pages=footprint_pages,
        content=content,
        compute_cycles_per_access=compute_cycles_per_access,
        description=f"trace loaded from {path}",
        base_vpn=base_vpn,
    )
