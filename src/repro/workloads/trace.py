"""Trace record types.

A trace is a list of ``Access`` tuples -- kept as plain tuples, not
objects, because the simulator replays hundreds of thousands of them per
benchmark and Python attribute access would dominate the runtime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Tuple

#: One memory access: (virtual byte address, is_write).
Access = Tuple[int, bool]


@dataclass
class Workload:
    """A benchmark: its trace, footprint, contents, and intensity.

    ``compute_cycles_per_access`` models how much non-memory work separates
    consecutive accesses -- the knob behind Figure 16's memory-intensity
    spread (canneal/shortestPath are intense, kcore/triCount less so).

    ``content`` maps a vpn to that page's 4 KB of bytes; the compression
    controllers call it when a page first migrates to ML2 and cache the
    result, so content is synthesized lazily.
    """

    name: str
    trace: List[Access]
    footprint_pages: int
    content: Callable[[int], bytes]
    compute_cycles_per_access: float = 4.0
    description: str = ""
    #: vpn of the first mapped page (regions are contiguous from here).
    base_vpn: int = 0

    def touched_vpns(self) -> List[int]:
        """Distinct virtual pages the trace touches, in first-touch order."""
        seen = {}
        for vaddr, _ in self.trace:
            vpn = vaddr >> 12
            if vpn not in seen:
                seen[vpn] = None
        return list(seen)

    @property
    def access_count(self) -> int:
        return len(self.trace)

    def write_fraction(self) -> float:
        if not self.trace:
            return 0.0
        return sum(1 for _, w in self.trace if w) / len(self.trace)
