"""Workload substrate.

The paper evaluates GraphBIG kernels on a Facebook-like social graph plus
mcf, omnetpp, and canneal (Figure 16 characterizes them; Figures 1/2/17-21
and Table IV report on them).  We cannot ship those binaries or the 106 GB
dataset, so this package synthesizes each workload's *memory behaviour*:

- :mod:`repro.workloads.graphs` -- a CSR power-law graph and real graph
  algorithm implementations (pageRank, BFS, DFS, connected components,
  graph coloring, degree centrality, shortest path, k-core, triangle
  counting) that emit their actual address streams.
- :mod:`repro.workloads.generators` -- the non-graph workloads (mcf-like
  pointer chasing, omnetpp-like event queue, canneal-like random swaps,
  the small PARSEC-like kernels, a RocksDB-like key-value trace, and the
  bandwidth-intensive kernels of Figure 22).
- :mod:`repro.workloads.content` -- page-content synthesizers that give
  every virtual page realistic bytes, calibrated per workload family so
  compression ratios land in the paper's ranges (Table IV, Figure 15).
- :mod:`repro.workloads.dumps` -- the memory-dump corpus behind Figure 15.
"""

from repro.workloads.trace import Access, Workload
from repro.workloads.graphs import CSRGraph, graph_workload, GRAPH_KERNELS
from repro.workloads.generators import (
    mcf_workload,
    omnetpp_workload,
    canneal_workload,
    small_workload,
    bandwidth_workload,
    SMALL_KERNELS,
    BANDWIDTH_KERNELS,
)
from repro.workloads.suite import (
    PAPER_WORKLOAD_NAMES,
    cached_workload,
    clear_workload_cache,
    paper_workloads,
    workload_by_name,
)
from repro.workloads.content import ContentSynthesizer, CONTENT_PROFILES
from repro.workloads.dumps import dump_corpus, DUMP_BENCHMARKS
from repro.workloads.traceio import (
    load_trace,
    load_trace_text,
    save_trace,
    save_trace_text,
    workload_from_trace,
)

__all__ = [
    "Access",
    "Workload",
    "CSRGraph",
    "graph_workload",
    "GRAPH_KERNELS",
    "mcf_workload",
    "omnetpp_workload",
    "canneal_workload",
    "small_workload",
    "bandwidth_workload",
    "SMALL_KERNELS",
    "BANDWIDTH_KERNELS",
    "paper_workloads",
    "workload_by_name",
    "cached_workload",
    "clear_workload_cache",
    "PAPER_WORKLOAD_NAMES",
    "ContentSynthesizer",
    "CONTENT_PROFILES",
    "dump_corpus",
    "DUMP_BENCHMARKS",
    "load_trace",
    "load_trace_text",
    "save_trace",
    "save_trace_text",
    "workload_from_trace",
]
