"""The paper's main workload suite (Figures 1, 2, 16-21, Table IV).

Twelve large and/or irregular workloads: nine GraphBIG kernels, mcf,
omnetpp, and canneal.  ``paper_workloads`` builds them all with one seed
and consistent scaling knobs so every benchmark harness sees the same
traces.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.workloads.generators import (
    canneal_workload,
    mcf_workload,
    omnetpp_workload,
)
from repro.workloads.graphs import GRAPH_KERNELS, graph_workload
from repro.workloads.trace import Workload

#: Order matches the paper's figures.
PAPER_WORKLOAD_NAMES = (
    "pageRank", "graphCol", "connComp", "degCentr", "shortestPath",
    "bfs", "dfs", "kcore", "triCount", "mcf", "omnetpp", "canneal",
)


def workload_by_name(
    name: str,
    max_accesses: int = 120_000,
    seed: int = 1,
    scale: float = 1.0,
) -> Workload:
    """Build one paper workload.  ``scale`` shrinks footprints/traces for
    quick tests (1.0 = benchmark-default sizes)."""
    accesses = max(1_000, int(max_accesses * scale))
    if name in GRAPH_KERNELS:
        return graph_workload(
            name,
            num_vertices=max(5_000, int(400_000 * scale)),
            max_accesses=accesses,
            seed=seed,
        )
    if name == "mcf":
        return mcf_workload(
            footprint_pages=max(500, int(24_000 * scale)),
            max_accesses=accesses, seed=seed + 1,
        )
    if name == "omnetpp":
        return omnetpp_workload(
            footprint_pages=max(300, int(8_000 * scale)),
            max_accesses=accesses, seed=seed + 2,
        )
    if name == "canneal":
        return canneal_workload(
            footprint_pages=max(500, int(20_000 * scale)),
            max_accesses=accesses, seed=seed + 3,
        )
    raise ValueError(f"unknown workload {name!r}; "
                     f"choose from {PAPER_WORKLOAD_NAMES}")


#: Memoized traces, keyed by every knob that shapes them.  Sweeps touch
#: the same (workload, seed, size) configuration once per controller x
#: budget x fault-plan cell; building the trace once and sharing it
#: read-only is the difference between O(cells) and O(workloads) setup.
#: With a fork-based worker pool the parent pre-builds the cache and the
#: children inherit the traces copy-on-write, so no per-process rebuild
#: happens either.  Cached workloads must be treated as immutable.
_WORKLOAD_CACHE: Dict[Tuple[str, int, int, float], Workload] = {}


def cached_workload(
    name: str,
    max_accesses: int = 120_000,
    seed: int = 1,
    scale: float = 1.0,
) -> Workload:
    """A memoized :func:`workload_by_name`.

    Returns the *same* :class:`Workload` object for identical
    ``(name, max_accesses, seed, scale)`` knobs.  Callers must not
    mutate the trace; the simulator only replays it.
    """
    key = (name, max_accesses, seed, scale)
    workload = _WORKLOAD_CACHE.get(key)
    if workload is None:
        workload = workload_by_name(name, max_accesses=max_accesses,
                                    seed=seed, scale=scale)
        _WORKLOAD_CACHE[key] = workload
    return workload


def clear_workload_cache() -> None:
    """Drop every memoized trace (tests / memory-pressure escape hatch)."""
    _WORKLOAD_CACHE.clear()


def paper_workloads(
    names: Optional[List[str]] = None,
    max_accesses: int = 120_000,
    seed: int = 1,
    scale: float = 1.0,
) -> Dict[str, Workload]:
    """Build the full suite (or a named subset)."""
    selected = names or list(PAPER_WORKLOAD_NAMES)
    return {
        name: workload_by_name(name, max_accesses, seed, scale)
        for name in selected
    }
