"""The paper's main workload suite (Figures 1, 2, 16-21, Table IV).

Twelve large and/or irregular workloads: nine GraphBIG kernels, mcf,
omnetpp, and canneal.  ``paper_workloads`` builds them all with one seed
and consistent scaling knobs so every benchmark harness sees the same
traces.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.workloads.generators import (
    canneal_workload,
    mcf_workload,
    omnetpp_workload,
)
from repro.workloads.graphs import GRAPH_KERNELS, graph_workload
from repro.workloads.trace import Workload

#: Order matches the paper's figures.
PAPER_WORKLOAD_NAMES = (
    "pageRank", "graphCol", "connComp", "degCentr", "shortestPath",
    "bfs", "dfs", "kcore", "triCount", "mcf", "omnetpp", "canneal",
)


def workload_by_name(
    name: str,
    max_accesses: int = 120_000,
    seed: int = 1,
    scale: float = 1.0,
) -> Workload:
    """Build one paper workload.  ``scale`` shrinks footprints/traces for
    quick tests (1.0 = benchmark-default sizes)."""
    accesses = max(1_000, int(max_accesses * scale))
    if name in GRAPH_KERNELS:
        return graph_workload(
            name,
            num_vertices=max(5_000, int(400_000 * scale)),
            max_accesses=accesses,
            seed=seed,
        )
    if name == "mcf":
        return mcf_workload(
            footprint_pages=max(500, int(24_000 * scale)),
            max_accesses=accesses, seed=seed + 1,
        )
    if name == "omnetpp":
        return omnetpp_workload(
            footprint_pages=max(300, int(8_000 * scale)),
            max_accesses=accesses, seed=seed + 2,
        )
    if name == "canneal":
        return canneal_workload(
            footprint_pages=max(500, int(20_000 * scale)),
            max_accesses=accesses, seed=seed + 3,
        )
    raise ValueError(f"unknown workload {name!r}; "
                     f"choose from {PAPER_WORKLOAD_NAMES}")


def paper_workloads(
    names: Optional[List[str]] = None,
    max_accesses: int = 120_000,
    seed: int = 1,
    scale: float = 1.0,
) -> Dict[str, Workload]:
    """Build the full suite (or a named subset)."""
    selected = names or list(PAPER_WORKLOAD_NAMES)
    return {
        name: workload_by_name(name, max_accesses, seed, scale)
        for name in selected
    }
