"""Page-content synthesizers.

Every workload needs bytes behind its pages so the compression engines
have something real to chew on.  Each profile mixes four ingredients whose
proportions control where a page lands on the compressibility spectrum:

- ``zero``: zero words (partial zero runs; fully-zero pages are excluded
  from ratio measurements, as in the paper's methodology),
- ``vocab``: multi-byte values drawn from a small working vocabulary
  (pointers to hot objects, hub vertex ids, dictionary words).  These
  repeat at page scale, which LZ captures but 64 B block compressors
  cannot see -- the mechanism behind Figure 15's block-vs-Deflate gap,
- ``delta``: arithmetic sequences (array indices, adjacent pointers) that
  even block-level BDI handles,
- ``random``: incompressible bytes (hashes, floats' mantissas).

Profiles are calibrated so each workload family's measured ratios land in
the paper's ranges (Table IV columns D/E, Figure 15).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

from repro.common.rng import DeterministicRNG
from repro.common.units import PAGE_SIZE


@dataclass(frozen=True)
class ContentProfile:
    """Ingredient mix for one workload family (fractions sum to <= 1;
    the remainder is random bytes).

    Vocabulary words are individually high-entropy (six of their eight
    bytes are random), so a 64 B block of distinct vocab words defeats
    BDI/C-Pack/BPC; redundancy only appears when the same word *recurs*
    within the page, which the 1 KB-window LZ captures.  That asymmetry is
    the measured Figure 15 gap (block 1.51x vs Deflate 3.4x geomean).
    """

    zero: float
    vocab: float
    delta: float
    #: Probability of copying a run of earlier words from > 64 B away:
    #: pure page-scale redundancy, invisible to block compressors but
    #: inside the 1 KB LZ window (records, duplicated sub-objects...).
    repeat: float = 0.0
    vocab_size: int = 512
    word_size: int = 8
    #: Zipf exponent for vocabulary draws: higher = hotter head = more
    #: page-scale repetition = better LZ ratio.
    vocab_skew: float = 1.0
    #: Two high bytes shared by vocab values (pointer-style realism).
    vocab_base: int = 0x5555


#: Per-family profiles.  Calibration targets (our Deflate / block-level):
#:   graph    ~3.0x / ~1.3x   (Table IV cols E/D for GraphBIG)
#:   mcf      ~2.5x / ~1.1x
#:   omnetpp  ~2.5x / ~1.6x
#:   canneal  ~1.5x / ~1.15x
#:   small    ~3-4x / ~1.5x   (blackscholes-style streaming data)
CONTENT_PROFILES: Dict[str, ContentProfile] = {
    "graph": ContentProfile(zero=0.15, vocab=0.33, delta=0.12, repeat=0.20,
                            vocab_size=700, vocab_skew=1.05),
    "mcf": ContentProfile(zero=0.05, vocab=0.52, delta=0.03, repeat=0.22,
                          vocab_size=1600, vocab_skew=1.0,
                          vocab_base=0x7F2A),
    "omnetpp": ContentProfile(zero=0.20, vocab=0.42, delta=0.15, repeat=0.18,
                              vocab_size=500, vocab_skew=1.1),
    "canneal": ContentProfile(zero=0.08, vocab=0.40, delta=0.05, repeat=0.09,
                              vocab_size=4000, vocab_skew=0.8),
    "small": ContentProfile(zero=0.10, vocab=0.45, delta=0.05, repeat=0.34,
                            vocab_size=220, vocab_skew=1.15),
    "rocksdb": ContentProfile(zero=0.06, vocab=0.48, delta=0.05, repeat=0.26,
                              vocab_size=600, vocab_skew=1.05),
    "stream": ContentProfile(zero=0.06, vocab=0.40, delta=0.22, repeat=0.22,
                             vocab_size=250, vocab_skew=1.1),
}


class ContentSynthesizer:
    """Deterministic vpn -> 4 KB content for one workload."""

    def __init__(self, profile: str, seed: int = 0) -> None:
        if profile not in CONTENT_PROFILES:
            raise ValueError(f"unknown content profile {profile!r}; "
                             f"choose from {sorted(CONTENT_PROFILES)}")
        self.profile_name = profile
        self.profile = CONTENT_PROFILES[profile]
        self.seed = seed
        self._vocab = self._build_vocab()

    def _build_vocab(self) -> list:
        rng = DeterministicRNG(self.seed * 77_003 + 5)
        profile = self.profile
        words = []
        for _ in range(profile.vocab_size):
            low = rng.randint(0, (1 << 48) - 1)  # six high-entropy bytes
            value = (profile.vocab_base << 48) | low
            words.append(value.to_bytes(profile.word_size, "little"))
        return words

    def page(self, vpn: int) -> bytes:
        """Generate the contents of virtual page ``vpn``."""
        profile = self.profile
        rng = DeterministicRNG((self.seed << 40) ^ (vpn * 2_654_435_761))
        word_size = profile.word_size
        words_per_page = PAGE_SIZE // word_size
        out = bytearray()
        zero_word = bytes(word_size)
        i = 0
        while i < words_per_page:
            roll = rng.random()
            if roll < profile.zero:
                run = min(rng.randint(1, 4), words_per_page - i)
                out += zero_word * run
                i += run
            elif roll < profile.zero + profile.vocab:
                # Zipf-pick from the vocabulary: hot values repeat a lot.
                index = rng.zipf_index(len(self._vocab), profile.vocab_skew)
                out += self._vocab[index]
                i += 1
            elif roll < profile.zero + profile.vocab + profile.delta:
                run = min(rng.randint(3, 8), words_per_page - i)
                start = rng.randint(0, (1 << 40) - 1)
                stride = rng.choice([1, 8, 64, 4096])
                for j in range(run):
                    out += (start + j * stride).to_bytes(word_size, "little")
                i += run
            elif (roll < profile.zero + profile.vocab + profile.delta
                  + profile.repeat and i > 16):
                # Copy an earlier run from beyond block distance but
                # within the LZ window (64 B < distance <= ~1 KB).
                max_back = min(i, 120)
                distance = rng.randint(9, max(10, max_back))
                run = min(rng.randint(2, 8), distance, words_per_page - i)
                start_byte = (i - distance) * word_size
                out += out[start_byte : start_byte + run * word_size]
                i += run
            else:
                out += rng.bytes(word_size)
                i += 1
        return bytes(out[:PAGE_SIZE])


def synthesizer_for(profile: str, seed: int = 0) -> Callable[[int], bytes]:
    """Convenience: a vpn -> bytes callable for :class:`Workload`."""
    return ContentSynthesizer(profile, seed).page
