"""GraphBIG-like graph analytics workloads.

The paper runs IBM GraphBIG kernels over a Facebook-like LDBC social graph.
We synthesize a power-law (Zipf out-degree) graph in CSR form and run real
implementations of the nine kernels, recording every load/store each kernel
performs on the graph's arrays.  The traces therefore carry each kernel's
*native* locality: degree centrality streams, triangle counting re-reads
adjacency lists (temporal locality), shortest path bounces through a
priority queue (maximal irregularity), and so on -- which is what makes
Figure 1/2's per-kernel CTE/TLB miss spread come out of the simulator
instead of being baked in.

Memory layout (byte addresses, one contiguous virtual region):

    offsets:   (V + 1) x 8 B
    edges:     E x 8 B
    prop A/B:  V x 64 B each     (vertex property structs: ranks, labels,
                                  distances, degrees... GraphBIG keeps
                                  cache-block-sized records per vertex)
    aux:       V x 64 B          (visited/color/heap records)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.common.rng import DeterministicRNG
from repro.common.units import PAGE_SIZE
from repro.workloads.trace import Access, Workload

#: Base virtual address of graph data (arbitrary, page aligned).
GRAPH_BASE = 1 << 32


@dataclass
class CSRGraph:
    """Compressed-sparse-row graph with Zipf-skewed degrees."""

    offsets: np.ndarray  # int64[V + 1]
    edges: np.ndarray    # int64[E]

    @property
    def num_vertices(self) -> int:
        return len(self.offsets) - 1

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    def neighbors(self, vertex: int) -> np.ndarray:
        return self.edges[self.offsets[vertex]:self.offsets[vertex + 1]]

    @classmethod
    def power_law(cls, num_vertices: int, avg_degree: int, seed: int) -> "CSRGraph":
        """Build a graph with Zipf-like degree distribution.

        Targets are also Zipf-skewed (hubs attract edges), matching social
        graphs like the paper's datagen-8_5-fb dataset.
        """
        rng = np.random.default_rng(seed)
        raw = rng.zipf(1.6, size=num_vertices).astype(np.int64)
        degrees = np.minimum(raw * avg_degree // 2, num_vertices // 2)
        scale = (num_vertices * avg_degree) / max(1, degrees.sum())
        degrees = np.maximum(1, (degrees * scale).astype(np.int64))
        offsets = np.zeros(num_vertices + 1, dtype=np.int64)
        np.cumsum(degrees, out=offsets[1:])
        num_edges = int(offsets[-1])
        # Hub-skewed targets: square a uniform to bias toward low ids.
        targets = (rng.random(num_edges) ** 2 * num_vertices).astype(np.int64)
        return cls(offsets=offsets, edges=targets)


class _TraceBuilder:
    """Records array accesses; raises _Done when the budget is spent."""

    class _Done(Exception):
        pass

    def __init__(self, graph: CSRGraph, max_accesses: int) -> None:
        self.graph = graph
        self.max_accesses = max_accesses
        self.trace: List[Access] = []
        v = graph.num_vertices
        #: Bytes per vertex-property record (one cache block, like
        #: GraphBIG's property structs).
        self.prop_stride = 64
        self._offsets_base = GRAPH_BASE
        self._edges_base = self._offsets_base + 8 * (v + 1)
        self._prop_a_base = self._edges_base + 8 * graph.num_edges
        self._prop_b_base = self._prop_a_base + self.prop_stride * v
        self._aux_base = self._prop_b_base + self.prop_stride * v
        self.end = self._aux_base + self.prop_stride * v

    # -- address helpers -------------------------------------------------

    def _record(self, address: int, write: bool) -> None:
        self.trace.append((address, write))
        if len(self.trace) >= self.max_accesses:
            raise _TraceBuilder._Done

    def offsets(self, i: int, write: bool = False) -> None:
        self._record(self._offsets_base + 8 * i, write)

    def edge(self, i: int, write: bool = False) -> None:
        self._record(self._edges_base + 8 * i, write)

    def prop_a(self, v: int, write: bool = False) -> None:
        self._record(self._prop_a_base + self.prop_stride * v, write)

    def prop_b(self, v: int, write: bool = False) -> None:
        self._record(self._prop_b_base + self.prop_stride * v, write)

    def aux(self, v: int, write: bool = False) -> None:
        self._record(self._aux_base + self.prop_stride * v, write)

    @property
    def footprint_pages(self) -> int:
        return -(-(self.end - GRAPH_BASE) // PAGE_SIZE)


# ----------------------------------------------------------------------
# Kernels.  Each takes (graph, builder, rng) and runs until the trace
# budget is exhausted (builder raises _Done) or the algorithm finishes.
# ----------------------------------------------------------------------

def _sweep_order(v: int, rng: DeterministicRNG):
    """Full vertex sweep starting at a random offset (models a thread's
    partition in the multi-threaded runs the paper uses)."""
    from itertools import chain

    start = rng.randint(0, v - 1)
    return chain(range(start, v), range(start))


def _pagerank(g: CSRGraph, t: _TraceBuilder, rng: DeterministicRNG) -> None:
    v = g.num_vertices
    while True:
        for vertex in _sweep_order(v, rng):
            t.offsets(vertex)
            t.offsets(vertex + 1)
            total = 0.0
            for e in range(int(g.offsets[vertex]), int(g.offsets[vertex + 1])):
                t.edge(e)
                neighbour = int(g.edges[e])
                t.prop_a(neighbour)  # irregular rank read
                total += 1.0
            t.prop_b(vertex, write=True)


def _bfs(g: CSRGraph, t: _TraceBuilder, rng: DeterministicRNG) -> None:
    v = g.num_vertices
    visited = bytearray(v)
    frontier = [rng.randint(0, v - 1)]
    while True:
        if not frontier:
            seed = rng.randint(0, v - 1)
            visited = bytearray(v)
            frontier = [seed]
        next_frontier: List[int] = []
        for vertex in frontier:
            t.offsets(vertex)
            t.offsets(vertex + 1)
            for e in range(int(g.offsets[vertex]), int(g.offsets[vertex + 1])):
                t.edge(e)
                neighbour = int(g.edges[e])
                t.aux(neighbour)  # visited check
                if not visited[neighbour]:
                    visited[neighbour] = 1
                    t.aux(neighbour, write=True)
                    next_frontier.append(neighbour)
        frontier = next_frontier


def _dfs(g: CSRGraph, t: _TraceBuilder, rng: DeterministicRNG) -> None:
    v = g.num_vertices
    visited = bytearray(v)
    stack = [rng.randint(0, v - 1)]
    while True:
        if not stack:
            visited = bytearray(v)
            stack = [rng.randint(0, v - 1)]
        vertex = stack.pop()
        t.aux(vertex)
        if visited[vertex]:
            continue
        visited[vertex] = 1
        t.aux(vertex, write=True)
        t.offsets(vertex)
        t.offsets(vertex + 1)
        for e in range(int(g.offsets[vertex]), int(g.offsets[vertex + 1])):
            t.edge(e)
            stack.append(int(g.edges[e]))


def _connected_components(g: CSRGraph, t: _TraceBuilder,
                          rng: DeterministicRNG) -> None:
    v = g.num_vertices
    labels = list(range(v))
    while True:
        for vertex in _sweep_order(v, rng):
            t.prop_a(vertex)
            t.offsets(vertex)
            t.offsets(vertex + 1)
            best = labels[vertex]
            for e in range(int(g.offsets[vertex]), int(g.offsets[vertex + 1])):
                t.edge(e)
                neighbour = int(g.edges[e])
                t.prop_a(neighbour)
                if labels[neighbour] < best:
                    best = labels[neighbour]
            if best != labels[vertex]:
                labels[vertex] = best
                t.prop_a(vertex, write=True)


def _graph_coloring(g: CSRGraph, t: _TraceBuilder, rng: DeterministicRNG) -> None:
    v = g.num_vertices
    colors = [-1] * v
    while True:
        for vertex in _sweep_order(v, rng):
            t.offsets(vertex)
            t.offsets(vertex + 1)
            taken = set()
            for e in range(int(g.offsets[vertex]), int(g.offsets[vertex + 1])):
                t.edge(e)
                neighbour = int(g.edges[e])
                t.prop_b(neighbour)
                if colors[neighbour] >= 0:
                    taken.add(colors[neighbour])
            color = 0
            while color in taken:
                color += 1
            colors[vertex] = color
            t.prop_b(vertex, write=True)


def _degree_centrality(g: CSRGraph, t: _TraceBuilder,
                       rng: DeterministicRNG) -> None:
    v = g.num_vertices
    while True:
        # Streaming pass over offsets; writes per-vertex degree.  Then an
        # in-degree pass streams the edge array -- mostly sequential.
        for vertex in range(v):
            t.offsets(vertex)
            t.offsets(vertex + 1)
            t.prop_a(vertex, write=True)
        for e in range(g.num_edges):
            t.edge(e)
            target = int(g.edges[e])
            t.prop_b(target, write=True)


def _shortest_path(g: CSRGraph, t: _TraceBuilder, rng: DeterministicRNG) -> None:
    import heapq

    v = g.num_vertices
    while True:
        dist = {rng.randint(0, v - 1): 0}
        heap = [(0, next(iter(dist)))]
        while heap:
            d, vertex = heapq.heappop(heap)
            t.aux(vertex)  # heap slot
            t.prop_a(vertex)  # distance read
            if d > dist.get(vertex, 1 << 60):
                continue
            t.offsets(vertex)
            t.offsets(vertex + 1)
            for e in range(int(g.offsets[vertex]), int(g.offsets[vertex + 1])):
                t.edge(e)
                neighbour = int(g.edges[e])
                weight = 1 + (neighbour & 7)
                t.prop_a(neighbour)  # dist[neighbour] read
                if d + weight < dist.get(neighbour, 1 << 60):
                    dist[neighbour] = d + weight
                    t.prop_a(neighbour, write=True)
                    t.aux(neighbour, write=True)  # heap push
                    heapq.heappush(heap, (d + weight, neighbour))


def _kcore(g: CSRGraph, t: _TraceBuilder, rng: DeterministicRNG) -> None:
    v = g.num_vertices
    degrees = [int(g.offsets[i + 1] - g.offsets[i]) for i in range(v)]
    k = 2
    while True:
        removed_any = False
        # Sequential peel pass: reads the degree array in order.
        for vertex in _sweep_order(v, rng):
            t.prop_a(vertex)
            if 0 < degrees[vertex] < k:
                degrees[vertex] = 0
                t.prop_a(vertex, write=True)
                t.offsets(vertex)
                t.offsets(vertex + 1)
                for e in range(int(g.offsets[vertex]), int(g.offsets[vertex + 1])):
                    t.edge(e)
                    neighbour = int(g.edges[e])
                    if degrees[neighbour] > 0:
                        degrees[neighbour] -= 1
                        t.prop_a(neighbour, write=True)
                removed_any = True
        if not removed_any:
            k += 1


def _triangle_count(g: CSRGraph, t: _TraceBuilder, rng: DeterministicRNG) -> None:
    v = g.num_vertices
    while True:
        for vertex in _sweep_order(v, rng):
            t.offsets(vertex)
            t.offsets(vertex + 1)
            start, end = int(g.offsets[vertex]), int(g.offsets[vertex + 1])
            neighbour_list = []
            for e in range(start, min(end, start + 32)):
                t.edge(e)
                neighbour_list.append(int(g.edges[e]))
            # Intersect each neighbour's list with ours: re-reads the same
            # adjacency lists repeatedly -> strong temporal locality.
            for neighbour in neighbour_list[:8]:
                t.offsets(neighbour)
                t.offsets(neighbour + 1)
                ns, ne = int(g.offsets[neighbour]), int(g.offsets[neighbour + 1])
                for e in range(ns, min(ne, ns + 16)):
                    t.edge(e)


#: Kernel registry with per-kernel memory intensity (compute cycles per
#: access, the Figure 16 knob: lower = more memory bound).
GRAPH_KERNELS: Dict[str, tuple] = {
    "pageRank": (_pagerank, 3.0),
    "graphCol": (_graph_coloring, 3.5),
    "connComp": (_connected_components, 3.0),
    "degCentr": (_degree_centrality, 4.0),
    "shortestPath": (_shortest_path, 2.0),
    "bfs": (_bfs, 3.0),
    "dfs": (_dfs, 3.5),
    "kcore": (_kcore, 6.0),
    "triCount": (_triangle_count, 6.0),
}


def graph_workload(
    kernel: str,
    num_vertices: int = 400_000,
    avg_degree: int = 12,
    max_accesses: int = 120_000,
    seed: int = 1,
) -> Workload:
    """Build one GraphBIG-like workload trace."""
    if kernel not in GRAPH_KERNELS:
        raise ValueError(f"unknown graph kernel {kernel!r}; "
                         f"choose from {sorted(GRAPH_KERNELS)}")
    function, intensity = GRAPH_KERNELS[kernel]
    graph = CSRGraph.power_law(num_vertices, avg_degree, seed)
    builder = _TraceBuilder(graph, max_accesses)
    rng = DeterministicRNG(seed * 7919 + 13)
    try:
        function(graph, builder, rng)
    except _TraceBuilder._Done:
        pass
    from repro.workloads.content import ContentSynthesizer

    content = ContentSynthesizer("graph", seed=seed)
    return Workload(
        name=kernel,
        trace=builder.trace,
        footprint_pages=builder.footprint_pages,
        content=content.page,
        compute_cycles_per_access=intensity,
        description=f"GraphBIG-like {kernel} on a {num_vertices}-vertex "
                    f"power-law graph",
        base_vpn=GRAPH_BASE >> 12,
    )
