"""Non-graph workload generators.

- mcf (SPEC CPU2017): network-simplex pointer chasing over a large arc
  array; the classic TLB killer.  Single-threaded in the paper (they run
  four instances; we model the merged footprint).
- omnetpp (SPEC CPU2017): discrete-event simulation; a binary heap of
  events plus per-module state, moderately irregular.
- canneal (PARSEC): simulated annealing on a netlist; random element swaps
  across a huge array -- the highest memory intensity in Figure 16.
- Small/regular workloads (Section VII "Smaller Workloads"): streaming
  PARSEC-like kernels and a RocksDB-like Zipf key-value trace.
- Bandwidth-intensive kernels (Figure 22): streaming triads and stencils
  used to stress interleaving policies.
"""

from __future__ import annotations

from typing import List

from repro.common.rng import DeterministicRNG
from repro.common.units import PAGE_SIZE
from repro.workloads.content import ContentSynthesizer
from repro.workloads.trace import Access, Workload

_MCF_BASE = 2 << 32
_OMNETPP_BASE = 3 << 32
_CANNEAL_BASE = 4 << 32
_SMALL_BASE = 5 << 32
_BW_BASE = 6 << 32


def mcf_workload(footprint_pages: int = 24_000, max_accesses: int = 120_000,
                 seed: int = 2) -> Workload:
    """Pointer chasing over a big arc array with short local bursts."""
    rng = DeterministicRNG(seed)
    footprint_bytes = footprint_pages * PAGE_SIZE
    num_nodes = footprint_bytes // 64  # 64 B arc records
    trace: List[Access] = []
    node = rng.randint(0, num_nodes - 1)
    while len(trace) < max_accesses:
        address = _MCF_BASE + node * 64
        trace.append((address, False))
        # Touch a couple of fields of the record (same block / next block).
        trace.append((address + 32, False))
        if rng.chance(0.25):
            trace.append((address + 16, True))  # cost update
        # Chase: mostly a far pointer, sometimes the adjacent arc.
        if rng.chance(0.75):
            node = rng.zipf_index(num_nodes, exponent=0.9)
        else:
            node = (node + 1) % num_nodes
    return Workload(
        name="mcf",
        trace=trace[:max_accesses],
        footprint_pages=footprint_pages,
        content=ContentSynthesizer("mcf", seed).page,
        compute_cycles_per_access=3.0,
        description="SPEC mcf-like network-simplex pointer chasing",
        base_vpn=_MCF_BASE >> 12,
    )


def omnetpp_workload(footprint_pages: int = 8_000, max_accesses: int = 120_000,
                     seed: int = 3) -> Workload:
    """Event-queue simulation: heap churn + module state updates."""
    rng = DeterministicRNG(seed)
    heap_slots = 4096
    heap_bytes = heap_slots * 32
    # Module records fill the rest of the declared footprint.
    num_modules = (footprint_pages * PAGE_SIZE - heap_bytes - 256) // 256
    trace: List[Access] = []
    heap_base = _OMNETPP_BASE
    modules_base = _OMNETPP_BASE + heap_bytes
    while len(trace) < max_accesses:
        # Pop-min: touch the heap root and a log-depth path.
        depth = rng.randint(2, 12)
        slot = 0
        for _ in range(depth):
            trace.append((heap_base + slot * 32, True))
            slot = 2 * slot + 1 + rng.randint(0, 1)
            slot %= heap_slots
        # Handle the event: read/update one module's state.
        module = rng.zipf_index(num_modules, exponent=0.8)
        address = modules_base + module * 256
        trace.append((address, False))
        trace.append((address + 64, False))
        trace.append((address + 128, True))
        # Schedule a follow-up event: heap insert path.
        slot = heap_slots - 1 - rng.randint(0, 63)
        for _ in range(rng.randint(1, 6)):
            trace.append((heap_base + slot * 32, True))
            slot //= 2
    return Workload(
        name="omnetpp",
        trace=trace[:max_accesses],
        footprint_pages=footprint_pages,
        content=ContentSynthesizer("omnetpp", seed).page,
        compute_cycles_per_access=4.5,
        description="SPEC omnetpp-like discrete-event simulation",
        base_vpn=_OMNETPP_BASE >> 12,
    )


def canneal_workload(footprint_pages: int = 32_000, max_accesses: int = 120_000,
                     seed: int = 4) -> Workload:
    """Simulated annealing: near-random element swaps.

    Swap candidates are mildly skewed (annealing revisits contested nets
    far more than settled ones), which leaves canneal the most irregular
    workload in the suite while still having the warm set a steady-state
    run exhibits.
    """
    rng = DeterministicRNG(seed)
    num_elements = footprint_pages * PAGE_SIZE // 32  # 32 B netlist elements
    trace: List[Access] = []
    while len(trace) < max_accesses:
        a = rng.zipf_index(num_elements, exponent=0.9)
        b = rng.zipf_index(num_elements, exponent=0.9)
        addr_a = _CANNEAL_BASE + a * 32
        addr_b = _CANNEAL_BASE + b * 32
        # Evaluate both elements' costs, then swap (two writes).
        trace.append((addr_a, False))
        trace.append((addr_b, False))
        if rng.chance(0.4):
            trace.append((addr_a, True))
            trace.append((addr_b, True))
    return Workload(
        name="canneal",
        trace=trace[:max_accesses],
        footprint_pages=footprint_pages,
        content=ContentSynthesizer("canneal", seed).page,
        compute_cycles_per_access=1.5,
        description="PARSEC canneal-like random swap annealing",
        base_vpn=_CANNEAL_BASE >> 12,
    )


#: Small/regular workloads of Section VII's last sensitivity study.
SMALL_KERNELS = ("blackscholes", "freqmine", "swaptions", "rocksdb")


def small_workload(kernel: str, footprint_pages: int = 1_500,
                   max_accesses: int = 80_000, seed: int = 5) -> Workload:
    """Small-footprint, mostly regular workloads (low TLB pressure)."""
    if kernel not in SMALL_KERNELS:
        raise ValueError(f"unknown small kernel {kernel!r}")
    rng = DeterministicRNG(seed + hash(kernel) % 1000)
    base = _SMALL_BASE
    footprint_bytes = footprint_pages * PAGE_SIZE
    trace: List[Access] = []
    if kernel == "rocksdb":
        # Zipf point gets over an in-memory block cache.
        num_blocks = footprint_bytes // 4096
        while len(trace) < max_accesses:
            block = rng.zipf_index(num_blocks, exponent=0.99)
            start = base + block * 4096
            for offset in range(0, rng.randint(256, 1024), 64):
                trace.append((start + offset, False))
            if rng.chance(0.1):
                trace.append((start, True))  # memtable-ish update
    else:
        # Streaming kernels: long sequential scans with a small stride mix.
        position = 0
        while len(trace) < max_accesses:
            run = rng.randint(64, 512)
            stride = 64 if kernel == "blackscholes" else rng.choice([64, 128])
            write_every = 4 if kernel == "swaptions" else 8
            for i in range(run):
                address = base + (position % footprint_bytes)
                trace.append((address, i % write_every == 0))
                position += stride
            if rng.chance(0.2):
                position = rng.randint(0, footprint_bytes - 1) & ~63
    return Workload(
        name=kernel,
        trace=trace[:max_accesses],
        footprint_pages=footprint_pages,
        content=ContentSynthesizer(
            "rocksdb" if kernel == "rocksdb" else "small", seed).page,
        compute_cycles_per_access=8.0,
        description=f"small regular workload: {kernel}",
        base_vpn=_SMALL_BASE >> 12,
    )


#: Bandwidth-intensive kernels used in the Figure 22 interleaving study.
BANDWIDTH_KERNELS = ("stream", "sp", "D", "hpcg")


def bandwidth_workload(kernel: str, footprint_pages: int = 6_000,
                       max_accesses: int = 80_000, seed: int = 6) -> Workload:
    """Streaming/stencil kernels that saturate channel bandwidth."""
    if kernel not in BANDWIDTH_KERNELS:
        raise ValueError(f"unknown bandwidth kernel {kernel!r}")
    rng = DeterministicRNG(seed + hash(kernel) % 1000)
    base = _BW_BASE
    footprint_bytes = footprint_pages * PAGE_SIZE
    third = footprint_bytes // 3 & ~4095
    trace: List[Access] = []
    position = 0
    while len(trace) < max_accesses:
        if kernel == "stream":
            # Triad: a[i] = b[i] + s*c[i]; three streams, one written.
            trace.append((base + third + position % third, False))
            trace.append((base + 2 * third + position % third, False))
            trace.append((base + position % third, True))
            position += 64
        elif kernel == "sp":
            # Strided panels (NAS SP-like): stride across planes.
            plane = (position // 64) % 96
            trace.append((base + (plane * 32_768 + position) % footprint_bytes,
                          plane % 3 == 0))
            position += 64
        elif kernel == "D":
            # Random-ish gather/scatter bursts.
            start = rng.randint(0, footprint_bytes - 4096) & ~63
            for offset in range(0, 512, 64):
                trace.append((base + start + offset, offset == 0))
        else:  # hpcg: sparse matvec -- sequential rows + indexed gathers
            trace.append((base + position % third, False))
            gather = rng.zipf_index(third // 64) * 64
            trace.append((base + third + gather, False))
            trace.append((base + 2 * third + position % third, True))
            position += 64
    return Workload(
        name=kernel,
        trace=trace[:max_accesses],
        footprint_pages=footprint_pages,
        content=ContentSynthesizer("stream", seed).page,
        compute_cycles_per_access=1.0,
        description=f"bandwidth-intensive kernel: {kernel}",
        base_vpn=_BW_BASE >> 12,
    )
