"""The memory-dump corpus behind Figure 15.

The paper gcore-dumps programs with > 200 MB footprints from three C/C++
suites (GraphBIG, PARSEC, SPEC) and three Java suites (SparkBench, DaCapo,
Renaissance), takes 10 dumps across each program's lifetime, deletes
all-zero pages, and reports per-benchmark compression ratios for
block-level compression, their ASIC Deflate, and gzip.

We synthesize each benchmark's dump as a set of pages drawn from that
workload family's content profile, with per-benchmark vocabulary seeds so
the twelve bars of Figure 15 are twelve genuinely different page
populations.  All-zero pages are never emitted (matching the deletion).
"""

from __future__ import annotations

from typing import Dict, List

from repro.workloads.content import ContentSynthesizer

#: Benchmark -> (content profile, seed offset).  Families mirror the six
#: suites the paper samples.
DUMP_BENCHMARKS: Dict[str, tuple] = {
    # C/C++: GraphBIG-like
    "pageRank": ("graph", 11),
    "bfs": ("graph", 12),
    "triCount": ("graph", 13),
    # C/C++: SPEC-like
    "mcf": ("mcf", 21),
    "omnetpp": ("omnetpp", 22),
    # C/C++: PARSEC-like
    "canneal": ("canneal", 31),
    "freqmine": ("small", 32),
    # Java: heap-like profiles (pointer-rich, moderately compressible)
    "spark-als": ("omnetpp", 41),
    "spark-pagerank": ("graph", 42),
    "dacapo-h2": ("rocksdb", 43),
    "renaissance-akka": ("omnetpp", 44),
    "renaissance-dotty": ("small", 45),
}


def dump_pages(benchmark: str, num_pages: int = 48, seed: int = 0) -> List[bytes]:
    """Synthesize one benchmark's (zero-page-free) memory dump."""
    if benchmark not in DUMP_BENCHMARKS:
        raise ValueError(f"unknown dump benchmark {benchmark!r}; "
                         f"choose from {sorted(DUMP_BENCHMARKS)}")
    profile, salt = DUMP_BENCHMARKS[benchmark]
    synthesizer = ContentSynthesizer(profile, seed=seed * 1000 + salt)
    pages = []
    vpn = 0
    while len(pages) < num_pages:
        page = synthesizer.page(vpn)
        vpn += 1
        if any(page):  # the methodology deletes all-zero pages
            pages.append(page)
    return pages


def dump_corpus(num_pages: int = 48, seed: int = 0) -> Dict[str, List[bytes]]:
    """All Figure 15 benchmarks' dumps."""
    return {
        benchmark: dump_pages(benchmark, num_pages, seed)
        for benchmark in DUMP_BENCHMARKS
    }
