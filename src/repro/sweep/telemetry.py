"""Sweep-level telemetry: the event journal and its live snapshot.

PR 4 made one *run* observable (spans, windowed metrics, host
profiling); this module makes the *sweep harness* observable.  The
engine appends one JSONL line per scheduling event -- jobs starting,
finishing, retrying, being quarantined; workers spawning, dying,
hanging, respawning; store writes being retried; chaos faults being
injected -- into a :class:`SweepJournal` that lives next to the store,
so a second process (``repro sweep watch``) can follow a live sweep
without touching the writer's SQLite connection.

Discipline (same as every observability layer before it): **telemetry
off is free and invisible**.  ``run_sweep(journal=None)`` -- the
default -- emits nothing, touches no files, and its result rows are
``fingerprint_rows``-identical to a journaled sweep (pinned by
``tests/sweep/test_telemetry.py``).  The journal records *host*
scheduling history, never simulated quantities, so it sits with the
retry policy outside the spec hash.

Journal format (:data:`JOURNAL_SCHEMA`): one JSON object per line.
Every event carries

- ``seq``  -- a monotonic per-journal sequence number (the total order;
  wall clocks can step backwards, ``seq`` cannot);
- ``t``    -- wall-clock ``time.time()`` (cross-process readable);
- ``mono`` -- ``time.monotonic()`` in the writer process (durations and
  throughput are computed from ``mono`` deltas, which are immune to
  clock steps but only comparable within one journal);
- ``event`` -- the kind, one of :data:`EVENT_KINDS`;

plus kind-specific fields (``job_id``, ``index``, ``label``,
``attempt``, ``worker_slot``, ``error_kind``, ...).  The first line is
always ``journal_begin`` naming the schema; appending across a resume
is valid -- a reader treats each ``journal_begin`` as a new segment of
the same sweep.

Consumers:

- :func:`read_journal` / :func:`validate_journal` -- load and
  schema-check a journal (CI runs the validator on every chaos sweep).
- :func:`build_snapshot` -- fold events into a :class:`SweepSnapshot`:
  status counts, per-worker utilization and current job, a retry
  histogram by error kind, throughput in jobs/min, and an ETA from the
  observed completion rate.  :func:`render_snapshot` is the shared
  terminal rendering (``sweep watch``, ``sweep show``).
- :func:`journal_spans` -- job-lifecycle spans (one per attempt) plus
  instants for deaths/hangs/chaos/store retries, as
  :class:`repro.sim.tracing.Span` objects, so PR 4's
  :func:`~repro.sim.tracing.write_trace_file` renders a whole sweep as
  one Perfetto trace (worker slots become Perfetto threads).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Union

from repro.common.errors import ConfigError
from repro.sim.instrument import JsonlAppender

#: Journal format identity; bump on incompatible line-shape changes.
JOURNAL_SCHEMA = "repro-sweep-journal/1"

#: Every event kind -> the fields it must carry (beyond seq/t/mono/event).
EVENT_KINDS: Dict[str, tuple] = {
    "journal_begin": ("schema", "sweep_id"),
    "sweep_begin": ("sweep_id", "name", "spec_hash", "total_jobs",
                    "workers", "resumed"),
    "sweep_end": ("status", "elapsed_s", "counts"),
    "job_skip": ("job_id", "index", "label", "status"),
    "job_start": ("job_id", "index", "label", "attempt", "worker_slot"),
    "job_retry": ("job_id", "index", "label", "attempt", "error_kind",
                  "error_type", "error", "backoff_s"),
    "job_finish": ("job_id", "index", "label", "attempt", "status",
                   "quarantined", "elapsed_s"),
    "worker_spawn": ("worker_slot",),
    "worker_respawn": ("worker_slot",),
    "worker_death": ("worker_slot", "job_id", "exitcode"),
    "worker_hung": ("worker_slot", "job_id", "stale_s"),
    "store_retry": ("job_id", "write_attempt", "error"),
    "chaos_injected": ("job_id", "index", "attempt", "chaos_kind", "param"),
}

#: Job statuses a snapshot counts as finished work.
_TERMINAL = ("done", "failed", "timeout")


class SweepJournal:
    """The append-only JSONL event sink the sweep engine writes.

    One flushed line per event, so a concurrent reader never sees a
    torn record and a crashed sweep loses at most the line being
    written.  Opening appends -- a resumed sweep extends the same file
    with a fresh ``journal_begin`` segment header.
    """

    def __init__(self, path: Union[str, Path],
                 sweep_id: str = "") -> None:
        self.path = str(path)
        self._seq = 0
        try:
            self._appender = JsonlAppender(self.path)
        except OSError as error:
            raise ConfigError(
                f"cannot open sweep journal {self.path!r}: {error}"
            ) from error
        self.emit("journal_begin", schema=JOURNAL_SCHEMA, sweep_id=sweep_id)

    def emit(self, event: str, **fields: object) -> None:
        """Append one event line (no-op after :meth:`close`)."""
        if self._appender is None:
            return
        record: Dict[str, object] = {
            "seq": self._seq,
            "t": time.time(),
            "mono": time.monotonic(),
            "event": event,
        }
        record.update(fields)
        self._appender.append(record)
        self._seq += 1

    def close(self) -> None:
        if self._appender is not None:
            self._appender.close()
            self._appender = None


# ----------------------------------------------------------------------
# Reading / validation
# ----------------------------------------------------------------------


def read_journal(path: Union[str, Path]) -> List[dict]:
    """Load a journal's events, in file order.

    A trailing half-written line (the writer died mid-append) is
    dropped, not fatal -- everything before it is still good.
    """
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as error:
        raise ConfigError(
            f"cannot read sweep journal {str(path)!r}: {error}") from error
    events: List[dict] = []
    lines = text.splitlines()
    for position, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            if position == len(lines) - 1:
                break  # torn final line: the writer died mid-append
            raise ConfigError(
                f"{str(path)!r} line {position + 1} is not JSON: "
                f"{error}") from error
        if not isinstance(record, dict):
            raise ConfigError(
                f"{str(path)!r} line {position + 1} is not an event object")
        events.append(record)
    return events


def validate_journal(
        events_or_path: Union[str, Path, Sequence[Mapping]]) -> List[str]:
    """Schema-check a journal; returns problems (empty means valid).

    Checks: the file starts with a ``journal_begin`` naming a known
    schema, every event kind is known and carries its required fields,
    and ``seq`` increases within each segment.
    """
    if isinstance(events_or_path, (str, Path)):
        events = read_journal(events_or_path)
    else:
        events = list(events_or_path)
    problems: List[str] = []
    if not events:
        return ["journal is empty"]
    first = events[0]
    if first.get("event") != "journal_begin":
        problems.append(
            f"first event is {first.get('event')!r}, not journal_begin")
    elif first.get("schema") != JOURNAL_SCHEMA:
        problems.append(
            f"unknown journal schema {first.get('schema')!r}; "
            f"this build reads {JOURNAL_SCHEMA}")
    last_seq: Optional[int] = None
    for position, event in enumerate(events):
        kind = event.get("event")
        if kind not in EVENT_KINDS:
            problems.append(f"line {position + 1}: unknown event {kind!r}")
            continue
        for key in ("seq", "t", "mono"):
            if key not in event:
                problems.append(
                    f"line {position + 1}: {kind} missing {key!r}")
        for key in EVENT_KINDS[kind]:
            if key not in event:
                problems.append(
                    f"line {position + 1}: {kind} missing {key!r}")
        seq = event.get("seq")
        if isinstance(seq, int):
            if kind == "journal_begin":
                last_seq = seq  # a resume appends a fresh segment
            elif last_seq is not None and seq <= last_seq:
                problems.append(
                    f"line {position + 1}: seq {seq} does not advance "
                    f"past {last_seq}")
            else:
                last_seq = seq
    return problems


# ----------------------------------------------------------------------
# The live snapshot
# ----------------------------------------------------------------------


@dataclass
class WorkerState:
    """One pool slot's aggregated history."""

    slot: int
    current_label: Optional[str] = None
    current_since_mono: Optional[float] = None
    jobs_done: int = 0
    busy_s: float = 0.0
    deaths: int = 0
    hangs: int = 0
    #: Matrix indexes this slot ran, in dispatch order.
    job_indexes: List[int] = field(default_factory=list)


@dataclass
class SweepSnapshot:
    """Everything ``sweep watch`` renders, folded from journal events."""

    sweep_id: str = ""
    name: str = ""
    total_jobs: int = 0
    workers: int = 1
    #: status -> count over the whole matrix (skips count as recorded).
    counts: Dict[str, int] = field(default_factory=dict)
    quarantined: int = 0
    running: List[str] = field(default_factory=list)
    workers_state: Dict[int, WorkerState] = field(default_factory=dict)
    #: error_kind -> retry count.
    retries_by_kind: Dict[str, int] = field(default_factory=dict)
    store_retries: int = 0
    chaos_injected: int = 0
    #: Jobs finished *this run* (skips excluded: they cost no time).
    finished_this_run: int = 0
    elapsed_s: float = 0.0
    throughput_jpm: Optional[float] = None
    eta_s: Optional[float] = None
    ended: bool = False
    end_status: str = ""

    @property
    def recorded(self) -> int:
        """Matrix cells with a terminal status."""
        return sum(self.counts.get(status, 0) for status in _TERMINAL)

    @property
    def remaining(self) -> int:
        return max(0, self.total_jobs - self.recorded)


def build_snapshot(events: Sequence[Mapping],
                   now_mono: Optional[float] = None) -> SweepSnapshot:
    """Fold journal events into a :class:`SweepSnapshot`.

    ``now_mono`` extends the observation window past the last event for
    a *live* reading in the writer's own process; cross-process readers
    leave it None (another process's monotonic clock is not comparable)
    and the window ends at the last event seen.
    """
    snap = SweepSnapshot()
    statuses: Dict[str, str] = {}
    job_started: Dict[str, float] = {}
    job_slot: Dict[str, Optional[int]] = {}
    begin_mono: Optional[float] = None
    last_mono: Optional[float] = None

    def worker(slot: int) -> WorkerState:
        state = snap.workers_state.get(slot)
        if state is None:
            state = snap.workers_state[slot] = WorkerState(slot=slot)
        return state

    def settle(job_id: str, mono: float) -> None:
        """Credit a finished/retried attempt to its worker slot."""
        slot = job_slot.pop(job_id, None)
        started = job_started.pop(job_id, None)
        if slot is None:
            return
        state = worker(slot)
        if state.current_since_mono is not None and started is not None:
            state.busy_s += max(0.0, mono - started)
        state.current_label = None
        state.current_since_mono = None

    for event in events:
        kind = event.get("event")
        mono = event.get("mono")
        if isinstance(mono, (int, float)):
            last_mono = float(mono)
        if kind == "sweep_begin":
            snap.sweep_id = str(event.get("sweep_id", ""))
            snap.name = str(event.get("name", ""))
            snap.total_jobs = int(event.get("total_jobs", 0) or 0)
            snap.workers = int(event.get("workers", 1) or 1)
            if begin_mono is None and isinstance(mono, (int, float)):
                begin_mono = float(mono)
        elif kind == "job_skip":
            statuses[str(event.get("job_id"))] = str(
                event.get("status", "done"))
        elif kind == "job_start":
            job_id = str(event.get("job_id"))
            statuses[job_id] = "running"
            slot = event.get("worker_slot")
            job_slot[job_id] = slot if isinstance(slot, int) else None
            if isinstance(mono, (int, float)):
                job_started[job_id] = float(mono)
            if isinstance(slot, int):
                state = worker(slot)
                state.current_label = str(event.get("label", ""))
                state.current_since_mono = (
                    float(mono) if isinstance(mono, (int, float)) else None)
                index = event.get("index")
                if isinstance(index, int):
                    state.job_indexes.append(index)
        elif kind == "job_retry":
            job_id = str(event.get("job_id"))
            statuses[job_id] = "pending"
            error_kind = str(event.get("error_kind") or "unknown")
            snap.retries_by_kind[error_kind] = (
                snap.retries_by_kind.get(error_kind, 0) + 1)
            if isinstance(mono, (int, float)):
                settle(job_id, float(mono))
        elif kind == "job_finish":
            job_id = str(event.get("job_id"))
            statuses[job_id] = str(event.get("status", "done"))
            snap.finished_this_run += 1
            if event.get("quarantined"):
                snap.quarantined += 1
            if isinstance(mono, (int, float)):
                settle(job_id, float(mono))
        elif kind == "worker_spawn" or kind == "worker_respawn":
            slot = event.get("worker_slot")
            if isinstance(slot, int):
                worker(slot)
        elif kind == "worker_death":
            slot = event.get("worker_slot")
            if isinstance(slot, int):
                worker(slot).deaths += 1
            if isinstance(mono, (int, float)):
                settle(str(event.get("job_id")), float(mono))
        elif kind == "worker_hung":
            slot = event.get("worker_slot")
            if isinstance(slot, int):
                worker(slot).hangs += 1
            if isinstance(mono, (int, float)):
                settle(str(event.get("job_id")), float(mono))
        elif kind == "store_retry":
            snap.store_retries += 1
        elif kind == "chaos_injected":
            snap.chaos_injected += 1
        elif kind == "sweep_end":
            snap.ended = True
            snap.end_status = str(event.get("status", ""))

    # jobs_done per slot: completions credited to the slot that ran them.
    done_by_slot: Dict[int, int] = {}
    open_slot: Dict[str, int] = {}
    for event in events:
        kind = event.get("event")
        if kind == "job_start":
            slot = event.get("worker_slot")
            if isinstance(slot, int):
                open_slot[str(event.get("job_id"))] = slot
        elif kind == "job_finish":
            slot = open_slot.pop(str(event.get("job_id")), None)
            if slot is not None:
                done_by_slot[slot] = done_by_slot.get(slot, 0) + 1
    for slot, count in done_by_slot.items():
        worker(slot).jobs_done = count

    for status in statuses.values():
        snap.counts[status] = snap.counts.get(status, 0) + 1
    snap.running = sorted(
        state.current_label for state in snap.workers_state.values()
        if state.current_label)
    if not snap.workers_state:  # inline sweeps have no slots
        snap.running = sorted(
            job_id for job_id, status in statuses.items()
            if status == "running")

    end_mono = now_mono if now_mono is not None else last_mono
    if begin_mono is not None and end_mono is not None:
        snap.elapsed_s = max(0.0, end_mono - begin_mono)
    if snap.elapsed_s > 0 and snap.finished_this_run > 0:
        rate = snap.finished_this_run / snap.elapsed_s
        snap.throughput_jpm = rate * 60.0
        if not snap.ended:
            snap.eta_s = snap.remaining / rate
        else:
            snap.eta_s = 0.0
    return snap


def render_snapshot(snap: SweepSnapshot,
                    store_path: Optional[str] = None) -> str:
    """The terminal status frame ``sweep watch`` re-renders."""
    lines: List[str] = []
    title = snap.sweep_id or snap.name or "sweep"
    state = snap.end_status if snap.ended else "running"
    lines.append(f"sweep {title}: {state}, "
                 f"{snap.recorded}/{snap.total_jobs} recorded"
                 + (f", store {store_path}" if store_path else ""))
    counts = ", ".join(
        f"{snap.counts[key]} {key}" for key in
        ("done", "failed", "timeout", "running", "pending")
        if snap.counts.get(key))
    quarantine = (f" ({snap.quarantined} quarantined)"
                  if snap.quarantined else "")
    lines.append(f"  jobs: {counts or 'none yet'}{quarantine}")
    throughput = ("n/a" if snap.throughput_jpm is None
                  else f"{snap.throughput_jpm:.1f} jobs/min")
    eta = "n/a" if snap.eta_s is None else f"{snap.eta_s:.0f}s"
    lines.append(f"  throughput: {throughput}   ETA: {eta}   "
                 f"elapsed: {snap.elapsed_s:.1f}s")
    if snap.retries_by_kind:
        histogram = ", ".join(
            f"{kind}={count}" for kind, count in
            sorted(snap.retries_by_kind.items()))
        lines.append(f"  retries: {histogram}"
                     + (f"   store retries: {snap.store_retries}"
                        if snap.store_retries else "")
                     + (f"   chaos: {snap.chaos_injected}"
                        if snap.chaos_injected else ""))
    elif snap.store_retries or snap.chaos_injected:
        lines.append(f"  store retries: {snap.store_retries}   "
                     f"chaos: {snap.chaos_injected}")
    for slot in sorted(snap.workers_state):
        state = snap.workers_state[slot]
        util = (state.busy_s / snap.elapsed_s
                if snap.elapsed_s > 0 else 0.0)
        current = state.current_label or "idle"
        flags = ""
        if state.deaths:
            flags += f" deaths={state.deaths}"
        if state.hangs:
            flags += f" hangs={state.hangs}"
        lines.append(f"  worker {slot}: {current:<28s} "
                     f"{state.jobs_done:>3d} done  "
                     f"util {util:5.1%}{flags}")
    if snap.running and not snap.workers_state:
        lines.append(f"  running: {', '.join(snap.running)}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Perfetto conversion (reuses PR 4's span machinery)
# ----------------------------------------------------------------------


def journal_spans(events: Sequence[Mapping]) -> List["Span"]:
    """Job-lifecycle spans from a journal, Perfetto-ready.

    One duration span per (job, attempt) from its ``job_start`` to the
    matching ``job_finish``/``job_retry``; instants for worker deaths,
    hangs, chaos injections, and store-write retries.  Timestamps are
    nanoseconds relative to the journal's first event, and each span's
    ``worker_slot`` arg becomes a Perfetto thread row (see
    :func:`repro.sim.tracing.perfetto_document`).
    """
    from repro.sim.tracing import Span

    spans: List[Span] = []
    t0: Optional[float] = None
    open_attempts: Dict[str, dict] = {}
    next_span_id = 1

    def ns(mono: object) -> float:
        nonlocal t0
        value = float(mono) if isinstance(mono, (int, float)) else 0.0
        if t0 is None:
            t0 = value
        return (value - t0) * 1e9

    def slot_args(event: Mapping) -> Dict[str, object]:
        slot = event.get("worker_slot")
        return {"worker_slot": slot} if isinstance(slot, int) else {}

    for event in events:
        kind = event.get("event")
        if kind not in EVENT_KINDS:
            continue
        start_ns = ns(event.get("mono"))
        if kind == "job_start":
            open_attempts[str(event.get("job_id"))] = {
                "start_ns": start_ns, "event": event}
        elif kind in ("job_finish", "job_retry"):
            opened = open_attempts.pop(str(event.get("job_id")), None)
            if opened is None:
                continue
            begun = opened["event"]
            status = (str(event.get("status", "done"))
                      if kind == "job_finish" else "retry")
            args: Dict[str, object] = {
                "job_id": event.get("job_id"),
                "attempt": begun.get("attempt"),
                "status": status,
            }
            if event.get("quarantined"):
                args["quarantined"] = True
            if kind == "job_retry" and event.get("error_kind"):
                args["error_kind"] = event.get("error_kind")
            args.update(slot_args(begun))
            index = begun.get("index")
            spans.append(Span(
                trace_id=index if isinstance(index, int) else 0,
                span_id=next_span_id,
                parent_id=None,
                name=str(begun.get("label", "job")),
                category="job",
                start_ns=opened["start_ns"],
                duration_ns=max(0.0, start_ns - opened["start_ns"]),
                args=args,
            ))
            next_span_id += 1
        elif kind in ("worker_death", "worker_hung", "chaos_injected",
                      "store_retry"):
            args = {"job_id": event.get("job_id")}
            if kind == "chaos_injected":
                args["chaos_kind"] = event.get("chaos_kind")
            if kind == "worker_hung":
                args["stale_s"] = event.get("stale_s")
            if kind == "store_retry":
                args["write_attempt"] = event.get("write_attempt")
            args.update(slot_args(event))
            spans.append(Span(
                trace_id=0,
                span_id=next_span_id,
                parent_id=None,
                name=kind,
                category="fault",
                start_ns=start_ns,
                duration_ns=0.0,
                args=args,
            ))
            next_span_id += 1
    return spans
