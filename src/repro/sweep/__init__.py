"""The sweep engine: declarative job matrices, a worker pool, a store.

Every "compare N designs" experiment used to be a hand-rolled ``for``
loop that re-ran each configuration from scratch with no record of what
was measured.  This package replaces those loops with one engine:

- :mod:`repro.sweep.spec` -- a declarative sweep spec (TOML/JSON files
  or the programmatic builder) with axes over workloads x controllers x
  budgets x seeds x fault plans, expanded into a deterministic job
  matrix with per-job derived seeds.
- :mod:`repro.sweep.worker` -- single-job execution plus a
  multiprocessing pool (fresh process-local state per worker, per-job
  wall-clock watchdogs reusing the run supervisor's discipline).
- :mod:`repro.sweep.store` -- a schema-versioned SQLite result store
  (sweeps/jobs/metrics tables, engine/connection split) with a
  query/export surface behind ``repro sweep ls/show/export``.
- :mod:`repro.sweep.engine` -- the orchestrator: registers the matrix,
  dispatches ready jobs (budget dependencies resolved from completed
  results), records everything, and resumes killed sweeps by skipping
  jobs already ``done``.
- :mod:`repro.sweep.reduce` -- reductions from job rows back to the
  paper's figures (iso-capacity speedups, capacity curves).
- :mod:`repro.sweep.chaos` -- deterministic host-fault injection
  (worker SIGKILL, hangs, ENOSPC store writes, corrupted result rows)
  driving the engine's retry/backoff/quarantine and heartbeat
  supervision machinery.
"""

from repro.sweep.chaos import ChaosPlan, ChaosSchedule, ChaosSpec
from repro.sweep.engine import RetryPolicy, SweepRun, run_sweep
from repro.sweep.spec import (
    BudgetSpec,
    ControllerSpec,
    JobSpec,
    SweepSpec,
    builtin_spec,
)
from repro.sweep.store import STORE_SCHEMA_VERSION, StoreEngine, SweepStore

__all__ = [
    "BudgetSpec",
    "ChaosPlan",
    "ChaosSchedule",
    "ChaosSpec",
    "ControllerSpec",
    "JobSpec",
    "RetryPolicy",
    "SweepSpec",
    "builtin_spec",
    "SweepRun",
    "run_sweep",
    "StoreEngine",
    "SweepStore",
    "STORE_SCHEMA_VERSION",
]
