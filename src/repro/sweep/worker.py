"""Sweep job execution: one simulation per job, optionally in a pool.

:func:`execute_job` is the single-job primitive every front-end shares:
the sweep engine's inline path, the multiprocessing pool below, and the
refactored experiment protocols in :mod:`repro.sim.experiments` all
funnel through it, so a job measured by a ``-j 8`` sweep is the same
computation as a sequential ``repro compare`` run.

Process model: each job builds a **fresh simulator** (and with it a
fresh :class:`~repro.sim.context.SimContext` -- clock, RNG streams,
metrics) so no state leaks between matrix cells.  Two process-local
read-only caches keep that cheap:

- workload traces via :func:`repro.workloads.suite.cached_workload` --
  with a fork-based pool the parent pre-builds them and children
  inherit the pages copy-on-write;
- :class:`~repro.core.compmodel.PageCompressionModel` oracles keyed by
  (workload, trace knobs, seed) -- deterministic at construction, so
  sharing one across a workload's controllers changes nothing but
  setup time (the same sharing the experiment protocols always did).

Per-job timeouts reuse :class:`~repro.sim.supervisor.RunSupervisor`'s
wall-clock watchdog discipline: the run stops *gracefully*, the partial
result is returned flagged truncated, and the job is recorded with
status ``timeout`` rather than killed from outside mid-write.

Host-fault resilience (the :class:`WorkerPool` below): each worker owns
a private task queue, so the parent always knows which (job, attempt)
a worker holds -- when a child dies (OOM killer, chaos SIGKILL) or its
heartbeat goes stale (hung child), the pool synthesizes a transient
failure record for exactly that attempt, replaces the worker, and the
engine's retry policy decides what happens next.  Result records carry
a content digest computed worker-side, so in-flight corruption is
detected parent-side and treated as one more transient failure.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import signal
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.common.errors import ResourceError, classify_error
from repro.core.compmodel import PageCompressionModel
from repro.core.config import SystemConfig
from repro.sim.results import SimResult
from repro.sweep.chaos import ChaosSchedule
from repro.sweep.spec import JobSpec
from repro.workloads.trace import Workload

#: Process-local compression-oracle cache; see the module docs.
_MODEL_CACHE: Dict[Tuple[str, int, float, int, int], PageCompressionModel] = {}

#: One default config per process; jobs never mutate it.
_DEFAULT_SYSTEM: Optional[SystemConfig] = None


def _default_system() -> SystemConfig:
    global _DEFAULT_SYSTEM
    if _DEFAULT_SYSTEM is None:
        _DEFAULT_SYSTEM = SystemConfig()
    return _DEFAULT_SYSTEM


def _model_for(job: JobSpec, workload: Workload,
               system: SystemConfig) -> PageCompressionModel:
    key = (job.workload, job.accesses, job.scale, job.workload_seed,
           job.seed)
    model = _MODEL_CACHE.get(key)
    if model is None:
        model = PageCompressionModel(
            workload.content,
            sample_pages=system.compression_samples,
            deflate_config=system.deflate,
            timing=system.deflate_timing,
            ibm=system.ibm_timing,
            seed=job.seed,
        )
        _MODEL_CACHE[key] = model
    return model


def clear_model_cache() -> None:
    _MODEL_CACHE.clear()


def result_digest(result: Optional[SimResult]) -> Optional[str]:
    """A short content digest of a result document.

    Computed by the worker before the record crosses the process
    boundary and re-computed by the engine after; a mismatch means the
    record was corrupted in flight and the attempt must not be trusted.
    """
    if result is None:
        return None
    payload = json.dumps(result.as_dict(), sort_keys=True).encode()
    return hashlib.sha256(payload).hexdigest()[:16]


def execute_job(
    job: JobSpec,
    budget_bytes: Optional[int] = None,
    timeout_s: Optional[float] = None,
    workload: Optional[Workload] = None,
    system: Optional[SystemConfig] = None,
    model: Optional[PageCompressionModel] = None,
    capture_errors: bool = True,
    heartbeat: Optional[Callable[[], None]] = None,
) -> dict:
    """Run one matrix cell end to end; returns the job's result record.

    The record: ``{"job_id", "status", "error", "error_type",
    "error_kind", "elapsed_s", "budget_bytes", "result"}`` where
    ``result`` is the :class:`SimResult` (or None on failure) and
    ``status`` is ``done``/``timeout``/``failed``.  With
    ``capture_errors=False`` simulation errors propagate to the caller
    instead of being folded into the record (inline single-process use
    only -- the experiment protocols keep their historical raise
    behaviour that way).
    """
    start = time.perf_counter()

    def record(status: str, result: Optional[SimResult] = None,
               error: Optional[BaseException] = None) -> dict:
        return {
            "job_id": job.job_id,
            "status": status,
            "error": (str(error) or type(error).__name__) if error else (
                result.error if result is not None and status == "timeout"
                else ""),
            "error_type": type(error).__name__ if error else "",
            "error_kind": classify_error(error) if error else "",
            "elapsed_s": time.perf_counter() - start,
            "budget_bytes": budget_bytes,
            "result": result,
        }

    try:
        # The model cache key is only trustworthy when the workload was
        # resolved from the job's own fields; caller-supplied workloads
        # may collide on (name, knobs) with different trace content.
        resolved_from_spec = workload is None
        if resolved_from_spec:
            from repro.workloads.suite import cached_workload

            workload = cached_workload(job.workload,
                                       max_accesses=job.accesses,
                                       seed=job.workload_seed,
                                       scale=job.scale)
        if model is None and system is None and resolved_from_spec:
            model = _model_for(job, workload, _default_system())

        fault_plan = None
        if job.faults:
            from repro.sim.faults import FaultPlan

            fault_plan = FaultPlan.parse(job.faults)

        from repro.sim.simulator import Simulator

        sim = Simulator(
            workload,
            controller=job.controller,
            system=system,
            dram_budget_bytes=budget_bytes,
            huge_pages=job.huge_pages,
            seed=job.seed,
            model=model,
            fault_plan=fault_plan,
            fast_path=job.fast_path,
        )
        if timeout_s is not None or heartbeat is not None:
            from repro.sim.supervisor import RunSupervisor

            result = RunSupervisor(wall_clock_limit_s=timeout_s,
                                   heartbeat=heartbeat).run(sim)
        else:
            result = sim.run()
    except Exception as error:
        if not capture_errors:
            raise
        return record("failed", error=error)
    return record("timeout" if result.truncated else "done", result=result)


# ----------------------------------------------------------------------
# The worker pool
# ----------------------------------------------------------------------

def _pool_main(slot, tasks, results, heartbeats,
               chaos: Optional[ChaosSchedule]) -> None:
    """Worker-process loop: execute jobs until the ``None`` sentinel.

    ``heartbeats[slot]`` is the worker's liveness slot in the shared
    array; it is bumped on every dequeue and, via the supervisor's
    watchdog stride, throughout each simulation.  Chaos faults that
    target the worker side (self-SIGKILL, hang, result corruption) are
    inflicted here, exactly where the real failures they model strike.
    """

    def beat() -> None:
        if heartbeats is not None:
            heartbeats[slot] = time.monotonic()

    while True:
        item = tasks.get()
        if item is None:
            return
        job, budget_bytes, timeout_s, attempt = item
        beat()
        try:
            action = (chaos.worker_action(job.index, attempt)
                      if chaos is not None else None)
            if action is not None:
                kind, param = action
                if kind == "worker_kill":
                    os.kill(os.getpid(), signal.SIGKILL)
                # ``hang``: go silent -- no heartbeats -- so the parent's
                # staleness check, not this sleep, decides our fate.
                time.sleep(param)
            record = execute_job(job, budget_bytes, timeout_s,
                                 heartbeat=beat)
            record["worker_slot"] = slot
            record["attempt"] = attempt
            record["result_digest"] = result_digest(record["result"])
            if (chaos is not None and chaos.corrupts(job.index, attempt)
                    and record["result"] is not None):
                # Post-digest mutation: the engine's digest check must
                # catch this, never the metrics tables.
                record["result"].elapsed_ns += 1.0
            results.put(record)
        except BaseException as error:  # never wedge the dispatcher
            results.put({
                "job_id": job.job_id, "status": "failed",
                "error": str(error) or type(error).__name__,
                "error_type": type(error).__name__,
                "error_kind": classify_error(error)
                if isinstance(error, Exception) else "resource",
                "elapsed_s": 0.0, "budget_bytes": budget_bytes,
                "result": None, "worker_slot": slot, "attempt": attempt,
                "result_digest": None,
            })
            if isinstance(error, KeyboardInterrupt):
                return


class _WorkerHandle:
    """One worker process plus its private task queue and current job."""

    def __init__(self, ctx, slot: int, results, heartbeats,
                 chaos: Optional[ChaosSchedule]) -> None:
        self.slot = slot
        self.tasks = ctx.Queue()
        self.proc = ctx.Process(
            target=_pool_main,
            args=(slot, self.tasks, results, heartbeats, chaos),
            daemon=True)
        #: (job, budget_bytes, attempt, submitted_at) while busy.
        self.current: Optional[Tuple[JobSpec, Optional[int], int,
                                     float]] = None
        self.proc.start()

    @property
    def busy(self) -> bool:
        return self.current is not None

    def drop_queue(self) -> None:
        try:
            self.tasks.close()
        except Exception:
            pass


class WorkerPool:
    """A supervised multiprocessing pool of sweep-job workers.

    Each worker owns a **private task queue** and at most one in-flight
    job, so the parent always knows which (job, attempt) a worker
    holds.  Result records come back on one shared queue in completion
    order; the dispatcher (the sweep engine) owns scheduling and the
    store, workers only simulate.  Prefers ``fork`` so pre-built
    workload traces are shared copy-on-write; falls back to ``spawn``
    where fork is unavailable (workers then rebuild their caches on
    first use).

    Supervision: a worker found dead mid-job (OOM killer, chaos
    SIGKILL) or heartbeat-stale past ``heartbeat_timeout_s`` (hung) is
    killed and replaced -- with a *fresh* task queue, so a half-fed
    queue can never replay a job -- and the pool synthesizes a
    transient (``error_kind="resource"``) failure record for exactly
    the attempt it owned.  Late records from a worker already declared
    dead are dropped by (job, attempt) ownership matching.  Respawns
    are capped; blowing the cap means the host itself is sick and
    surfaces as a :class:`ResourceError`.
    """

    def __init__(self, workers: int,
                 chaos: Optional[ChaosSchedule] = None,
                 heartbeat_timeout_s: Optional[float] = None,
                 on_event: Optional[Callable[[str, dict], None]] = None,
                 ) -> None:
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        if heartbeat_timeout_s is not None and heartbeat_timeout_s <= 0:
            raise ValueError(
                f"heartbeat timeout must be > 0 s, got {heartbeat_timeout_s}")
        methods = multiprocessing.get_all_start_methods()
        self._ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn")
        self._results = self._ctx.Queue()
        self._heartbeats = self._ctx.Array("d", workers, lock=False)
        self._chaos = chaos
        self._heartbeat_timeout_s = heartbeat_timeout_s
        #: Supervision telemetry hook: called as ``on_event(kind,
        #: fields)`` for worker_spawn/worker_death/worker_hung/
        #: worker_respawn.  Must never raise into the dispatcher; the
        #: pool wraps it accordingly.
        self._on_event = on_event
        self._respawns = 0
        self._max_respawns = 32 + 4 * workers
        self._handles: List[_WorkerHandle] = [
            _WorkerHandle(self._ctx, slot, self._results, self._heartbeats,
                          chaos)
            for slot in range(workers)
        ]
        for slot in range(workers):
            self._emit("worker_spawn", worker_slot=slot)

    def _emit(self, kind: str, **fields: object) -> None:
        if self._on_event is None:
            return
        try:
            self._on_event(kind, fields)
        except Exception:
            pass  # telemetry must never take down supervision

    @property
    def inflight(self) -> int:
        return sum(1 for handle in self._handles if handle.busy)

    @property
    def has_idle(self) -> bool:
        return any(not handle.busy for handle in self._handles)

    def submit(self, job: JobSpec, budget_bytes: Optional[int],
               timeout_s: Optional[float], attempt: int = 1) -> int:
        """Dispatch a job to an idle worker; returns the slot it landed
        on (the engine journals dispatch with it)."""
        handle = self._idle_handle()
        if handle is None:
            raise RuntimeError("no idle worker to submit to")
        now = time.monotonic()
        self._heartbeats[handle.slot] = now
        handle.current = (job, budget_bytes, attempt, now)
        handle.tasks.put((job, budget_bytes, timeout_s, attempt))
        return handle.slot

    def _idle_handle(self) -> Optional[_WorkerHandle]:
        for handle in self._handles:
            if handle.busy:
                continue
            if not handle.proc.is_alive():
                self._replace(handle)
                handle = self._handles[handle.slot]
            return handle
        return None

    def _replace(self, handle: _WorkerHandle) -> None:
        """Kill (if needed) and respawn the worker at ``handle.slot``."""
        self._respawns += 1
        if self._respawns > self._max_respawns:
            raise ResourceError(
                f"sweep workers died or hung {self._respawns} times; "
                f"giving up on this host -- re-run to resume from the "
                f"store")
        if handle.proc.is_alive():
            handle.proc.kill()
        handle.proc.join(timeout=5.0)
        handle.drop_queue()
        self._handles[handle.slot] = _WorkerHandle(
            self._ctx, handle.slot, self._results, self._heartbeats,
            self._chaos)
        self._emit("worker_respawn", worker_slot=handle.slot)

    def _failure_record(self, handle: _WorkerHandle, error: str,
                        error_type: str) -> dict:
        job, budget_bytes, attempt, submitted_at = handle.current
        return {
            "job_id": job.job_id, "status": "failed", "error": error,
            "error_type": error_type, "error_kind": "resource",
            "elapsed_s": time.monotonic() - submitted_at,
            "budget_bytes": budget_bytes, "result": None,
            "worker_slot": handle.slot, "attempt": attempt,
            "result_digest": None,
        }

    def _supervise(self) -> Optional[dict]:
        """One supervision pass over the busy workers.

        Returns a synthesized failure record when a busy worker is
        found dead or hung (after replacing it), else None.  Idle
        workers are left alone -- they have nothing to report and are
        lazily respawned by :meth:`submit` if dead.
        """
        now = time.monotonic()
        for handle in self._handles:
            if not handle.busy:
                continue
            if not handle.proc.is_alive():
                exitcode = handle.proc.exitcode
                record = self._failure_record(
                    handle,
                    f"sweep worker died mid-job (exit code {exitcode})",
                    "WorkerDied")
                self._emit("worker_death", worker_slot=handle.slot,
                           job_id=record["job_id"], exitcode=exitcode)
                handle.proc.join(timeout=1.0)
                handle.current = None
                self._replace(handle)
                return record
            if self._heartbeat_timeout_s is not None:
                stale_s = now - self._heartbeats[handle.slot]
                if stale_s > self._heartbeat_timeout_s:
                    record = self._failure_record(
                        handle,
                        f"sweep worker hung (no heartbeat for "
                        f"{stale_s:.1f} s)", "WorkerHung")
                    self._emit("worker_hung", worker_slot=handle.slot,
                               job_id=record["job_id"],
                               stale_s=round(stale_s, 3))
                    handle.current = None
                    self._replace(handle)
                    return record
        return None

    def next_result(self) -> dict:
        """Block until any in-flight job finishes (or its worker is
        declared dead/hung); stale late records are dropped."""
        if self.inflight <= 0:
            raise RuntimeError("no in-flight jobs to wait for")
        import queue as queue_module

        while True:
            try:
                record = self._results.get(timeout=0.2)
            except queue_module.Empty:
                synthesized = self._supervise()
                if synthesized is not None:
                    return synthesized
                continue
            handle = self._owner_of(record)
            if handle is None:
                continue  # late record from a replaced worker: drop
            handle.current = None
            return record

    def _owner_of(self, record: dict) -> Optional[_WorkerHandle]:
        slot = record.get("worker_slot")
        if slot is None or not 0 <= slot < len(self._handles):
            return None
        handle = self._handles[slot]
        if not handle.busy:
            return None
        job, _, attempt, _ = handle.current
        if (job.job_id, attempt) != (record.get("job_id"),
                                     record.get("attempt")):
            return None
        return handle

    def close(self) -> None:
        """Stop workers: sentinel each, join briefly, kill stragglers."""
        for handle in self._handles:
            try:
                handle.tasks.put_nowait(None)
            except Exception:
                pass
        for handle in self._handles:
            handle.proc.join(timeout=2.0)
        for handle in self._handles:
            if handle.proc.is_alive():
                handle.proc.kill()
                handle.proc.join(timeout=1.0)
            handle.drop_queue()
        try:
            self._results.close()
        except Exception:
            pass
