"""Sweep job execution: one simulation per job, optionally in a pool.

:func:`execute_job` is the single-job primitive every front-end shares:
the sweep engine's inline path, the multiprocessing pool below, and the
refactored experiment protocols in :mod:`repro.sim.experiments` all
funnel through it, so a job measured by a ``-j 8`` sweep is the same
computation as a sequential ``repro compare`` run.

Process model: each job builds a **fresh simulator** (and with it a
fresh :class:`~repro.sim.context.SimContext` -- clock, RNG streams,
metrics) so no state leaks between matrix cells.  Two process-local
read-only caches keep that cheap:

- workload traces via :func:`repro.workloads.suite.cached_workload` --
  with a fork-based pool the parent pre-builds them and children
  inherit the pages copy-on-write;
- :class:`~repro.core.compmodel.PageCompressionModel` oracles keyed by
  (workload, trace knobs, seed) -- deterministic at construction, so
  sharing one across a workload's controllers changes nothing but
  setup time (the same sharing the experiment protocols always did).

Per-job timeouts reuse :class:`~repro.sim.supervisor.RunSupervisor`'s
wall-clock watchdog discipline: the run stops *gracefully*, the partial
result is returned flagged truncated, and the job is recorded with
status ``timeout`` rather than killed from outside mid-write.
"""

from __future__ import annotations

import multiprocessing
import time
from typing import Dict, Optional, Tuple

from repro.common.errors import ResourceError, classify_error
from repro.core.compmodel import PageCompressionModel
from repro.core.config import SystemConfig
from repro.sim.results import SimResult
from repro.sweep.spec import JobSpec
from repro.workloads.trace import Workload

#: Process-local compression-oracle cache; see the module docs.
_MODEL_CACHE: Dict[Tuple[str, int, float, int, int], PageCompressionModel] = {}

#: One default config per process; jobs never mutate it.
_DEFAULT_SYSTEM: Optional[SystemConfig] = None


def _default_system() -> SystemConfig:
    global _DEFAULT_SYSTEM
    if _DEFAULT_SYSTEM is None:
        _DEFAULT_SYSTEM = SystemConfig()
    return _DEFAULT_SYSTEM


def _model_for(job: JobSpec, workload: Workload,
               system: SystemConfig) -> PageCompressionModel:
    key = (job.workload, job.accesses, job.scale, job.workload_seed,
           job.seed)
    model = _MODEL_CACHE.get(key)
    if model is None:
        model = PageCompressionModel(
            workload.content,
            sample_pages=system.compression_samples,
            deflate_config=system.deflate,
            timing=system.deflate_timing,
            ibm=system.ibm_timing,
            seed=job.seed,
        )
        _MODEL_CACHE[key] = model
    return model


def clear_model_cache() -> None:
    _MODEL_CACHE.clear()


def execute_job(
    job: JobSpec,
    budget_bytes: Optional[int] = None,
    timeout_s: Optional[float] = None,
    workload: Optional[Workload] = None,
    system: Optional[SystemConfig] = None,
    model: Optional[PageCompressionModel] = None,
    capture_errors: bool = True,
) -> dict:
    """Run one matrix cell end to end; returns the job's result record.

    The record: ``{"job_id", "status", "error", "error_type",
    "error_kind", "elapsed_s", "budget_bytes", "result"}`` where
    ``result`` is the :class:`SimResult` (or None on failure) and
    ``status`` is ``done``/``timeout``/``failed``.  With
    ``capture_errors=False`` simulation errors propagate to the caller
    instead of being folded into the record (inline single-process use
    only -- the experiment protocols keep their historical raise
    behaviour that way).
    """
    start = time.perf_counter()

    def record(status: str, result: Optional[SimResult] = None,
               error: Optional[BaseException] = None) -> dict:
        return {
            "job_id": job.job_id,
            "status": status,
            "error": (str(error) or type(error).__name__) if error else (
                result.error if result is not None and status == "timeout"
                else ""),
            "error_type": type(error).__name__ if error else "",
            "error_kind": classify_error(error) if error else "",
            "elapsed_s": time.perf_counter() - start,
            "budget_bytes": budget_bytes,
            "result": result,
        }

    try:
        # The model cache key is only trustworthy when the workload was
        # resolved from the job's own fields; caller-supplied workloads
        # may collide on (name, knobs) with different trace content.
        resolved_from_spec = workload is None
        if resolved_from_spec:
            from repro.workloads.suite import cached_workload

            workload = cached_workload(job.workload,
                                       max_accesses=job.accesses,
                                       seed=job.workload_seed,
                                       scale=job.scale)
        if model is None and system is None and resolved_from_spec:
            model = _model_for(job, workload, _default_system())

        fault_plan = None
        if job.faults:
            from repro.sim.faults import FaultPlan

            fault_plan = FaultPlan.parse(job.faults)

        from repro.sim.simulator import Simulator

        sim = Simulator(
            workload,
            controller=job.controller,
            system=system,
            dram_budget_bytes=budget_bytes,
            huge_pages=job.huge_pages,
            seed=job.seed,
            model=model,
            fault_plan=fault_plan,
            fast_path=job.fast_path,
        )
        if timeout_s is not None:
            from repro.sim.supervisor import RunSupervisor

            result = RunSupervisor(wall_clock_limit_s=timeout_s).run(sim)
        else:
            result = sim.run()
    except Exception as error:
        if not capture_errors:
            raise
        return record("failed", error=error)
    return record("timeout" if result.truncated else "done", result=result)


# ----------------------------------------------------------------------
# The worker pool
# ----------------------------------------------------------------------

def _pool_main(tasks, results) -> None:
    """Worker-process loop: execute jobs until the ``None`` sentinel."""
    while True:
        item = tasks.get()
        if item is None:
            return
        job, budget_bytes, timeout_s = item
        try:
            results.put(execute_job(job, budget_bytes, timeout_s))
        except BaseException as error:  # never wedge the dispatcher
            results.put({
                "job_id": job.job_id, "status": "failed",
                "error": str(error) or type(error).__name__,
                "error_type": type(error).__name__,
                "error_kind": classify_error(error)
                if isinstance(error, Exception) else "resource",
                "elapsed_s": 0.0, "budget_bytes": budget_bytes,
                "result": None,
            })
            if isinstance(error, KeyboardInterrupt):
                return


class WorkerPool:
    """A queue-fed multiprocessing pool of sweep-job workers.

    Jobs go down a task queue, result records come back on a result
    queue in completion order; the dispatcher (the sweep engine) owns
    scheduling and the store, workers only simulate.  Prefers ``fork``
    so pre-built workload traces are shared copy-on-write; falls back
    to ``spawn`` where fork is unavailable (workers then rebuild their
    caches on first use).
    """

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        methods = multiprocessing.get_all_start_methods()
        self._ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn")
        self._tasks = self._ctx.Queue()
        self._results = self._ctx.Queue()
        self._inflight = 0
        self._procs = [
            self._ctx.Process(target=_pool_main,
                              args=(self._tasks, self._results), daemon=True)
            for _ in range(workers)
        ]
        for proc in self._procs:
            proc.start()

    @property
    def inflight(self) -> int:
        return self._inflight

    def submit(self, job: JobSpec, budget_bytes: Optional[int],
               timeout_s: Optional[float]) -> None:
        self._tasks.put((job, budget_bytes, timeout_s))
        self._inflight += 1

    def next_result(self) -> dict:
        """Block until any in-flight job finishes; detects dead workers."""
        if self._inflight <= 0:
            raise RuntimeError("no in-flight jobs to wait for")
        import queue as queue_module

        while True:
            try:
                result = self._results.get(timeout=1.0)
            except queue_module.Empty:
                if not any(proc.is_alive() for proc in self._procs):
                    raise ResourceError(
                        "all sweep workers died without reporting results; "
                        "re-run to resume from the store")
                continue
            self._inflight -= 1
            return result

    def close(self) -> None:
        """Stop workers: sentinel each, join briefly, terminate stragglers."""
        for _ in self._procs:
            try:
                self._tasks.put_nowait(None)
            except Exception:
                break
        for proc in self._procs:
            proc.join(timeout=2.0)
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
        for resource in (self._tasks, self._results):
            try:
                resource.close()
            except Exception:
                pass
