"""Reductions: from recorded job rows back to the paper's tables.

A sweep records *runs*; the figures report *relationships* (speedup at
iso-capacity, performance retained per budget fraction).  These helpers
fold a :class:`~repro.sweep.engine.SweepRun` -- or a store-loaded sweep
-- into those relationship rows, so the CLI and the experiment
protocols format tables instead of orchestrating loops.
"""

from __future__ import annotations

import csv
import io
from typing import Dict, List, Optional

from repro.sim.results import SimResult
from repro.sweep.engine import SweepRun


def _one(jobs: list, what: str):
    if not jobs:
        raise KeyError(f"no {what} job in the sweep matrix")
    return jobs[0]


def iso_capacity_rows(run: SweepRun, subject: str = "tmcc") -> List[dict]:
    """Figure 17/18 rows: per (workload, seed), the reference system vs
    ``subject`` at the reference's measured budget."""
    rows = []
    reference = run.spec.reference
    for workload in run.spec.workloads:
        for base_seed in run.spec.seeds:
            ref_jobs = [j for j in run.find_jobs(workload=workload,
                                                 controller=reference,
                                                 budget_kind="none")
                        if j.base_seed == base_seed and j.faults is None]
            subject_jobs = [j for j in run.find_jobs(workload=workload,
                                                     controller=subject,
                                                     budget_kind="iso")
                            if j.base_seed == base_seed and j.faults is None]
            if not ref_jobs or not subject_jobs:
                continue
            ref = run.result(_one(ref_jobs, reference))
            sub = run.result(_one(subject_jobs, subject))
            rows.append({
                "workload": workload,
                "seed": base_seed,
                "reference": ref,
                "subject": sub,
                "budget_bytes": ref.dram_used_bytes,
                "speedup": (sub.performance / ref.performance
                            if ref.performance else 0.0),
            })
    return rows


def capacity_curve_rows(run: SweepRun, workload: str,
                        subject: str = "tmcc",
                        seed: Optional[int] = None) -> List[dict]:
    """Figure 21-style ladder: ``subject`` at each budget fraction of
    the reference's usage, spec order, with failed points kept (they
    mark the compressible floor)."""
    rows = []
    for job in run.find_jobs(workload=workload, controller=subject):
        if not job.budget.needs_reference:
            continue
        if seed is not None and job.seed != seed:
            continue
        provider: Optional[SimResult] = run.results.get(job.provider_id)
        result = run.results.get(job.job_id)
        budget = (job.budget.resolve(provider.dram_used_bytes)
                  if provider is not None else None)
        rows.append({
            "workload": workload,
            "job_id": job.job_id,
            "fraction": job.budget.value,
            "budget_bytes": budget,
            "status": run.statuses.get(job.job_id, "missing"),
            "result": result,
            "reference": provider,
            "relative_performance": (
                result.performance / provider.performance
                if result is not None and provider is not None
                and provider.performance else None),
        })
    return rows


def export_csv(document: dict) -> str:
    """A store export document flattened to one CSV row per job."""
    headline_keys: List[str] = []
    for row in document["jobs"]:
        for key in _headline(row):
            if key not in headline_keys:
                headline_keys.append(key)
    out = io.StringIO()
    fields = ["idx", "workload", "controller", "budget", "budget_bytes",
              "seed", "faults", "status", "error", "attempts",
              "quarantined", "elapsed_s"]
    writer = csv.writer(out)
    writer.writerow(fields + headline_keys)
    for job in document["jobs"]:
        headline = _headline(job)
        writer.writerow([job.get(field, "") for field in fields]
                        + [headline.get(key, "") for key in headline_keys])
    return out.getvalue()


def _headline(job_row: dict) -> Dict[str, float]:
    result = job_row.get("result") or {}
    keys = ("performance", "avg_l3_miss_latency_ns", "compression_ratio",
            "tlb_miss_rate", "cte_hit_rate", "ml2_access_rate")
    return {key: result[key] for key in keys if key in result}
