"""The sweep orchestrator: matrix in, recorded results out.

:func:`run_sweep` ties the layers together:

1. expand the :class:`~repro.sweep.spec.SweepSpec` into its job matrix;
2. register the sweep in the :class:`~repro.sweep.store.SweepStore`
   (or find the existing one by spec hash -- that is a *resume*: jobs
   already ``done`` are skipped wholesale, jobs left ``running`` by a
   killed process are re-enqueued as ``pending``);
3. pre-build each distinct workload trace once in the parent so a
   fork-based pool shares them read-only;
4. dispatch ready jobs -- a job is ready when it has no budget
   provider, or its provider finished (iso/fraction budgets resolve
   from the provider's measured ``dram_used_bytes``) -- inline for
   ``workers=1``, through the :class:`~repro.sweep.worker.WorkerPool`
   otherwise;
5. record every outcome (status, resolved budget, result document,
   headline metrics) in the store as it lands.

Host-fault resilience sits between steps 4 and 5.  Every attempt
outcome is classified **transient or permanent** (see
:data:`repro.common.errors.TRANSIENT_ERROR_KINDS`): worker death, hung
workers, timeouts, corrupted result records, and store I/O failures
are transient and retried under the :class:`RetryPolicy` (exponential
backoff, deterministic jitter, capped); ``ConfigError`` and
``ModelInvariantError`` are permanent and fail fast.  A transient job
that exhausts its retries is **quarantined** -- recorded terminal with
the ``quarantined`` flag so the rest of the matrix completes and the
CLI can report it distinctly.  A deterministic :class:`ChaosPlan`
(:mod:`repro.sweep.chaos`) can inject exactly these host faults to
prove the machinery end to end.

Determinism: scheduling never feeds back into simulation.  Every job's
seed and configuration is fixed at expansion time, each job runs in a
fresh simulator, and budget resolution depends only on the provider's
(deterministic) result -- so ``-j 1`` and ``-j 8`` sweeps, killed-
then-resumed sweeps, and chaos-ridden sweeps (for the rows that
survive) produce row-identical stores (see
:meth:`~repro.sweep.store.SweepStore.fingerprint_rows`).
"""

from __future__ import annotations

import errno
import hashlib
import sqlite3
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.common.errors import ConfigError, ResourceError, is_transient
from repro.sim.results import SimResult
from repro.sweep.chaos import ChaosPlan, ChaosSchedule
from repro.sweep.spec import JobSpec, SweepSpec
from repro.sweep.store import SweepStore
from repro.sweep.telemetry import SweepJournal
from repro.sweep.worker import WorkerPool, execute_job, result_digest

#: Progress callback signature: (event, job, record_or_None).  Events:
#: ``skip`` (already done in the store), ``start``, ``retry`` (a
#: transient attempt failed, the job goes back in the queue), and
#: ``finish``.
ProgressFn = Callable[[str, JobSpec, Optional[dict]], None]


@dataclass(frozen=True)
class RetryPolicy:
    """How transient attempt failures are retried.

    Deliberately *not* part of :class:`~repro.sweep.spec.SweepSpec`:
    retries change host behaviour, never simulated results, so they
    must not perturb the spec hash a resume keys on.
    """

    #: Transient failures re-run up to this many times (so a job gets
    #: ``max_retries + 1`` attempts total); 0 disables retries.
    max_retries: int = 2
    #: First backoff delay; doubles per retry.
    backoff_s: float = 0.1
    #: Backoff ceiling.
    backoff_cap_s: float = 5.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigError(
                f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_s < 0 or self.backoff_cap_s < self.backoff_s:
            raise ConfigError(
                f"backoff must satisfy 0 <= backoff_s <= backoff_cap_s, "
                f"got {self.backoff_s}/{self.backoff_cap_s}")

    def delay_s(self, job_id: str, attempt: int) -> float:
        """Capped exponential backoff with *deterministic* jitter.

        The jitter factor (0.5..1.0) comes from hashing (job_id,
        attempt), so concurrent retries de-synchronize without making
        the schedule nondeterministic across runs.
        """
        base = min(self.backoff_cap_s,
                   self.backoff_s * (2 ** max(0, attempt - 1)))
        digest = hashlib.sha256(f"{job_id}:{attempt}".encode()).hexdigest()
        frac = int(digest[:8], 16) / 0xFFFFFFFF
        return base * (0.5 + 0.5 * frac)


def _is_transient(record: dict) -> bool:
    """Whether an attempt record describes a retryable failure."""
    if record["status"] == "timeout":
        return True
    return (record["status"] == "failed"
            and is_transient(record.get("error_kind", "")))


@dataclass
class SweepRun:
    """Everything one :func:`run_sweep` call produced or reloaded."""

    sweep_id: str
    spec: SweepSpec
    jobs: List[JobSpec]
    store: Optional[SweepStore]
    resumed: bool
    skipped: int
    elapsed_s: float = 0.0
    statuses: Dict[str, str] = field(default_factory=dict)
    results: Dict[str, SimResult] = field(default_factory=dict)
    errors: Dict[str, dict] = field(default_factory=dict)
    #: job_id -> attempts made this run (resumed-done jobs absent).
    attempts: Dict[str, int] = field(default_factory=dict)
    #: job_id -> error info for jobs that exhausted their retries.
    quarantined: Dict[str, dict] = field(default_factory=dict)

    @property
    def counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for status in self.statuses.values():
            counts[status] = counts.get(status, 0) + 1
        return counts

    @property
    def ok(self) -> bool:
        return all(status == "done" for status in self.statuses.values())

    def find_jobs(self, workload: Optional[str] = None,
                  controller: Optional[str] = None,
                  budget_kind: Optional[str] = None,
                  seed: Optional[int] = None) -> List[JobSpec]:
        """Matrix cells matching the given coordinates, in matrix order."""
        return [
            job for job in self.jobs
            if (workload is None or job.workload == workload)
            and (controller is None or job.controller == controller)
            and (budget_kind is None or job.budget.kind == budget_kind)
            and (seed is None or job.seed == seed)
        ]

    def result(self, job: JobSpec) -> SimResult:
        """The job's result; raises with its recorded error otherwise."""
        found = self.results.get(job.job_id)
        if found is None:
            error = self.errors.get(job.job_id, {})
            raise RuntimeError(
                f"job {job.label()!r} did not complete "
                f"({self.statuses.get(job.job_id, 'missing')}"
                f"{': ' + error['error'] if error.get('error') else ''})")
        return found


def run_sweep(
    spec: SweepSpec,
    store: Union[SweepStore, str, None] = None,
    workers: int = 1,
    fresh: bool = False,
    progress: Optional[ProgressFn] = None,
    capture_errors: bool = True,
    workload_resolver: Optional[Callable[[JobSpec], object]] = None,
    system=None,
    model=None,
    retry: Optional[RetryPolicy] = None,
    chaos: Optional[ChaosPlan] = None,
    heartbeat_timeout_s: Optional[float] = None,
    journal: Union[SweepJournal, str, bool, None] = None,
) -> SweepRun:
    """Run (or resume) a sweep; see the module docs for the phases.

    ``store`` may be a path, an open :class:`SweepStore`, or None for an
    ephemeral in-memory run (no resume).  ``workload_resolver`` /
    ``system`` / ``model`` let the experiment protocols inject pre-built
    objects; they are inline-only (``workers`` must be 1) because worker
    processes rebuild state from the job spec alone.  ``retry`` defaults
    to :class:`RetryPolicy`'s defaults; ``chaos`` injects host faults
    (pool-only: a chaos worker kill aimed at the inline path would kill
    the orchestrator itself); ``heartbeat_timeout_s`` arms hung-worker
    detection in the pool.

    ``journal`` arms sweep telemetry: ``True`` writes to the store's
    default journal path (:meth:`SweepStore.journal_path`; requires a
    store), a string is an explicit path, an open :class:`SweepJournal`
    is used as-is (and left open for the caller).  ``None`` -- the
    default -- emits nothing and touches no files; result rows are
    identical either way (the journal records host scheduling history,
    never simulated quantities).
    """
    if workers < 1:
        raise ConfigError(f"workers must be >= 1, got {workers}")
    overrides = (workload_resolver is not None or system is not None
                 or model is not None)
    if workers > 1 and overrides:
        raise ConfigError("workload_resolver/system/model overrides are "
                          "inline-only; use workers=1")
    if workers > 1 and not capture_errors:
        raise ConfigError("capture_errors=False is inline-only; "
                          "use workers=1")
    if chaos is not None and chaos and workers < 2:
        raise ConfigError("chaos injection needs a worker pool; "
                          "use workers >= 2")
    if heartbeat_timeout_s is not None and heartbeat_timeout_s <= 0:
        raise ConfigError(f"heartbeat timeout must be > 0 s, "
                          f"got {heartbeat_timeout_s}")
    if journal is True and store is None:
        raise ConfigError("journal=True derives its path from the store; "
                          "pass a store or an explicit journal path")
    if retry is None:
        retry = RetryPolicy()

    jobs = spec.expand(known_workloads_only=workload_resolver is None)
    chaos_schedule: Optional[ChaosSchedule] = (
        chaos.resolve(len(jobs)) if chaos is not None and chaos else None)
    if isinstance(store, str):
        store = SweepStore.open(store)

    resumed = False
    if store is not None:
        sweep_id, resumed = store.register_sweep(spec, jobs)
        if fresh and resumed:
            store.drop_sweep(sweep_id)
            sweep_id, resumed = store.register_sweep(spec, jobs)
    else:
        sweep_id = f"{spec.name}-{spec.spec_hash()[:8]}"

    # Telemetry: resolve the journal argument into an (optional) open
    # SweepJournal.  Journals we open here we also close; a caller's
    # journal object stays theirs.
    owns_journal = False
    if journal is True:
        journal = SweepJournal(store.journal_path(sweep_id),
                               sweep_id=sweep_id)
        owns_journal = True
    elif isinstance(journal, str):
        journal = SweepJournal(journal, sweep_id=sweep_id)
        owns_journal = True
    jlog = journal.emit if isinstance(journal, SweepJournal) else None
    if jlog is not None:
        jlog("sweep_begin", sweep_id=sweep_id, name=spec.name,
             spec_hash=spec.spec_hash(), total_jobs=len(jobs),
             workers=workers, resumed=resumed)

    run = SweepRun(sweep_id=sweep_id, spec=spec, jobs=jobs, store=store,
                   resumed=resumed, skipped=0)
    statuses = (store.job_statuses(sweep_id) if store is not None
                else {job.job_id: "pending" for job in jobs})
    run.statuses = statuses

    by_id = {job.job_id: job for job in jobs}
    # Resume: reload completed results (dependents may need provider
    # budgets, reductions need every row) and skip those jobs.
    for job in jobs:
        if statuses[job.job_id] == "done" and store is not None:
            result = store.result_for(job.job_id)
            if result is not None:
                run.results[job.job_id] = result
            run.skipped += 1
            if progress is not None:
                progress("skip", job, None)
            if jlog is not None:
                jlog("job_skip", job_id=job.job_id, index=job.index,
                     label=job.label(), status="done")
        elif statuses[job.job_id] in ("failed", "timeout"):
            run.skipped += 1
            if progress is not None:
                progress("skip", job, None)
            if jlog is not None:
                jlog("job_skip", job_id=job.job_id, index=job.index,
                     label=job.label(), status=statuses[job.job_id])

    todo = [job for job in jobs
            if statuses[job.job_id] not in ("done", "failed", "timeout")]

    # Pre-build each distinct trace once in the parent (fork sharing).
    if workload_resolver is None:
        from repro.workloads.suite import cached_workload

        for key in sorted({(job.workload, job.accesses, job.workload_seed,
                            job.scale) for job in todo}):
            cached_workload(key[0], max_accesses=key[1], seed=key[2],
                            scale=key[3])

    attempts: Dict[str, int] = {job.job_id: 0 for job in todo}
    run.attempts = attempts

    def budget_for(job: JobSpec) -> Optional[int]:
        if not job.budget.needs_reference:
            return job.budget.resolve(None)
        provider = run.results.get(job.provider_id)
        if provider is None:
            raise ConfigError(
                f"budget provider for {job.label()!r} has no result")
        return job.budget.resolve(provider.dram_used_bytes)

    def ready(job: JobSpec) -> bool:
        if not job.budget.needs_reference:
            return True
        return statuses.get(job.provider_id) == "done"

    def provider_dead(job: JobSpec) -> bool:
        return (job.budget.needs_reference
                and statuses.get(job.provider_id) in ("failed", "timeout"))

    def store_finish(job: JobSpec, record: dict,
                     quarantined: bool = False) -> None:
        """Persist a terminal outcome, riding out transient store I/O
        failures (real ENOSPC, chaos ENOSPC, a locked database) with
        the same backoff the jobs themselves get."""
        if store is None:
            return
        write_attempt = 0
        while True:
            write_attempt += 1
            try:
                if (chaos_schedule is not None
                        and chaos_schedule.store_fault(job.index,
                                                       write_attempt)):
                    if jlog is not None:
                        jlog("chaos_injected", job_id=job.job_id,
                             index=job.index, attempt=write_attempt,
                             chaos_kind="enospc", param=0.0)
                    raise OSError(errno.ENOSPC,
                                  "chaos: sweep store write failed")
                store.finish_job(
                    job.job_id, record["status"],
                    elapsed_s=record.get("elapsed_s", 0.0),
                    error=record.get("error", ""),
                    budget_bytes=record.get("budget_bytes"),
                    result=record["result"],
                    quarantined=quarantined,
                )
                return
            except (OSError, sqlite3.Error) as error:
                if write_attempt > retry.max_retries:
                    raise ResourceError(
                        f"cannot record result for {job.label()!r} after "
                        f"{write_attempt} attempts: {error}") from error
                if jlog is not None:
                    jlog("store_retry", job_id=job.job_id,
                         write_attempt=write_attempt, error=str(error))
                time.sleep(retry.delay_s(job.job_id, write_attempt))

    def record_outcome(job: JobSpec, record: dict,
                       quarantined: bool = False) -> None:
        statuses[job.job_id] = record["status"]
        if record["result"] is not None and record["status"] == "done":
            run.results[job.job_id] = record["result"]
        if record["status"] != "done":
            run.errors[job.job_id] = {
                "error": record.get("error", ""),
                "error_type": record.get("error_type", ""),
                "error_kind": record.get("error_kind", ""),
            }
        if quarantined:
            run.quarantined[job.job_id] = {
                "error": record.get("error", ""),
                "error_type": record.get("error_type", ""),
                "attempts": attempts.get(job.job_id, 0),
            }
        store_finish(job, record, quarantined=quarantined)
        if progress is not None:
            progress("finish", job, record)
        if jlog is not None:
            jlog("job_finish", job_id=job.job_id, index=job.index,
                 label=job.label(), attempt=attempts.get(job.job_id, 0),
                 status=record["status"], quarantined=quarantined,
                 elapsed_s=record.get("elapsed_s", 0.0))

    def verify_record(job: JobSpec, record: dict) -> dict:
        """Digest-check a pool record; corruption becomes a transient
        failure record so the normal retry path handles it."""
        if "result_digest" not in record:
            return record
        if result_digest(record["result"]) == record["result_digest"]:
            return record
        return {
            "job_id": job.job_id, "status": "failed",
            "error": "result record corrupted in flight "
                     "(digest mismatch)",
            "error_type": "CorruptResult", "error_kind": "resource",
            "elapsed_s": record.get("elapsed_s", 0.0),
            "budget_bytes": record.get("budget_bytes"), "result": None,
        }

    def handle_outcome(job: JobSpec, record: dict) -> Optional[float]:
        """Classify an attempt outcome.

        Transient failure with retry budget left: remember the error,
        flip the job back to pending, and return the backoff delay.
        Otherwise record the terminal outcome (quarantining exhausted
        transients) and return None.
        """
        attempt = attempts.get(job.job_id, 0)
        transient = _is_transient(record)
        if transient and attempt <= retry.max_retries:
            if store is not None:
                store.record_attempt_failure(
                    job.job_id, record.get("error", ""))
            statuses[job.job_id] = "pending"
            if progress is not None:
                progress("retry", job, record)
            delay = retry.delay_s(job.job_id, attempt)
            if jlog is not None:
                jlog("job_retry", job_id=job.job_id, index=job.index,
                     label=job.label(), attempt=attempt,
                     error_kind=record.get("error_kind", ""),
                     error_type=record.get("error_type", ""),
                     error=record.get("error", ""),
                     backoff_s=round(delay, 6))
            return delay
        record_outcome(job, record, quarantined=transient)
        return None

    def fail_dependent(job: JobSpec) -> None:
        provider = by_id[job.provider_id]
        record_outcome(job, {
            "job_id": job.job_id, "status": "failed",
            "error": f"budget provider {provider.label()!r} "
                     f"{statuses.get(job.provider_id)}",
            "error_type": "ProviderFailed", "error_kind": "config",
            "elapsed_s": 0.0, "budget_bytes": None, "result": None,
        })

    def begin_attempt(job: JobSpec) -> None:
        attempts[job.job_id] = attempts.get(job.job_id, 0) + 1
        if store is not None:
            store.mark_job_running(job.job_id)
        statuses[job.job_id] = "running"
        if progress is not None:
            progress("start", job, None)

    def journal_start(job: JobSpec,
                      worker_slot: Optional[int] = None) -> None:
        """Journal a dispatched attempt -- after :func:`begin_attempt`
        (the attempt counter must have ticked) and, on the pool path,
        after submit (the slot is only known then).  Worker-side chaos
        faults are journaled here, parent-side, from the deterministic
        schedule: the faults themselves fire inside (or kill) the
        child."""
        if jlog is None:
            return
        attempt = attempts.get(job.job_id, 0)
        jlog("job_start", job_id=job.job_id, index=job.index,
             label=job.label(), attempt=attempt, worker_slot=worker_slot)
        if chaos_schedule is not None:
            for kind, param in chaos_schedule.events_for(job.index,
                                                         attempt):
                jlog("chaos_injected", job_id=job.job_id, index=job.index,
                     attempt=attempt, chaos_kind=kind, param=param)

    def pool_event(kind: str, fields: dict) -> None:
        if jlog is not None:
            jlog(kind, **fields)

    started = time.perf_counter()
    completed = False
    try:
        if workers == 1:
            _run_inline(todo, statuses, ready, provider_dead, budget_for,
                        handle_outcome, fail_dependent, begin_attempt,
                        journal_start, spec, capture_errors,
                        workload_resolver, system, model)
        else:
            _run_pool(todo, by_id, statuses, ready, provider_dead,
                      budget_for, handle_outcome, fail_dependent,
                      begin_attempt, journal_start, pool_event,
                      verify_record, attempts, spec, workers,
                      chaos_schedule, heartbeat_timeout_s)
        completed = True
    finally:
        run.elapsed_s = time.perf_counter() - started
        run.statuses = statuses
        if jlog is not None:
            try:
                jlog("sweep_end",
                     status=("interrupted" if not completed else
                             "done" if all(s == "done"
                                           for s in statuses.values())
                             else "failed"),
                     elapsed_s=round(run.elapsed_s, 3), counts=run.counts)
                if owns_journal:
                    journal.close()
            except Exception:
                pass  # telemetry must never mask the real outcome
        if store is not None:
            # Best-effort: the status row must not mask the original
            # failure when the store itself is what broke.
            try:
                if not completed:
                    store.set_sweep_status(sweep_id, "interrupted")
                elif all(status == "done"
                         for status in statuses.values()):
                    store.set_sweep_status(sweep_id, "done")
                else:
                    store.set_sweep_status(sweep_id, "failed")
            except (ResourceError, OSError, sqlite3.Error):
                if completed:
                    raise
    return run


def _run_inline(todo, statuses, ready, provider_dead, budget_for,
                handle_outcome, fail_dependent, begin_attempt,
                journal_start, spec, capture_errors, workload_resolver,
                system, model) -> None:
    """Single-process scheduling: matrix order, providers first;
    retries run in place after their backoff sleep."""
    pending = list(todo)
    while pending:
        progressed = False
        deferred: List[JobSpec] = []
        for job in pending:
            if provider_dead(job):
                fail_dependent(job)
                progressed = True
                continue
            if not ready(job):
                deferred.append(job)
                continue
            budget = budget_for(job)
            while True:
                begin_attempt(job)
                journal_start(job)
                workload = (workload_resolver(job)
                            if workload_resolver is not None else None)
                record = execute_job(
                    job, budget_bytes=budget, timeout_s=spec.job_timeout_s,
                    workload=workload, system=system, model=model,
                    capture_errors=capture_errors,
                )
                delay = handle_outcome(job, record)
                if delay is None:
                    break
                time.sleep(delay)
            progressed = True
        pending = deferred
        if pending and not progressed:
            stuck = ", ".join(job.label() for job in pending[:4])
            raise ConfigError(f"sweep deadlocked waiting on budget "
                              f"providers for: {stuck}")


def _run_pool(todo, by_id, statuses, ready, provider_dead, budget_for,
              handle_outcome, fail_dependent, begin_attempt,
              journal_start, pool_event, verify_record, attempts, spec,
              workers, chaos_schedule, heartbeat_timeout_s) -> None:
    """Pool scheduling: keep every worker fed with ready jobs; retries
    rejoin the queue when their backoff expires."""
    pool = WorkerPool(workers, chaos=chaos_schedule,
                      heartbeat_timeout_s=heartbeat_timeout_s,
                      on_event=pool_event)
    try:
        waiting = list(todo)
        retries: List[Tuple[float, JobSpec]] = []

        def launch(job: JobSpec) -> None:
            budget = budget_for(job)
            begin_attempt(job)
            slot = pool.submit(job, budget, spec.job_timeout_s,
                               attempt=attempts[job.job_id])
            journal_start(job, slot)

        def dispatch_ready() -> None:
            nonlocal waiting
            deferred: List[JobSpec] = []
            for job in waiting:
                if provider_dead(job):
                    fail_dependent(job)
                elif ready(job) and pool.has_idle:
                    launch(job)
                else:
                    deferred.append(job)
            waiting = deferred
            now = time.monotonic()
            due_later: List[Tuple[float, JobSpec]] = []
            for due, job in retries:
                if due <= now and pool.has_idle:
                    launch(job)
                else:
                    due_later.append((due, job))
            retries[:] = due_later

        dispatch_ready()
        while pool.inflight or retries:
            if pool.inflight:
                record = pool.next_result()
                job = by_id[record["job_id"]]
                record = verify_record(job, record)
                delay = handle_outcome(job, record)
                if delay is not None:
                    retries.append((time.monotonic() + delay, job))
            else:
                # Nothing running; sleep until the soonest retry is due.
                due = min(due for due, _ in retries)
                time.sleep(max(0.0, due - time.monotonic()))
            dispatch_ready()
        if waiting:
            stuck = ", ".join(job.label() for job in waiting[:4])
            raise ConfigError(f"sweep deadlocked waiting on budget "
                              f"providers for: {stuck}")
    finally:
        pool.close()
