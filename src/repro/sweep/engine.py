"""The sweep orchestrator: matrix in, recorded results out.

:func:`run_sweep` ties the layers together:

1. expand the :class:`~repro.sweep.spec.SweepSpec` into its job matrix;
2. register the sweep in the :class:`~repro.sweep.store.SweepStore`
   (or find the existing one by spec hash -- that is a *resume*: jobs
   already ``done`` are skipped wholesale, jobs left ``running`` by a
   killed process are re-enqueued as ``pending``);
3. pre-build each distinct workload trace once in the parent so a
   fork-based pool shares them read-only;
4. dispatch ready jobs -- a job is ready when it has no budget
   provider, or its provider finished (iso/fraction budgets resolve
   from the provider's measured ``dram_used_bytes``) -- inline for
   ``workers=1``, through the :class:`~repro.sweep.worker.WorkerPool`
   otherwise;
5. record every outcome (status, resolved budget, result document,
   headline metrics) in the store as it lands.

Determinism: scheduling never feeds back into simulation.  Every job's
seed and configuration is fixed at expansion time, each job runs in a
fresh simulator, and budget resolution depends only on the provider's
(deterministic) result -- so ``-j 1`` and ``-j 8`` sweeps, and killed-
then-resumed sweeps, produce row-identical stores (see
:meth:`~repro.sweep.store.SweepStore.fingerprint_rows`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Union

from repro.common.errors import ConfigError
from repro.sim.results import SimResult
from repro.sweep.spec import JobSpec, SweepSpec
from repro.sweep.store import SweepStore
from repro.sweep.worker import WorkerPool, execute_job

#: Progress callback signature: (event, job, record_or_None).  Events:
#: ``skip`` (already done in the store), ``start``, ``finish``.
ProgressFn = Callable[[str, JobSpec, Optional[dict]], None]


@dataclass
class SweepRun:
    """Everything one :func:`run_sweep` call produced or reloaded."""

    sweep_id: str
    spec: SweepSpec
    jobs: List[JobSpec]
    store: Optional[SweepStore]
    resumed: bool
    skipped: int
    elapsed_s: float = 0.0
    statuses: Dict[str, str] = field(default_factory=dict)
    results: Dict[str, SimResult] = field(default_factory=dict)
    errors: Dict[str, dict] = field(default_factory=dict)

    @property
    def counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for status in self.statuses.values():
            counts[status] = counts.get(status, 0) + 1
        return counts

    @property
    def ok(self) -> bool:
        return all(status == "done" for status in self.statuses.values())

    def find_jobs(self, workload: Optional[str] = None,
                  controller: Optional[str] = None,
                  budget_kind: Optional[str] = None,
                  seed: Optional[int] = None) -> List[JobSpec]:
        """Matrix cells matching the given coordinates, in matrix order."""
        return [
            job for job in self.jobs
            if (workload is None or job.workload == workload)
            and (controller is None or job.controller == controller)
            and (budget_kind is None or job.budget.kind == budget_kind)
            and (seed is None or job.seed == seed)
        ]

    def result(self, job: JobSpec) -> SimResult:
        """The job's result; raises with its recorded error otherwise."""
        found = self.results.get(job.job_id)
        if found is None:
            error = self.errors.get(job.job_id, {})
            raise RuntimeError(
                f"job {job.label()!r} did not complete "
                f"({self.statuses.get(job.job_id, 'missing')}"
                f"{': ' + error['error'] if error.get('error') else ''})")
        return found


def run_sweep(
    spec: SweepSpec,
    store: Union[SweepStore, str, None] = None,
    workers: int = 1,
    fresh: bool = False,
    progress: Optional[ProgressFn] = None,
    capture_errors: bool = True,
    workload_resolver: Optional[Callable[[JobSpec], object]] = None,
    system=None,
    model=None,
) -> SweepRun:
    """Run (or resume) a sweep; see the module docs for the phases.

    ``store`` may be a path, an open :class:`SweepStore`, or None for an
    ephemeral in-memory run (no resume).  ``workload_resolver`` /
    ``system`` / ``model`` let the experiment protocols inject pre-built
    objects; they are inline-only (``workers`` must be 1) because worker
    processes rebuild state from the job spec alone.
    """
    if workers < 1:
        raise ConfigError(f"workers must be >= 1, got {workers}")
    overrides = (workload_resolver is not None or system is not None
                 or model is not None)
    if workers > 1 and overrides:
        raise ConfigError("workload_resolver/system/model overrides are "
                          "inline-only; use workers=1")
    if workers > 1 and not capture_errors:
        raise ConfigError("capture_errors=False is inline-only; "
                          "use workers=1")

    jobs = spec.expand(known_workloads_only=workload_resolver is None)
    if isinstance(store, str):
        store = SweepStore.open(store)

    resumed = False
    if store is not None:
        sweep_id, resumed = store.register_sweep(spec, jobs)
        if fresh and resumed:
            store.drop_sweep(sweep_id)
            sweep_id, resumed = store.register_sweep(spec, jobs)
    else:
        sweep_id = f"{spec.name}-{spec.spec_hash()[:8]}"

    run = SweepRun(sweep_id=sweep_id, spec=spec, jobs=jobs, store=store,
                   resumed=resumed, skipped=0)
    statuses = (store.job_statuses(sweep_id) if store is not None
                else {job.job_id: "pending" for job in jobs})
    run.statuses = statuses

    by_id = {job.job_id: job for job in jobs}
    # Resume: reload completed results (dependents may need provider
    # budgets, reductions need every row) and skip those jobs.
    for job in jobs:
        if statuses[job.job_id] == "done" and store is not None:
            result = store.result_for(job.job_id)
            if result is not None:
                run.results[job.job_id] = result
            run.skipped += 1
            if progress is not None:
                progress("skip", job, None)
        elif statuses[job.job_id] in ("failed", "timeout"):
            run.skipped += 1
            if progress is not None:
                progress("skip", job, None)

    todo = [job for job in jobs
            if statuses[job.job_id] not in ("done", "failed", "timeout")]

    # Pre-build each distinct trace once in the parent (fork sharing).
    if workload_resolver is None:
        from repro.workloads.suite import cached_workload

        for key in sorted({(job.workload, job.accesses, job.workload_seed,
                            job.scale) for job in todo}):
            cached_workload(key[0], max_accesses=key[1], seed=key[2],
                            scale=key[3])

    def budget_for(job: JobSpec) -> Optional[int]:
        if not job.budget.needs_reference:
            return job.budget.resolve(None)
        provider = run.results.get(job.provider_id)
        if provider is None:
            raise ConfigError(
                f"budget provider for {job.label()!r} has no result")
        return job.budget.resolve(provider.dram_used_bytes)

    def ready(job: JobSpec) -> bool:
        if not job.budget.needs_reference:
            return True
        return statuses.get(job.provider_id) == "done"

    def provider_dead(job: JobSpec) -> bool:
        return (job.budget.needs_reference
                and statuses.get(job.provider_id) in ("failed", "timeout"))

    def record_outcome(job: JobSpec, record: dict) -> None:
        statuses[job.job_id] = record["status"]
        if record["result"] is not None and record["status"] == "done":
            run.results[job.job_id] = record["result"]
        if record["status"] != "done":
            run.errors[job.job_id] = {
                "error": record.get("error", ""),
                "error_type": record.get("error_type", ""),
                "error_kind": record.get("error_kind", ""),
            }
        if store is not None:
            store.finish_job(
                job.job_id, record["status"],
                elapsed_s=record.get("elapsed_s", 0.0),
                error=record.get("error", ""),
                budget_bytes=record.get("budget_bytes"),
                result=record["result"],
            )
        if progress is not None:
            progress("finish", job, record)

    def fail_dependent(job: JobSpec) -> None:
        provider = by_id[job.provider_id]
        record_outcome(job, {
            "job_id": job.job_id, "status": "failed",
            "error": f"budget provider {provider.label()!r} "
                     f"{statuses.get(job.provider_id)}",
            "error_type": "ProviderFailed", "error_kind": "config",
            "elapsed_s": 0.0, "budget_bytes": None, "result": None,
        })

    started = time.perf_counter()
    completed = False
    try:
        if workers == 1:
            _run_inline(todo, statuses, ready, provider_dead, budget_for,
                        record_outcome, fail_dependent, spec, progress,
                        store, capture_errors, workload_resolver, system,
                        model)
        else:
            _run_pool(todo, by_id, statuses, ready, provider_dead,
                      budget_for, record_outcome, fail_dependent, spec,
                      progress, store, workers)
        completed = True
    finally:
        run.elapsed_s = time.perf_counter() - started
        run.statuses = statuses
        if store is not None:
            if not completed:
                store.set_sweep_status(sweep_id, "interrupted")
            elif all(status == "done" for status in statuses.values()):
                store.set_sweep_status(sweep_id, "done")
            else:
                store.set_sweep_status(sweep_id, "failed")
    return run


def _run_inline(todo, statuses, ready, provider_dead, budget_for,
                record_outcome, fail_dependent, spec, progress, store,
                capture_errors, workload_resolver, system, model) -> None:
    """Single-process scheduling: matrix order, providers first."""
    pending = list(todo)
    while pending:
        progressed = False
        deferred: List[JobSpec] = []
        for job in pending:
            if provider_dead(job):
                fail_dependent(job)
                progressed = True
                continue
            if not ready(job):
                deferred.append(job)
                continue
            budget = budget_for(job)
            if store is not None:
                store.mark_job_running(job.job_id)
            statuses[job.job_id] = "running"
            if progress is not None:
                progress("start", job, None)
            workload = (workload_resolver(job)
                        if workload_resolver is not None else None)
            record = execute_job(
                job, budget_bytes=budget, timeout_s=spec.job_timeout_s,
                workload=workload, system=system, model=model,
                capture_errors=capture_errors,
            )
            record_outcome(job, record)
            progressed = True
        pending = deferred
        if pending and not progressed:
            stuck = ", ".join(job.label() for job in pending[:4])
            raise ConfigError(f"sweep deadlocked waiting on budget "
                              f"providers for: {stuck}")


def _run_pool(todo, by_id, statuses, ready, provider_dead, budget_for,
              record_outcome, fail_dependent, spec, progress, store,
              workers) -> None:
    """Pool scheduling: keep every worker fed with ready jobs."""
    pool = WorkerPool(workers)
    try:
        waiting = list(todo)

        def dispatch_ready() -> None:
            nonlocal waiting
            deferred: List[JobSpec] = []
            for job in waiting:
                if provider_dead(job):
                    fail_dependent(job)
                elif ready(job):
                    budget = budget_for(job)
                    if store is not None:
                        store.mark_job_running(job.job_id)
                    statuses[job.job_id] = "running"
                    if progress is not None:
                        progress("start", job, None)
                    pool.submit(job, budget, spec.job_timeout_s)
                else:
                    deferred.append(job)
            waiting = deferred

        dispatch_ready()
        while pool.inflight:
            record = pool.next_result()
            record_outcome(by_id[record["job_id"]], record)
            dispatch_ready()
        if waiting:
            stuck = ", ".join(job.label() for job in waiting[:4])
            raise ConfigError(f"sweep deadlocked waiting on budget "
                              f"providers for: {stuck}")
    finally:
        pool.close()
