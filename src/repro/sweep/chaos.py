"""Deterministic *host*-fault injection for sweep resilience testing.

:mod:`repro.sim.faults` breaks the simulated machine on purpose; this
module breaks the **sweep harness itself** -- the worker processes, the
result plumbing, and the SQLite store -- so the retry/quarantine/
heartbeat machinery in :mod:`repro.sweep.engine` is exercised on every
CI run instead of only on unlucky production days.  Same discipline as
the simulation injector: a plan plus a seed fully determines which jobs
get hurt and how often, so a chaos run is replayable and its surviving
metric rows can be asserted ``fingerprint_rows``-identical to a
fault-free run.

Fault kinds (:data:`CHAOS_KINDS`):

- ``worker_kill``  -- the worker SIGKILLs itself mid-job (models the
  OOM killer); the pool must notice the dead child and retry the job.
- ``hang``         -- the worker sleeps ``param`` seconds before
  simulating (models a wedged child); heartbeat supervision must kill
  and replace it.
- ``enospc``       -- the store write for the job's result raises
  ``OSError(ENOSPC)`` (models a full disk); the engine's store-write
  retry must absorb it.
- ``corrupt_row``  -- the worker flips a field in the result record
  after digesting it (models in-flight corruption); the engine's
  digest check must reject the record and retry the job.

Plan strings (CLI ``repro sweep run --chaos``), mirroring the
``sim/faults.py`` grammar::

    kind[:count[:param]][@index]  [, more specs]

    worker_kill:1
    hang:1:30
    enospc:2,corrupt_row:1@3

``count`` is how many consecutive *attempts* of the victim job the
fault fires on (default 1: first attempt hurt, first retry clean);
``param`` is the hang sleep in seconds (ignored by other kinds);
``@index`` pins the victim to a matrix cell, otherwise the victim is
drawn deterministically from (seed, kind, spec position).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.errors import ConfigError

CHAOS_WORKER_KILL = "worker_kill"
CHAOS_HANG = "hang"
CHAOS_ENOSPC = "enospc"
CHAOS_CORRUPT_ROW = "corrupt_row"

#: Every supported host-fault kind, in documentation order.
CHAOS_KINDS = (
    CHAOS_WORKER_KILL,
    CHAOS_HANG,
    CHAOS_ENOSPC,
    CHAOS_CORRUPT_ROW,
)

#: Default hang duration -- long enough that any sane heartbeat timeout
#: fires first, short enough that a missed kill cannot wedge CI forever.
_DEFAULT_HANG_S = 30.0


@dataclass(frozen=True)
class ChaosSpec:
    """One declarative host fault."""

    kind: str
    #: The fault fires on the victim job's attempts ``1..count``.
    count: int = 1
    #: Kind-specific knob; today only ``hang`` reads it (sleep seconds).
    param: float = _DEFAULT_HANG_S
    #: Explicit victim matrix index; ``None`` means seeded choice.
    target: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in CHAOS_KINDS:
            raise ConfigError(
                f"unknown chaos kind {self.kind!r}; "
                f"choose from {list(CHAOS_KINDS)}"
            )
        if self.count < 1:
            raise ConfigError(
                f"chaos count must be >= 1, got {self.count}")
        if self.param <= 0:
            raise ConfigError(
                f"chaos param must be > 0, got {self.param}")
        if self.target is not None and self.target < 0:
            raise ConfigError(
                f"chaos target index must be >= 0, got {self.target}")


@dataclass(frozen=True)
class ChaosPlan:
    """An ordered collection of chaos specs plus the victim-choice seed."""

    specs: Tuple[ChaosSpec, ...] = ()
    seed: int = 0

    def __bool__(self) -> bool:
        return bool(self.specs)

    @classmethod
    def parse(cls, text: str, seed: int = 0) -> "ChaosPlan":
        """Parse the CLI plan syntax (see the module docstring)."""
        specs = []
        for raw in text.split(","):
            item = raw.strip()
            if not item:
                continue
            target = None
            if "@" in item:
                item, _, index_text = item.partition("@")
                try:
                    target = int(index_text)
                except ValueError:
                    raise ConfigError(
                        f"chaos target must be a job index, got "
                        f"{index_text!r}") from None
            parts = item.split(":")
            if len(parts) > 3:
                raise ConfigError(
                    f"chaos spec has too many fields: {raw.strip()!r}")
            kind = parts[0]
            try:
                count = int(parts[1]) if len(parts) > 1 else 1
                param = float(parts[2]) if len(parts) > 2 else _DEFAULT_HANG_S
            except ValueError:
                raise ConfigError(
                    f"chaos count/param must be numeric in "
                    f"{raw.strip()!r}") from None
            specs.append(ChaosSpec(kind=kind, count=count, param=param,
                                   target=target))
        if not specs:
            raise ConfigError(f"chaos plan {text!r} contains no specs")
        return cls(tuple(specs), seed=seed)

    def describe(self) -> str:
        out = []
        for spec in self.specs:
            item = f"{spec.kind}:{spec.count}:{spec.param:g}"
            if spec.target is not None:
                item += f"@{spec.target}"
            out.append(item)
        return ",".join(out)

    def resolve(self, total_jobs: int) -> "ChaosSchedule":
        """Pin every spec to a victim matrix index.

        Victims without an explicit ``@index`` are drawn from
        ``sha256(seed | kind | spec position)`` -- a pure function of
        the plan, so a resumed chaos sweep replays the same schedule.
        When two specs of the same category land on one job, the first
        wins (matching ``sim/faults.py``'s one-draw-per-spec spirit of
        keeping the sequence schedule-independent).
        """
        if total_jobs < 1:
            raise ConfigError(
                f"chaos plan needs at least one job, got {total_jobs}")
        schedule = ChaosSchedule()
        for position, spec in enumerate(self.specs):
            if spec.target is not None:
                if spec.target >= total_jobs:
                    raise ConfigError(
                        f"chaos target @{spec.target} is outside the "
                        f"{total_jobs}-job matrix")
                victim = spec.target
            else:
                digest = hashlib.sha256(
                    f"{self.seed}|{spec.kind}|{position}".encode()
                ).digest()
                victim = int.from_bytes(digest[:4], "big") % total_jobs
            if spec.kind in (CHAOS_WORKER_KILL, CHAOS_HANG):
                schedule.worker_actions.setdefault(
                    victim, (spec.kind, spec.param, spec.count))
            elif spec.kind == CHAOS_ENOSPC:
                schedule.store_faults.setdefault(victim, spec.count)
            else:
                schedule.corruptions.setdefault(victim, spec.count)
        return schedule


@dataclass
class ChaosSchedule:
    """A resolved plan: matrix index -> what happens, for how many
    attempts.  Plain dicts only, so it pickles into spawn-started
    workers as easily as it forks."""

    #: index -> (kind, param, count) for worker-side faults.
    worker_actions: Dict[int, Tuple[str, float, int]] = field(
        default_factory=dict)
    #: index -> count for store-write ENOSPC faults.
    store_faults: Dict[int, int] = field(default_factory=dict)
    #: index -> count for in-flight result corruption.
    corruptions: Dict[int, int] = field(default_factory=dict)

    def __bool__(self) -> bool:
        return bool(self.worker_actions or self.store_faults
                    or self.corruptions)

    def worker_action(self, job_index: int,
                      attempt: int) -> Optional[Tuple[str, float]]:
        """The (kind, param) a worker must inflict on itself for this
        attempt of this job, or None."""
        action = self.worker_actions.get(job_index)
        if action is None:
            return None
        kind, param, count = action
        return (kind, param) if attempt <= count else None

    def store_fault(self, job_index: int, write_attempt: int) -> bool:
        """Whether this store write for this job must raise ENOSPC."""
        count = self.store_faults.get(job_index)
        return count is not None and write_attempt <= count

    def corrupts(self, job_index: int, attempt: int) -> bool:
        """Whether the worker must corrupt this attempt's result record."""
        count = self.corruptions.get(job_index)
        return count is not None and attempt <= count

    def events_for(self, job_index: int,
                   attempt: int) -> List[Tuple[str, float]]:
        """Every worker-side fault this attempt will suffer, as
        (kind, param) pairs -- the engine journals these parent-side at
        dispatch time, because the faults themselves fire inside (or
        kill) the child process.  Store-side ENOSPC faults are journaled
        at the write site instead (:func:`store_fault` decides those
        per write attempt, not per dispatch)."""
        events: List[Tuple[str, float]] = []
        action = self.worker_action(job_index, attempt)
        if action is not None:
            events.append(action)
        if self.corrupts(job_index, attempt):
            events.append((CHAOS_CORRUPT_ROW, 0.0))
        return events
