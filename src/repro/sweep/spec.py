"""Declarative sweep specs and their deterministic job matrices.

A :class:`SweepSpec` names the axes of a design-space sweep -- which
workloads, which controllers (each with its own DRAM-budget ladder),
which seeds, which fault plans -- plus the shared trace knobs.  Specs
come from three places and behave identically:

- the programmatic builder, :meth:`SweepSpec.build`, taking compact
  ``"controller@budget"`` strings;
- TOML files (``[sweep]`` table, ``[[sweep.controllers]]`` arrays);
- JSON files with the same shape as :meth:`SweepSpec.to_dict`.

:meth:`SweepSpec.expand` turns a spec into an ordered list of
:class:`JobSpec` rows -- the *job matrix*.  Expansion is pure and
deterministic: the same spec always yields the same jobs, in the same
order, with the same stable ``job_id`` hashes and the same per-job
derived seeds, regardless of how many workers later run them.  That
property is what makes stores resumable and ``-j 1`` vs ``-j 4``
row-identical.

Budgets support four kinds:

========  ==========================  ===============================
spelling  meaning                     example
========  ==========================  ===============================
none      controller's own default    ``"uncompressed"``
bytes     absolute DRAM budget        ``"tmcc@16MiB"``, ``tmcc@123456``
iso       the reference controller's  ``"tmcc@iso"`` (Figure 17/18's
          measured DRAM usage         iso-capacity protocol)
fraction  a multiple of the iso       ``"tmcc@0.7x"`` (Figure 21's
          reference's usage           capacity ladder)
========  ==========================  ===============================

``iso``/fraction jobs depend on a *provider* job -- the reference
controller (default ``compresso``) at budget ``none`` for the same
workload/seed cell -- and the engine only dispatches them once the
provider's measured ``dram_used_bytes`` is known.
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.common.errors import ConfigError
from repro.common.units import GIB, KIB, MIB

#: Job matrix format tag; part of every job_id hash, so incompatible
#: expansion changes can never silently match old store rows.
MATRIX_VERSION = 1

#: Odd multiplier decorrelating repeat seeds from the base seed; repeat
#: 0 keeps the base seed untouched so single-repeat sweeps reproduce the
#: sequential ``repro compare`` protocols bit-for-bit.
_REPEAT_SEED_STRIDE = 0x9E3779B1

_SIZE_SUFFIXES = {"kib": KIB, "mib": MIB, "gib": GIB,
                  "k": KIB, "m": MIB, "g": GIB, "b": 1}


def derive_job_seed(base_seed: int, repeat: int) -> int:
    """The per-job simulation seed for one repeat of a seed-axis value.

    Repeat 0 is the base seed itself (protocol compatibility); later
    repeats decorrelate with a fixed odd stride, staying deterministic
    functions of the spec alone -- never of scheduling order.
    """
    if repeat == 0:
        return base_seed
    return (base_seed + _REPEAT_SEED_STRIDE * repeat) & 0x7FFF_FFFF


@dataclass(frozen=True)
class BudgetSpec:
    """One DRAM-budget axis value (see the table in the module docs)."""

    kind: str  # "none" | "bytes" | "iso" | "fraction"
    value: float = 0.0

    _KINDS = ("none", "bytes", "iso", "fraction")

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise ConfigError(f"unknown budget kind {self.kind!r}; "
                              f"choose from {self._KINDS}")
        if self.kind == "bytes" and not self.value >= 1:
            raise ConfigError(f"byte budgets must be >= 1, got {self.value}")
        if self.kind == "fraction" and not 0.0 < self.value:
            raise ConfigError(
                f"budget fractions must be > 0, got {self.value}")

    @classmethod
    def parse(cls, raw: Union[None, int, float, str,
                              "BudgetSpec"]) -> "BudgetSpec":
        """Parse a budget spelling from specs/CLI strings."""
        if isinstance(raw, BudgetSpec):
            return raw
        if raw is None:
            return cls("none")
        if isinstance(raw, bool):
            raise ConfigError(f"budget cannot be a boolean ({raw!r})")
        if isinstance(raw, int):
            return cls("bytes", float(raw))
        if isinstance(raw, float):
            raise ConfigError(
                f"ambiguous numeric budget {raw!r}: write fractions of the "
                f"iso reference as '{raw}x' and byte counts as integers")
        text = raw.strip().lower()
        if text in ("", "none", "default"):
            return cls("none")
        if text == "iso":
            return cls("iso", 1.0)
        match = re.fullmatch(r"(\d+(?:\.\d+)?)x", text)
        if match:
            return cls("fraction", float(match.group(1)))
        match = re.fullmatch(r"(\d+(?:\.\d+)?)\s*(kib|mib|gib|k|m|g|b)?",
                             text)
        if match:
            scale = _SIZE_SUFFIXES[match.group(2) or "b"]
            return cls("bytes", float(match.group(1)) * scale)
        raise ConfigError(
            f"cannot parse budget {raw!r}; use 'none', 'iso', a fraction "
            f"like '0.7x', or a byte size like '16MiB'")

    @property
    def needs_reference(self) -> bool:
        """True when the budget derives from a provider job's usage."""
        return self.kind in ("iso", "fraction")

    def label(self) -> str:
        """Canonical spelling, stable across parse round-trips."""
        if self.kind == "none":
            return "none"
        if self.kind == "iso":
            return "iso"
        if self.kind == "fraction":
            return f"{self.value:g}x"
        return f"{int(self.value)}B"

    def resolve(self, reference_bytes: Optional[int]) -> Optional[int]:
        """Concrete byte budget given the provider's measured usage."""
        if self.kind == "none":
            return None
        if self.kind == "bytes":
            return int(self.value)
        if reference_bytes is None:
            raise ConfigError(
                f"budget {self.label()!r} needs the reference job's "
                f"measured DRAM usage")
        if self.kind == "iso":
            return int(reference_bytes)
        return int(reference_bytes * self.value)


@dataclass(frozen=True)
class ControllerSpec:
    """One controller axis entry with its own budget ladder."""

    name: str
    budgets: Tuple[BudgetSpec, ...] = (BudgetSpec("none"),)

    @classmethod
    def parse(cls, raw: Union[str, dict, "ControllerSpec"]) -> "ControllerSpec":
        """``"tmcc"``, ``"tmcc@iso"``, or ``{"name":..., "budgets":[...]}``."""
        if isinstance(raw, ControllerSpec):
            return raw
        if isinstance(raw, str):
            name, sep, budget = raw.partition("@")
            name = name.strip()
            if not name:
                raise ConfigError(f"controller spec {raw!r} has no name")
            budgets = (BudgetSpec.parse(budget),) if sep else \
                (BudgetSpec("none"),)
            return cls(name, budgets)
        if isinstance(raw, dict):
            extra = set(raw) - {"name", "budgets"}
            if extra:
                raise ConfigError(
                    f"unknown controller spec key(s) {sorted(extra)}; "
                    f"expected 'name' and optional 'budgets'")
            if "name" not in raw:
                raise ConfigError("controller spec needs a 'name'")
            budgets = tuple(BudgetSpec.parse(b)
                            for b in raw.get("budgets", ["none"]))
            if not budgets:
                raise ConfigError(
                    f"controller {raw['name']!r} has an empty budget list")
            return cls(str(raw["name"]), budgets)
        raise ConfigError(f"cannot parse controller spec {raw!r}")

    def to_dict(self) -> dict:
        return {"name": self.name,
                "budgets": [b.label() for b in self.budgets]}


@dataclass(frozen=True)
class JobSpec:
    """One fully-resolved cell of the job matrix.

    ``job_id`` hashes every simulation-relevant field (plus the matrix
    version), so a store row written by one expansion is only ever
    matched by an identical configuration.  ``provider_id`` names the
    job whose measured DRAM usage resolves this job's budget, or is
    empty for independent jobs.
    """

    index: int
    workload: str
    controller: str
    seed: int
    base_seed: int
    repeat: int
    budget: BudgetSpec
    faults: Optional[str]
    accesses: int
    scale: float
    workload_seed: int
    fast_path: str
    huge_pages: bool
    job_id: str = field(default="", compare=False)
    provider_id: str = field(default="", compare=False)

    def identity(self) -> dict:
        """The fields a job's hash (and store matching) is built from."""
        return {
            "matrix_version": MATRIX_VERSION,
            "workload": self.workload,
            "controller": self.controller,
            "seed": self.seed,
            "budget": self.budget.label(),
            "faults": self.faults or "",
            "accesses": self.accesses,
            "scale": self.scale,
            "workload_seed": self.workload_seed,
            "fast_path": self.fast_path,
            "huge_pages": self.huge_pages,
        }

    def label(self) -> str:
        """Short human label: ``mcf/tmcc@iso s1``."""
        budget = self.budget.label()
        suffix = "" if budget == "none" else f"@{budget}"
        fault = f" faults={self.faults}" if self.faults else ""
        return f"{self.workload}/{self.controller}{suffix} s{self.seed}{fault}"


def _job_hash(identity: dict) -> str:
    canonical = json.dumps(identity, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


def _as_tuple(value, what: str) -> tuple:
    if isinstance(value, (str, bytes)) or not isinstance(
            value, (list, tuple)):
        raise ConfigError(f"{what} must be a list, got {value!r}")
    return tuple(value)


@dataclass(frozen=True)
class SweepSpec:
    """A declarative sweep: axes x trace knobs -> a deterministic matrix."""

    name: str
    workloads: Tuple[str, ...]
    controllers: Tuple[ControllerSpec, ...]
    seeds: Tuple[int, ...] = (1,)
    faults: Tuple[Optional[str], ...] = (None,)
    repeats: int = 1
    accesses: int = 40_000
    scale: float = 0.4
    workload_seed: int = 1
    fast_path: str = "auto"
    huge_pages: bool = False
    #: Controller whose budget-``none`` job anchors iso/fraction budgets.
    reference: str = "compresso"
    #: Per-job wall-clock watchdog (seconds); None disables it.
    job_timeout_s: Optional[float] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        name: str,
        workloads: Sequence[str],
        controllers: Sequence[Union[str, dict, ControllerSpec]],
        seeds: Sequence[int] = (1,),
        faults: Sequence[Optional[str]] = (None,),
        known_workloads_only: bool = True,
        **knobs,
    ) -> "SweepSpec":
        """The programmatic builder; accepts compact controller strings."""
        spec = cls(
            name=name,
            workloads=tuple(workloads),
            controllers=tuple(ControllerSpec.parse(c) for c in controllers),
            seeds=tuple(int(s) for s in seeds),
            faults=tuple(f or None for f in faults) or (None,),
            **knobs,
        )
        spec.validate(known_workloads_only=known_workloads_only)
        return spec

    @classmethod
    def from_dict(cls, data: dict) -> "SweepSpec":
        if not isinstance(data, dict):
            raise ConfigError(f"sweep spec must be a table/object, "
                              f"got {type(data).__name__}")
        if "sweep" in data and isinstance(data["sweep"], dict):
            data = data["sweep"]
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(data) - known
        if unknown:
            raise ConfigError(f"unknown sweep spec key(s) {sorted(unknown)}; "
                              f"known keys: {sorted(known)}")
        for required in ("name", "workloads", "controllers"):
            if required not in data:
                raise ConfigError(f"sweep spec needs {required!r}")
        knobs = {key: data[key] for key in known
                 if key in data and key not in
                 ("name", "workloads", "controllers", "seeds", "faults")}
        if "job_timeout_s" in knobs and knobs["job_timeout_s"] is not None:
            knobs["job_timeout_s"] = float(knobs["job_timeout_s"])
        return cls.build(
            name=str(data["name"]),
            workloads=[str(w) for w in
                       _as_tuple(data["workloads"], "workloads")],
            controllers=list(_as_tuple(data["controllers"], "controllers")),
            seeds=[int(s) for s in data.get("seeds", (1,))],
            faults=[f or None for f in data.get("faults", (None,))],
            **knobs,
        )

    @classmethod
    def from_file(cls, path: str) -> "SweepSpec":
        """Load a spec from a ``.toml`` or ``.json`` file."""
        try:
            with open(path, "rb") as handle:
                raw = handle.read()
        except OSError as error:
            raise ConfigError(f"cannot read sweep spec {path!r}: {error}")
        if path.endswith(".toml"):
            import tomllib

            try:
                data = tomllib.loads(raw.decode())
            except (tomllib.TOMLDecodeError, UnicodeDecodeError) as error:
                raise ConfigError(f"{path} is not valid TOML: {error}")
        else:
            try:
                data = json.loads(raw)
            except ValueError as error:
                raise ConfigError(f"{path} is not valid JSON: {error}")
        return cls.from_dict(data)

    # ------------------------------------------------------------------
    # Validation / serialization
    # ------------------------------------------------------------------

    def validate(self, known_workloads_only: bool = True) -> None:
        """Raise :class:`ConfigError` on an unrunnable spec.

        ``known_workloads_only=False`` skips the paper-suite name check
        for callers that resolve workload names to pre-built objects
        themselves (the experiment protocols).
        """
        if not self.name:
            raise ConfigError("sweep spec needs a non-empty name")
        if not self.workloads:
            raise ConfigError("sweep spec needs at least one workload")
        if not self.controllers:
            raise ConfigError("sweep spec needs at least one controller")
        if known_workloads_only:
            from repro.workloads.suite import PAPER_WORKLOAD_NAMES

            for workload in self.workloads:
                if workload not in PAPER_WORKLOAD_NAMES:
                    raise ConfigError(
                        f"unknown workload {workload!r}; "
                        f"choose from {PAPER_WORKLOAD_NAMES}")
        from repro.core import available_controllers

        known = available_controllers()
        for controller in self.controllers:
            if controller.name not in known:
                raise ConfigError(f"unknown controller {controller.name!r}; "
                                  f"choose from {known}")
        if self.accesses <= 0:
            raise ConfigError(f"accesses must be > 0, got {self.accesses}")
        if not 0.0 < self.scale <= 1.0:
            raise ConfigError(f"scale must be in (0, 1], got {self.scale}")
        if self.repeats < 1:
            raise ConfigError(f"repeats must be >= 1, got {self.repeats}")
        if self.fast_path not in ("auto", "on", "off"):
            raise ConfigError(f"fast_path must be 'auto', 'on', or 'off', "
                              f"got {self.fast_path!r}")
        if self.job_timeout_s is not None and self.job_timeout_s <= 0:
            raise ConfigError(f"job_timeout_s must be > 0, "
                              f"got {self.job_timeout_s}")
        for plan in self.faults:
            if plan:
                from repro.sim.faults import FaultPlan

                FaultPlan.parse(plan)  # raises ConfigError on bad specs
        needs_reference = any(budget.needs_reference
                              for controller in self.controllers
                              for budget in controller.budgets)
        if needs_reference:
            providers = [c for c in self.controllers
                         if c.name == self.reference
                         and any(b.kind == "none" for b in c.budgets)]
            if not providers:
                raise ConfigError(
                    f"iso/fraction budgets need a {self.reference!r} "
                    f"controller at budget 'none' in the matrix to "
                    f"measure against")

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "workloads": list(self.workloads),
            "controllers": [c.to_dict() for c in self.controllers],
            "seeds": list(self.seeds),
            "faults": [f or "" for f in self.faults],
            "repeats": self.repeats,
            "accesses": self.accesses,
            "scale": self.scale,
            "workload_seed": self.workload_seed,
            "fast_path": self.fast_path,
            "huge_pages": self.huge_pages,
            "reference": self.reference,
            "job_timeout_s": self.job_timeout_s,
        }

    def canonical_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    def spec_hash(self) -> str:
        """Stable identity of this spec (the resume key in the store)."""
        return hashlib.sha256(self.canonical_json().encode()).hexdigest()[:16]

    # ------------------------------------------------------------------
    # Expansion
    # ------------------------------------------------------------------

    def expand(self, known_workloads_only: bool = True) -> List[JobSpec]:
        """The deterministic job matrix, providers wired to dependents.

        Ordering: workloads > seeds > repeats > controllers (as listed)
        > budgets (as listed) > fault plans.  Pure function of the spec.
        """
        self.validate(known_workloads_only=known_workloads_only)
        jobs: List[JobSpec] = []
        by_identity: Dict[str, JobSpec] = {}

        def add(workload: str, controller: str, seed: int, base_seed: int,
                repeat: int, budget: BudgetSpec,
                faults: Optional[str]) -> JobSpec:
            job = JobSpec(
                index=len(jobs), workload=workload, controller=controller,
                seed=seed, base_seed=base_seed, repeat=repeat, budget=budget,
                faults=faults, accesses=self.accesses, scale=self.scale,
                workload_seed=self.workload_seed, fast_path=self.fast_path,
                huge_pages=self.huge_pages,
            )
            job_id = _job_hash(job.identity())
            if job_id in by_identity:
                raise ConfigError(
                    f"duplicate matrix cell {job.label()!r}; every "
                    f"(workload, controller, budget, seed, faults) "
                    f"combination may appear once")
            job = replace(job, job_id=job_id)
            jobs.append(job)
            by_identity[job_id] = job
            return job

        for workload in self.workloads:
            for base_seed in self.seeds:
                for repeat in range(self.repeats):
                    seed = derive_job_seed(base_seed, repeat)
                    for controller in self.controllers:
                        for budget in controller.budgets:
                            for faults in self.faults:
                                add(workload, controller.name, seed,
                                    base_seed, repeat, budget, faults)

        # Wire iso/fraction jobs to their provider (the reference
        # controller at budget 'none'); prefer the provider sharing the
        # job's fault plan, fall back to the fault-free one.
        def provider_for(job: JobSpec) -> JobSpec:
            candidates = [
                other for other in jobs
                if other.workload == job.workload and other.seed == job.seed
                and other.controller == self.reference
                and other.budget.kind == "none"
            ]
            same_faults = [c for c in candidates if c.faults == job.faults]
            fault_free = [c for c in candidates if c.faults is None]
            for pool in (same_faults, fault_free):
                if pool:
                    return pool[0]
            raise ConfigError(
                f"{job.label()!r} needs a {self.reference!r} reference "
                f"job in the matrix")

        wired: List[JobSpec] = []
        for job in jobs:
            if job.budget.needs_reference:
                job = replace(job, provider_id=provider_for(job).job_id)
            wired.append(job)
        return wired


# ----------------------------------------------------------------------
# Built-in named matrices
# ----------------------------------------------------------------------

#: The Figure 18 configuration matrix: every pinned workload under the
#: uncompressed baseline, Compresso, and TMCC at Compresso's measured
#: budget (iso-capacity).  Defaults reproduce sequential ``repro
#: compare`` runs bit-for-bit (same accesses/scale/seed).
_FIG18_WORKLOADS = ("pageRank", "shortestPath", "bfs", "kcore", "mcf",
                    "omnetpp", "canneal")


def builtin_spec(name: str, **overrides) -> SweepSpec:
    """A named built-in matrix (``fig18``, ``smoke``), with overrides."""
    if name == "fig18":
        base = dict(
            name="fig18",
            workloads=_FIG18_WORKLOADS,
            controllers=("uncompressed", "compresso", "tmcc@iso"),
            accesses=40_000,
            scale=0.4,
        )
    elif name == "smoke":
        base = dict(
            name="smoke",
            workloads=("mcf", "omnetpp"),
            controllers=("compresso", "tmcc@iso"),
            accesses=4_000,
            scale=0.05,
        )
    else:
        raise ConfigError(f"unknown built-in sweep {name!r}; "
                          f"choose from ['fig18', 'smoke']")
    base.update(overrides)
    return SweepSpec.build(**base)
