"""The SQLite-backed sweep result store.

Layout (schema-versioned; :data:`STORE_SCHEMA_VERSION`):

- ``meta``    -- key/value header; holds ``schema_version``.
- ``sweeps``  -- one row per registered sweep: id, name, the full spec
  as canonical JSON, its hash (the resume key), status, created_at.
- ``jobs``    -- one row per matrix cell: every simulation-relevant
  field, scheduling status (``pending``/``running``/``done``/
  ``failed``/``timeout``), the resolved byte budget, the error line,
  host elapsed seconds, the retry bookkeeping (``attempts``,
  ``last_error``, ``quarantined``), and the full result document
  (:meth:`repro.sim.results.SimResult.as_dict` JSON).
- ``metrics`` -- headline metrics flattened to ``(job_id, key, value)``
  rows so SQL can compare designs without parsing result JSON.

The engine/connection split: :class:`StoreEngine` owns the file path,
pragmas, and schema migration; every operation borrows a short-lived
connection from :meth:`StoreEngine.connect`, so one store can be read
by many processes while the sweep engine (the single writer) runs.
Connections run in WAL mode with a generous ``busy_timeout``, so
``repro sweep ls/show`` against a live sweep waits instead of dying
with ``database is locked``.  Opening a store runs ``PRAGMA
quick_check``; torn files are rejected with a one-line pointer at
:meth:`SweepStore.repair`, which salvages completed rows into a fresh
store.  :class:`SweepStore` is the high-level API the sweep engine,
the CLI (``repro sweep ls/show/export``), and the benchmark harness
use.

Timestamps and host-elapsed columns are the only nondeterministic
fields; :meth:`SweepStore.fingerprint_rows` projects them away, which
is how the resume tests assert a killed-and-resumed sweep is
row-identical to an uninterrupted one.
"""

from __future__ import annotations

import json
import os
import sqlite3
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.common.errors import ConfigError, ResourceError
from repro.sim.results import SimResult
from repro.sweep.spec import JobSpec, SweepSpec

#: Bump on incompatible table changes; old stores are migrated when the
#: upgrade is additive (v1 -> v2 adds the retry columns) and rejected
#: with a one-line ConfigError otherwise.
STORE_SCHEMA_VERSION = 2

_SQLITE_MAGIC = b"SQLite format 3\x00"

#: Job lifecycle states.  ``running`` rows are re-enqueued on resume:
#: the process that owned them died without recording a result.
JOB_STATES = ("pending", "running", "done", "failed", "timeout")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS sweeps (
    sweep_id   TEXT PRIMARY KEY,
    name       TEXT NOT NULL,
    spec_hash  TEXT NOT NULL UNIQUE,
    spec_json  TEXT NOT NULL,
    status     TEXT NOT NULL,
    created_at REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS jobs (
    job_id       TEXT PRIMARY KEY,
    sweep_id     TEXT NOT NULL REFERENCES sweeps(sweep_id),
    idx          INTEGER NOT NULL,
    workload     TEXT NOT NULL,
    controller   TEXT NOT NULL,
    seed         INTEGER NOT NULL,
    base_seed    INTEGER NOT NULL,
    repeat      INTEGER NOT NULL,
    budget       TEXT NOT NULL,
    budget_bytes INTEGER,
    faults       TEXT NOT NULL DEFAULT '',
    accesses     INTEGER NOT NULL,
    scale        REAL NOT NULL,
    workload_seed INTEGER NOT NULL,
    fast_path    TEXT NOT NULL,
    huge_pages   INTEGER NOT NULL DEFAULT 0,
    provider_id  TEXT NOT NULL DEFAULT '',
    status       TEXT NOT NULL,
    error        TEXT NOT NULL DEFAULT '',
    attempts     INTEGER NOT NULL DEFAULT 0,
    last_error   TEXT NOT NULL DEFAULT '',
    quarantined  INTEGER NOT NULL DEFAULT 0,
    elapsed_s    REAL,
    started_at   REAL,
    finished_at  REAL,
    result_json  TEXT
);
CREATE INDEX IF NOT EXISTS jobs_by_sweep ON jobs(sweep_id, idx);
CREATE INDEX IF NOT EXISTS jobs_by_config
    ON jobs(workload, controller, accesses, seed);
CREATE TABLE IF NOT EXISTS metrics (
    job_id TEXT NOT NULL REFERENCES jobs(job_id),
    key    TEXT NOT NULL,
    value  REAL NOT NULL,
    PRIMARY KEY (job_id, key)
);
"""


class StoreEngine:
    """Owns a store file: connection factory plus schema management."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._ensure_schema()

    @contextmanager
    def connect(self) -> Iterator[sqlite3.Connection]:
        """A short-lived connection; commits on success, rolls back on
        error.  Borrow one per logical operation -- holding connections
        across operations would serialize readers against the writer."""
        try:
            conn = sqlite3.connect(self.path, timeout=30.0)
        except sqlite3.Error as error:
            raise ResourceError(
                f"cannot open sweep store {self.path!r}: {error}")
        conn.row_factory = sqlite3.Row
        # One place for the concurrency pragmas: WAL lets `sweep ls`
        # read while the engine writes, busy_timeout makes the rare
        # writer/writer collision wait instead of raising `database is
        # locked`.  Best-effort -- a damaged file fails these, and the
        # quick_check in _ensure_schema owns that diagnosis.
        try:
            conn.execute("PRAGMA busy_timeout = 30000")
            conn.execute("PRAGMA journal_mode = WAL")
            conn.execute("PRAGMA synchronous = NORMAL")
        except sqlite3.Error:
            pass
        try:
            yield conn
            conn.commit()
        except BaseException:
            conn.rollback()
            raise
        finally:
            conn.close()

    def _looks_like_sqlite(self) -> bool:
        try:
            with open(self.path, "rb") as handle:
                return handle.read(len(_SQLITE_MAGIC)) == _SQLITE_MAGIC
        except OSError:
            return False

    def _ensure_schema(self) -> None:
        with self.connect() as conn:
            try:
                check = conn.execute("PRAGMA quick_check(1)").fetchone()
                tables = {row["name"] for row in conn.execute(
                    "SELECT name FROM sqlite_master WHERE type='table'")}
            except sqlite3.DatabaseError:
                check = None
                tables = None
            if tables is None or (check is not None and check[0] != "ok"):
                # A readable-but-torn SQLite file gets the salvage
                # pointer; arbitrary non-SQLite bytes keep the blunter
                # historical message.
                if self._looks_like_sqlite():
                    raise ConfigError(
                        f"sweep store {self.path!r} failed the SQLite "
                        f"integrity check; salvage completed rows with "
                        f"`repro sweep repair {self.path} --out NEW.db`")
                raise ConfigError(
                    f"{self.path!r} is not a sweep store (not a SQLite "
                    f"database)")
            if "meta" not in tables:
                if tables:
                    raise ConfigError(
                        f"{self.path!r} is a SQLite database but not a "
                        f"sweep store (no schema_version)")
                conn.executescript(_SCHEMA)
                conn.execute(
                    "INSERT INTO meta (key, value) VALUES "
                    "('schema_version', ?)", (str(STORE_SCHEMA_VERSION),))
                return
            row = conn.execute(
                "SELECT value FROM meta WHERE key = 'schema_version'"
            ).fetchone()
            if row is None:
                raise ConfigError(
                    f"sweep store {self.path!r} has no schema_version")
            version = int(row["value"])
            if version == 1:
                self._migrate_v1_to_v2(conn)
                return
            if version != STORE_SCHEMA_VERSION:
                raise ConfigError(
                    f"sweep store {self.path!r} has schema version "
                    f"{version}; this build reads version "
                    f"{STORE_SCHEMA_VERSION}")

    @staticmethod
    def _migrate_v1_to_v2(conn: sqlite3.Connection) -> None:
        """v1 -> v2: the retry-bookkeeping columns, purely additive.

        Existing rows read as never-retried (``attempts=0``), which is
        truthful -- v1 engines recorded one attempt and no retries."""
        for ddl in (
            "ALTER TABLE jobs ADD COLUMN attempts INTEGER NOT NULL DEFAULT 0",
            "ALTER TABLE jobs ADD COLUMN last_error TEXT NOT NULL DEFAULT ''",
            "ALTER TABLE jobs ADD COLUMN quarantined INTEGER NOT NULL "
            "DEFAULT 0",
        ):
            conn.execute(ddl)
        conn.execute("UPDATE meta SET value = ? WHERE key = 'schema_version'",
                     (str(STORE_SCHEMA_VERSION),))


class SweepStore:
    """High-level sweep/job/metric operations over a :class:`StoreEngine`."""

    def __init__(self, engine: StoreEngine) -> None:
        self.engine = engine

    @classmethod
    def open(cls, path: str) -> "SweepStore":
        return cls(StoreEngine(path))

    @property
    def path(self) -> str:
        return self.engine.path

    # ------------------------------------------------------------------
    # Sweep registration / lifecycle
    # ------------------------------------------------------------------

    def register_sweep(self, spec: SweepSpec,
                       jobs: Sequence[JobSpec]) -> Tuple[str, bool]:
        """Insert a sweep and its pending job matrix, or find the
        existing sweep with the same spec hash.

        Returns ``(sweep_id, resumed)``; ``resumed`` is True when the
        sweep already existed (its recorded jobs are reused, jobs stuck
        ``running`` by a killed process are reset to ``pending``, and
        matrix cells missing entirely -- a repaired store that lost
        rows to a torn page -- are re-inserted as ``pending``).
        """
        spec_hash = spec.spec_hash()
        sweep_id = f"{spec.name}-{spec_hash[:8]}"
        with self.engine.connect() as conn:
            row = conn.execute(
                "SELECT sweep_id FROM sweeps WHERE spec_hash = ?",
                (spec_hash,)).fetchone()
            if row is not None:
                sweep_id = row["sweep_id"]
                conn.execute(
                    "UPDATE jobs SET status = 'pending', started_at = NULL "
                    "WHERE sweep_id = ? AND status = 'running'", (sweep_id,))
                conn.execute(
                    "UPDATE sweeps SET status = 'running' "
                    "WHERE sweep_id = ?", (sweep_id,))
                conn.executemany(
                    "INSERT OR IGNORE INTO jobs (job_id, sweep_id, idx, "
                    "workload, controller, seed, base_seed, repeat, "
                    "budget, faults, accesses, scale, workload_seed, "
                    "fast_path, huge_pages, provider_id, status) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, "
                    "?, ?, 'pending')",
                    [(job.job_id, sweep_id, job.index, job.workload,
                      job.controller, job.seed, job.base_seed, job.repeat,
                      job.budget.label(), job.faults or "", job.accesses,
                      job.scale, job.workload_seed, job.fast_path,
                      int(job.huge_pages), job.provider_id)
                     for job in jobs])
                return sweep_id, True
            conn.execute(
                "INSERT INTO sweeps (sweep_id, name, spec_hash, spec_json, "
                "status, created_at) VALUES (?, ?, ?, ?, 'running', ?)",
                (sweep_id, spec.name, spec_hash, spec.canonical_json(),
                 time.time()))
            conn.executemany(
                "INSERT INTO jobs (job_id, sweep_id, idx, workload, "
                "controller, seed, base_seed, repeat, budget, faults, "
                "accesses, scale, workload_seed, fast_path, huge_pages, "
                "provider_id, status) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, "
                "'pending')",
                [(job.job_id, sweep_id, job.index, job.workload,
                  job.controller, job.seed, job.base_seed, job.repeat,
                  job.budget.label(), job.faults or "", job.accesses,
                  job.scale, job.workload_seed, job.fast_path,
                  int(job.huge_pages), job.provider_id)
                 for job in jobs])
        return sweep_id, False

    def drop_sweep(self, sweep_id: str) -> None:
        """Delete a sweep and everything it measured (``--fresh``)."""
        with self.engine.connect() as conn:
            conn.execute(
                "DELETE FROM metrics WHERE job_id IN "
                "(SELECT job_id FROM jobs WHERE sweep_id = ?)", (sweep_id,))
            conn.execute("DELETE FROM jobs WHERE sweep_id = ?", (sweep_id,))
            conn.execute("DELETE FROM sweeps WHERE sweep_id = ?", (sweep_id,))

    def set_sweep_status(self, sweep_id: str, status: str) -> None:
        with self.engine.connect() as conn:
            conn.execute("UPDATE sweeps SET status = ? WHERE sweep_id = ?",
                         (status, sweep_id))

    # ------------------------------------------------------------------
    # Job lifecycle
    # ------------------------------------------------------------------

    def job_statuses(self, sweep_id: str) -> Dict[str, str]:
        with self.engine.connect() as conn:
            rows = conn.execute(
                "SELECT job_id, status FROM jobs WHERE sweep_id = ?",
                (sweep_id,)).fetchall()
        return {row["job_id"]: row["status"] for row in rows}

    def mark_job_running(self, job_id: str) -> None:
        """Flip a job to running and count the attempt."""
        with self.engine.connect() as conn:
            conn.execute(
                "UPDATE jobs SET status = 'running', started_at = ?, "
                "attempts = attempts + 1 WHERE job_id = ?",
                (time.time(), job_id))

    def record_attempt_failure(self, job_id: str, error: str) -> None:
        """A transient attempt failed but the job will be retried:
        back to ``pending`` with the failure remembered in
        ``last_error`` (the attempt counter already ticked when the
        attempt started)."""
        with self.engine.connect() as conn:
            conn.execute(
                "UPDATE jobs SET status = 'pending', last_error = ? "
                "WHERE job_id = ?", (error, job_id))

    def finish_job(
        self,
        job_id: str,
        status: str,
        elapsed_s: float,
        error: str = "",
        budget_bytes: Optional[int] = None,
        result: Optional[SimResult] = None,
        quarantined: bool = False,
    ) -> None:
        """Record a finished job: status, resolved budget, result row,
        and the flattened headline metrics.  ``quarantined`` marks a
        transient failure that exhausted its retries."""
        if status not in JOB_STATES:
            raise ValueError(f"unknown job status {status!r}")
        result_json = None
        headline: Dict[str, float] = {}
        if result is not None:
            result_json = json.dumps(result.as_dict(), sort_keys=True)
            headline = result.headline()
        with self.engine.connect() as conn:
            conn.execute(
                "UPDATE jobs SET status = ?, error = ?, elapsed_s = ?, "
                "budget_bytes = ?, finished_at = ?, result_json = ?, "
                "quarantined = ? WHERE job_id = ?",
                (status, error, elapsed_s, budget_bytes, time.time(),
                 result_json, int(quarantined), job_id))
            conn.execute("DELETE FROM metrics WHERE job_id = ?", (job_id,))
            if headline:
                conn.executemany(
                    "INSERT INTO metrics (job_id, key, value) "
                    "VALUES (?, ?, ?)",
                    [(job_id, key, float(value))
                     for key, value in headline.items()])

    # ------------------------------------------------------------------
    # Telemetry surface
    # ------------------------------------------------------------------

    def journal_path(self, sweep_id: str) -> str:
        """Where this sweep's telemetry journal lives: next to the
        store, keyed by sweep id (which is spec-hash-stable, so a
        resumed sweep appends to the same file).  In-memory stores have
        no directory to put one in."""
        return f"{self.path}.{sweep_id}.journal.jsonl"

    def status_counts(self, sweep_id: str) -> Dict[str, int]:
        """Aggregate job counts for the watch/show surfaces: one row
        per status, plus ``quarantined`` (terminal rows that exhausted
        their retries) -- a single GROUP BY, so a second process can
        poll it cheaply under WAL while the sweep runs."""
        with self.engine.connect() as conn:
            rows = conn.execute(
                "SELECT status, COUNT(*) AS n FROM jobs "
                "WHERE sweep_id = ? GROUP BY status", (sweep_id,)).fetchall()
            quarantined = conn.execute(
                "SELECT COUNT(*) AS n FROM jobs WHERE sweep_id = ? "
                "AND quarantined != 0", (sweep_id,)).fetchone()
        counts = {row["status"]: row["n"] for row in rows}
        counts["quarantined"] = quarantined["n"] if quarantined else 0
        return counts

    def failure_rows(self, sweep_id: str) -> List[dict]:
        """The persisted failure/quarantine report: every job that is
        not cleanly ``done``, with its attempt count and last error."""
        with self.engine.connect() as conn:
            rows = conn.execute(
                "SELECT idx, job_id, workload, controller, budget, seed, "
                "faults, status, attempts, quarantined, error, last_error "
                "FROM jobs WHERE sweep_id = ? AND "
                "(status != 'done' OR quarantined != 0) ORDER BY idx",
                (sweep_id,)).fetchall()
        return [dict(row) for row in rows]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def list_sweeps(self) -> List[dict]:
        with self.engine.connect() as conn:
            rows = conn.execute(
                "SELECT s.*, "
                "  (SELECT COUNT(*) FROM jobs j WHERE j.sweep_id = "
                "   s.sweep_id) AS jobs_total, "
                "  (SELECT COUNT(*) FROM jobs j WHERE j.sweep_id = "
                "   s.sweep_id AND j.status = 'done') AS jobs_done "
                "FROM sweeps s ORDER BY s.created_at").fetchall()
        return [dict(row) for row in rows]

    def find_sweep(self, ident: str) -> dict:
        """Look a sweep up by exact id, id prefix, or name (latest)."""
        with self.engine.connect() as conn:
            for query, arg in (
                ("SELECT * FROM sweeps WHERE sweep_id = ?", ident),
                ("SELECT * FROM sweeps WHERE sweep_id LIKE ? "
                 "ORDER BY created_at DESC", f"{ident}%"),
                ("SELECT * FROM sweeps WHERE name = ? "
                 "ORDER BY created_at DESC", ident),
            ):
                row = conn.execute(query, (arg,)).fetchone()
                if row is not None:
                    return dict(row)
        raise ConfigError(f"no sweep {ident!r} in {self.path!r}; "
                          f"try `repro sweep ls`")

    def jobs(self, sweep_id: str) -> List[dict]:
        with self.engine.connect() as conn:
            rows = conn.execute(
                "SELECT * FROM jobs WHERE sweep_id = ? ORDER BY idx",
                (sweep_id,)).fetchall()
        return [dict(row) for row in rows]

    def result_for(self, job_id: str) -> Optional[SimResult]:
        with self.engine.connect() as conn:
            row = conn.execute(
                "SELECT result_json FROM jobs WHERE job_id = ?",
                (job_id,)).fetchone()
        if row is None or not row["result_json"]:
            return None
        return _result_from_json(row["result_json"])

    def find_result(
        self,
        workload: str,
        controller: str,
        accesses: int,
        seed: int = 1,
        scale: float = 1.0,
        budget_bytes: Optional[int] = None,
        huge_pages: bool = False,
    ) -> Optional[SimResult]:
        """The recorded result for one concrete configuration, if any.

        This is the benchmark harness's cache-lookup surface: budgets
        match on the *resolved* byte value, so an iso-capacity row is
        found by the budget its provider measured.
        """
        query = (
            "SELECT result_json FROM jobs WHERE workload = ? AND "
            "controller = ? AND accesses = ? AND seed = ? AND scale = ? "
            "AND huge_pages = ? AND status = 'done' AND faults = ''")
        args: List[object] = [workload, controller, accesses, seed, scale,
                              int(huge_pages)]
        if budget_bytes is None:
            query += " AND budget = 'none'"
        else:
            query += " AND budget_bytes = ?"
            args.append(int(budget_bytes))
        with self.engine.connect() as conn:
            row = conn.execute(query, args).fetchone()
        if row is None or not row["result_json"]:
            return None
        return _result_from_json(row["result_json"])

    def metrics_rows(self, sweep_id: str) -> List[dict]:
        with self.engine.connect() as conn:
            rows = conn.execute(
                "SELECT j.idx, j.workload, j.controller, j.budget, j.seed, "
                "j.faults, m.key, m.value FROM metrics m "
                "JOIN jobs j ON j.job_id = m.job_id "
                "WHERE j.sweep_id = ? ORDER BY j.idx, m.key",
                (sweep_id,)).fetchall()
        return [dict(row) for row in rows]

    # ------------------------------------------------------------------
    # Export / determinism fingerprint
    # ------------------------------------------------------------------

    def export_document(self, sweep_id: str) -> dict:
        """The whole sweep as one machine-readable document."""
        sweep = self.find_sweep(sweep_id)
        jobs = self.jobs(sweep["sweep_id"])
        for job in jobs:
            raw = job.pop("result_json", None)
            job["result"] = json.loads(raw) if raw else None
        return {
            "schema": f"repro-sweep/{STORE_SCHEMA_VERSION}",
            "sweep": {key: sweep[key] for key in
                      ("sweep_id", "name", "spec_hash", "status",
                       "created_at")},
            "spec": json.loads(sweep["spec_json"]),
            "jobs": jobs,
        }

    def fingerprint_rows(self, sweep_id: str) -> List[tuple]:
        """Every deterministic column of the sweep's job and metric rows.

        Wall-clock columns (created/started/finished, host elapsed) are
        projected out; everything else -- including the full result
        JSON, which contains only simulated quantities -- must be
        identical between an uninterrupted sweep and a killed-and-
        resumed one, and between ``-j 1`` and ``-j N`` runs.
        """
        with self.engine.connect() as conn:
            jobs = conn.execute(
                "SELECT job_id, idx, workload, controller, seed, base_seed, "
                "repeat, budget, budget_bytes, faults, accesses, scale, "
                "workload_seed, fast_path, huge_pages, provider_id, status, "
                "error, result_json FROM jobs WHERE sweep_id = ? "
                "ORDER BY idx", (sweep_id,)).fetchall()
            metrics = conn.execute(
                "SELECT m.job_id, m.key, m.value FROM metrics m "
                "JOIN jobs j ON j.job_id = m.job_id WHERE j.sweep_id = ? "
                "ORDER BY m.job_id, m.key", (sweep_id,)).fetchall()
        return [tuple(row) for row in jobs] + [tuple(row) for row in metrics]

    # ------------------------------------------------------------------
    # Salvage
    # ------------------------------------------------------------------

    @classmethod
    def repair(cls, src: str, dst: str) -> Dict[str, int]:
        """Salvage a damaged store into a fresh one at ``dst``.

        Reads ``src`` raw (no schema gate -- it is damaged by
        hypothesis), copies every ``done`` job whose result document
        still parses verbatim, resets everything else to ``pending``,
        and marks the salvaged sweeps ``interrupted`` so a re-run
        against the new store resumes exactly the unsalvageable cells.
        Rows sqlite can no longer read are skipped, not fatal.  Also
        reads v1-era stores (missing retry columns default to zero).
        Returns salvage counts for the CLI report.
        """
        if not os.path.exists(src):
            raise ConfigError(f"no sweep store at {src!r}")
        if os.path.exists(dst):
            raise ConfigError(
                f"refusing to overwrite existing {dst!r}; point --out at "
                f"a fresh path")

        def _read_rows(conn: sqlite3.Connection, table: str) -> List[dict]:
            # Row-at-a-time so everything before the first torn page is
            # still salvaged; a list comprehension would lose the lot.
            rows: List[dict] = []
            try:
                cursor = conn.execute(f"SELECT * FROM {table}")
                while True:
                    row = cursor.fetchone()
                    if row is None:
                        break
                    rows.append(dict(row))
            except sqlite3.Error:
                pass
            return rows

        try:
            src_conn = sqlite3.connect(src, timeout=30.0)
        except sqlite3.Error as error:
            raise ResourceError(f"cannot open damaged store {src!r}: {error}")
        src_conn.row_factory = sqlite3.Row
        try:
            sweeps = _read_rows(src_conn, "sweeps")
            jobs = _read_rows(src_conn, "jobs")
            metrics = _read_rows(src_conn, "metrics")
        finally:
            src_conn.close()
        if not sweeps and not jobs:
            raise ConfigError(
                f"nothing salvageable in {src!r}: no readable sweep or "
                f"job rows")

        counts = {"sweeps": 0, "jobs_salvaged": 0, "jobs_reset": 0,
                  "metrics": 0}
        salvaged_ids = set()
        store = cls.open(dst)
        with store.engine.connect() as conn:
            for sweep in sweeps:
                conn.execute(
                    "INSERT OR IGNORE INTO sweeps (sweep_id, name, "
                    "spec_hash, spec_json, status, created_at) "
                    "VALUES (?, ?, ?, ?, 'interrupted', ?)",
                    (sweep.get("sweep_id"), sweep.get("name", ""),
                     sweep.get("spec_hash", ""), sweep.get("spec_json", ""),
                     sweep.get("created_at", 0.0)))
                counts["sweeps"] += 1
            for job in jobs:
                done = job.get("status") == "done"
                result_json = job.get("result_json")
                if done and result_json:
                    try:
                        json.loads(result_json)
                    except (TypeError, ValueError):
                        done = False
                else:
                    done = False
                if done:
                    counts["jobs_salvaged"] += 1
                    salvaged_ids.add(job.get("job_id"))
                else:
                    counts["jobs_reset"] += 1
                conn.execute(
                    "INSERT OR IGNORE INTO jobs (job_id, sweep_id, idx, "
                    "workload, controller, seed, base_seed, repeat, budget, "
                    "budget_bytes, faults, accesses, scale, workload_seed, "
                    "fast_path, huge_pages, provider_id, status, error, "
                    "attempts, last_error, quarantined, elapsed_s, "
                    "started_at, finished_at, result_json) VALUES "
                    "(?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, "
                    "?, ?, ?, ?, ?, ?, ?, ?, ?)",
                    (job.get("job_id"), job.get("sweep_id"),
                     job.get("idx", 0), job.get("workload", ""),
                     job.get("controller", ""), job.get("seed", 0),
                     job.get("base_seed", 0), job.get("repeat", 0),
                     job.get("budget", "none"),
                     job.get("budget_bytes") if done else None,
                     job.get("faults", ""), job.get("accesses", 0),
                     job.get("scale", 1.0), job.get("workload_seed", 0),
                     job.get("fast_path", ""),
                     job.get("huge_pages", 0), job.get("provider_id", ""),
                     "done" if done else "pending",
                     job.get("error", "") if done else "",
                     job.get("attempts", 0), job.get("last_error", ""),
                     job.get("quarantined", 0) if done else 0,
                     job.get("elapsed_s") if done else None,
                     job.get("started_at") if done else None,
                     job.get("finished_at") if done else None,
                     result_json if done else None))
            for metric in metrics:
                if metric.get("job_id") not in salvaged_ids:
                    continue
                try:
                    value = float(metric.get("value"))
                except (TypeError, ValueError):
                    continue
                conn.execute(
                    "INSERT OR IGNORE INTO metrics (job_id, key, value) "
                    "VALUES (?, ?, ?)",
                    (metric.get("job_id"), metric.get("key", ""), value))
                counts["metrics"] += 1
        return counts


def _result_from_json(raw: str) -> SimResult:
    data = json.loads(raw)
    fields = set(SimResult.__dataclass_fields__)
    return SimResult(**{k: v for k, v in data.items() if k in fields})
