"""Property tests for the DRAM channel backlog (queueing) model."""

from hypothesis import given, settings, strategies as st

from repro.dram.system import DRAMSystem


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.floats(min_value=0, max_value=1e6),
                          st.integers(min_value=0, max_value=1 << 30)),
                min_size=1, max_size=100))
def test_queue_delay_is_bounded_by_injected_work(requests):
    """No request can queue behind more bus time than was ever injected."""
    dram = DRAMSystem()
    burst = dram.config.timing.burst_ns
    total_work = 0.0
    for now, address in requests:
        result = dram.read(address, now)
        total_work += burst
        assert 0.0 <= result.queue_ns <= total_work


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=1 << 30),
                min_size=2, max_size=60))
def test_quiet_channel_has_no_queue(addresses):
    """With requests spaced far apart in time, queueing never appears."""
    dram = DRAMSystem()
    for index, address in enumerate(addresses):
        result = dram.read(address, now_ns=index * 1e4)
        assert result.queue_ns == 0.0


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=2, max_value=64))
def test_simultaneous_burst_queues_linearly(count):
    """N same-instant requests queue 0, b, 2b, ... bus bursts."""
    dram = DRAMSystem()
    burst = dram.config.timing.burst_ns
    delays = [dram.read(i * (1 << 16), now_ns=0.0).queue_ns
              for i in range(count)]
    for i, delay in enumerate(delays):
        assert delay == i * burst


@settings(max_examples=30, deadline=None)
@given(st.lists(st.floats(min_value=0, max_value=1e5), min_size=3,
                max_size=40))
def test_out_of_order_arrivals_never_charge_future_work(times):
    """A request timestamped earlier than previously seen traffic is never
    charged more queue than the genuinely unserved backlog -- the
    multi-core reordering property the model exists for."""
    dram = DRAMSystem()
    burst = dram.config.timing.burst_ns
    issued = 0
    for now in times:
        result = dram.read((issued * 64) % (1 << 28), now)
        issued += 1
        assert result.queue_ns <= issued * burst


def test_backlog_decays_at_wall_clock_rate():
    dram = DRAMSystem()
    burst = dram.config.timing.burst_ns
    for i in range(10):
        dram.read(i * (1 << 16), now_ns=0.0)
    # 10 bursts of backlog; after waiting half of it, half remains.
    wait = 5 * burst
    result = dram.read(1 << 27, now_ns=wait)
    assert result.queue_ns <= 5 * burst + 1e-9
    assert result.queue_ns >= 4 * burst - 1e-9
