"""Tests for DRAM timing, interleaving, and the bank/queue model."""

import pytest

from repro.dram.interleave import (
    PAGE_EVERYWHERE,
    SUBPAGE_EVERYWHERE,
    TMCC_COMPATIBLE,
    InterleavePolicy,
)
from repro.dram.system import DRAMConfig, DRAMSystem
from repro.dram.timing import DDR4Timing


# ----------------------------------------------------------------------
# Timing
# ----------------------------------------------------------------------

def test_timing_components():
    timing = DDR4Timing()
    assert timing.row_hit_ns < timing.row_closed_ns < timing.row_conflict_ns
    assert timing.row_hit_ns == pytest.approx(13.75 + 2.5)
    assert timing.row_conflict_ns == pytest.approx(3 * 13.75 + 2.5)


# ----------------------------------------------------------------------
# Interleaving
# ----------------------------------------------------------------------

def test_policy_validation():
    with pytest.raises(ValueError):
        InterleavePolicy("bad", 100, 256)
    with pytest.raises(ValueError):
        InterleavePolicy("bad", 256, 32)


def test_subpage_policy_spreads_a_page_across_mcs():
    mcs = {
        SUBPAGE_EVERYWHERE.route(addr, 2, 2)[0] for addr in range(0, 4096, 512)
    }
    assert mcs == {0, 1}


def test_tmcc_policy_keeps_a_page_on_one_mc():
    routes = [TMCC_COMPATIBLE.route(addr, 2, 2) for addr in range(0, 4096, 256)]
    assert {mc for mc, _, _ in routes} == {0}
    assert {ch for _, ch, _ in routes} == {0, 1}  # channels still interleave


def test_page_everywhere_keeps_page_on_one_channel():
    routes = [PAGE_EVERYWHERE.route(addr, 2, 2) for addr in range(0, 4096, 256)]
    assert {(mc, ch) for mc, ch, _ in routes} == {(0, 0)}


def test_route_produces_dense_local_addresses():
    policy = SUBPAGE_EVERYWHERE
    locals_seen = [policy.route(addr, 2, 2)[2] for addr in range(0, 4096, 64)]
    # Each of the 4 channel slices sees a dense quarter of the range.
    assert max(locals_seen) < 4096 // 4


# ----------------------------------------------------------------------
# Bank / row-buffer model
# ----------------------------------------------------------------------

def test_row_hit_is_cheaper_than_conflict():
    dram = DRAMSystem()
    first = dram.read(0, now_ns=0.0)
    assert not first.row_hit
    second = dram.read(64, now_ns=100.0)
    assert second.row_hit
    assert second.bank_ns < first.bank_ns


def test_row_cap_forces_periodic_precharge():
    dram = DRAMSystem(DRAMConfig(row_cap=4))
    results = [dram.read(i * 64, now_ns=i * 100.0) for i in range(12)]
    # After 4 consecutive hits the cap forces a non-hit access.
    hits = [r.row_hit for r in results]
    assert not all(hits[1:])
    assert any(hits)


def test_different_rows_conflict():
    dram = DRAMSystem()
    dram.read(0, 0.0)
    # Same bank, different row: need a row_size * banks-stride address.
    conflict = dram.read(1 << 22, 100.0)
    r = dram.read(0, 200.0)
    assert not r.row_hit or not conflict.row_hit


def test_queue_contention_under_burst():
    dram = DRAMSystem()
    # Many reads at the same instant pile onto the channel bus.
    latencies = [dram.read(i * 4096, now_ns=0.0).latency_ns for i in range(32)]
    assert latencies[-1] > latencies[0]
    assert dram.read(0, now_ns=1e9).queue_ns == 0.0


def test_noc_latency_is_included():
    dram = DRAMSystem()
    result = dram.read(0, 0.0)
    timing = dram.config.timing
    assert result.latency_ns >= timing.noc_ns + timing.row_closed_ns


def test_writes_consume_bus_time():
    dram = DRAMSystem()
    for i in range(16):
        dram.write(i * 4096, now_ns=0.0)
    read = dram.read(1 << 30, now_ns=0.0)
    assert read.queue_ns > 0.0


def test_rank_targeted_writes_interfere_less():
    def read_after_writes(rank_targeted):
        dram = DRAMSystem(DRAMConfig(rank_targeted_writes=rank_targeted))
        for i in range(16):
            dram.write(i * 4096, now_ns=0.0)
        return dram.read(1 << 30, now_ns=0.0).queue_ns

    assert read_after_writes(True) < read_after_writes(False)


def test_stats_and_bandwidth():
    dram = DRAMSystem()
    for i in range(10):
        dram.read(i * 64, now_ns=i * 10.0)
    dram.write(0, 100.0)
    stats = dram.stats.as_dict()
    assert stats["reads"] == 10
    assert stats["writes"] == 1
    util = dram.bandwidth_utilization(elapsed_ns=100.0)
    assert 0.0 < util <= 1.0
    assert dram.bandwidth_utilization(0) == 0.0


def test_multi_channel_parallelism():
    """Two channels absorb a burst better than one."""
    def burst_total(channels):
        config = DRAMConfig(channels_per_mc=channels, interleave=SUBPAGE_EVERYWHERE)
        dram = DRAMSystem(config)
        return sum(dram.read(i * 256, now_ns=0.0).queue_ns for i in range(32))

    assert burst_total(2) < burst_total(1)


def test_bank_conflicts_serialize_same_bank_requests():
    """Two same-instant requests to one bank wait on each other; requests
    to different banks do not."""
    dram = DRAMSystem()
    first = dram.read(0, now_ns=0.0)
    # Same bank, different row: forced conflict AND bank occupancy wait.
    second = dram.read(1 << 22, now_ns=0.0)
    assert second.latency_ns > first.latency_ns
    # A fresh bank at the same instant pays no bank wait (only bus queue).
    other = dram.read(1 << 14, now_ns=0.0)
    assert other.latency_ns < second.latency_ns


def test_bank_backlog_decays():
    dram = DRAMSystem()
    dram.read(0, now_ns=0.0)
    late = dram.read(1 << 22, now_ns=1e6)  # long after the bank drained
    relaxed = dram.read(0, now_ns=2e6)
    assert relaxed.latency_ns <= late.latency_ns + 1e-9
