"""Engine layer: scheduling, resume, retries, and worker-count
determinism.

These run real (tiny) simulations -- 1.5k accesses at 5% scale -- so
every assertion is against genuine end-to-end rows.
"""

import os
import signal
import sqlite3
import time

import pytest

from repro.common.errors import ConfigError, ResourceError
from repro.sweep.engine import RetryPolicy, run_sweep
from repro.sweep.spec import SweepSpec
from repro.sweep.store import SweepStore
from repro.sweep.worker import WorkerPool


def tiny_spec(**overrides):
    base = dict(
        name="t",
        workloads=("mcf", "omnetpp"),
        controllers=("compresso", "tmcc@iso"),
        accesses=1_500,
        scale=0.05,
    )
    base.update(overrides)
    return SweepSpec.build(**base)


def test_ephemeral_run_produces_all_results():
    run = run_sweep(tiny_spec())
    assert run.ok and run.store is None and not run.resumed
    assert run.counts == {"done": 4}
    for job in run.jobs:
        assert run.result(job).workload == job.workload


def test_provider_budget_resolution():
    run = run_sweep(tiny_spec())
    for workload in ("mcf", "omnetpp"):
        compresso = run.result(run.find_jobs(workload, "compresso")[0])
        iso_job = run.find_jobs(workload, "tmcc")[0]
        tmcc = run.result(iso_job)
        assert iso_job.budget.kind == "iso"
        assert tmcc.dram_used_bytes <= compresso.dram_used_bytes


def test_store_records_resolved_iso_budget(tmp_path):
    run = run_sweep(tiny_spec(), store=str(tmp_path / "s.db"))
    store = run.store
    compresso = run.result(run.find_jobs("mcf", "compresso")[0])
    iso_row = next(job for job in store.jobs(run.sweep_id)
                   if job["workload"] == "mcf"
                   and job["controller"] == "tmcc")
    assert iso_row["budget_bytes"] == compresso.dram_used_bytes


def test_pool_rows_identical_to_inline(tmp_path):
    """-j 1 and -j N must produce row-identical stores."""
    spec = tiny_spec()
    inline = run_sweep(spec, store=str(tmp_path / "j1.db"), workers=1)
    pooled = run_sweep(spec, store=str(tmp_path / "j2.db"), workers=2)
    assert inline.ok and pooled.ok and not pooled.resumed
    rows_inline = inline.store.fingerprint_rows(inline.sweep_id)
    rows_pooled = pooled.store.fingerprint_rows(pooled.sweep_id)
    assert rows_inline == rows_pooled


def test_killed_sweep_resumes_row_identical(tmp_path):
    """Kill mid-flight; the resumed store must match an uninterrupted one."""
    spec = tiny_spec()
    control = run_sweep(spec, store=str(tmp_path / "control.db"))

    finishes = 0

    def kill_after_first_finish(event, job, record):
        nonlocal finishes
        if event == "finish":
            finishes += 1
            if finishes == 1:
                raise KeyboardInterrupt

    killed_path = str(tmp_path / "killed.db")
    with pytest.raises(KeyboardInterrupt):
        run_sweep(spec, store=killed_path, progress=kill_after_first_finish)
    interrupted = SweepStore.open(killed_path)
    sweep_row = interrupted.find_sweep(spec.name)
    assert sweep_row["status"] == "interrupted"
    assert "done" in interrupted.job_statuses(sweep_row["sweep_id"]).values()

    resumed = run_sweep(spec, store=killed_path)
    assert resumed.resumed and resumed.ok
    assert resumed.skipped == finishes  # completed jobs were not re-run
    assert resumed.store.fingerprint_rows(resumed.sweep_id) == \
        control.store.fingerprint_rows(control.sweep_id)


def test_resume_of_finished_sweep_reloads_results(tmp_path):
    spec = tiny_spec()
    path = str(tmp_path / "s.db")
    first = run_sweep(spec, store=path)
    second = run_sweep(spec, store=path)
    assert second.resumed and second.skipped == len(second.jobs)
    for job in second.jobs:
        assert second.result(job) == first.result(job)


def test_fresh_discards_recorded_rows(tmp_path):
    spec = tiny_spec()
    path = str(tmp_path / "s.db")
    run_sweep(spec, store=path)
    rerun = run_sweep(spec, store=path, fresh=True)
    assert not rerun.resumed and rerun.skipped == 0 and rerun.ok


def test_captured_failure_does_not_stop_the_sweep(tmp_path):
    # A 1-byte budget is under the compressible floor: that cell must
    # record as failed/config while the rest of the matrix completes.
    spec = tiny_spec(
        workloads=("mcf",),
        controllers=("compresso", {"name": "tmcc", "budgets": [1]}),
    )
    run = run_sweep(spec, store=str(tmp_path / "s.db"))
    assert not run.ok
    assert run.counts == {"done": 1, "failed": 1}
    failed = run.find_jobs("mcf", "tmcc")[0]
    assert run.errors[failed.job_id]["error_kind"] == "config"
    with pytest.raises(RuntimeError, match="did not complete"):
        run.result(failed)
    assert run.store.find_sweep(spec.name)["status"] == "failed"


def test_failed_provider_fails_dependents():
    spec = tiny_spec(
        workloads=("mcf",),
        controllers=("compresso", "tmcc@iso"),
        # Time out every job instantly: the compresso reference can
        # never provide a budget, so the iso cell must fail cleanly
        # instead of deadlocking.
        job_timeout_s=1e-9,
    )
    run = run_sweep(spec)
    statuses = set(run.counts)
    assert statuses == {"timeout", "failed"}
    iso_job = run.find_jobs("mcf", "tmcc")[0]
    assert "provider" in run.errors[iso_job.job_id]["error"]


def test_uncaptured_errors_propagate():
    spec = tiny_spec(workloads=("mcf",),
                     controllers=({"name": "tmcc", "budgets": [1]},))
    with pytest.raises(ConfigError):
        run_sweep(spec, capture_errors=False)


def test_invalid_engine_arguments_rejected():
    spec = tiny_spec()
    with pytest.raises(ConfigError, match="workers"):
        run_sweep(spec, workers=0)
    with pytest.raises(ConfigError, match="inline-only"):
        run_sweep(spec, workers=2, system=object())
    with pytest.raises(ConfigError, match="inline-only"):
        run_sweep(spec, workers=2, capture_errors=False)
    with pytest.raises(ConfigError, match="heartbeat"):
        run_sweep(spec, heartbeat_timeout_s=0.0)
    with pytest.raises(ConfigError, match="max_retries"):
        RetryPolicy(max_retries=-1)
    with pytest.raises(ConfigError, match="backoff"):
        RetryPolicy(backoff_s=2.0, backoff_cap_s=1.0)


# ----------------------------------------------------------------------
# Retry / quarantine
# ----------------------------------------------------------------------

FAST_RETRY = RetryPolicy(max_retries=2, backoff_s=0.001,
                         backoff_cap_s=0.01)


def flaky_execute_job(fail_attempts, record_status="failed"):
    """An execute_job stand-in that fails transiently the first
    ``fail_attempts`` times a job is seen, then delegates to the real
    thing."""
    from repro.sweep import worker

    seen = {}

    def fake(job, budget_bytes=None, timeout_s=None, **kwargs):
        seen[job.job_id] = seen.get(job.job_id, 0) + 1
        if seen[job.job_id] <= fail_attempts:
            return {
                "job_id": job.job_id, "status": record_status,
                "error": "synthetic transient failure",
                "error_type": "SyntheticError", "error_kind": "resource",
                "elapsed_s": 0.0, "budget_bytes": budget_bytes,
                "result": None,
            }
        return worker.execute_job(job, budget_bytes, timeout_s, **kwargs)

    return fake


def test_inline_transient_failure_retries_to_success(tmp_path,
                                                     monkeypatch):
    import repro.sweep.engine as engine_module

    monkeypatch.setattr(engine_module, "execute_job",
                        flaky_execute_job(fail_attempts=1))
    spec = tiny_spec(workloads=("mcf",))
    events = []
    run = run_sweep(spec, store=str(tmp_path / "s.db"), retry=FAST_RETRY,
                    progress=lambda event, job, record:
                    events.append(event))
    assert run.ok and not run.quarantined
    assert all(count == 2 for count in run.attempts.values())
    assert events.count("retry") == len(run.jobs)
    for row in run.store.jobs(run.sweep_id):
        assert row["attempts"] == 2
        assert row["last_error"] == "synthetic transient failure"
        assert row["quarantined"] == 0


def test_permanent_failure_is_not_retried(tmp_path):
    # A 1-byte budget raises ConfigError deterministically: exactly one
    # attempt, no quarantine flag (it would fail forever anyway).
    spec = tiny_spec(workloads=("mcf",),
                     controllers=({"name": "tmcc", "budgets": [1]},))
    run = run_sweep(spec, store=str(tmp_path / "s.db"), retry=FAST_RETRY)
    job_id = run.jobs[0].job_id
    assert run.statuses[job_id] == "failed"
    assert run.attempts[job_id] == 1 and not run.quarantined


def test_inline_exhausted_retries_quarantine(tmp_path, monkeypatch):
    import repro.sweep.engine as engine_module

    monkeypatch.setattr(engine_module, "execute_job",
                        flaky_execute_job(fail_attempts=99))
    spec = tiny_spec(workloads=("mcf",), controllers=("compresso",))
    run = run_sweep(spec, store=str(tmp_path / "s.db"), retry=FAST_RETRY)
    job_id = run.jobs[0].job_id
    assert run.statuses[job_id] == "failed"
    assert run.attempts[job_id] == FAST_RETRY.max_retries + 1
    assert run.quarantined[job_id]["error_type"] == "SyntheticError"
    row = run.store.jobs(run.sweep_id)[0]
    assert row["quarantined"] == 1


def test_store_write_failure_is_retried(tmp_path, monkeypatch):
    store = SweepStore.open(str(tmp_path / "s.db"))
    real_finish = store.finish_job
    failures = {"left": 1}

    def flaky_finish(*args, **kwargs):
        if failures["left"]:
            failures["left"] -= 1
            raise sqlite3.OperationalError("database is locked")
        return real_finish(*args, **kwargs)

    monkeypatch.setattr(store, "finish_job", flaky_finish)
    spec = tiny_spec(workloads=("mcf",), controllers=("compresso",))
    run = run_sweep(spec, store=store, retry=FAST_RETRY)
    assert run.ok
    assert store.jobs(run.sweep_id)[0]["status"] == "done"


def test_store_write_failure_exhaustion_aborts(tmp_path, monkeypatch):
    store = SweepStore.open(str(tmp_path / "s.db"))

    def always_fail(*args, **kwargs):
        raise sqlite3.OperationalError("database is locked")

    monkeypatch.setattr(store, "finish_job", always_fail)
    spec = tiny_spec(workloads=("mcf",), controllers=("compresso",))
    with pytest.raises(ResourceError, match="cannot record"):
        run_sweep(spec, store=store, retry=FAST_RETRY)


def test_retry_delay_is_deterministic_and_capped():
    policy = RetryPolicy(max_retries=5, backoff_s=0.5, backoff_cap_s=2.0)
    delays = [policy.delay_s("job", attempt) for attempt in range(1, 6)]
    assert delays == [policy.delay_s("job", attempt)
                      for attempt in range(1, 6)]
    assert all(delay <= 2.0 for delay in delays)
    assert delays[1] > delays[0]  # exponential ramp before the cap
    assert policy.delay_s("job", 1) != policy.delay_s("other", 1)  # jitter


# ----------------------------------------------------------------------
# WorkerPool supervision (external SIGKILL, not chaos)
# ----------------------------------------------------------------------

def busy_job():
    """One real matrix cell big enough to survive until the test kills
    its worker."""
    return tiny_spec(workloads=("mcf",), controllers=("compresso",),
                     accesses=60_000, scale=0.3).expand()[0]


def busy_worker(pool, timeout_s=10.0):
    """The handle of the worker the submitted job landed on, once its
    process is demonstrably inside the job."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        for handle in pool._handles:
            if handle.busy and pool._heartbeats[handle.slot] > 0:
                return handle
        time.sleep(0.02)
    raise AssertionError("no worker picked the job up")


def test_pool_detects_sigkilled_worker_and_recovers():
    """SIGKILL a worker mid-job: the pool must synthesize a transient
    failure for that attempt, replace the worker, and complete the
    job's retry."""
    pool = WorkerPool(2)
    try:
        job = busy_job()
        pool.submit(job, None, None, attempt=1)
        victim = busy_worker(pool)
        os.kill(victim.proc.pid, signal.SIGKILL)
        record = pool.next_result()
        assert record["status"] == "failed"
        assert record["error_type"] == "WorkerDied"
        assert record["error_kind"] == "resource"
        assert record["attempt"] == 1 and record["job_id"] == job.job_id
        # The slot was respawned and can take the retry.
        assert pool.has_idle
        pool.submit(job, None, None, attempt=2)
        retried = pool.next_result()
        assert retried["status"] == "done" and retried["attempt"] == 2
    finally:
        pool.close()


def test_pool_respawns_dead_idle_worker_on_submit():
    pool = WorkerPool(1)
    try:
        first_pid = pool._handles[0].proc.pid
        os.kill(first_pid, signal.SIGKILL)
        pool._handles[0].proc.join(timeout=5.0)
        job = tiny_spec(workloads=("mcf",),
                        controllers=("compresso",)).expand()[0]
        pool.submit(job, None, None, attempt=1)
        assert pool._handles[0].proc.pid != first_pid
        assert pool.next_result()["status"] == "done"
    finally:
        pool.close()


def test_sweep_completes_through_external_worker_death(tmp_path):
    """End to end: an externally SIGKILLed worker costs one attempt,
    the engine requeues per retry policy, and the sweep lands
    row-identical to an undisturbed run."""
    spec = tiny_spec(workloads=("mcf",), controllers=("compresso",),
                     accesses=60_000, scale=0.3)
    control = run_sweep(spec, store=str(tmp_path / "control.db"))

    store_path = str(tmp_path / "killed.db")
    pool_holder = {}
    original_init = WorkerPool.__init__

    def capturing_init(self, *args, **kwargs):
        original_init(self, *args, **kwargs)
        pool_holder["pool"] = self

    import unittest.mock

    with unittest.mock.patch.object(WorkerPool, "__init__",
                                    capturing_init):
        import threading

        def assassin():
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                pool = pool_holder.get("pool")
                if pool is not None:
                    for handle in pool._handles:
                        if handle.busy and pool._heartbeats[handle.slot]:
                            os.kill(handle.proc.pid, signal.SIGKILL)
                            return
                time.sleep(0.02)

        thread = threading.Thread(target=assassin, daemon=True)
        thread.start()
        run = run_sweep(spec, store=store_path, workers=2,
                        retry=RetryPolicy(max_retries=3, backoff_s=0.01,
                                          backoff_cap_s=0.05))
        thread.join(timeout=15.0)
    assert run.ok
    assert run.attempts[run.jobs[0].job_id] >= 2  # the kill cost one
    assert run.store.fingerprint_rows(run.sweep_id) == \
        control.store.fingerprint_rows(control.sweep_id)
