"""Engine layer: scheduling, resume, and worker-count determinism.

These run real (tiny) simulations -- 1.5k accesses at 5% scale -- so
every assertion is against genuine end-to-end rows.
"""

import pytest

from repro.common.errors import ConfigError
from repro.sweep.engine import run_sweep
from repro.sweep.spec import SweepSpec
from repro.sweep.store import SweepStore


def tiny_spec(**overrides):
    base = dict(
        name="t",
        workloads=("mcf", "omnetpp"),
        controllers=("compresso", "tmcc@iso"),
        accesses=1_500,
        scale=0.05,
    )
    base.update(overrides)
    return SweepSpec.build(**base)


def test_ephemeral_run_produces_all_results():
    run = run_sweep(tiny_spec())
    assert run.ok and run.store is None and not run.resumed
    assert run.counts == {"done": 4}
    for job in run.jobs:
        assert run.result(job).workload == job.workload


def test_provider_budget_resolution():
    run = run_sweep(tiny_spec())
    for workload in ("mcf", "omnetpp"):
        compresso = run.result(run.find_jobs(workload, "compresso")[0])
        iso_job = run.find_jobs(workload, "tmcc")[0]
        tmcc = run.result(iso_job)
        assert iso_job.budget.kind == "iso"
        assert tmcc.dram_used_bytes <= compresso.dram_used_bytes


def test_store_records_resolved_iso_budget(tmp_path):
    run = run_sweep(tiny_spec(), store=str(tmp_path / "s.db"))
    store = run.store
    compresso = run.result(run.find_jobs("mcf", "compresso")[0])
    iso_row = next(job for job in store.jobs(run.sweep_id)
                   if job["workload"] == "mcf"
                   and job["controller"] == "tmcc")
    assert iso_row["budget_bytes"] == compresso.dram_used_bytes


def test_pool_rows_identical_to_inline(tmp_path):
    """-j 1 and -j N must produce row-identical stores."""
    spec = tiny_spec()
    inline = run_sweep(spec, store=str(tmp_path / "j1.db"), workers=1)
    pooled = run_sweep(spec, store=str(tmp_path / "j2.db"), workers=2)
    assert inline.ok and pooled.ok and not pooled.resumed
    rows_inline = inline.store.fingerprint_rows(inline.sweep_id)
    rows_pooled = pooled.store.fingerprint_rows(pooled.sweep_id)
    assert rows_inline == rows_pooled


def test_killed_sweep_resumes_row_identical(tmp_path):
    """Kill mid-flight; the resumed store must match an uninterrupted one."""
    spec = tiny_spec()
    control = run_sweep(spec, store=str(tmp_path / "control.db"))

    finishes = 0

    def kill_after_first_finish(event, job, record):
        nonlocal finishes
        if event == "finish":
            finishes += 1
            if finishes == 1:
                raise KeyboardInterrupt

    killed_path = str(tmp_path / "killed.db")
    with pytest.raises(KeyboardInterrupt):
        run_sweep(spec, store=killed_path, progress=kill_after_first_finish)
    interrupted = SweepStore.open(killed_path)
    sweep_row = interrupted.find_sweep(spec.name)
    assert sweep_row["status"] == "interrupted"
    assert "done" in interrupted.job_statuses(sweep_row["sweep_id"]).values()

    resumed = run_sweep(spec, store=killed_path)
    assert resumed.resumed and resumed.ok
    assert resumed.skipped == finishes  # completed jobs were not re-run
    assert resumed.store.fingerprint_rows(resumed.sweep_id) == \
        control.store.fingerprint_rows(control.sweep_id)


def test_resume_of_finished_sweep_reloads_results(tmp_path):
    spec = tiny_spec()
    path = str(tmp_path / "s.db")
    first = run_sweep(spec, store=path)
    second = run_sweep(spec, store=path)
    assert second.resumed and second.skipped == len(second.jobs)
    for job in second.jobs:
        assert second.result(job) == first.result(job)


def test_fresh_discards_recorded_rows(tmp_path):
    spec = tiny_spec()
    path = str(tmp_path / "s.db")
    run_sweep(spec, store=path)
    rerun = run_sweep(spec, store=path, fresh=True)
    assert not rerun.resumed and rerun.skipped == 0 and rerun.ok


def test_captured_failure_does_not_stop_the_sweep(tmp_path):
    # A 1-byte budget is under the compressible floor: that cell must
    # record as failed/config while the rest of the matrix completes.
    spec = tiny_spec(
        workloads=("mcf",),
        controllers=("compresso", {"name": "tmcc", "budgets": [1]}),
    )
    run = run_sweep(spec, store=str(tmp_path / "s.db"))
    assert not run.ok
    assert run.counts == {"done": 1, "failed": 1}
    failed = run.find_jobs("mcf", "tmcc")[0]
    assert run.errors[failed.job_id]["error_kind"] == "config"
    with pytest.raises(RuntimeError, match="did not complete"):
        run.result(failed)
    assert run.store.find_sweep(spec.name)["status"] == "failed"


def test_failed_provider_fails_dependents():
    spec = tiny_spec(
        workloads=("mcf",),
        controllers=("compresso", "tmcc@iso"),
        # Time out every job instantly: the compresso reference can
        # never provide a budget, so the iso cell must fail cleanly
        # instead of deadlocking.
        job_timeout_s=1e-9,
    )
    run = run_sweep(spec)
    statuses = set(run.counts)
    assert statuses == {"timeout", "failed"}
    iso_job = run.find_jobs("mcf", "tmcc")[0]
    assert "provider" in run.errors[iso_job.job_id]["error"]


def test_uncaptured_errors_propagate():
    spec = tiny_spec(workloads=("mcf",),
                     controllers=({"name": "tmcc", "budgets": [1]},))
    with pytest.raises(ConfigError):
        run_sweep(spec, capture_errors=False)


def test_invalid_engine_arguments_rejected():
    spec = tiny_spec()
    with pytest.raises(ConfigError, match="workers"):
        run_sweep(spec, workers=0)
    with pytest.raises(ConfigError, match="inline-only"):
        run_sweep(spec, workers=2, system=object())
    with pytest.raises(ConfigError, match="inline-only"):
        run_sweep(spec, workers=2, capture_errors=False)
