"""Sweep telemetry: the event journal, the live snapshot, Perfetto
conversion, and the zero-impact-when-off discipline.

The two goldens this file pins:

- a journaled sweep's result rows are ``fingerprint_rows``-identical to
  an unjournaled one (telemetry records host scheduling history, never
  simulated quantities);
- a chaos sweep's journal contains exactly the faults its pinned plan
  injected, and validates against the journal schema.
"""

import json

import pytest

from repro.common.errors import ConfigError
from repro.sweep.chaos import ChaosPlan
from repro.sweep.engine import RetryPolicy, run_sweep
from repro.sweep.spec import SweepSpec
from repro.sweep.telemetry import (
    JOURNAL_SCHEMA,
    SweepJournal,
    build_snapshot,
    journal_spans,
    read_journal,
    render_snapshot,
    validate_journal,
)


def tiny_spec(**overrides):
    base = dict(
        name="t",
        workloads=("mcf",),
        controllers=("compresso", "tmcc@iso"),
        accesses=1_500,
        scale=0.05,
    )
    base.update(overrides)
    return SweepSpec.build(**base)


FAST_RETRY = RetryPolicy(max_retries=2, backoff_s=0.01, backoff_cap_s=0.05)


# ----------------------------------------------------------------------
# Journal primitives
# ----------------------------------------------------------------------

def test_journal_writes_begin_then_events(tmp_path):
    path = tmp_path / "j.jsonl"
    journal = SweepJournal(path, sweep_id="s1")
    journal.emit("worker_spawn", worker_slot=0)
    journal.close()
    journal.emit("worker_spawn", worker_slot=1)  # no-op after close

    events = read_journal(path)
    assert [event["event"] for event in events] == [
        "journal_begin", "worker_spawn"]
    assert events[0]["schema"] == JOURNAL_SCHEMA
    assert events[0]["sweep_id"] == "s1"
    assert [event["seq"] for event in events] == [0, 1]
    for event in events:
        assert "t" in event and "mono" in event


def test_read_journal_drops_torn_final_line(tmp_path):
    path = tmp_path / "j.jsonl"
    journal = SweepJournal(path, sweep_id="s1")
    journal.emit("worker_spawn", worker_slot=0)
    journal.close()
    with open(path, "a") as handle:
        handle.write('{"seq": 2, "t": 1.0, "mono":')  # writer died here
    assert len(read_journal(path)) == 2


def test_read_journal_rejects_mid_file_garbage(tmp_path):
    path = tmp_path / "j.jsonl"
    path.write_text('not json\n{"seq": 0}\n')
    with pytest.raises(ConfigError, match="not JSON"):
        read_journal(path)


def test_validate_journal_catches_schema_problems(tmp_path):
    assert validate_journal([]) == ["journal is empty"]
    problems = validate_journal([
        {"seq": 0, "t": 1.0, "mono": 1.0, "event": "worker_spawn",
         "worker_slot": 0},                       # missing journal_begin
        {"seq": 0, "t": 1.0, "mono": 1.0, "event": "nonsense"},
        {"seq": 5, "t": 1.0, "event": "store_retry", "job_id": "j",
         "write_attempt": 1},                     # missing mono + error
        {"seq": 5, "t": 1.0, "mono": 1.0, "event": "worker_spawn",
         "worker_slot": 1},                       # seq does not advance
    ])
    text = "\n".join(problems)
    assert "not journal_begin" in text
    assert "unknown event 'nonsense'" in text
    assert "missing 'mono'" in text and "missing 'error'" in text
    assert "does not advance" in text


def test_validate_journal_accepts_resume_segments(tmp_path):
    path = tmp_path / "j.jsonl"
    first = SweepJournal(path, sweep_id="s1")
    first.emit("worker_spawn", worker_slot=0)
    first.close()
    second = SweepJournal(path, sweep_id="s1")  # append = resume segment
    second.emit("worker_spawn", worker_slot=0)
    second.close()
    assert validate_journal(path) == []


# ----------------------------------------------------------------------
# The zero-impact golden: journal on == journal off
# ----------------------------------------------------------------------

def test_journaled_sweep_rows_identical_to_unjournaled(tmp_path):
    plain = run_sweep(tiny_spec(), store=str(tmp_path / "off.db"))
    journaled = run_sweep(tiny_spec(), store=str(tmp_path / "on.db"),
                          journal=True)
    assert journaled.store.fingerprint_rows(journaled.sweep_id) == \
        plain.store.fingerprint_rows(plain.sweep_id)

    off_journal = journaled.store.journal_path(journaled.sweep_id)
    assert validate_journal(off_journal) == []
    assert not any((tmp_path / "off.db").parent.glob("off.db.*.journal*"))


def test_inline_journal_records_the_lifecycle(tmp_path):
    run = run_sweep(tiny_spec(), store=str(tmp_path / "s.db"), journal=True)
    events = read_journal(run.store.journal_path(run.sweep_id))
    kinds = [event["event"] for event in events]
    assert kinds[0] == "journal_begin" and kinds[1] == "sweep_begin"
    assert kinds[-1] == "sweep_end"
    assert kinds.count("job_start") == 2 and kinds.count("job_finish") == 2
    end = events[-1]
    assert end["status"] == "done" and end["counts"] == {"done": 2}

    # A resume only skips; the new segment says so.
    again = run_sweep(tiny_spec(), store=str(tmp_path / "s.db"),
                      journal=True)
    events = read_journal(again.store.journal_path(again.sweep_id))
    kinds = [event["event"] for event in events]
    assert kinds.count("journal_begin") == 2
    assert kinds.count("job_skip") == 2
    assert validate_journal(events) == []


def test_journal_true_requires_a_store():
    with pytest.raises(ConfigError,
                       match="journal=True derives its path from the store"):
        run_sweep(tiny_spec(), journal=True)


# ----------------------------------------------------------------------
# The chaos golden: the journal contains exactly the injected faults
# ----------------------------------------------------------------------

def test_chaos_journal_contains_exactly_the_injected_events(tmp_path):
    spec = tiny_spec(workloads=("mcf", "omnetpp"))  # 4 jobs
    plan = ChaosPlan.parse("worker_kill:1@0,enospc:1@1")
    run = run_sweep(spec, store=str(tmp_path / "s.db"), workers=2,
                    chaos=plan, retry=FAST_RETRY, journal=True)
    assert run.ok and not run.quarantined

    events = read_journal(run.store.journal_path(run.sweep_id))
    assert validate_journal(events) == []
    injected = [(event["chaos_kind"], event["index"], event["attempt"])
                for event in events if event["event"] == "chaos_injected"]
    assert injected == [("worker_kill", 0, 1), ("enospc", 1, 1)]

    kinds = [event["event"] for event in events]
    assert kinds.count("worker_death") == 1
    assert kinds.count("worker_respawn") == 1
    assert kinds.count("store_retry") == 1
    assert kinds.count("job_retry") == 1
    assert kinds.count("job_finish") == 4
    retry = next(e for e in events if e["event"] == "job_retry")
    assert retry["index"] == 0 and retry["error_kind"] == "resource"
    death = next(e for e in events if e["event"] == "worker_death")
    assert death["exitcode"] == -9


# ----------------------------------------------------------------------
# Snapshot math (synthetic journals: fast and exact)
# ----------------------------------------------------------------------

def synthetic_events():
    """Two workers, three jobs: one done per slot, one still running,
    one retry, one chaos injection, 60s elapsed."""
    def event(seq, mono, kind, **fields):
        return {"seq": seq, "t": 100.0 + mono, "mono": mono,
                "event": kind, **fields}

    return [
        event(0, 0.0, "journal_begin", schema=JOURNAL_SCHEMA, sweep_id="s"),
        event(1, 0.0, "sweep_begin", sweep_id="s", name="t", spec_hash="h",
              total_jobs=4, workers=2, resumed=False),
        event(2, 0.0, "worker_spawn", worker_slot=0),
        event(3, 0.0, "worker_spawn", worker_slot=1),
        event(4, 0.0, "job_start", job_id="a", index=0, label="a",
              attempt=1, worker_slot=0),
        event(5, 0.0, "job_start", job_id="b", index=1, label="b",
              attempt=1, worker_slot=1),
        event(6, 10.0, "chaos_injected", job_id="a", index=0, attempt=1,
              chaos_kind="worker_kill", param=30.0),
        event(7, 10.0, "worker_death", worker_slot=0, job_id="a",
              exitcode=-9),
        event(8, 10.0, "worker_respawn", worker_slot=0),
        event(9, 10.0, "job_retry", job_id="a", index=0, label="a",
              attempt=1, error_kind="resource", error_type="WorkerDied",
              error="died", backoff_s=0.01),
        event(10, 12.0, "job_start", job_id="a", index=0, label="a",
              attempt=2, worker_slot=0),
        event(11, 30.0, "job_finish", job_id="a", index=0, label="a",
              attempt=2, status="done", quarantined=False, elapsed_s=18.0),
        event(12, 40.0, "job_finish", job_id="b", index=1, label="b",
              attempt=1, status="done", quarantined=False, elapsed_s=40.0),
        event(13, 41.0, "job_start", job_id="c", index=2, label="c",
              attempt=1, worker_slot=1),
        event(14, 60.0, "store_retry", job_id="c", write_attempt=1,
              error="enospc"),
    ]


def test_snapshot_folds_counts_workers_and_rates():
    snap = build_snapshot(synthetic_events())
    assert snap.total_jobs == 4 and snap.workers == 2
    assert snap.counts == {"done": 2, "running": 1}
    assert snap.recorded == 2 and snap.remaining == 2
    assert snap.retries_by_kind == {"resource": 1}
    assert snap.store_retries == 1 and snap.chaos_injected == 1
    assert not snap.ended
    assert snap.elapsed_s == pytest.approx(60.0)
    # 2 finished in 60s -> 2/min; 2 remaining -> 60s ETA.
    assert snap.throughput_jpm == pytest.approx(2.0)
    assert snap.eta_s == pytest.approx(60.0)

    worker0 = snap.workers_state[0]
    assert worker0.deaths == 1 and worker0.jobs_done == 1
    # attempt 1 (0..10) + attempt 2 (12..30).
    assert worker0.busy_s == pytest.approx(28.0)
    worker1 = snap.workers_state[1]
    assert worker1.jobs_done == 1
    assert worker1.current_label == "c"
    assert worker1.job_indexes == [1, 2]

    text = render_snapshot(snap, store_path="s.db")
    assert "2/4 recorded" in text
    assert "throughput: 2.0 jobs/min" in text and "ETA: 60s" in text
    assert "retries: resource=1" in text
    assert "worker 1: c" in text


def test_snapshot_of_ended_sweep_has_zero_eta():
    events = synthetic_events()
    events.append({"seq": 15, "t": 170.0, "mono": 70.0,
                   "event": "sweep_end", "status": "done",
                   "elapsed_s": 70.0, "counts": {"done": 4}})
    snap = build_snapshot(events)
    assert snap.ended and snap.end_status == "done"
    assert snap.eta_s == 0.0


# ----------------------------------------------------------------------
# Perfetto conversion
# ----------------------------------------------------------------------

def test_journal_spans_become_a_valid_perfetto_trace(tmp_path):
    from repro.sim.tracing import perfetto_document

    spans = journal_spans(synthetic_events())
    jobs = [span for span in spans if span.category == "job"]
    faults = [span for span in spans if span.category == "fault"]
    assert [span.name for span in jobs] == ["a", "a", "b"]
    assert jobs[0].duration_ns == pytest.approx(10.0 * 1e9)  # to retry
    assert jobs[1].duration_ns == pytest.approx(18.0 * 1e9)
    assert jobs[0].args["status"] == "retry"
    assert jobs[1].args["attempt"] == 2
    assert [span.name for span in faults] == [
        "chaos_injected", "worker_death", "store_retry"]

    document = perfetto_document(spans)
    trace_events = document["traceEvents"]
    assert {entry["ph"] for entry in trace_events} <= {"X", "i", "M"}
    # Worker slots become Perfetto thread rows.
    assert {entry["tid"] for entry in trace_events
            if entry["ph"] == "X"} == {1, 2}
    json.dumps(document)  # must be serializable as-is


# ----------------------------------------------------------------------
# CLI surfaces
# ----------------------------------------------------------------------

def run_cli_sweep(tmp_path, capsys):
    from repro.cli import main

    spec = tmp_path / "spec.json"
    spec.write_text(json.dumps(dict(
        name="telcli", workloads=["mcf"],
        controllers=["compresso", "tmcc@iso"],
        accesses=1_500, scale=0.05)))
    store = str(tmp_path / "s.db")
    assert main(["sweep", "run", str(spec), "--store", store]) == 0
    capsys.readouterr()
    return store


def test_cli_show_prints_throughput_eta_and_watch_pointer(
        tmp_path, capsys):
    from repro.cli import main

    store = run_cli_sweep(tmp_path, capsys)
    assert main(["sweep", "show", "telcli", "--store", store]) == 0
    out = capsys.readouterr().out
    assert "throughput:" in out and "jobs/min" in out
    assert "ETA: -" in out
    assert "repro sweep watch" in out


def test_cli_show_without_journal_says_na(tmp_path, capsys):
    from repro.cli import main

    spec = tmp_path / "spec.json"
    spec.write_text(json.dumps(dict(
        name="telcli", workloads=["mcf"], controllers=["compresso"],
        accesses=1_500, scale=0.05)))
    store = str(tmp_path / "s.db")
    assert main(["sweep", "run", str(spec), "--store", store,
                 "--no-journal"]) == 0
    assert not list(tmp_path.glob("*.journal.jsonl"))
    capsys.readouterr()
    assert main(["sweep", "show", "telcli", "--store", store]) == 0
    out = capsys.readouterr().out
    assert "throughput: n/a   ETA: n/a   (no journal)" in out


def test_cli_watch_once_renders_a_frame(tmp_path, capsys):
    from repro.cli import main

    store = run_cli_sweep(tmp_path, capsys)
    assert main(["sweep", "watch", "telcli", "--store", store,
                 "--once"]) == 0
    out = capsys.readouterr().out
    assert "2/2 recorded" in out and "throughput:" in out


def test_cli_events_filters_and_tails(tmp_path, capsys):
    from repro.cli import main

    store = run_cli_sweep(tmp_path, capsys)
    assert main(["sweep", "events", "telcli", "--store", store,
                 "--kind", "job_finish", "--json"]) == 0
    lines = capsys.readouterr().out.splitlines()
    assert len(lines) == 2
    assert all(json.loads(line)["event"] == "job_finish"
               for line in lines)

    assert main(["sweep", "events", "telcli", "--store", store,
                 "--job", "0"]) == 0
    out = capsys.readouterr().out
    assert "index=0" in out and "index=1" not in out

    assert main(["sweep", "events", "telcli", "--store", store,
                 "--tail", "1", "--json"]) == 0
    (line,) = capsys.readouterr().out.splitlines()
    assert json.loads(line)["event"] == "sweep_end"

    assert main(["sweep", "events", "telcli", "--store", store,
                 "--kind", "nonsense"]) == 2
    assert "unknown event kind" in capsys.readouterr().err


def test_cli_events_perfetto_export(tmp_path, capsys):
    from repro.cli import main

    store = run_cli_sweep(tmp_path, capsys)
    out_path = tmp_path / "trace.json"
    assert main(["sweep", "events", "telcli", "--store", store,
                 "--perfetto", str(out_path)]) == 0
    document = json.loads(out_path.read_text())
    names = {entry["name"] for entry in document["traceEvents"]
             if entry["ph"] == "X"}
    assert any(name.startswith("mcf/compresso") for name in names)
    assert any(name.startswith("mcf/tmcc@iso") for name in names)


def test_cli_export_failures_mode(tmp_path, capsys):
    from repro.cli import main

    store = run_cli_sweep(tmp_path, capsys)
    assert main(["sweep", "export", "telcli", "--store", store,
                 "--failures"]) == 0
    document = json.loads(capsys.readouterr().out)
    assert document["schema"] == "repro-sweep-failures/1"
    assert document["failures"] == []  # clean sweep

    assert main(["sweep", "export", "telcli", "--store", store,
                 "--failures", "--format", "csv"]) == 0
    lines = capsys.readouterr().out.splitlines()
    assert lines[0].startswith("idx,job_id,workload,")


def test_cli_sweep_report_renders_sections(tmp_path, capsys):
    from repro.cli import main

    store = run_cli_sweep(tmp_path, capsys)
    assert main(["sweep", "report", "telcli", "--store", store]) == 0
    out = capsys.readouterr().out
    assert "## Overview" in out
    assert "## Outcome grid" in out
    assert "## Telemetry snapshot" in out
    assert "| mcf | ok | ok |" in out


def test_cli_journal_flags_are_mutually_exclusive(tmp_path, capsys):
    from repro.cli import main

    assert main(["sweep", "run", "smoke", "--store",
                 str(tmp_path / "s.db"), "--journal", "j.jsonl",
                 "--no-journal"]) == 2
    assert "mutually exclusive" in capsys.readouterr().err
