"""The ``repro sweep`` command family, end to end through main()."""

import json

from repro.cli import main
from repro.sweep.spec import SweepSpec


def write_spec(tmp_path, **overrides):
    base = dict(
        name="clismoke",
        workloads=["mcf"],
        controllers=["compresso", "tmcc@iso"],
        accesses=1_500,
        scale=0.05,
    )
    base.update(overrides)
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(base))
    return str(path)


def test_sweep_run_then_ls_show_export(tmp_path, capsys):
    spec = write_spec(tmp_path)
    store = str(tmp_path / "s.db")
    assert main(["sweep", "run", spec, "--store", store]) == 0
    out = capsys.readouterr().out
    assert "[1/2]" in out and "[2/2]" in out and "2 done" in out

    assert main(["sweep", "ls", "--store", store]) == 0
    out = capsys.readouterr().out
    assert "clismoke" in out and "2/2" in out

    assert main(["sweep", "show", "clismoke", "--store", store]) == 0
    out = capsys.readouterr().out
    assert "compresso" in out and "tmcc" in out and "done" in out

    assert main(["sweep", "export", "clismoke", "--store", store]) == 0
    document = json.loads(capsys.readouterr().out)
    assert document["schema"].startswith("repro-sweep/")
    assert len(document["jobs"]) == 2

    csv_out = tmp_path / "rows.csv"
    assert main(["sweep", "export", "clismoke", "--store", store,
                 "--format", "csv", "--out", str(csv_out)]) == 0
    lines = csv_out.read_text().splitlines()
    assert lines[0].startswith("idx,workload,") and len(lines) == 3


def test_sweep_run_resumes(tmp_path, capsys):
    spec = write_spec(tmp_path)
    store = str(tmp_path / "s.db")
    assert main(["sweep", "run", spec, "--store", store]) == 0
    capsys.readouterr()
    assert main(["sweep", "run", spec, "--store", store]) == 0
    out = capsys.readouterr().out
    assert "(resumed)" in out
    assert out.count("skipped (already recorded)") == 2


def test_sweep_run_workers_matches_inline(tmp_path, capsys):
    from repro.sweep.store import SweepStore

    spec = write_spec(tmp_path, workloads=["mcf", "omnetpp"])
    one, two = str(tmp_path / "j1.db"), str(tmp_path / "j2.db")
    assert main(["sweep", "run", spec, "--store", one, "-j", "1"]) == 0
    assert main(["sweep", "run", spec, "--store", two, "-j", "2"]) == 0
    capsys.readouterr()
    store_one, store_two = SweepStore.open(one), SweepStore.open(two)
    sweep_id = store_one.find_sweep("clismoke")["sweep_id"]
    assert store_one.fingerprint_rows(sweep_id) == \
        store_two.fingerprint_rows(sweep_id)


def test_sweep_builtin_spec_accepted(tmp_path, capsys):
    # 'smoke' is the in-tree tiny matrix; just validate it loads and
    # the run starts -- exit 0 means all four jobs completed.
    store = str(tmp_path / "s.db")
    assert main(["sweep", "run", "smoke", "--store", store]) == 0
    assert "4 done" in capsys.readouterr().out


def test_sweep_error_exit_codes(tmp_path, capsys):
    store = str(tmp_path / "s.db")
    assert main(["sweep", "run", "nosuchspec", "--store", store]) == 2
    assert "no spec file" in capsys.readouterr().err
    assert main(["sweep", "run", "smoke", "--store", store,
                 "--jobs", "0"]) == 2
    assert "--jobs" in capsys.readouterr().err
    assert main(["sweep", "run", "smoke", "--store", store,
                 "--timeout", "-5"]) == 2
    assert "--timeout" in capsys.readouterr().err
    assert main(["sweep", "show", "nosuch", "--store", store]) == 2
    assert "no sweep" in capsys.readouterr().err
    bad = tmp_path / "bad.json"
    bad.write_text("{nope")
    assert main(["sweep", "run", str(bad), "--store", store]) == 2
    assert "JSON" in capsys.readouterr().err


def test_sweep_run_failed_job_exits_1(tmp_path, capsys):
    spec = write_spec(tmp_path,
                      controllers=["compresso",
                                   {"name": "tmcc", "budgets": [1]}])
    assert main(["sweep", "run", spec, "--store",
                 str(tmp_path / "s.db")]) == 1
    out = capsys.readouterr().out
    assert "failed" in out


def test_sweep_robustness_flag_validation(tmp_path, capsys):
    store = str(tmp_path / "s.db")
    assert main(["sweep", "run", "smoke", "--store", store,
                 "--max-retries=-1"]) == 2
    assert "--max-retries" in capsys.readouterr().err
    assert main(["sweep", "run", "smoke", "--store", store,
                 "--heartbeat-timeout", "0"]) == 2
    assert "--heartbeat-timeout" in capsys.readouterr().err
    assert main(["sweep", "run", "smoke", "--store", store,
                 "--chaos", "worker_kill:1"]) == 2
    assert "-j 2" in capsys.readouterr().err
    assert main(["sweep", "run", "smoke", "--store", store, "-j", "2",
                 "--chaos", "worker_kill:1", "--no-chaos"]) == 2
    assert "mutually exclusive" in capsys.readouterr().err
    assert main(["sweep", "run", "smoke", "--store", store, "-j", "2",
                 "--chaos", "explode:1"]) == 2
    assert "unknown chaos kind" in capsys.readouterr().err


def test_sweep_quarantine_exit_code_and_report(tmp_path, capsys):
    """An unkillable chaos fault: exit 4, a quarantine report on
    stderr, and `sweep show` flagging the cell."""
    spec = write_spec(tmp_path)
    store = str(tmp_path / "s.db")
    code = main(["sweep", "run", spec, "--store", store, "-j", "2",
                 "--chaos", "worker_kill:9@0", "--max-retries", "1"])
    captured = capsys.readouterr()
    assert code == 4
    assert "quarantined" in captured.out
    assert "quarantine report" in captured.err
    assert "after 2 attempts" in captured.err

    assert main(["sweep", "show", "clismoke", "--store", store]) == 0
    out = capsys.readouterr().out
    assert "[quarantined]" in out
    assert " try " in out  # the attempts column made it into the header


def test_sweep_show_reports_attempts(tmp_path, capsys):
    spec = write_spec(tmp_path)
    store = str(tmp_path / "s.db")
    assert main(["sweep", "run", spec, "--store", store]) == 0
    capsys.readouterr()
    assert main(["sweep", "show", "clismoke", "--store", store]) == 0
    out = capsys.readouterr().out
    assert " try " in out
    # Every fault-free job took exactly one attempt, none quarantined.
    done = [line for line in out.splitlines() if " done " in line]
    assert done and all("   1 " in line for line in done)
    assert "[quarantined]" not in out


def test_sweep_repair_command(tmp_path, capsys):
    spec = write_spec(tmp_path)
    store = str(tmp_path / "s.db")
    out = str(tmp_path / "repaired.db")
    assert main(["sweep", "run", spec, "--store", store]) == 0
    capsys.readouterr()
    assert main(["sweep", "repair", store, "--out", out]) == 0
    captured = capsys.readouterr()
    assert "2 job(s) salvaged" in captured.out
    assert main(["sweep", "show", "clismoke", "--store", out]) == 0
    assert "done" in capsys.readouterr().out
    assert main(["sweep", "repair", str(tmp_path / "missing.db"),
                 "--out", str(tmp_path / "x.db")]) == 2
    assert "no sweep store" in capsys.readouterr().err


def test_sweep_spec_hash_stability():
    # The CLI resume path keys on the spec hash: loading the same file
    # twice (or the equivalent dict) must find the same sweep.
    spec = SweepSpec.from_dict({
        "name": "t", "workloads": ["mcf"], "controllers": ["compresso"],
    })
    assert spec.spec_hash() == SweepSpec.from_dict(spec.to_dict()).spec_hash()
