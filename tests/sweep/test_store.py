"""Store layer: registration, resume bookkeeping, schema gating,
migration, corruption recovery, and export."""

import os
import sqlite3

import pytest

from repro.common.errors import ConfigError
from repro.sim.results import SimResult
from repro.sweep.spec import SweepSpec
from repro.sweep.store import STORE_SCHEMA_VERSION, SweepStore


def tiny_spec(**overrides):
    base = dict(
        name="t",
        workloads=("mcf",),
        controllers=("compresso", "tmcc@iso"),
        accesses=1_500,
        scale=0.05,
    )
    base.update(overrides)
    return SweepSpec.build(**base)


def fake_result(workload="mcf", controller="compresso",
                dram_used=1_000_000) -> SimResult:
    return SimResult(
        workload=workload, controller=controller, accesses=1_500,
        elapsed_ns=15_000.0, avg_l3_miss_latency_ns=60.0,
        dram_used_bytes=dram_used, footprint_bytes=2_000_000,
        metrics={"tlb.miss_rate": 0.1},
    )


@pytest.fixture()
def store(tmp_path):
    return SweepStore.open(str(tmp_path / "s.db"))


def test_register_then_resume(store):
    spec = tiny_spec()
    jobs = spec.expand()
    sweep_id, resumed = store.register_sweep(spec, jobs)
    assert not resumed
    assert sweep_id.startswith("t-")
    assert set(store.job_statuses(sweep_id).values()) == {"pending"}

    again, resumed = store.register_sweep(spec, jobs)
    assert resumed and again == sweep_id


def test_resume_requeues_running_jobs(store):
    spec = tiny_spec()
    jobs = spec.expand()
    sweep_id, _ = store.register_sweep(spec, jobs)
    store.mark_job_running(jobs[0].job_id)
    store.finish_job(jobs[1].job_id, "done", elapsed_s=0.1,
                     result=fake_result())
    # A killed process leaves jobs[0] 'running'; re-registration must
    # re-enqueue it while keeping the recorded 'done' row.
    store.register_sweep(spec, jobs)
    statuses = store.job_statuses(sweep_id)
    assert statuses[jobs[0].job_id] == "pending"
    assert statuses[jobs[1].job_id] == "done"


def test_result_round_trip(store):
    spec = tiny_spec()
    jobs = spec.expand()
    store.register_sweep(spec, jobs)
    original = fake_result()
    store.finish_job(jobs[0].job_id, "done", elapsed_s=0.5,
                     budget_bytes=None, result=original)
    loaded = store.result_for(jobs[0].job_id)
    assert loaded == original
    assert store.result_for(jobs[1].job_id) is None


def test_headline_metrics_flattened(store):
    spec = tiny_spec()
    jobs = spec.expand()
    store.register_sweep(spec, jobs)
    store.finish_job(jobs[0].job_id, "done", elapsed_s=0.5,
                     result=fake_result())
    sweep_id = store.find_sweep("t")["sweep_id"]
    rows = store.metrics_rows(sweep_id)
    keys = {row["key"] for row in rows}
    assert "performance" in keys and "compression_ratio" in keys


def test_find_result_matches_on_resolved_budget(store):
    spec = tiny_spec()
    jobs = spec.expand()
    store.register_sweep(spec, jobs)
    compresso, tmcc_iso = jobs[0], jobs[1]
    store.finish_job(compresso.job_id, "done", elapsed_s=0.1,
                     result=fake_result())
    store.finish_job(tmcc_iso.job_id, "done", elapsed_s=0.1,
                     budget_bytes=1_000_000,
                     result=fake_result(controller="tmcc", dram_used=900_000))
    found = store.find_result("mcf", "tmcc", accesses=1_500, scale=0.05,
                              budget_bytes=1_000_000)
    assert found is not None and found.controller == "tmcc"
    assert store.find_result("mcf", "compresso", accesses=1_500,
                             scale=0.05) is not None
    assert store.find_result("mcf", "tmcc", accesses=1_500, scale=0.05,
                             budget_bytes=123) is None
    assert store.find_result("mcf", "tmcc", accesses=9_999,
                             scale=0.05, budget_bytes=1_000_000) is None


def test_find_sweep_by_prefix_and_name(store):
    spec = tiny_spec()
    sweep_id, _ = store.register_sweep(spec, spec.expand())
    assert store.find_sweep(sweep_id)["sweep_id"] == sweep_id
    assert store.find_sweep(sweep_id[:6])["sweep_id"] == sweep_id
    assert store.find_sweep("t")["sweep_id"] == sweep_id
    with pytest.raises(ConfigError, match="no sweep"):
        store.find_sweep("nosuch")


def test_drop_sweep_clears_everything(store):
    spec = tiny_spec()
    jobs = spec.expand()
    sweep_id, _ = store.register_sweep(spec, jobs)
    store.finish_job(jobs[0].job_id, "done", elapsed_s=0.1,
                     result=fake_result())
    store.drop_sweep(sweep_id)
    assert store.list_sweeps() == []
    assert store.job_statuses(sweep_id) == {}
    _, resumed = store.register_sweep(spec, jobs)
    assert not resumed


def test_export_document_shape(store):
    spec = tiny_spec()
    jobs = spec.expand()
    sweep_id, _ = store.register_sweep(spec, jobs)
    store.finish_job(jobs[0].job_id, "done", elapsed_s=0.1,
                     result=fake_result())
    document = store.export_document(sweep_id)
    assert document["schema"] == f"repro-sweep/{STORE_SCHEMA_VERSION}"
    assert document["spec"]["name"] == "t"
    assert len(document["jobs"]) == len(jobs)
    done = [j for j in document["jobs"] if j["status"] == "done"]
    assert done and done[0]["result"]["dram_used_bytes"] == 1_000_000


def test_fingerprint_ignores_wall_clock(tmp_path):
    spec = tiny_spec()
    jobs = spec.expand()
    a = SweepStore.open(str(tmp_path / "a.db"))
    b = SweepStore.open(str(tmp_path / "b.db"))
    for store, elapsed in ((a, 0.1), (b, 99.9)):
        sweep_id, _ = store.register_sweep(spec, jobs)
        for job in jobs:
            store.finish_job(job.job_id, "done", elapsed_s=elapsed,
                             budget_bytes=None, result=fake_result())
    assert a.fingerprint_rows(sweep_id) == b.fingerprint_rows(sweep_id)


def test_schema_version_mismatch_rejected(tmp_path):
    path = str(tmp_path / "s.db")
    SweepStore.open(path)
    conn = sqlite3.connect(path)
    conn.execute("UPDATE meta SET value = '999' "
                 "WHERE key = 'schema_version'")
    conn.commit()
    conn.close()
    with pytest.raises(ConfigError, match="schema version"):
        SweepStore.open(path)


def test_non_store_files_rejected(tmp_path):
    text = tmp_path / "notes.txt"
    text.write_text("hello " * 100)
    with pytest.raises(ConfigError, match="not a sweep store"):
        SweepStore.open(str(text))
    other_db = tmp_path / "other.db"
    conn = sqlite3.connect(str(other_db))
    conn.execute("CREATE TABLE users (id INTEGER)")
    conn.commit()
    conn.close()
    with pytest.raises(ConfigError, match="not a sweep store"):
        SweepStore.open(str(other_db))


# ----------------------------------------------------------------------
# Retry bookkeeping columns
# ----------------------------------------------------------------------

def test_attempt_bookkeeping_survives_success(store):
    spec = tiny_spec()
    jobs = spec.expand()
    sweep_id, _ = store.register_sweep(spec, jobs)
    job = jobs[0]
    store.mark_job_running(job.job_id)
    store.record_attempt_failure(job.job_id, "worker died")
    row = store.jobs(sweep_id)[0]
    assert row["status"] == "pending" and row["attempts"] == 1
    assert row["last_error"] == "worker died"
    store.mark_job_running(job.job_id)
    store.finish_job(job.job_id, "done", elapsed_s=0.1,
                     result=fake_result())
    row = store.jobs(sweep_id)[0]
    assert row["status"] == "done" and row["attempts"] == 2
    assert row["last_error"] == "worker died"  # history preserved
    assert row["quarantined"] == 0


def test_quarantine_flag_round_trips(store):
    spec = tiny_spec()
    jobs = spec.expand()
    sweep_id, _ = store.register_sweep(spec, jobs)
    store.mark_job_running(jobs[0].job_id)
    store.finish_job(jobs[0].job_id, "failed", elapsed_s=0.1,
                     error="worker kept dying", quarantined=True)
    row = store.jobs(sweep_id)[0]
    assert row["status"] == "failed" and row["quarantined"] == 1
    assert row["error"] == "worker kept dying"


# ----------------------------------------------------------------------
# Schema migration (v1 -> v2)
# ----------------------------------------------------------------------

_V1_SCHEMA = """
CREATE TABLE meta (key TEXT PRIMARY KEY, value TEXT NOT NULL);
CREATE TABLE sweeps (
    sweep_id TEXT PRIMARY KEY, name TEXT NOT NULL,
    spec_hash TEXT NOT NULL UNIQUE, spec_json TEXT NOT NULL,
    status TEXT NOT NULL, created_at REAL NOT NULL
);
CREATE TABLE jobs (
    job_id TEXT PRIMARY KEY, sweep_id TEXT NOT NULL,
    idx INTEGER NOT NULL, workload TEXT NOT NULL,
    controller TEXT NOT NULL, seed INTEGER NOT NULL,
    base_seed INTEGER NOT NULL, repeat INTEGER NOT NULL,
    budget TEXT NOT NULL, budget_bytes INTEGER,
    faults TEXT NOT NULL DEFAULT '', accesses INTEGER NOT NULL,
    scale REAL NOT NULL, workload_seed INTEGER NOT NULL,
    fast_path TEXT NOT NULL, huge_pages INTEGER NOT NULL DEFAULT 0,
    provider_id TEXT NOT NULL DEFAULT '', status TEXT NOT NULL,
    error TEXT NOT NULL DEFAULT '', elapsed_s REAL,
    started_at REAL, finished_at REAL, result_json TEXT
);
CREATE TABLE metrics (
    job_id TEXT NOT NULL, key TEXT NOT NULL, value REAL NOT NULL,
    PRIMARY KEY (job_id, key)
);
"""


def test_v1_store_is_migrated_in_place(tmp_path):
    path = str(tmp_path / "old.db")
    conn = sqlite3.connect(path)
    conn.executescript(_V1_SCHEMA)
    conn.execute("INSERT INTO meta (key, value) VALUES "
                 "('schema_version', '1')")
    conn.execute(
        "INSERT INTO jobs (job_id, sweep_id, idx, workload, controller, "
        "seed, base_seed, repeat, budget, accesses, scale, "
        "workload_seed, fast_path, status) VALUES ('j1', 's1', 0, 'mcf', "
        "'compresso', 1, 1, 0, 'none', 1500, 0.05, 1, 'off', 'done')")
    conn.commit()
    conn.close()

    store = SweepStore.open(path)  # migrates on open
    conn = sqlite3.connect(path)
    conn.row_factory = sqlite3.Row
    version = conn.execute(
        "SELECT value FROM meta WHERE key = 'schema_version'").fetchone()
    row = conn.execute("SELECT * FROM jobs").fetchone()
    conn.close()
    assert version["value"] == str(STORE_SCHEMA_VERSION)
    # v1 rows read as never-retried, never-quarantined.
    assert row["attempts"] == 0 and row["quarantined"] == 0
    assert row["last_error"] == ""
    # And the migrated store is fully writable with the new columns.
    spec = tiny_spec()
    jobs = spec.expand()
    sweep_id, _ = store.register_sweep(spec, jobs)
    store.mark_job_running(jobs[0].job_id)
    assert store.jobs(sweep_id)[0]["attempts"] == 1


# ----------------------------------------------------------------------
# Concurrency pragmas
# ----------------------------------------------------------------------

def test_connections_run_wal_with_busy_timeout(store):
    with store.engine.connect() as conn:
        assert conn.execute("PRAGMA journal_mode").fetchone()[0] == "wal"
        assert conn.execute("PRAGMA busy_timeout").fetchone()[0] == 30000


def test_reader_proceeds_while_writer_holds_the_lock(store):
    """`repro sweep ls/show` against a live sweep: WAL readers see the
    last committed snapshot instead of `database is locked`."""
    spec = tiny_spec()
    jobs = spec.expand()
    sweep_id, _ = store.register_sweep(spec, jobs)
    writer = sqlite3.connect(store.path, timeout=30.0)
    try:
        writer.execute("BEGIN IMMEDIATE")
        writer.execute("UPDATE jobs SET status = 'running'")
        statuses = store.job_statuses(sweep_id)  # must not raise
        assert set(statuses.values()) == {"pending"}  # pre-write snapshot
    finally:
        writer.rollback()
        writer.close()


# ----------------------------------------------------------------------
# Corruption detection and salvage
# ----------------------------------------------------------------------

def padded_result(index):
    """A result whose JSON document spans real space in the file, so a
    torn tail page provably destroys some rows and not others."""
    result = fake_result()
    result.metrics = {f"pad.metric_{index}_{j}": float(index * 1000 + j)
                      for j in range(200)}
    return result


def torn_store(tmp_path, name="torn.db"):
    """A store with four recorded jobs whose last page is then torn."""
    path = str(tmp_path / name)
    store = SweepStore.open(path)
    spec = tiny_spec(workloads=("mcf", "omnetpp"))
    jobs = spec.expand()
    store.register_sweep(spec, jobs)
    for index, job in enumerate(jobs):
        store.mark_job_running(job.job_id)
        store.finish_job(job.job_id, "done", elapsed_s=0.1,
                         result=padded_result(index))
    size = os.path.getsize(path)
    with open(path, "r+b") as handle:
        handle.seek(size - 4096)
        handle.write(b"\xff" * 4096)
    return path, jobs


def test_torn_store_rejected_with_repair_hint(tmp_path):
    path, _ = torn_store(tmp_path)
    with pytest.raises(ConfigError, match="integrity check") as excinfo:
        SweepStore.open(path)
    assert "repro sweep repair" in str(excinfo.value)


def test_repair_salvages_rows_before_the_tear(tmp_path):
    path, jobs = torn_store(tmp_path)
    out = str(tmp_path / "repaired.db")
    counts = SweepStore.repair(path, out)
    assert counts["jobs_salvaged"] >= 1  # pre-tear rows survive
    assert counts["jobs_salvaged"] + counts["jobs_reset"] <= len(jobs)
    repaired = SweepStore.open(out)  # passes the integrity gate
    sweep = repaired.find_sweep("t")
    assert sweep["status"] == "interrupted"
    statuses = repaired.job_statuses(sweep["sweep_id"])
    assert set(statuses.values()) <= {"done", "pending"}
    for job_id, status in statuses.items():
        if status == "done":
            assert repaired.result_for(job_id) is not None


def test_repair_of_healthy_store_keeps_done_resets_rest(tmp_path, store):
    spec = tiny_spec()
    jobs = spec.expand()
    sweep_id, _ = store.register_sweep(spec, jobs)
    original = fake_result()
    store.finish_job(jobs[0].job_id, "done", elapsed_s=0.1,
                     result=original)
    store.mark_job_running(jobs[1].job_id)
    out = str(tmp_path / "copy.db")
    counts = SweepStore.repair(store.path, out)
    assert counts == {"sweeps": 1, "jobs_salvaged": 1, "jobs_reset": 1,
                      "metrics": counts["metrics"]}
    assert counts["metrics"] == len(original.headline())
    repaired = SweepStore.open(out)
    assert repaired.result_for(jobs[0].job_id) == original
    # The half-run job restarts from scratch.
    assert repaired.job_statuses(sweep_id)[jobs[1].job_id] == "pending"


def test_repair_refuses_bad_paths(tmp_path, store):
    with pytest.raises(ConfigError, match="no sweep store"):
        SweepStore.repair(str(tmp_path / "missing.db"),
                          str(tmp_path / "out.db"))
    existing = tmp_path / "exists.db"
    existing.write_text("x")
    with pytest.raises(ConfigError, match="refusing to overwrite"):
        SweepStore.repair(store.path, str(existing))
