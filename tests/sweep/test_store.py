"""Store layer: registration, resume bookkeeping, schema gating, export."""

import sqlite3

import pytest

from repro.common.errors import ConfigError
from repro.sim.results import SimResult
from repro.sweep.spec import SweepSpec
from repro.sweep.store import STORE_SCHEMA_VERSION, SweepStore


def tiny_spec(**overrides):
    base = dict(
        name="t",
        workloads=("mcf",),
        controllers=("compresso", "tmcc@iso"),
        accesses=1_500,
        scale=0.05,
    )
    base.update(overrides)
    return SweepSpec.build(**base)


def fake_result(workload="mcf", controller="compresso",
                dram_used=1_000_000) -> SimResult:
    return SimResult(
        workload=workload, controller=controller, accesses=1_500,
        elapsed_ns=15_000.0, avg_l3_miss_latency_ns=60.0,
        dram_used_bytes=dram_used, footprint_bytes=2_000_000,
        metrics={"tlb.miss_rate": 0.1},
    )


@pytest.fixture()
def store(tmp_path):
    return SweepStore.open(str(tmp_path / "s.db"))


def test_register_then_resume(store):
    spec = tiny_spec()
    jobs = spec.expand()
    sweep_id, resumed = store.register_sweep(spec, jobs)
    assert not resumed
    assert sweep_id.startswith("t-")
    assert set(store.job_statuses(sweep_id).values()) == {"pending"}

    again, resumed = store.register_sweep(spec, jobs)
    assert resumed and again == sweep_id


def test_resume_requeues_running_jobs(store):
    spec = tiny_spec()
    jobs = spec.expand()
    sweep_id, _ = store.register_sweep(spec, jobs)
    store.mark_job_running(jobs[0].job_id)
    store.finish_job(jobs[1].job_id, "done", elapsed_s=0.1,
                     result=fake_result())
    # A killed process leaves jobs[0] 'running'; re-registration must
    # re-enqueue it while keeping the recorded 'done' row.
    store.register_sweep(spec, jobs)
    statuses = store.job_statuses(sweep_id)
    assert statuses[jobs[0].job_id] == "pending"
    assert statuses[jobs[1].job_id] == "done"


def test_result_round_trip(store):
    spec = tiny_spec()
    jobs = spec.expand()
    store.register_sweep(spec, jobs)
    original = fake_result()
    store.finish_job(jobs[0].job_id, "done", elapsed_s=0.5,
                     budget_bytes=None, result=original)
    loaded = store.result_for(jobs[0].job_id)
    assert loaded == original
    assert store.result_for(jobs[1].job_id) is None


def test_headline_metrics_flattened(store):
    spec = tiny_spec()
    jobs = spec.expand()
    store.register_sweep(spec, jobs)
    store.finish_job(jobs[0].job_id, "done", elapsed_s=0.5,
                     result=fake_result())
    sweep_id = store.find_sweep("t")["sweep_id"]
    rows = store.metrics_rows(sweep_id)
    keys = {row["key"] for row in rows}
    assert "performance" in keys and "compression_ratio" in keys


def test_find_result_matches_on_resolved_budget(store):
    spec = tiny_spec()
    jobs = spec.expand()
    store.register_sweep(spec, jobs)
    compresso, tmcc_iso = jobs[0], jobs[1]
    store.finish_job(compresso.job_id, "done", elapsed_s=0.1,
                     result=fake_result())
    store.finish_job(tmcc_iso.job_id, "done", elapsed_s=0.1,
                     budget_bytes=1_000_000,
                     result=fake_result(controller="tmcc", dram_used=900_000))
    found = store.find_result("mcf", "tmcc", accesses=1_500, scale=0.05,
                              budget_bytes=1_000_000)
    assert found is not None and found.controller == "tmcc"
    assert store.find_result("mcf", "compresso", accesses=1_500,
                             scale=0.05) is not None
    assert store.find_result("mcf", "tmcc", accesses=1_500, scale=0.05,
                             budget_bytes=123) is None
    assert store.find_result("mcf", "tmcc", accesses=9_999,
                             scale=0.05, budget_bytes=1_000_000) is None


def test_find_sweep_by_prefix_and_name(store):
    spec = tiny_spec()
    sweep_id, _ = store.register_sweep(spec, spec.expand())
    assert store.find_sweep(sweep_id)["sweep_id"] == sweep_id
    assert store.find_sweep(sweep_id[:6])["sweep_id"] == sweep_id
    assert store.find_sweep("t")["sweep_id"] == sweep_id
    with pytest.raises(ConfigError, match="no sweep"):
        store.find_sweep("nosuch")


def test_drop_sweep_clears_everything(store):
    spec = tiny_spec()
    jobs = spec.expand()
    sweep_id, _ = store.register_sweep(spec, jobs)
    store.finish_job(jobs[0].job_id, "done", elapsed_s=0.1,
                     result=fake_result())
    store.drop_sweep(sweep_id)
    assert store.list_sweeps() == []
    assert store.job_statuses(sweep_id) == {}
    _, resumed = store.register_sweep(spec, jobs)
    assert not resumed


def test_export_document_shape(store):
    spec = tiny_spec()
    jobs = spec.expand()
    sweep_id, _ = store.register_sweep(spec, jobs)
    store.finish_job(jobs[0].job_id, "done", elapsed_s=0.1,
                     result=fake_result())
    document = store.export_document(sweep_id)
    assert document["schema"] == f"repro-sweep/{STORE_SCHEMA_VERSION}"
    assert document["spec"]["name"] == "t"
    assert len(document["jobs"]) == len(jobs)
    done = [j for j in document["jobs"] if j["status"] == "done"]
    assert done and done[0]["result"]["dram_used_bytes"] == 1_000_000


def test_fingerprint_ignores_wall_clock(tmp_path):
    spec = tiny_spec()
    jobs = spec.expand()
    a = SweepStore.open(str(tmp_path / "a.db"))
    b = SweepStore.open(str(tmp_path / "b.db"))
    for store, elapsed in ((a, 0.1), (b, 99.9)):
        sweep_id, _ = store.register_sweep(spec, jobs)
        for job in jobs:
            store.finish_job(job.job_id, "done", elapsed_s=elapsed,
                             budget_bytes=None, result=fake_result())
    assert a.fingerprint_rows(sweep_id) == b.fingerprint_rows(sweep_id)


def test_schema_version_mismatch_rejected(tmp_path):
    path = str(tmp_path / "s.db")
    SweepStore.open(path)
    conn = sqlite3.connect(path)
    conn.execute("UPDATE meta SET value = '999' "
                 "WHERE key = 'schema_version'")
    conn.commit()
    conn.close()
    with pytest.raises(ConfigError, match="schema version"):
        SweepStore.open(path)


def test_non_store_files_rejected(tmp_path):
    text = tmp_path / "notes.txt"
    text.write_text("hello " * 100)
    with pytest.raises(ConfigError, match="not a sweep store"):
        SweepStore.open(str(text))
    other_db = tmp_path / "other.db"
    conn = sqlite3.connect(str(other_db))
    conn.execute("CREATE TABLE users (id INTEGER)")
    conn.commit()
    conn.close()
    with pytest.raises(ConfigError, match="not a sweep store"):
        SweepStore.open(str(other_db))
