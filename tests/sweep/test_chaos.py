"""Host-chaos layer: plan parsing, schedule determinism, and the
engine surviving injected worker kills, hangs, ENOSPC store writes,
and corrupted result rows.

The end-to-end tests run real (tiny) pool sweeps -- the acceptance bar
is the chaos determinism golden: every injected fault is absorbed by
retry (or quarantined), and the surviving metric rows are
``fingerprint_rows``-identical to a fault-free run.
"""

import pytest

from repro.common.errors import ConfigError
from repro.sweep.chaos import CHAOS_KINDS, ChaosPlan, ChaosSpec
from repro.sweep.engine import RetryPolicy, run_sweep
from repro.sweep.spec import SweepSpec


def tiny_spec(**overrides):
    base = dict(
        name="c",
        workloads=("mcf", "omnetpp"),
        controllers=("compresso", "tmcc@iso"),
        accesses=1_500,
        scale=0.05,
    )
    base.update(overrides)
    return SweepSpec.build(**base)


#: Fast backoff so retry-heavy tests stay quick.
FAST_RETRY = RetryPolicy(max_retries=3, backoff_s=0.01, backoff_cap_s=0.05)


# ----------------------------------------------------------------------
# Plan parsing / schedule resolution
# ----------------------------------------------------------------------

def test_parse_round_trips_through_describe():
    plan = ChaosPlan.parse("worker_kill:2,hang:1:7.5@3,enospc:1", seed=9)
    assert plan.seed == 9
    assert [spec.kind for spec in plan.specs] == [
        "worker_kill", "hang", "enospc"]
    assert plan.specs[1].param == 7.5 and plan.specs[1].target == 3
    assert ChaosPlan.parse(plan.describe(), seed=9) == plan


def test_parse_rejects_bad_plans():
    for text, match in (
        ("explode:1", "unknown chaos kind"),
        ("worker_kill:1:2:3", "too many fields"),
        ("hang:one", "numeric"),
        ("hang:1:5@x", "job index"),
        ("hang:0", ">= 1"),
        ("hang:1:-2", "> 0"),
        (" , ", "no specs"),
    ):
        with pytest.raises(ConfigError, match=match):
            ChaosPlan.parse(text)


def test_resolution_is_deterministic_in_the_seed():
    plan = ChaosPlan.parse("worker_kill:1,enospc:2,corrupt_row:1", seed=7)
    first = plan.resolve(16)
    again = ChaosPlan.parse(plan.describe(), seed=7).resolve(16)
    assert first.worker_actions == again.worker_actions
    assert first.store_faults == again.store_faults
    assert first.corruptions == again.corruptions
    other = ChaosPlan.parse(plan.describe(), seed=8).resolve(16)
    assert (first.worker_actions, first.store_faults, first.corruptions) \
        != (other.worker_actions, other.store_faults, other.corruptions)


def test_explicit_target_wins_and_is_range_checked():
    schedule = ChaosPlan.parse("hang:1:9@2").resolve(4)
    assert schedule.worker_actions == {2: ("hang", 9.0, 1)}
    with pytest.raises(ConfigError, match="outside"):
        ChaosPlan.parse("hang:1:9@4").resolve(4)


def test_schedule_fires_on_attempts_up_to_count():
    schedule = ChaosPlan.parse(
        "worker_kill:2@0,enospc:1@1,corrupt_row:3@2").resolve(4)
    assert schedule.worker_action(0, 1) == ("worker_kill", 30.0)
    assert schedule.worker_action(0, 2) == ("worker_kill", 30.0)
    assert schedule.worker_action(0, 3) is None
    assert schedule.worker_action(3, 1) is None
    assert schedule.store_fault(1, 1) and not schedule.store_fault(1, 2)
    assert schedule.corrupts(2, 3) and not schedule.corrupts(2, 4)


def test_every_kind_parses():
    for kind in CHAOS_KINDS:
        assert ChaosPlan.parse(kind).specs[0] == ChaosSpec(kind=kind)


def test_chaos_requires_a_worker_pool():
    with pytest.raises(ConfigError, match="workers >= 2"):
        run_sweep(tiny_spec(), chaos=ChaosPlan.parse("worker_kill:1"))


# ----------------------------------------------------------------------
# End to end: faults absorbed, rows identical to a fault-free run
# ----------------------------------------------------------------------

def test_chaos_sweep_rows_identical_to_fault_free(tmp_path):
    """The determinism golden: a worker SIGKILL, an ENOSPC store
    write, and a corrupted result row are all absorbed by retries and
    the surviving rows match a clean run exactly."""
    spec = tiny_spec()
    control = run_sweep(spec, store=str(tmp_path / "control.db"))
    chaotic = run_sweep(
        spec, store=str(tmp_path / "chaos.db"), workers=2,
        chaos=ChaosPlan.parse("worker_kill:1,enospc:1,corrupt_row:1",
                              seed=7),
        retry=FAST_RETRY)
    assert chaotic.ok and control.ok
    assert sum(chaotic.attempts.values()) > len(chaotic.jobs)  # retried
    assert chaotic.store.fingerprint_rows(chaotic.sweep_id) == \
        control.store.fingerprint_rows(control.sweep_id)


def test_hung_worker_is_replaced_and_job_retried(tmp_path):
    """A worker that goes silent past the heartbeat timeout is killed,
    replaced, and its job re-run to completion."""
    spec = tiny_spec(workloads=("mcf",))
    control = run_sweep(spec, store=str(tmp_path / "control.db"))
    events = []
    chaotic = run_sweep(
        spec, store=str(tmp_path / "chaos.db"), workers=2,
        chaos=ChaosPlan.parse("hang:1:60@0"),
        retry=FAST_RETRY, heartbeat_timeout_s=1.0,
        progress=lambda event, job, record: events.append((event, record)))
    assert chaotic.ok
    hung = [record for event, record in events if event == "retry"]
    assert hung and hung[0]["error_type"] == "WorkerHung"
    assert chaotic.store.fingerprint_rows(chaotic.sweep_id) == \
        control.store.fingerprint_rows(control.sweep_id)


def test_corrupt_row_never_reaches_the_store(tmp_path):
    """Digest-mismatched records must be retried, not recorded."""
    spec = tiny_spec(workloads=("mcf",))
    events = []
    run = run_sweep(
        spec, store=str(tmp_path / "s.db"), workers=2,
        chaos=ChaosPlan.parse("corrupt_row:1@0"), retry=FAST_RETRY,
        progress=lambda event, job, record: events.append((event, record)))
    assert run.ok
    corrupt = [record for event, record in events if event == "retry"]
    assert corrupt and corrupt[0]["error_type"] == "CorruptResult"
    for job in run.store.jobs(run.sweep_id):
        assert job["status"] == "done" and not job["quarantined"]


def test_exhausted_retries_quarantine_not_abort(tmp_path):
    """An unkillable fault quarantines its job; the rest of the matrix
    completes, and a resume skips the quarantined cell."""
    spec = tiny_spec()
    path = str(tmp_path / "s.db")
    run = run_sweep(
        spec, store=path, workers=2,
        chaos=ChaosPlan.parse("worker_kill:9@0"),
        retry=RetryPolicy(max_retries=1, backoff_s=0.01,
                          backoff_cap_s=0.05))
    victim = run.jobs[0]
    assert not run.ok
    assert list(run.quarantined) == [victim.job_id]
    assert run.quarantined[victim.job_id]["attempts"] == 2
    assert run.statuses[victim.job_id] == "failed"
    # The other independent cells still completed.
    assert run.statuses[run.jobs[2].job_id] == "done"
    row = next(job for job in run.store.jobs(run.sweep_id)
               if job["job_id"] == victim.job_id)
    assert row["quarantined"] == 1 and row["attempts"] == 2

    resumed = run_sweep(spec, store=path, workers=2,
                        chaos=ChaosPlan.parse("worker_kill:9@0"))
    assert resumed.resumed and resumed.skipped == len(spec.expand())
    assert not resumed.quarantined  # nothing re-ran, nothing new
