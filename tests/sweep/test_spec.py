"""Spec layer: parsing, validation, and deterministic expansion."""

import json

import pytest

from repro.common.errors import ConfigError
from repro.sweep.spec import (
    BudgetSpec,
    ControllerSpec,
    SweepSpec,
    builtin_spec,
    derive_job_seed,
)


def tiny_spec(**overrides):
    base = dict(
        name="t",
        workloads=("mcf", "omnetpp"),
        controllers=("uncompressed", "compresso", "tmcc@iso"),
        accesses=1_500,
        scale=0.05,
    )
    base.update(overrides)
    return SweepSpec.build(**base)


# ----------------------------------------------------------------------
# Budgets
# ----------------------------------------------------------------------

def test_budget_spellings():
    assert BudgetSpec.parse(None).kind == "none"
    assert BudgetSpec.parse("none").kind == "none"
    assert BudgetSpec.parse("iso").kind == "iso"
    fraction = BudgetSpec.parse("0.7x")
    assert (fraction.kind, fraction.value) == ("fraction", 0.7)
    assert BudgetSpec.parse(123_456) == BudgetSpec("bytes", 123_456.0)
    assert BudgetSpec.parse("16MiB").resolve(None) == 16 * 2**20
    assert BudgetSpec.parse("4k").resolve(None) == 4096


def test_budget_resolution_against_reference():
    assert BudgetSpec.parse("iso").resolve(1000) == 1000
    assert BudgetSpec.parse("0.5x").resolve(1000) == 500
    assert BudgetSpec.parse("none").resolve(None) is None
    with pytest.raises(ConfigError):
        BudgetSpec.parse("iso").resolve(None)


@pytest.mark.parametrize("bad", ["garbage", "x2", "-3", 0.7, True])
def test_budget_rejections(bad):
    with pytest.raises(ConfigError):
        BudgetSpec.parse(bad)


def test_budget_labels_round_trip():
    for spelling in ("none", "iso", "0.7x", "16777216B"):
        budget = BudgetSpec.parse(spelling)
        assert BudgetSpec.parse(budget.label()) == budget


# ----------------------------------------------------------------------
# Controllers
# ----------------------------------------------------------------------

def test_controller_spellings():
    plain = ControllerSpec.parse("tmcc")
    assert plain.name == "tmcc" and plain.budgets[0].kind == "none"
    at_iso = ControllerSpec.parse("tmcc@iso")
    assert at_iso.budgets[0].kind == "iso"
    ladder = ControllerSpec.parse(
        {"name": "tmcc", "budgets": ["iso", "0.7x"]})
    assert [b.kind for b in ladder.budgets] == ["iso", "fraction"]
    with pytest.raises(ConfigError):
        ControllerSpec.parse({"budgets": ["iso"]})
    with pytest.raises(ConfigError):
        ControllerSpec.parse({"name": "tmcc", "extra": 1})


# ----------------------------------------------------------------------
# Seeds
# ----------------------------------------------------------------------

def test_repeat_zero_keeps_base_seed():
    assert derive_job_seed(1, 0) == 1
    assert derive_job_seed(42, 0) == 42


def test_repeat_seeds_distinct_and_31bit():
    seeds = {derive_job_seed(1, r) for r in range(16)}
    assert len(seeds) == 16
    assert all(0 <= s < 2**31 for s in seeds)


# ----------------------------------------------------------------------
# Expansion
# ----------------------------------------------------------------------

def test_expansion_is_deterministic():
    a, b = tiny_spec().expand(), tiny_spec().expand()
    assert [j.job_id for j in a] == [j.job_id for j in b]
    assert [j.seed for j in a] == [j.seed for j in b]
    assert a == b


def test_expansion_order_and_size():
    jobs = tiny_spec(seeds=(1, 2)).expand()
    assert len(jobs) == 2 * 2 * 3  # workloads x seeds x controllers
    assert [j.workload for j in jobs[:6]] == ["mcf"] * 6
    assert [j.controller for j in jobs[:3]] == [
        "uncompressed", "compresso", "tmcc"]
    assert [j.index for j in jobs] == list(range(len(jobs)))


def test_job_id_is_pinned():
    # The hash covers every simulation-relevant field plus the matrix
    # version; this pin fails loudly if either changes without a
    # MATRIX_VERSION bump (which would corrupt store resume matching).
    job = tiny_spec().expand()[0]
    assert job.job_id == "bd136184e50bc6ab"


def test_iso_jobs_wired_to_reference_provider():
    jobs = tiny_spec().expand()
    by_id = {j.job_id: j for j in jobs}
    iso = [j for j in jobs if j.budget.kind == "iso"]
    assert iso, "expected tmcc@iso cells"
    for job in iso:
        provider = by_id[job.provider_id]
        assert provider.controller == "compresso"
        assert provider.budget.kind == "none"
        assert (provider.workload, provider.seed) == (job.workload, job.seed)


def test_repeats_derive_distinct_seeds():
    jobs = tiny_spec(repeats=3).expand()
    mcf_unc = [j for j in jobs
               if j.workload == "mcf" and j.controller == "uncompressed"]
    assert [j.repeat for j in mcf_unc] == [0, 1, 2]
    assert mcf_unc[0].seed == 1  # repeat 0 reproduces the base protocol
    assert len({j.seed for j in mcf_unc}) == 3


def test_duplicate_cell_rejected():
    with pytest.raises(ConfigError, match="duplicate"):
        tiny_spec(controllers=("compresso", "compresso")).expand()


def test_iso_without_reference_rejected():
    with pytest.raises(ConfigError, match="reference|measure"):
        tiny_spec(controllers=("uncompressed", "tmcc@iso"))


@pytest.mark.parametrize("overrides", [
    dict(workloads=("nosuch",)),
    dict(controllers=("nosuch",)),
    dict(accesses=0),
    dict(scale=1.5),
    dict(repeats=0),
    dict(fast_path="sometimes"),
    dict(job_timeout_s=-1.0),
    dict(faults=("nosuchfault:bogus",)),
])
def test_unrunnable_specs_rejected(overrides):
    with pytest.raises(ConfigError):
        tiny_spec(**overrides).expand()


def test_unknown_workloads_allowed_when_caller_resolves():
    spec = tiny_spec(workloads=("custom-trace",),
                     known_workloads_only=False)
    jobs = spec.expand(known_workloads_only=False)
    assert jobs[0].workload == "custom-trace"


# ----------------------------------------------------------------------
# Serialization / files
# ----------------------------------------------------------------------

def test_dict_round_trip_preserves_hash():
    spec = tiny_spec(seeds=(1, 7), repeats=2)
    clone = SweepSpec.from_dict(spec.to_dict())
    assert clone.spec_hash() == spec.spec_hash()
    assert clone.expand() == spec.expand()


def test_from_json_file(tmp_path):
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(tiny_spec().to_dict()))
    assert SweepSpec.from_file(str(path)).spec_hash() == \
        tiny_spec().spec_hash()


def test_from_toml_file(tmp_path):
    path = tmp_path / "spec.toml"
    path.write_text(
        '[sweep]\n'
        'name = "t"\n'
        'workloads = ["mcf", "omnetpp"]\n'
        'controllers = ["uncompressed", "compresso", "tmcc@iso"]\n'
        'accesses = 1500\n'
        'scale = 0.05\n'
    )
    assert SweepSpec.from_file(str(path)).spec_hash() == \
        tiny_spec().spec_hash()


def test_bad_files_rejected(tmp_path):
    with pytest.raises(ConfigError, match="cannot read"):
        SweepSpec.from_file(str(tmp_path / "missing.json"))
    bad_toml = tmp_path / "bad.toml"
    bad_toml.write_text("not = [valid")
    with pytest.raises(ConfigError, match="TOML"):
        SweepSpec.from_file(str(bad_toml))
    bad_json = tmp_path / "bad.json"
    bad_json.write_text("{nope")
    with pytest.raises(ConfigError, match="JSON"):
        SweepSpec.from_file(str(bad_json))


def test_unknown_spec_keys_rejected():
    with pytest.raises(ConfigError, match="unknown sweep spec key"):
        SweepSpec.from_dict({"name": "t", "workloads": ["mcf"],
                             "controllers": ["compresso"], "wrkloads": []})


def test_builtin_specs_expand():
    fig18 = builtin_spec("fig18")
    assert len(fig18.expand()) == 7 * 3
    smoke = builtin_spec("smoke")
    assert {j.workload for j in smoke.expand()} == {"mcf", "omnetpp"}
    with pytest.raises(ConfigError):
        builtin_spec("nosuch")
