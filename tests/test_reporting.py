"""Tests for table rendering and report assembly."""

import json

import pytest

from repro.common.errors import ConfigError
from repro.reporting import (
    Report,
    ReproducedTable,
    build_run_report,
    build_sweep_report,
    compare_runs,
    format_value,
    load_run_document,
    render_comparison,
    render_table,
    sparkline,
    sweep_trend_table,
)


def test_render_table_alignment():
    text = render_table(("name", "value"), [("a", 1), ("longer", 22)])
    lines = text.splitlines()
    assert lines[0].startswith("name")
    assert set(lines[1]) == {"-"}
    assert len({len(line) for line in (lines[0], lines[2], lines[3])}) <= 2
    assert "longer" in lines[3]


def test_render_table_validation():
    with pytest.raises(ValueError):
        render_table((), [])
    with pytest.raises(ValueError):
        render_table(("a", "b"), [("only-one",)])


def test_reproduced_table_render_and_markdown():
    table = ReproducedTable("Figure X", ("workload", "speedup"))
    table.add_row("mcf", "1.13")
    table.add_row("canneal", "1.20")
    rendered = table.render()
    assert rendered.startswith("=== Figure X ===")
    md = table.to_markdown()
    assert "| workload | speedup |" in md
    assert "| mcf | 1.13 |" in md


def test_report_write(tmp_path):
    report = Report("Reproduction")
    table = ReproducedTable("T", ("a",))
    table.add_row(1)
    report.add(table)
    path = report.write(tmp_path / "out" / "report.md")
    text = path.read_text()
    assert text.startswith("# Reproduction")
    assert "## T" in text
    assert "| 1 |" in text


# ----------------------------------------------------------------------
# format_value / sparkline
# ----------------------------------------------------------------------

def test_format_value():
    assert format_value(3) == "3"
    assert format_value(3.0) == "3"
    assert format_value(0.123456) == "0.1235"
    assert format_value(float("nan")) == "nan"
    assert format_value(True) == "True"
    assert format_value("x") == "x"


def test_sparkline_shapes():
    assert sparkline([]) == ""
    assert sparkline([1.0, 1.0, 1.0]) == "▁▁▁"
    ramp = sparkline([0.0, 1.0, 2.0, 3.0])
    assert ramp[0] == "▁" and ramp[-1] == "█"
    assert len(sparkline(list(range(100)), width=10)) == 10


# ----------------------------------------------------------------------
# Run reports and comparisons
# ----------------------------------------------------------------------

def _run_document(workload="wl", controller="tmcc", performance=1.0,
                  extra_metrics=None):
    metrics = {
        "tlb.hit_rate": 0.9,
        "controller.ml2_accesses": 100,
        "controller.breakdown.parallel_ok.cte_fetch.count": 5,
        "controller.breakdown.parallel_ok.cte_fetch.mean_ns": 30.0,
        "controller.breakdown.parallel_ok.cte_fetch.critical_ns": 0.0,
        "controller.breakdown.parallel_ok.cte_fetch.wasted_ns": 0.0,
        "controller.breakdown.parallel_ok.count": 5,  # path total: skipped
    }
    metrics.update(extra_metrics or {})
    return {
        "workload": workload,
        "controller": controller,
        "performance": performance,
        "avg_l3_miss_latency_ns": 120.0,
        "metrics": metrics,
        "path_fractions": {"parallel_ok": 0.75, "ml2_slow": 0.25},
        "run_config": {"seed": 7, "controller": {"name": controller}},
        "accesses": 1000,
    }


def test_load_run_document_schema_mismatch(tmp_path):
    good = tmp_path / "good.json"
    good.write_text(json.dumps(_run_document()))
    assert load_run_document(good)["workload"] == "wl"
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"workload": "w"}))
    with pytest.raises(ConfigError, match="controller, metrics"):
        load_run_document(bad)
    notjson = tmp_path / "notjson.json"
    notjson.write_text("nope{")
    with pytest.raises(ConfigError):
        load_run_document(notjson)


def test_build_run_report_sections():
    report = build_run_report(_run_document())
    md = report.to_markdown()
    assert md.startswith("# Run report: wl / tmcc")
    assert "## Configuration" in md
    assert "controller.name" in md  # nested run_config flattened
    assert "## Headline metrics" in md
    assert "| performance | 1 |" in md
    assert "## Access paths" in md
    assert "75.00%" in md
    assert "## Stage-latency breakdown" in md
    assert "| parallel_ok | cte_fetch | 5 | 30 |" in md
    # No spans/timeseries supplied: those sections are absent.
    assert "Slowest spans" not in md
    assert "## Time series" not in md


def test_build_run_report_with_spans_and_timeseries():
    from repro.sim.tracing import Span

    spans = [
        Span(1, 1, None, "access", "access", 0.0, 500.0, {"vaddr": 64}),
        Span(1, 2, 1, "llc_miss", "miss", 10.0, 90.0, {"path": "ml2_slow"}),
        Span(1, 3, 2, "metadata", "stage", 10.0, 20.0),  # never ranked
    ]
    rows = [
        {"window": 0, "start_ns": 0.0, "end_ns": 10.0, "m": 1.0, "flat": 2.0},
        {"window": 1, "start_ns": 10.0, "end_ns": 20.0, "m": 4.0, "flat": 2.0},
    ]
    md = build_run_report(_run_document(), spans=spans,
                          timeseries_rows=rows, top_k=5).to_markdown()
    assert "## Slowest spans (top 5)" in md
    assert "| 1 | access | access | 0 | 500 |" in md
    assert "path=ml2_slow" in md
    assert "metadata" not in md.split("Slowest spans")[1].split("##")[0]
    assert "## Time series" in md
    assert "m " in md and "flat" not in md  # flat column filtered out


def test_run_report_html():
    html = build_run_report(_run_document()).to_html()
    assert html.startswith("<!DOCTYPE html>")
    assert "<h1>Run report: wl / tmcc</h1>" in html
    assert "<table>" in html


def test_build_run_report_rejects_bad_schema():
    with pytest.raises(ConfigError):
        build_run_report({"workload": "w", "metrics": {}})


def test_compare_runs_deltas():
    a = _run_document(performance=1.0,
                      extra_metrics={"x.only_a": 1.0, "tlb.total": 100})
    b = _run_document(performance=1.2,
                      extra_metrics={"x.only_b": 2.0, "tlb.total": 150})
    comparison = compare_runs(a, b, label_a="base", label_b="cand")
    perf = [r for r in comparison["headline"] if r["key"] == "performance"][0]
    assert perf["delta"] == pytest.approx(0.2)
    assert perf["relative"] == pytest.approx(0.2)
    assert comparison["only_in_a"] == ["x.only_a"]
    assert comparison["only_in_b"] == ["x.only_b"]
    assert comparison["metrics_changed"] == 1
    assert comparison["metrics"][0]["key"] == "tlb.total"
    rendered = render_comparison(comparison)
    assert rendered.startswith("comparing base (wl/tmcc) vs cand (wl/tmcc)")
    assert "+20.00%" in rendered
    assert "only in base: x.only_a" in rendered
    assert "only in cand: x.only_b" in rendered


def test_compare_runs_zero_baseline_relative_is_na():
    a = _run_document(extra_metrics={"z": 0.0})
    b = _run_document(extra_metrics={"z": 5.0})
    comparison = compare_runs(a, b)
    row = [r for r in comparison["metrics"] if r["key"] == "z"][0]
    assert row["relative"] is None
    assert "n/a" in render_comparison(comparison)


def test_compare_runs_schema_mismatch_raises():
    with pytest.raises(ConfigError, match="B is not a run document"):
        compare_runs(_run_document(), {"workload": "w"})


# ----------------------------------------------------------------------
# Sweep reports
# ----------------------------------------------------------------------

def _sweep_job(idx, controller, budget="none", seed=1, status="done",
               attempts=1, quarantined=0, performance=10.0, error=None):
    result = None
    if status == "done" and not quarantined:
        result = {"performance": performance, "compression_ratio": 1.1,
                  "avg_l3_miss_latency_ns": 60.0}
    return {"idx": idx, "job_id": f"j{idx}", "workload": "mcf",
            "controller": controller, "budget": budget, "seed": seed,
            "faults": "", "status": status, "attempts": attempts,
            "quarantined": quarantined, "error": error,
            "last_error": error, "result": result}


def _sweep_document(jobs, sweep_id="sw-a"):
    return {"schema": "repro-sweep/2",
            "sweep": {"sweep_id": sweep_id, "name": "t", "spec_hash": "h",
                      "status": "done", "created_at": "now"},
            "spec": {}, "jobs": jobs}


def test_build_sweep_report_grid_and_failures():
    document = _sweep_document([
        _sweep_job(0, "compresso"),
        _sweep_job(1, "tmcc", budget="iso", status="failed", attempts=3,
                   quarantined=1, error="kept dying"),
    ])
    text = build_sweep_report(document).to_markdown()
    assert "# Sweep report: sw-a" in text
    assert "## Outcome grid" in text
    assert "| mcf | ok | 1 FAIL, 1 QUAR |" in text
    assert "## Retries and quarantine" in text
    assert "kept dying" in text
    assert "failed [quarantined]" in text


def test_build_sweep_report_rejects_non_sweep_document():
    with pytest.raises(ConfigError, match="not a sweep export document"):
        build_sweep_report({"workload": "mcf"})


def test_sweep_trend_matches_cells_by_coordinates():
    a = _sweep_document([_sweep_job(0, "tmcc", budget="iso",
                                    performance=10.0)])
    b = _sweep_document([_sweep_job(7, "tmcc", budget="iso",
                                    performance=12.0)], sweep_id="sw-b")
    text = build_sweep_report(a, compare_document=b,
                              compare_label="sw-b").to_markdown()
    assert "## Trend vs sw-b" in text
    assert "+20.00%" in text

    disjoint = _sweep_document([_sweep_job(0, "nothere")], sweep_id="sw-c")
    table = sweep_trend_table(a, disjoint)
    assert table.rows[0][0] == "(no shared cells)"


def test_build_run_report_embeds_bench_history():
    report = build_run_report(_run_document(),
                              bench_history="doc  suite  vs seed")
    text = report.to_markdown()
    assert "## Performance trajectory" in text
    assert "doc  suite  vs seed" in text
