"""Tests for table rendering and report assembly."""

import pytest

from repro.reporting import Report, ReproducedTable, render_table


def test_render_table_alignment():
    text = render_table(("name", "value"), [("a", 1), ("longer", 22)])
    lines = text.splitlines()
    assert lines[0].startswith("name")
    assert set(lines[1]) == {"-"}
    assert len({len(line) for line in (lines[0], lines[2], lines[3])}) <= 2
    assert "longer" in lines[3]


def test_render_table_validation():
    with pytest.raises(ValueError):
        render_table((), [])
    with pytest.raises(ValueError):
        render_table(("a", "b"), [("only-one",)])


def test_reproduced_table_render_and_markdown():
    table = ReproducedTable("Figure X", ("workload", "speedup"))
    table.add_row("mcf", "1.13")
    table.add_row("canneal", "1.20")
    rendered = table.render()
    assert rendered.startswith("=== Figure X ===")
    md = table.to_markdown()
    assert "| workload | speedup |" in md
    assert "| mcf | 1.13 |" in md


def test_report_write(tmp_path):
    report = Report("Reproduction")
    table = ReproducedTable("T", ("a",))
    table.add_row(1)
    report.add(table)
    path = report.write(tmp_path / "out" / "report.md")
    text = path.read_text()
    assert text.startswith("# Reproduction")
    assert "## T" in text
    assert "| 1 |" in text
