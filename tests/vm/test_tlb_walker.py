"""Tests for the TLB, page-walk cache, and page walker."""

import pytest

from repro.common.rng import DeterministicRNG
from repro.vm.pagetable import FrameAllocator, PageTable, PageTablePopulator
from repro.vm.tlb import TLB, PageWalkCache
from repro.vm.walker import PageWalker


# ----------------------------------------------------------------------
# TLB
# ----------------------------------------------------------------------

def test_tlb_hit_after_fill():
    tlb = TLB(entries=4)
    assert not tlb.lookup(1)
    tlb.fill(1)
    assert tlb.lookup(1)
    assert tlb.stats.hits == 1
    assert tlb.stats.total == 2


def test_tlb_lru_eviction():
    tlb = TLB(entries=2)
    tlb.fill(1)
    tlb.fill(2)
    tlb.lookup(1)  # 1 becomes MRU
    tlb.fill(3)    # evicts 2
    assert tlb.contains(1)
    assert not tlb.contains(2)
    assert tlb.contains(3)


def test_tlb_refill_does_not_grow():
    tlb = TLB(entries=2)
    tlb.fill(1)
    tlb.fill(1)
    tlb.fill(2)
    assert tlb.occupancy == 2


def test_tlb_invalidate_and_flush():
    tlb = TLB(entries=8)
    tlb.fill(5)
    tlb.invalidate(5)
    assert not tlb.contains(5)
    tlb.fill(6)
    tlb.flush()
    assert tlb.occupancy == 0


def test_tlb_validates_entries():
    with pytest.raises(ValueError):
        TLB(entries=0)


# ----------------------------------------------------------------------
# Page-walk cache
# ----------------------------------------------------------------------

def test_pwc_cold_walk_fetches_all_levels():
    pwc = PageWalkCache()
    assert pwc.first_fetch_level(0x12345) == 4


def test_pwc_warm_walk_fetches_only_leaf():
    pwc = PageWalkCache()
    pwc.fill(0x12345)
    assert pwc.first_fetch_level(0x12345) == 1


def test_pwc_partial_reuse_across_neighbouring_regions():
    pwc = PageWalkCache()
    pwc.fill(0x12345)
    # Same L3 subtree, different L2 entry -> start at level 2.
    sibling = (0x12345 & ~((1 << 18) - 1)) | (0x155 << 9)
    assert pwc.first_fetch_level(sibling) == 2


def test_pwc_capacity_eviction():
    pwc = PageWalkCache(l4_entries=1, l3_entries=1, l2_entries=1)
    pwc.fill(0)
    pwc.fill(1 << 35)  # different everything; evicts the first tags
    assert pwc.first_fetch_level(0) == 4


def test_pwc_flush():
    pwc = PageWalkCache()
    pwc.fill(0x1)
    pwc.flush()
    assert pwc.first_fetch_level(0x1) == 4


# ----------------------------------------------------------------------
# Page walker
# ----------------------------------------------------------------------

@pytest.fixture
def populated():
    allocator = FrameAllocator(1 << 20, DeterministicRNG(3))
    table = PageTable(allocator)
    populator = PageTablePopulator(table, allocator, DeterministicRNG(4))
    populator.populate_region(0x1000, 4096)
    return table


def test_walker_cold_then_warm(populated):
    walker = PageWalker(populated)
    first = walker.walk(0x1000)
    assert len(first.fetches) == 4
    assert [level for level, _ in first.fetches] == [4, 3, 2, 1]
    second = walker.walk(0x1001)
    assert len(second.fetches) == 1  # PWC covers levels 4..2
    assert second.fetches[0][0] == 1
    assert walker.walks.value == 2
    assert walker.ptb_fetches.value == 5


def test_walker_returns_translation(populated):
    walker = PageWalker(populated)
    result = walker.walk(0x1010)
    assert result.ppn == populated.translate(0x1010)
    assert not result.huge


def test_walker_huge_page():
    allocator = FrameAllocator(1 << 16, DeterministicRNG(5))
    table = PageTable(allocator)
    table.map_huge_page(vpn=0x400, ppn=0x800)
    walker = PageWalker(table)
    result = walker.walk(0x400 + 7)
    assert result.huge
    assert result.fetches[-1][0] == 2


def test_walker_unmapped_raises(populated):
    walker = PageWalker(populated)
    with pytest.raises(KeyError):
        walker.walk(0xDEAD_BEEF)


# ----------------------------------------------------------------------
# Additional TLB edge cases
# ----------------------------------------------------------------------

def test_tlb_huge_page_tags_share_entries():
    """A unified TLB tags huge pages by their 2 MiB-aligned vpn, so all
    512 base pages of one huge page share one entry."""
    tlb = TLB(entries=4)
    huge_tag = 0x400 >> 9
    tlb.fill(huge_tag)
    for offset in (0, 1, 255, 511):
        assert tlb.contains((0x400 + offset) >> 9)


def test_tlb_contains_does_not_touch_recency():
    tlb = TLB(entries=2)
    tlb.fill(1)
    tlb.fill(2)
    tlb.contains(1)  # must NOT refresh 1
    tlb.fill(3)      # evicts 1 (still LRU)
    assert not tlb.contains(1)


def test_pwc_levels_are_independent():
    pwc = PageWalkCache(l4_entries=8, l3_entries=1, l2_entries=1)
    pwc.fill(0x0)
    pwc.fill(1 << 18)  # same L4/L3 subtree? different L2 tag -> evicts L2
    # L3 entry for the second fill evicted the first's L3 tag too (1 entry),
    # but the L4 tag (8 entries) survives for both.
    assert pwc.first_fetch_level(0x0) in (2, 3)
