"""Differential tests: columnar TLB vs the OrderedDict reference.

`TLB` stores translations in an `IntLRU` (flat key/prev/next columns);
`ReferenceTLB` keeps the original `OrderedDict`.  Random operation
sequences through both must agree on every hit/miss, every stat, and
on which entry each capacity eviction displaces.
"""

from hypothesis import given, settings, strategies as st

from repro.vm.tlb import ReferenceTLB, TLB

# 8 entries and ~24 tags: every sequence churns through evictions.
ENTRIES = 8
tags = st.integers(min_value=0, max_value=23)

operation = st.one_of(
    st.tuples(st.just("lookup"), tags),
    st.tuples(st.just("contains"), tags),
    st.tuples(st.just("fill"), tags, st.integers(min_value=0, max_value=99)),
    st.tuples(st.just("invalidate"), tags),
    st.tuples(st.just("flush")),
)


def apply(tlb, op):
    if op[0] == "lookup":
        return tlb.lookup(op[1])
    if op[0] == "contains":
        return tlb.contains(op[1])
    if op[0] == "fill":
        return tlb.fill(op[1], op[2])
    if op[0] == "invalidate":
        return tlb.invalidate(op[1])
    return tlb.flush()


@settings(max_examples=200, deadline=None)
@given(st.lists(operation, max_size=120))
def test_tlb_matches_reference(ops):
    columnar = TLB(entries=ENTRIES, name="dut")
    reference = ReferenceTLB(entries=ENTRIES, name="dut")
    for op in ops:
        assert apply(columnar, op) == apply(reference, op), op
        assert columnar.occupancy == reference.occupancy
        assert columnar.stats.total == reference.stats.total
        assert columnar.stats.hits == reference.stats.hits
    # Same residents, and the same LRU order: probing with fills of
    # fresh tags must displace entries so that membership stays equal
    # after each displacement.
    for probe in range(1000, 1000 + ENTRIES):
        apply(columnar, ("fill", probe, 0))
        apply(reference, ("fill", probe, 0))
        survivors = [t for t in range(24) if columnar.contains(t)]
        assert survivors == [t for t in range(24) if reference.contains(t)]
