"""Property tests: compressed-PTB encode/decode round-trips exactly.

Complements test_ptbcodec.py's example-based tests with hypothesis
sweeps over random PTE groups, plus the Section V-A5 capacity math
(embedded CTEs must fit in the bits freed by truncation, and page-level
CTEs stay within the paper's 8 B-per-page budget).
"""

from hypothesis import given, settings, strategies as st

from repro.common.units import BLOCK_SIZE, PTES_PER_PTB, TIB
from repro.mc.cte import CTE_SIZE_PAGE
from repro.vm.pte import make_pte, pte_ppn, pte_status
from repro.vm.ptbcodec import PTB_BITS, STATUS_BITS, PTBCodec

status_low = st.integers(min_value=0, max_value=(1 << 12) - 1)
status_high = st.integers(min_value=0, max_value=(1 << 12) - 1)


def _compressible_group(codec, low, high, ppn_top, ppn_lows):
    """Eight PTEs sharing status bits and leading PPN bits."""
    return [make_pte((ppn_top << codec.ppn_bits) | ppn_low, low, high)
            for ppn_low in ppn_lows]


@settings(max_examples=60)
@given(
    low=status_low,
    high=status_high,
    ppn_top=st.integers(min_value=0, max_value=(1 << 10) - 1),
    ppn_lows=st.lists(st.integers(min_value=0, max_value=(1 << 30) - 1),
                      min_size=PTES_PER_PTB, max_size=PTES_PER_PTB),
)
def test_roundtrip_preserves_ppns_and_status(low, high, ppn_top, ppn_lows):
    codec = PTBCodec()  # 1 TiB, 4x expansion -> ppn_bits == 30
    ptes = _compressible_group(codec, low, high, ppn_top, ppn_lows)
    compressed = codec.compress(ptes)
    assert compressed is not None, "identical status+high bits must compress"
    restored = codec.decompress(compressed)
    assert restored == ptes
    assert [pte_ppn(p) for p in restored] == [pte_ppn(p) for p in ptes]
    assert {pte_status(p) for p in restored} == {pte_status(p) for p in ptes}


@settings(max_examples=60)
@given(ptes=st.lists(st.integers(min_value=0, max_value=(1 << 64) - 1),
                     min_size=PTES_PER_PTB, max_size=PTES_PER_PTB))
def test_arbitrary_groups_roundtrip_when_compressible(ptes):
    codec = PTBCodec()
    ptes = [p & ~(((1 << 12) - 1) << 52) for p in ptes]  # keep PPN in 40 bits
    ptes = [make_pte(pte_ppn(p) & ((1 << 40) - 1), p & 0xFFF,
                     (p >> 52) & 0xFFF) for p in ptes]
    compressed = codec.compress(ptes)
    if compressed is None:
        assert not codec.compressible(ptes)
    else:
        assert codec.decompress(compressed) == ptes


@settings(max_examples=30)
@given(
    low=status_low,
    ppn_lows=st.lists(st.integers(min_value=0, max_value=(1 << 30) - 1),
                      min_size=PTES_PER_PTB, max_size=PTES_PER_PTB,
                      unique=True),
    cte=st.integers(min_value=0, max_value=(1 << 28) - 1),
)
def test_embedded_ctes_survive_software_merge(low, ppn_lows, cte):
    codec = PTBCodec()
    ptes = _compressible_group(codec, low, 0, 3, ppn_lows)
    compressed = codec.compress(ptes)
    ppn = pte_ppn(ptes[0])
    assert compressed.set_cte_for_ppn(ppn, codec.ppn_bits, cte)
    assert compressed.embedded_cte_for_ppn(ppn, codec.ppn_bits) == cte
    # A software write that keeps PTE 0 in place preserves its CTE.
    merged = codec.merge_software_update(compressed, ptes)
    assert merged is not None
    assert merged.embedded_cte_for_ppn(ppn, codec.ppn_bits) == cte


def test_capacity_matches_paper_quotes():
    """Section V-A5: 8 CTEs at 1 TB, 7 at 4 TB, 6 at 16 TB."""
    assert PTBCodec(1 * TIB).embeddable_ctes == 8
    assert PTBCodec(4 * TIB).embeddable_ctes == 7
    assert PTBCodec(16 * TIB).embeddable_ctes == 6


@given(shift=st.integers(min_value=0, max_value=8),
       expansion=st.sampled_from([1, 2, 4]))
def test_compressed_encoding_fits_one_block(shift, expansion):
    """Status + truncated PPNs + embedded CTEs never exceed 64 B."""
    codec = PTBCodec(TIB << shift, expansion_factor=expansion)
    used = (STATUS_BITS + PTES_PER_PTB * codec.ppn_bits
            + codec.embeddable_ctes * codec.cte_bits)
    assert used <= PTB_BITS == BLOCK_SIZE * 8
    assert 0 <= codec.embeddable_ctes <= PTES_PER_PTB


def test_page_level_cte_budget():
    """A full (non-embedded) CTE costs 8 B per page -- the paper's budget
    that page-level CTEs (vs Compresso's 64 B per page of block CTEs)
    are sized against; truncated embedded CTEs must be strictly smaller."""
    assert CTE_SIZE_PAGE == 8
    codec = PTBCodec()
    assert codec.cte_bits <= CTE_SIZE_PAGE * 8
    assert codec.cte_bits < 64  # truncation is what makes embedding fit
