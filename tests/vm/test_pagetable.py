"""Tests for the 4-level page table, allocator, populator, and Figure 6."""

import pytest

from repro.common.rng import DeterministicRNG
from repro.common.units import BLOCK_SIZE
from repro.vm.pagetable import (
    FrameAllocator,
    PageTable,
    PageTablePopulator,
    ptb_status_stats,
    vpn_index,
)
from repro.vm.pte import pte_ppn


def make_table(frames=1 << 20, jump=0.02, seed=7):
    allocator = FrameAllocator(frames, DeterministicRNG(seed), jump_chance=jump)
    return PageTable(allocator), allocator


# ----------------------------------------------------------------------
# vpn_index
# ----------------------------------------------------------------------

def test_vpn_index_slices_nine_bits_per_level():
    vpn = (0x1AB << 27) | (0x0CD << 18) | (0x1EF << 9) | 0x123
    assert vpn_index(vpn, 4) == 0x1AB
    assert vpn_index(vpn, 3) == 0x0CD
    assert vpn_index(vpn, 2) == 0x1EF
    assert vpn_index(vpn, 1) == 0x123


# ----------------------------------------------------------------------
# FrameAllocator
# ----------------------------------------------------------------------

def test_allocator_unique_frames():
    allocator = FrameAllocator(1000, DeterministicRNG(1))
    frames = [allocator.alloc() for _ in range(1000)]
    assert len(set(frames)) == 1000
    with pytest.raises(MemoryError):
        allocator.alloc()


def test_allocator_mostly_contiguous():
    allocator = FrameAllocator(1 << 20, DeterministicRNG(2), jump_chance=0.02)
    frames = [allocator.alloc() for _ in range(4096)]
    sequential = sum(1 for a, b in zip(frames, frames[1:]) if b == a + 1)
    assert sequential / len(frames) > 0.9


def test_allocator_free_and_reuse():
    allocator = FrameAllocator(4, DeterministicRNG(3), jump_chance=0.0)
    frames = [allocator.alloc() for _ in range(4)]
    allocator.free(frames[0])
    assert allocator.alloc() == frames[0]


def test_allocator_aligned_run():
    allocator = FrameAllocator(2048, DeterministicRNG(4), jump_chance=0.0)
    allocator.alloc()  # dirty the low frames
    base = allocator.alloc_aligned_run(512)
    assert base % 512 == 0
    assert base >= 512  # frame 0 was taken
    with pytest.raises(ValueError):
        FrameAllocator(0)


# ----------------------------------------------------------------------
# PageTable mapping and lookup
# ----------------------------------------------------------------------

def test_map_and_lookup():
    table, _ = make_table()
    table.map_page(vpn=0x12345, ppn=0x777)
    assert table.translate(0x12345) == 0x777
    assert table.translate(0x12346) is None
    pte = table.lookup(0x12345)
    assert pte_ppn(pte) == 0x777


def test_walk_path_shape():
    table, _ = make_table()
    table.map_page(vpn=0xABCDE, ppn=0x42)
    path = table.walk_path(0xABCDE)
    assert [level for level, _, _ in path] == [4, 3, 2, 1]
    for _, address, _ in path:
        assert address % BLOCK_SIZE == 0
    assert pte_ppn(path[-1][2]) == 0x42


def test_walk_path_unmapped_raises():
    table, _ = make_table()
    with pytest.raises(KeyError):
        table.walk_path(0x999)


def test_ptb_reverse_lookup():
    table, _ = make_table()
    table.map_page(vpn=100, ppn=5)
    path = table.walk_path(100)
    _, leaf_ptb, _ = path[-1]
    entries = table.ptb_at(leaf_ptb)
    assert entries is not None
    assert len(entries) == 8
    assert any(pte_ppn(e) == 5 for e in entries)
    assert table.is_ptb_address(leaf_ptb)
    assert not table.is_ptb_address(0xDEAD_0000)


def test_adjacent_vpns_share_leaf_ptb():
    table, _ = make_table()
    for i in range(8):
        table.map_page(vpn=0x4000 + i, ppn=0x100 + i)
    addresses = {table.walk_path(0x4000 + i)[-1][1] for i in range(8)}
    assert len(addresses) == 1


def test_huge_page_mapping():
    table, _ = make_table()
    table.map_huge_page(vpn=0x200, ppn=0x1000)
    path = table.walk_path(0x234)
    assert [level for level, _, _ in path] == [4, 3, 2]
    assert table.translate(0x234) == 0x1000 + 0x34


def test_huge_page_alignment_enforced():
    table, _ = make_table()
    with pytest.raises(ValueError):
        table.map_huge_page(vpn=0x201, ppn=0x1000)


def test_table_page_count_grows():
    table, _ = make_table()
    before = table.table_page_count
    # Two vpns in distant L4 slots force distinct L3/L2/L1 chains.
    table.map_page(vpn=0, ppn=1)
    table.map_page(vpn=1 << 35, ppn=2)
    assert table.table_page_count >= before + 6


# ----------------------------------------------------------------------
# Populator and Figure 6 statistics
# ----------------------------------------------------------------------

def test_populator_maps_region():
    table, allocator = make_table()
    populator = PageTablePopulator(table, allocator, DeterministicRNG(5))
    ppns = populator.populate_region(0x10000, 2048)
    assert len(ppns) == 2048
    for offset in (0, 1, 1000, 2047):
        assert table.translate(0x10000 + offset) == ppns[offset]
    assert populator.mapped_pages[0x10000] == ppns[0]


def test_ptb_status_stats_all_uniform_without_noise():
    table, allocator = make_table()
    populator = PageTablePopulator(table, allocator, DeterministicRNG(6))
    populator.populate_region(0, 4096)
    stats = ptb_status_stats(table)
    assert stats.l1_total == 4096 // 8
    assert stats.l1_fraction == 1.0
    assert stats.l2_fraction == 1.0


def test_ptb_status_stats_with_noise_matches_figure6():
    table, allocator = make_table(frames=1 << 22)
    populator = PageTablePopulator(
        table, allocator, DeterministicRNG(8),
        l1_status_noise=0.0006, l2_status_noise=0.007,
    )
    populator.populate_region(0, 200_000)
    populator.finalize_noise()
    stats = ptb_status_stats(table)
    assert 0.997 <= stats.l1_fraction < 1.0
    # At simulation scale there are only ~50 L2 PTBs, so the 0.7% L2
    # noise rarely lands; just require the Figure 6 range.
    assert 0.95 <= stats.l2_fraction <= 1.0


def test_l2_noise_mechanism_with_exaggerated_rate():
    table, allocator = make_table(frames=1 << 22)
    populator = PageTablePopulator(
        table, allocator, DeterministicRNG(12),
        l1_status_noise=0.0, l2_status_noise=0.5,
    )
    populator.populate_region(0, 100_000)
    populator.finalize_noise()
    stats = ptb_status_stats(table)
    assert stats.l2_fraction < 0.9  # half the L2 PTBs were perturbed
    assert stats.l1_fraction == 1.0


def test_partial_ptb_counts_present_entries_only():
    table, allocator = make_table()
    table.map_page(vpn=0, ppn=1)  # 1 of 8 entries in its PTB
    stats = ptb_status_stats(table)
    assert stats.l1_total == 1
    assert stats.l1_uniform == 1  # a lone present entry agrees with itself


def test_divergent_status_breaks_uniformity():
    from repro.vm.pte import PTE_DIRTY

    table, allocator = make_table()
    for i in range(8):
        table.map_page(vpn=i, ppn=10 + i)
    # Flip one PTE's status.
    page = next(iter(table.table_pages(1)))
    page.entries[0] |= PTE_DIRTY
    stats = ptb_status_stats(table)
    assert stats.l1_uniform == 0


def test_huge_region_population():
    table, allocator = make_table(frames=1 << 16)
    populator = PageTablePopulator(table, allocator, DeterministicRNG(9))
    populator.populate_huge_region(0x200, 4)
    for i in range(4):
        assert (0x200 + i * 512) in table.huge_mappings
    assert table.translate(0x200 + 513) is not None
