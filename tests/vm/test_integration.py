"""Integration tests across the VM substrate.

Exercise TLB + page-walk cache + walker + PTB codec together the way the
simulator does, including the Figure 6 -> Figure 7 chain: populated page
tables produce PTBs that the hardware codec can almost always compress.
"""

from hypothesis import given, settings, strategies as st

from repro.common.rng import DeterministicRNG
from repro.vm.pagetable import (
    FrameAllocator,
    PageTable,
    PageTablePopulator,
)
from repro.vm.ptbcodec import PTBCodec
from repro.vm.pte import pte_present, pte_ppn
from repro.vm.tlb import TLB, PageWalkCache
from repro.vm.walker import PageWalker


def build_system(pages=8192, seed=3, noise=0.0006):
    allocator = FrameAllocator(pages * 4 + 4096, DeterministicRNG(seed))
    table = PageTable(allocator)
    populator = PageTablePopulator(table, allocator, DeterministicRNG(seed + 1),
                                   l1_status_noise=noise)
    populator.populate_region(0x10_0000, pages)
    populator.finalize_noise()
    return table, populator


def test_walker_translations_agree_with_table():
    table, populator = build_system(pages=2048)
    walker = PageWalker(table)
    for vpn, ppn in list(populator.mapped_pages.items())[::97]:
        assert walker.walk(vpn).ppn == ppn


def test_tlb_plus_walker_full_flow():
    """The simulator's translation loop: TLB filter, walk on miss."""
    table, populator = build_system(pages=4096)
    tlb = TLB(entries=128)
    walker = PageWalker(table)
    rng = DeterministicRNG(9)
    vpns = list(populator.mapped_pages)
    for _ in range(2000):
        vpn = vpns[rng.zipf_index(len(vpns))]
        if not tlb.lookup(vpn):
            walker.walk(vpn)
            tlb.fill(vpn)
    # Zipf reuse means real hits; small TLB vs 4096 pages means real misses.
    assert 0.05 < tlb.stats.hit_rate < 0.98
    assert walker.ptb_fetches.value >= walker.walks.value


def test_pwc_cuts_walk_fetches_dramatically():
    """A larger PWC keeps revisited regions' upper levels cached."""
    allocator = FrameAllocator(1 << 20, DeterministicRNG(5))
    table = PageTable(allocator)
    # 32 vpns spread across distinct L2/L3 subtrees (stride 2^18 pages).
    vpns = [i << 18 for i in range(32)]
    for vpn in vpns:
        table.map_page(vpn, allocator.alloc())
    tiny_walker = PageWalker(table, PageWalkCache(1, 1, 1))
    big_walker = PageWalker(table, PageWalkCache())
    for _ in range(2):  # two passes: the second is where PWCs differ
        for vpn in vpns:
            tiny_walker.walk(vpn)
            big_walker.walk(vpn)
    assert big_walker.ptb_fetches.value < tiny_walker.ptb_fetches.value


def test_most_leaf_ptbs_compress_with_embedded_slots():
    """Figure 6 consequence: >99% of populated leaf PTBs accept CTEs."""
    table, _ = build_system(pages=16384, noise=0.0006)
    codec = PTBCodec()
    total = 0
    compressible = 0
    for page in table.table_pages(level=1):
        for ptb_index in range(64):
            ptes = page.ptb_entries(ptb_index)
            if not all(pte_present(p) for p in ptes):
                continue
            total += 1
            if codec.compressible(ptes):
                compressible += 1
    assert total > 1000
    assert compressible / total > 0.99


def test_compressed_table_ptbs_roundtrip_and_carry_ctes():
    table, _ = build_system(pages=1024)
    codec = PTBCodec()
    page = next(iter(table.table_pages(level=1)))
    ptes = page.ptb_entries(3)
    compressed = codec.compress(ptes)
    assert compressed is not None
    assert codec.decompress(compressed) == ptes
    # Embed a CTE for each PTE's target page and read them all back.
    for pte in ptes:
        ppn = pte_ppn(pte)
        assert compressed.set_cte_for_ppn(ppn, codec.ppn_bits, ppn ^ 0x5A5)
    for pte in ptes:
        ppn = pte_ppn(pte)
        assert compressed.embedded_cte_for_ppn(ppn, codec.ppn_bits) == ppn ^ 0x5A5


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=2047))
def test_walk_is_idempotent_property(index):
    table, populator = build_system(pages=2048, seed=4)
    walker = PageWalker(table)
    vpn = sorted(populator.mapped_pages)[index]
    first = walker.walk(vpn)
    second = walker.walk(vpn)
    assert first.ppn == second.ppn
    # The second walk fetches no more than the first (PWC warmed).
    assert len(second.fetches) <= len(first.fetches)
