"""Tests for 2D (nested) page walks."""

import pytest

from repro.common.rng import DeterministicRNG
from repro.vm.nested import GUEST_FETCH, HOST_FETCH, NestedPageWalker
from repro.vm.pagetable import FrameAllocator, PageTable, PageTablePopulator


@pytest.fixture
def nested_setup():
    """A guest address space backed 1:1-ish by a host address space."""
    guest_allocator = FrameAllocator(1 << 18, DeterministicRNG(1))
    guest_table = PageTable(guest_allocator)
    guest_populator = PageTablePopulator(guest_table, guest_allocator,
                                         DeterministicRNG(2))
    guest_populator.populate_region(0x8_0000, 1024)

    host_allocator = FrameAllocator(1 << 19, DeterministicRNG(3))
    host_table = PageTable(host_allocator)
    host_populator = PageTablePopulator(host_table, host_allocator,
                                        DeterministicRNG(4))
    # The host maps every guest frame the guest uses (data + table pages).
    guest_frames = sorted(
        set(guest_populator.mapped_pages.values())
        | {page.ppn for page in guest_table.table_pages()}
    )
    host_populator.populate_region(0, max(guest_frames) + 1)
    return guest_table, host_table, guest_populator


def test_cold_2d_walk_costs_up_to_24_accesses(nested_setup):
    guest_table, host_table, populator = nested_setup
    walker = NestedPageWalker(guest_table, host_table)
    result = walker.walk(0x8_0000)
    host = [f for f in result.fetches if f[0] == HOST_FETCH]
    guest = [f for f in result.fetches if f[0] == GUEST_FETCH]
    assert len(guest) == 4  # one PTB per guest level
    assert len(host) <= 20
    assert len(result.fetches) <= 24
    assert len(result.fetches) > 8  # genuinely two-dimensional


def test_warm_2d_walk_is_cheaper(nested_setup):
    """The host page-walk cache absorbs most host-side fetches on reuse."""
    guest_table, host_table, _ = nested_setup
    walker = NestedPageWalker(guest_table, host_table)
    cold = walker.walk(0x8_0000)
    warm = walker.walk(0x8_0001)
    assert len(warm.fetches) < len(cold.fetches)
    warm_host = [f for f in warm.fetches if f[0] == HOST_FETCH]
    assert len(warm_host) <= 5  # ~one leaf PTB per host translation


def test_2d_translation_is_correct(nested_setup):
    guest_table, host_table, populator = nested_setup
    walker = NestedPageWalker(guest_table, host_table)
    guest_vpn = 0x8_0010
    result = walker.walk(guest_vpn)
    expected_guest_ppn = populator.mapped_pages[guest_vpn]
    assert result.guest_ppn == expected_guest_ppn
    assert result.host_ppn == host_table.translate(expected_guest_ppn)


def test_unmapped_guest_page_raises(nested_setup):
    guest_table, host_table, _ = nested_setup
    walker = NestedPageWalker(guest_table, host_table)
    with pytest.raises(KeyError):
        walker.walk(0xDEAD_BEEF)


def test_host_ptbs_feed_tmcc_harvesting(nested_setup):
    """Every host PTB fetch of a 2D walk is harvestable by TMCC, exactly
    like a native walk (Section V-A3's 2D discussion)."""
    from repro.core.compmodel import PageCompressionModel
    from repro.core.config import SystemConfig
    from repro.core.tmcc import TMCCController
    from repro.dram.system import DRAMSystem
    from repro.workloads.content import ContentSynthesizer

    guest_table, host_table, populator = nested_setup
    walker = NestedPageWalker(guest_table, host_table)
    result = walker.walk(0x8_0000)

    controller = TMCCController(SystemConfig(), DRAMSystem())
    model = PageCompressionModel(ContentSynthesizer("graph", 5).page,
                                 sample_pages=4, seed=5)
    host_data = sorted(set(populator.mapped_pages.values()))
    host_ppns = [host_table.translate(g) for g in host_data]
    hotness = {ppn: i for i, ppn in enumerate(host_ppns)}
    controller.initialize(host_ppns, hotness,
                          [p.ppn for p in host_table.table_pages()], model)
    for kind, level, address in result.fetches:
        if kind == HOST_FETCH:
            controller.note_ptb_fetch(level, address,
                                      host_table.ptb_at(address),
                                      huge_leaf=False)
    assert len(controller._cte_buffer) > 0
    assert controller.stats.counter("ptbs_compressed").value > 0


def test_fetch_counters(nested_setup):
    guest_table, host_table, _ = nested_setup
    walker = NestedPageWalker(guest_table, host_table)
    walker.walk(0x8_0000)
    walker.walk(0x8_0100)
    assert walker.walks.value == 2
    assert walker.total_fetches.value >= 10
    assert walker.host_ptb_fetch_count > 0
