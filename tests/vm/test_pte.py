"""Tests for PTE bit layout."""

import pytest
from hypothesis import given, strategies as st

from repro.vm import pte as pte_mod
from repro.vm.pte import (
    PTE_ACCESSED,
    PTE_DIRTY,
    PTE_PRESENT,
    PTE_WRITABLE,
    make_pte,
    pte_present,
    pte_ppn,
    pte_set_flags,
    pte_status,
    pte_with_ppn,
    status_to_fields,
)


def test_make_and_extract():
    pte = make_pte(0x12345, PTE_PRESENT | PTE_WRITABLE, 0x800)
    assert pte_ppn(pte) == 0x12345
    assert pte_present(pte)
    assert pte_status(pte) == (0x800 << 12) | (PTE_PRESENT | PTE_WRITABLE)


def test_make_pte_validates_fields():
    with pytest.raises(ValueError):
        make_pte(1 << 40)
    with pytest.raises(ValueError):
        make_pte(0, status_low=1 << 12)
    with pytest.raises(ValueError):
        make_pte(0, status_high=1 << 12)


def test_pte_with_ppn_preserves_status():
    pte = make_pte(0x1000, PTE_PRESENT | PTE_ACCESSED, 0x7FF)
    updated = pte_with_ppn(pte, 0x2000)
    assert pte_ppn(updated) == 0x2000
    assert pte_status(updated) == pte_status(pte)


def test_set_flags():
    pte = make_pte(5, PTE_PRESENT)
    dirty = pte_set_flags(pte, PTE_DIRTY)
    assert dirty & PTE_DIRTY
    assert pte_ppn(dirty) == 5
    with pytest.raises(ValueError):
        pte_set_flags(pte, 1 << 13)


def test_status_roundtrip():
    low, high = status_to_fields((0xABC << 12) | 0x123)
    assert low == 0x123
    assert high == 0xABC


def test_not_present():
    assert not pte_present(make_pte(7, status_low=0))


@given(st.integers(min_value=0, max_value=(1 << 40) - 1),
       st.integers(min_value=0, max_value=(1 << 12) - 1),
       st.integers(min_value=0, max_value=(1 << 12) - 1))
def test_pte_fields_roundtrip_property(ppn, low, high):
    pte = make_pte(ppn, low, high)
    assert pte_ppn(pte) == ppn
    assert pte_status(pte) == (high << 12) | low
    l2, h2 = status_to_fields(pte_status(pte))
    assert (l2, h2) == (low, high)


def test_default_statuses_are_present():
    assert pte_mod.STATUS_DEFAULT_DATA & PTE_PRESENT
    assert pte_mod.STATUS_READONLY & PTE_PRESENT
    assert not (pte_mod.STATUS_READONLY & PTE_WRITABLE)
